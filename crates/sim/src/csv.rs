//! Plain-text CSV emission for sweep results.
//!
//! One row per (density point, algorithm) with latency statistics, plus
//! rows for the analytical curves — enough to replot any of Figures 3–7
//! with any external tool, and the format EXPERIMENTS.md quotes.

use crate::{Regime, SweepResult};
use std::fmt::Write as _;

/// Renders a sweep as CSV. Columns:
/// `regime,nodes,density,series,mean,std,min,max,count,coverage,states,cache_hits,cache_misses`
/// — `coverage` is the mean lossy-replay coverage of the series
/// (first-class reliability metric), `states` the mean search states per
/// run, and the cache columns the series' warm-start traffic totals. The
/// trailing columns are empty where they do not apply (analytic-bound
/// rows have no schedule to replay; non-search algorithms explore no
/// states).
pub fn sweep_to_csv(result: &SweepResult) -> String {
    let mut out = String::from(
        "regime,nodes,density,series,mean,std,min,max,count,coverage,states,cache_hits,cache_misses\n",
    );
    let regime = regime_label(result.regime);
    for p in &result.points {
        for a in &p.per_algorithm {
            let states = if a.search_states.count() == 0 {
                String::new()
            } else {
                format!("{:.1}", a.search_states.mean())
            };
            let _ = writeln!(
                out,
                "{},{},{:.4},{},{:.3},{:.3},{},{},{},{:.4},{},{},{}",
                regime,
                p.nodes,
                p.density,
                a.name,
                a.latency.mean(),
                a.latency.std_dev(),
                a.latency.min(),
                a.latency.max(),
                a.latency.count(),
                a.coverage.mean(),
                states,
                a.cache_hits,
                a.cache_misses
            );
        }
        for (name, series) in [
            ("OPT-analysis", &p.opt_analysis),
            ("baseline-bound", &p.baseline_bound),
        ] {
            let _ = writeln!(
                out,
                "{},{},{:.4},{},{:.3},{:.3},{},{},{},,,,",
                regime,
                p.nodes,
                p.density,
                name,
                series.mean(),
                series.std_dev(),
                series.min(),
                series.max(),
                series.count()
            );
        }
    }
    out
}

fn regime_label(regime: Regime) -> String {
    match regime {
        Regime::Sync => "sync".to_string(),
        Regime::Duty { rate } => format!("duty-r{rate}"),
    }
}

/// Renders the improving-bound traces of a sweep's anytime runs as CSV:
/// `regime,nodes,instance,series,elapsed_ms,moves,latency`, one row per
/// accepted incumbent, grouped per `(nodes, instance, series)` run. The
/// `moves` column is the bit-reproducible x-axis (deterministic under
/// iteration budgets); `elapsed_ms` is the wall-clock x-axis. Empty when
/// the sweep ran no anytime algorithm.
pub fn traces_to_csv(result: &SweepResult) -> String {
    let mut out = String::from("regime,nodes,instance,series,elapsed_ms,moves,latency\n");
    let regime = regime_label(result.regime);
    for t in &result.traces {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            regime, t.nodes, t.instance, t.series, t.elapsed_ms, t.moves, t.latency
        );
    }
    out
}

/// Renders a fixed-width table of mean latencies (series × density), the
/// shape the paper's figures plot.
pub fn sweep_to_table(result: &SweepResult) -> String {
    let mut out = String::new();
    let names: Vec<&str> = result
        .points
        .first()
        .map(|p| p.per_algorithm.iter().map(|a| a.name.as_str()).collect())
        .unwrap_or_default();
    let _ = write!(out, "{:<10} {:<9}", "nodes", "density");
    for n in &names {
        let _ = write!(out, " {n:>16}");
    }
    let _ = writeln!(out, " {:>16}", "OPT-analysis");
    for p in &result.points {
        let _ = write!(out, "{:<10} {:<9.4}", p.nodes, p.density);
        for a in &p.per_algorithm {
            let _ = write!(out, " {:>16.2}", a.latency.mean());
        }
        let _ = writeln!(out, " {:>16.2}", p.opt_analysis.mean());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, Sweep};
    use mlbs_core::SearchConfig;

    fn sample_result() -> SweepResult {
        Sweep {
            node_counts: vec![50],
            instances: 2,
            algorithms: vec![Algorithm::Layered, Algorithm::EModelPipeline],
            regime: Regime::Sync,
            models: vec![crate::PhyModelSpec::protocol()],
            master_seed: 7,
            search: SearchConfig::default(),
            search_overrides: Vec::new(),
            threads: 1,
            search_threads: 1,
        }
        .run()
    }

    #[test]
    fn csv_has_expected_rows_and_header() {
        let csv = sweep_to_csv(&sample_result());
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(
            lines[0],
            "regime,nodes,density,series,mean,std,min,max,count,coverage,states,cache_hits,cache_misses"
        );
        // 1 point × (2 algorithms + 2 analytic series) = 4 data rows.
        assert_eq!(lines.len(), 1 + 4);
        assert!(lines[1].starts_with("sync,50,0.0200,26-approx,"));
        assert!(csv.contains("OPT-analysis"));
        // Algorithm rows carry a coverage value, analytic rows leave the
        // trailing columns empty.
        assert_eq!(lines[1].split(',').count(), 13);
        let cov: f64 = lines[1].split(',').nth(9).unwrap().parse().unwrap();
        assert!((0.0..=1.0).contains(&cov));
        assert!(lines[3].ends_with(",,,,"));
        // Neither sample algorithm runs a search or touches the cache.
        assert_eq!(lines[1].split(',').nth(10), Some(""));
        assert_eq!(lines[1].split(',').nth(11), Some("0"));
    }

    #[test]
    fn search_and_cache_columns_populate_for_search_algorithms() {
        let r = Sweep {
            node_counts: vec![50],
            instances: 2,
            algorithms: vec![Algorithm::GOpt, Algorithm::Anytime],
            regime: Regime::Sync,
            models: vec![crate::PhyModelSpec::protocol()],
            master_seed: 7,
            search: SearchConfig::default(),
            search_overrides: Vec::new(),
            threads: 1,
            search_threads: 1,
        }
        .run();
        let csv = sweep_to_csv(&r);
        let row = |name: &str| {
            csv.lines()
                .find(|l| l.split(',').nth(3) == Some(name))
                .unwrap()
                .split(',')
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        // G-OPT explores states but never touches the warm-start cache.
        let gopt = row("G-OPT");
        assert!(gopt[10].parse::<f64>().unwrap() > 0.0);
        assert_eq!(gopt[11], "0");
        // The anytime tier misses the cache once per fresh instance.
        let any = row("anytime");
        assert_eq!(any[10], "");
        assert_eq!(any[12], "2");
    }

    #[test]
    fn trace_csv_flattens_anytime_runs() {
        let r = Sweep {
            node_counts: vec![50],
            instances: 2,
            algorithms: vec![Algorithm::Layered, Algorithm::Anytime],
            regime: Regime::Sync,
            models: vec![crate::PhyModelSpec::protocol()],
            master_seed: 7,
            search: SearchConfig::default(),
            search_overrides: Vec::new(),
            threads: 1,
            search_threads: 1,
        }
        .run();
        let csv = traces_to_csv(&r);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(
            lines[0],
            "regime,nodes,instance,series,elapsed_ms,moves,latency"
        );
        // Every anytime run contributes at least its greedy seed point;
        // the layered baseline contributes nothing.
        assert!(lines.len() > 2);
        assert!(lines[1..]
            .iter()
            .all(|l| l.split(',').nth(3) == Some("anytime")));
        // Latency is non-increasing and moves non-decreasing within a run.
        for pair in r.traces.windows(2) {
            if pair[0].nodes == pair[1].nodes && pair[0].instance == pair[1].instance {
                assert!(pair[1].latency <= pair[0].latency);
                assert!(pair[1].moves >= pair[0].moves);
            }
        }
    }

    #[test]
    fn table_lists_all_series() {
        let tbl = sweep_to_table(&sample_result());
        assert!(tbl.contains("26-approx"));
        assert!(tbl.contains("E-model"));
        assert!(tbl.contains("OPT-analysis"));
        assert!(tbl.lines().count() >= 2);
    }
}
