//! Plain-text CSV emission for sweep results.
//!
//! One row per (density point, algorithm) with latency statistics, plus
//! rows for the analytical curves — enough to replot any of Figures 3–7
//! with any external tool, and the format EXPERIMENTS.md quotes.

use crate::{Regime, SweepResult};
use std::fmt::Write as _;

/// Renders a sweep as CSV. Columns:
/// `regime,nodes,density,series,mean,std,min,max,count,coverage` — the
/// trailing column is the mean lossy-replay coverage of the series
/// (first-class reliability metric; empty for the analytic-bound rows,
/// which have no schedule to replay).
pub fn sweep_to_csv(result: &SweepResult) -> String {
    let mut out = String::from("regime,nodes,density,series,mean,std,min,max,count,coverage\n");
    let regime = match result.regime {
        Regime::Sync => "sync".to_string(),
        Regime::Duty { rate } => format!("duty-r{rate}"),
    };
    for p in &result.points {
        for a in &p.per_algorithm {
            let _ = writeln!(
                out,
                "{},{},{:.4},{},{:.3},{:.3},{},{},{},{:.4}",
                regime,
                p.nodes,
                p.density,
                a.name,
                a.latency.mean(),
                a.latency.std_dev(),
                a.latency.min(),
                a.latency.max(),
                a.latency.count(),
                a.coverage.mean()
            );
        }
        for (name, series) in [
            ("OPT-analysis", &p.opt_analysis),
            ("baseline-bound", &p.baseline_bound),
        ] {
            let _ = writeln!(
                out,
                "{},{},{:.4},{},{:.3},{:.3},{},{},{},",
                regime,
                p.nodes,
                p.density,
                name,
                series.mean(),
                series.std_dev(),
                series.min(),
                series.max(),
                series.count()
            );
        }
    }
    out
}

/// Renders a fixed-width table of mean latencies (series × density), the
/// shape the paper's figures plot.
pub fn sweep_to_table(result: &SweepResult) -> String {
    let mut out = String::new();
    let names: Vec<&str> = result
        .points
        .first()
        .map(|p| p.per_algorithm.iter().map(|a| a.name.as_str()).collect())
        .unwrap_or_default();
    let _ = write!(out, "{:<10} {:<9}", "nodes", "density");
    for n in &names {
        let _ = write!(out, " {n:>16}");
    }
    let _ = writeln!(out, " {:>16}", "OPT-analysis");
    for p in &result.points {
        let _ = write!(out, "{:<10} {:<9.4}", p.nodes, p.density);
        for a in &p.per_algorithm {
            let _ = write!(out, " {:>16.2}", a.latency.mean());
        }
        let _ = writeln!(out, " {:>16.2}", p.opt_analysis.mean());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, Sweep};
    use mlbs_core::SearchConfig;

    fn sample_result() -> SweepResult {
        Sweep {
            node_counts: vec![50],
            instances: 2,
            algorithms: vec![Algorithm::Layered, Algorithm::EModelPipeline],
            regime: Regime::Sync,
            models: vec![crate::PhyModelSpec::protocol()],
            master_seed: 7,
            search: SearchConfig::default(),
            search_overrides: Vec::new(),
            threads: 1,
            search_threads: 1,
        }
        .run()
    }

    #[test]
    fn csv_has_expected_rows_and_header() {
        let csv = sweep_to_csv(&sample_result());
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(
            lines[0],
            "regime,nodes,density,series,mean,std,min,max,count,coverage"
        );
        // 1 point × (2 algorithms + 2 analytic series) = 4 data rows.
        assert_eq!(lines.len(), 1 + 4);
        assert!(lines[1].starts_with("sync,50,0.0200,26-approx,"));
        assert!(csv.contains("OPT-analysis"));
        // Algorithm rows carry a coverage value, analytic rows leave the
        // column empty.
        assert_eq!(lines[1].split(',').count(), 10);
        let cov: f64 = lines[1].split(',').nth(9).unwrap().parse().unwrap();
        assert!((0.0..=1.0).contains(&cov));
        assert!(lines[3].ends_with(','));
    }

    #[test]
    fn table_lists_all_series() {
        let tbl = sweep_to_table(&sample_result());
        assert!(tbl.contains("26-approx"));
        assert!(tbl.contains("E-model"));
        assert!(tbl.contains("OPT-analysis"));
        assert!(tbl.lines().count() >= 2);
    }
}
