//! Radio energy accounting (extension; §VII lists "energy saving" as the
//! constraint to optimize next).
//!
//! The paper's network model fixes the energy structure: the *receiving*
//! channel is always on ("the data receiving process consumes a lot less
//! energy than data sending"), the sending channel wakes once per cycle,
//! and a relay transmission is the expensive event. A broadcast therefore
//! costs listening energy proportional to its duration (every node keeps
//! its receiver on until coverage) plus transmission energy proportional
//! to the relay count — which is exactly why minimum-latency scheduling is
//! also an energy optimization.

use mlbs_core::Schedule;
use wsn_topology::Topology;

/// Per-slot/per-event radio costs in arbitrary charge units.
///
/// Defaults are Mica2-flavoured ratios (CC1000-class radio): receive/idle
/// listening ≈ 10 mA·slot normalized to 1.0, transmission ≈ 17 mA
/// plus amplifier ≈ 2.5× listening, beacon reception a fraction of a slot.
#[derive(Clone, Copy, Debug)]
pub struct RadioEnergyModel {
    /// Cost of one slot of idle listening (receiver on, nothing received).
    pub listen_per_slot: f64,
    /// Extra cost of transmitting for one slot.
    pub tx_extra: f64,
    /// Extra cost of actively decoding a received packet.
    pub rx_extra: f64,
}

impl Default for RadioEnergyModel {
    fn default() -> Self {
        RadioEnergyModel {
            listen_per_slot: 1.0,
            tx_extra: 2.5,
            rx_extra: 0.4,
        }
    }
}

/// Energy breakdown of one broadcast.
#[derive(Clone, Debug, PartialEq)]
pub struct EnergyReport {
    /// Listening energy: every node's receiver is on for the whole
    /// broadcast duration.
    pub listening: f64,
    /// Transmission energy across all relays.
    pub transmitting: f64,
    /// Reception energy across all message deliveries.
    pub receiving: f64,
}

impl EnergyReport {
    /// Total charge consumed.
    pub fn total(&self) -> f64 {
        self.listening + self.transmitting + self.receiving
    }

    /// Average charge per node.
    pub fn per_node(&self, n: usize) -> f64 {
        self.total() / n as f64
    }
}

/// Accounts the energy of a (verified) schedule under the model.
///
/// Receptions are counted as *useful* deliveries: each node's first copy.
/// Redundant overhears cost `rx_extra` too — informed neighbors of a
/// sender still decode the packet header before discarding — and are
/// included via the senders' full neighborhoods.
pub fn energy_of_schedule(
    topo: &Topology,
    schedule: &Schedule,
    model: &RadioEnergyModel,
) -> EnergyReport {
    let n = topo.len();
    let duration = schedule.latency() as f64;
    let listening = duration * n as f64 * model.listen_per_slot;
    let transmitting = schedule.transmission_count() as f64 * model.tx_extra;
    let receptions: usize = schedule
        .entries
        .iter()
        .flat_map(|e| e.senders.iter())
        .map(|&u| topo.degree(u))
        .sum();
    EnergyReport {
        listening,
        transmitting,
        receiving: receptions as f64 * model.rx_extra,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use mlbs_core::SearchConfig;
    use wsn_topology::deploy::SyntheticDeployment;

    fn energy_of(alg: Algorithm) -> f64 {
        let (topo, src) = SyntheticDeployment::paper(150).sample(3);
        let cfg = SearchConfig::default();
        // Re-run the scheduler to get the schedule back out.
        let schedule = match alg {
            Algorithm::Layered => wsn_baselines::schedule_26_approx(&topo, src),
            Algorithm::GOpt => {
                mlbs_core::solve_gopt(&topo, src, &wsn_dutycycle::AlwaysAwake, &cfg).schedule
            }
            _ => unreachable!("test uses two algorithms"),
        };
        energy_of_schedule(&topo, &schedule, &RadioEnergyModel::default()).total()
    }

    #[test]
    fn faster_broadcast_costs_less_energy() {
        // Shorter duration ⇒ less always-on listening; the optimum also
        // transmits less. This is the §VII argument made quantitative.
        let baseline = energy_of(Algorithm::Layered);
        let optimal = energy_of(Algorithm::GOpt);
        assert!(
            optimal < baseline,
            "G-OPT energy {optimal} should undercut baseline {baseline}"
        );
    }

    #[test]
    fn report_components_add_up() {
        let (topo, src) = SyntheticDeployment::paper(80).sample(1);
        let s = wsn_baselines::schedule_26_approx(&topo, src);
        let m = RadioEnergyModel::default();
        let r = energy_of_schedule(&topo, &s, &m);
        assert!(r.listening > 0.0 && r.transmitting > 0.0 && r.receiving > 0.0);
        assert!((r.total() - (r.listening + r.transmitting + r.receiving)).abs() < 1e-12);
        assert!(r.per_node(topo.len()) * topo.len() as f64 - r.total() < 1e-9);
    }

    #[test]
    fn listening_scales_with_duration() {
        let (topo, src) = SyntheticDeployment::paper(80).sample(2);
        let s = wsn_baselines::schedule_26_approx(&topo, src);
        let m = RadioEnergyModel::default();
        let r = energy_of_schedule(&topo, &s, &m);
        assert_eq!(
            r.listening,
            s.latency() as f64 * topo.len() as f64 * m.listen_per_slot
        );
    }
}
