//! Fault injection: seeded node-death, link-flap, and burst-loss processes
//! replayed against a running schedule.
//!
//! `lossy` answers "how fragile is a schedule under iid loss"; this module
//! answers the harder operational questions the repair tier exists for:
//! what happens when a relay *dies mid-broadcast*, when a marginal link
//! drops out for a stretch of slots, or when interference bursts push the
//! whole network's loss floor up for a window. A [`FaultScript`] is a
//! deterministic, seeded event list generated once per experiment
//! (order-free per-entity hashing, so the same node dies at the same slot
//! regardless of how the script is consumed); [`replay_faulty`] replays a
//! schedule slot-by-slot under the script and the per-link quality, and
//! its outcome hands the surviving state straight to the repair tier:
//! [`FaultyOutcome::dead`] is exactly the delta `wsn_anytime::reschedule`
//! takes.

use mlbs_core::Schedule;
use wsn_bitset::NodeSet;
use wsn_dutycycle::Slot;
use wsn_topology::{LinkQuality, NodeId, Topology};

/// Order-free hash of `(seed, a, b)` — same shape the link-quality
/// generator uses, so scripts are deterministic per entity, not per
/// iteration order.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut x =
        seed ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A draw in `[0, 1)` from a mixed word.
fn unit(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// One injected fault.
#[derive(Clone, Debug, PartialEq)]
pub enum Fault {
    /// `node` stops transmitting and receiving from slot `at` (inclusive).
    NodeDeath { node: NodeId, at: Slot },
    /// Link `(u, v)` delivers nothing during `[from, until)` — a flap.
    LinkFlap {
        u: NodeId,
        v: NodeId,
        from: Slot,
        until: Slot,
    },
    /// Every delivery carries `extra_loss` additional loss during
    /// `[from, until)` — an interference burst.
    Burst {
        extra_loss: f64,
        from: Slot,
        until: Slot,
    },
}

/// Rates of the seeded fault processes (all per replay horizon).
#[derive(Clone, Copy, Debug)]
pub struct FaultParams {
    /// Probability that a given non-source node dies during the replay.
    pub death_fraction: f64,
    /// Probability that a given flap-prone link (per [`LinkQuality`]'s
    /// flaky marking) flaps during the replay.
    pub flap_fraction: f64,
    /// Length of one flap, in slots.
    pub flap_len: Slot,
    /// Probability that a given burst window carries a burst.
    pub burst_rate: f64,
    /// Additional loss during a burst.
    pub burst_extra_loss: f64,
    /// Length of one burst window, in slots.
    pub burst_len: Slot,
}

impl Default for FaultParams {
    fn default() -> Self {
        FaultParams {
            death_fraction: 0.01,
            flap_fraction: 0.5,
            flap_len: 4,
            burst_rate: 0.1,
            burst_extra_loss: 0.4,
            burst_len: 8,
        }
    }
}

/// A deterministic, seeded event list (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct FaultScript {
    /// The injected faults, in no particular order (the replay indexes
    /// them by slot itself).
    pub events: Vec<Fault>,
}

impl FaultScript {
    /// Generates the three fault processes over `[start, horizon)`:
    /// node deaths (uniform death slot, source exempt), link flaps (only
    /// links `quality` marks flap-prone), and interference bursts (per
    /// window of `burst_len` slots). Deterministic in
    /// `(topo, quality, params, seed)` and order-free per entity.
    pub fn generate(
        topo: &Topology,
        quality: &LinkQuality,
        source: NodeId,
        start: Slot,
        horizon: Slot,
        params: &FaultParams,
        seed: u64,
    ) -> FaultScript {
        let span = horizon.saturating_sub(start).max(1);
        let mut events = Vec::new();
        // Node deaths.
        for u in topo.nodes() {
            if u == source {
                continue;
            }
            let w = mix(seed, 1, u64::from(u.0));
            if unit(w) < params.death_fraction {
                let at = start + mix(seed, 2, u64::from(u.0)) % span;
                events.push(Fault::NodeDeath { node: u, at });
            }
        }
        // Link flaps, one draw per undirected flap-prone edge.
        for u in topo.nodes() {
            for &v in topo.neighbors(u) {
                if u >= v || !quality.is_flaky(topo, u, v) {
                    continue;
                }
                let key = (u64::from(u.0) << 32) | u64::from(v.0);
                if unit(mix(seed, 3, key)) < params.flap_fraction {
                    let from = start + mix(seed, 4, key) % span;
                    events.push(Fault::LinkFlap {
                        u,
                        v,
                        from,
                        until: from + params.flap_len,
                    });
                }
            }
        }
        // Interference bursts, one draw per window.
        if params.burst_len > 0 {
            let windows = span.div_ceil(params.burst_len);
            for w in 0..windows {
                if unit(mix(seed, 5, w)) < params.burst_rate {
                    let from = start + w * params.burst_len;
                    events.push(Fault::Burst {
                        extra_loss: params.burst_extra_loss,
                        from,
                        until: from + params.burst_len,
                    });
                }
            }
        }
        FaultScript { events }
    }

    /// The nodes dead by slot `at` (inclusive).
    pub fn dead_by(&self, at: Slot) -> Vec<NodeId> {
        let mut dead: Vec<NodeId> = self
            .events
            .iter()
            .filter_map(|e| match e {
                Fault::NodeDeath { node, at: t } if *t <= at => Some(*node),
                _ => None,
            })
            .collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }
}

/// Outcome of one faulty replay.
#[derive(Clone, Debug)]
pub struct FaultyOutcome {
    /// Nodes that received the message.
    pub covered: NodeSet,
    /// Nodes dead by the end of the replay — feed this to
    /// `wsn_anytime::ChurnDelta` to repair the schedule.
    pub dead: Vec<NodeId>,
    /// Deliveries dropped by loss, flaps, or bursts.
    pub lost_deliveries: usize,
    /// Transmissions skipped because the sender was dead or never covered.
    pub stranded_transmissions: usize,
}

impl FaultyOutcome {
    /// Fraction of *alive* nodes covered (dead nodes are owed nothing).
    pub fn alive_coverage(&self, n: usize) -> f64 {
        let alive = n - self.dead.len();
        let covered_alive = self
            .covered
            .iter()
            .filter(|&u| !self.dead.iter().any(|d| d.idx() == u))
            .count();
        covered_alive as f64 / alive.max(1) as f64
    }
}

/// Replays `schedule` under per-link `quality` with `script`'s faults
/// applied slot-by-slot: dead senders skip their slots (and dead nodes
/// stop receiving), flapped links deliver nothing while down, bursts add
/// loss to every delivery in their window. Repeat slots fire the entry
/// once per occupied slot, so retransmissions planned by the reliability
/// tier actually ride out flaps and bursts here. Same draw discipline as
/// the lossy replay: one draw per candidate delivery, deterministic in
/// `seed`.
pub fn replay_faulty(
    topo: &Topology,
    schedule: &Schedule,
    quality: &LinkQuality,
    script: &FaultScript,
    seed: u64,
) -> FaultyOutcome {
    let n = topo.len();
    let mut rng = seed ^ 0x00fa_0175_eed5_u64;
    let mut covered = NodeSet::new(n);
    covered.insert(schedule.source.idx());
    let mut dead = NodeSet::new(n);
    let mut lost = 0;
    let mut stranded = 0;

    for (ei, entry) in schedule.entries.iter().enumerate() {
        for step in 0..schedule.repeat_of(ei) {
            let t = entry.slot + u64::from(step);
            // Fault state at slot t.
            let mut burst = 0.0f64;
            for e in &script.events {
                match e {
                    Fault::Burst {
                        extra_loss,
                        from,
                        until,
                    } if (*from..*until).contains(&t) => burst = burst.max(*extra_loss),
                    Fault::NodeDeath { node, at } if *at <= t => {
                        dead.insert(node.idx());
                    }
                    _ => {}
                }
            }
            for &u in &entry.senders {
                if dead.contains(u.idx()) || !covered.contains(u.idx()) {
                    stranded += 1;
                    continue;
                }
                for (k, &v) in topo.neighbors(u).iter().enumerate() {
                    if covered.contains(v.idx()) || dead.contains(v.idx()) {
                        continue;
                    }
                    let flapped = script.events.iter().any(|e| {
                        matches!(e, Fault::LinkFlap { u: a, v: b, from, until }
                            if (*from..*until).contains(&t)
                            && ((*a == u && *b == v) || (*a == v && *b == u)))
                    });
                    let loss = if flapped {
                        1.0
                    } else {
                        (1.0 - quality.delivery_at(u, k) + burst).min(1.0)
                    };
                    let draw = unit({
                        rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
                        let mut z = rng;
                        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                        z ^ (z >> 31)
                    });
                    if draw < loss {
                        lost += 1;
                    } else {
                        covered.insert(v.idx());
                    }
                }
            }
        }
    }
    let mut dead_list: Vec<NodeId> = dead.iter().map(|u| NodeId(u as u32)).collect();
    dead_list.sort_unstable();
    FaultyOutcome {
        covered,
        dead: dead_list,
        lost_deliveries: lost,
        stranded_transmissions: stranded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_topology::deploy::SyntheticDeployment;
    use wsn_topology::LinkQualityParams;

    fn instance(n: usize, seed: u64) -> (Topology, NodeId, Schedule) {
        let (topo, src) = SyntheticDeployment::paper(n).sample(seed);
        let s = wsn_baselines::schedule_26_approx(&topo, src);
        (topo, src, s)
    }

    #[test]
    fn script_is_deterministic_and_spares_the_source() {
        let (topo, src, s) = instance(150, 1);
        let q = LinkQuality::synthetic(&topo, &LinkQualityParams::default(), 5);
        let horizon = s.latency() + 1;
        let p = FaultParams {
            death_fraction: 0.2,
            ..FaultParams::default()
        };
        let a = FaultScript::generate(&topo, &q, src, s.start, horizon, &p, 9);
        let b = FaultScript::generate(&topo, &q, src, s.start, horizon, &p, 9);
        assert_eq!(a.events, b.events);
        assert!(!a.events.is_empty());
        assert!(a.dead_by(horizon).iter().all(|&u| u != src));
    }

    #[test]
    fn no_faults_no_loss_is_full_coverage() {
        let (topo, _, s) = instance(100, 2);
        let q = LinkQuality::uniform(&topo, 1.0);
        let out = replay_faulty(&topo, &s, &q, &FaultScript::default(), 3);
        assert!(out.covered.is_full());
        assert_eq!(out.lost_deliveries, 0);
        assert!(out.dead.is_empty());
    }

    #[test]
    fn early_relay_death_strands_its_subtree() {
        let (topo, src, s) = instance(150, 3);
        let q = LinkQuality::uniform(&topo, 1.0);
        // Kill an early relay (not the source) before it fires.
        let victim = s
            .entries
            .iter()
            .flat_map(|e| e.senders.iter().copied())
            .find(|&u| u != src)
            .unwrap();
        let script = FaultScript {
            events: vec![Fault::NodeDeath {
                node: victim,
                at: 0,
            }],
        };
        let out = replay_faulty(&topo, &s, &q, &script, 4);
        assert_eq!(out.dead, vec![victim]);
        assert!(
            !out.covered.is_full(),
            "a silenced relay must strand someone"
        );
        assert!(out.stranded_transmissions > 0 || out.covered.len() < topo.len());
    }

    #[test]
    fn bursts_and_flaps_cost_coverage() {
        let (topo, src, s) = instance(150, 4);
        let q = LinkQuality::synthetic(&topo, &LinkQualityParams::default(), 6);
        let horizon = s.latency() + 1;
        let quiet = replay_faulty(&topo, &s, &q, &FaultScript::default(), 7);
        let stormy_script = FaultScript::generate(
            &topo,
            &q,
            src,
            s.start,
            horizon,
            &FaultParams {
                death_fraction: 0.0,
                flap_fraction: 1.0,
                flap_len: horizon,
                burst_rate: 1.0,
                burst_extra_loss: 0.5,
                burst_len: 4,
            },
            8,
        );
        let stormy = replay_faulty(&topo, &s, &q, &stormy_script, 7);
        assert!(
            stormy.covered.len() < quiet.covered.len(),
            "storm {} vs quiet {}",
            stormy.covered.len(),
            quiet.covered.len()
        );
    }

    #[test]
    fn dead_set_feeds_repair() {
        use wsn_anytime::{reschedule, AnytimeConfig, Budget, ChurnDelta};
        use wsn_dutycycle::AlwaysAwake;
        use wsn_phy::ProtocolModel;
        let (topo, src, s) = instance(150, 5);
        let q = LinkQuality::uniform(&topo, 1.0);
        let victim = s
            .entries
            .iter()
            .flat_map(|e| e.senders.iter().copied())
            .find(|&u| u != src)
            .unwrap();
        let script = FaultScript {
            events: vec![Fault::NodeDeath {
                node: victim,
                at: 0,
            }],
        };
        let out = replay_faulty(&topo, &s, &q, &script, 6);
        let cfg = AnytimeConfig {
            budget: Budget::Iterations(500),
            ..AnytimeConfig::default()
        };
        let rep = reschedule(
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &s,
            &ChurnDelta::deaths(out.dead),
            &cfg,
        );
        rep.outcome
            .schedule
            .verify_covering_with_model(&topo, &AlwaysAwake, &ProtocolModel, Some(&rep.mask))
            .unwrap();
    }
}
