//! The unified scheduler registry and single-instance runner.

use mlbs_core::{
    bounds, run_pipeline_model, solve_gopt_model, solve_opt_model, BroadcastState, EModel,
    EModelSelector, MaxReceiversSelector, PipelineConfig, SearchConfig,
};
use wsn_baselines::{schedule_cds_layered, schedule_layered_with, LayeredMode};
use wsn_dutycycle::{AlwaysAwake, Slot, WakeSchedule, WindowedRandom};
use wsn_phy::{PhyModel, PhyModelSpec};
use wsn_topology::{NodeId, Topology};

/// Timing regime of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Regime {
    /// Round-based synchronous system.
    Sync,
    /// Duty-cycle system with cycle rate `r` slots (the paper evaluates
    /// `r = 10` and `r = 50`).
    Duty { rate: u32 },
}

impl Regime {
    /// Cycle rate (1 for the synchronous system).
    pub fn rate(&self) -> u32 {
        match self {
            Regime::Sync => 1,
            Regime::Duty { rate } => *rate,
        }
    }
}

/// Every scheduler the evaluation and the ablations exercise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// BFS-layered baseline: the 26-approximation (sync) / the
    /// 17-approximation (duty-cycle), per §V-A.
    Layered,
    /// Layered with per-slot re-coloring (ablation: barrier kept, stale
    /// coloring removed).
    LayeredRecolor,
    /// Fully rigid TDMA-like layered baseline (ablation: the weakest
    /// plausible reading of the prior art).
    LayeredPrecomputed,
    /// CDS-restricted layered baseline (extension; sync only).
    CdsLayered,
    /// Pipelined greedy without global awareness (ablation: pipeline kept,
    /// selection naive).
    GreedyPipeline,
    /// The paper's practical scheme: pipelined + E-model selection
    /// (Eq. 10).
    EModelPipeline,
    /// The localized (distributed) protocol of wsn-distributed — the
    /// paper's §VII future-work direction (extension).
    Localized,
    /// G-OPT (Eq. 7/8).
    GOpt,
    /// OPT (Eq. 5/6), possibly beam-limited by the search config.
    Opt,
    /// Anytime tabu/PARTIALCOL local search (wsn-anytime): greedy seed
    /// plus budgeted schedule-length compression. The sweep harness runs
    /// it under a deterministic iteration budget derived from
    /// [`SearchConfig::max_states`] so results stay bit-reproducible.
    Anytime,
}

impl Algorithm {
    /// `true` when the scheduler is conflict-model-aware: it colors on the
    /// instance's [`PhyModel`] conflict graph and packs channels under
    /// multi-channel models. The layered/CDS/localized baselines are
    /// defined on the protocol model only.
    pub fn supports_models(&self) -> bool {
        matches!(
            self,
            Algorithm::GreedyPipeline
                | Algorithm::EModelPipeline
                | Algorithm::GOpt
                | Algorithm::Opt
                | Algorithm::Anytime
        )
    }

    /// Display name matching the paper's figure legends where applicable.
    pub fn name(&self, regime: Regime) -> &'static str {
        match (self, regime) {
            (Algorithm::Layered, Regime::Sync) => "26-approx",
            (Algorithm::Layered, Regime::Duty { .. }) => "17-approx",
            (Algorithm::LayeredRecolor, _) => "layered-recolor",
            (Algorithm::LayeredPrecomputed, _) => "layered-precomputed",
            (Algorithm::CdsLayered, _) => "cds-layered",
            (Algorithm::GreedyPipeline, _) => "greedy-pipeline",
            (Algorithm::EModelPipeline, _) => "E-model",
            (Algorithm::Localized, _) => "localized",
            (Algorithm::GOpt, _) => "G-OPT",
            (Algorithm::Opt, _) => "OPT",
            (Algorithm::Anytime, _) => "anytime",
        }
    }

    /// The set the paper's Figures 3/4/6 plot.
    pub fn paper_set() -> [Algorithm; 4] {
        [
            Algorithm::Layered,
            Algorithm::Opt,
            Algorithm::GOpt,
            Algorithm::EModelPipeline,
        ]
    }
}

/// Metrics from one verified run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// End-to-end latency in rounds/slots (`t_e − t_s + 1`).
    pub latency: Slot,
    /// Number of transmissions.
    pub transmissions: usize,
    /// Source eccentricity of the instance (the `d` of the bounds).
    pub eccentricity: u32,
    /// `false` when a search hit a cap and returned a possibly suboptimal
    /// schedule; `None` for non-search algorithms.
    pub exact: Option<bool>,
    /// Search statistics (state counts, phase-fold classes, dominance
    /// prunes, …); `None` for non-search algorithms. This is how the
    /// claims binary threads per-run counters into `BENCH_search.json`.
    pub search_stats: Option<mlbs_core::SearchStats>,
    /// Theorem 1 bound for this instance and regime.
    pub opt_analysis: Slot,
    /// The baseline's analytical bound for this instance and regime
    /// (`26·d` sync, `17·k·d` duty).
    pub baseline_bound: Slot,
    /// Mean coverage of the schedule under the harness's reference loss
    /// regime ([`COVERAGE_LOSS`] iid per-delivery loss,
    /// [`COVERAGE_TRIALS`] seeded replays) — the §VI fragility of this
    /// run's schedule, reported first-class so reliability shows up in
    /// every sweep. `1.0` exactly for loss-proof schedules.
    pub mean_coverage: f64,
    /// The anytime tier's improving-bound trace (elapsed ms + move count
    /// per accepted incumbent); `None` for every other algorithm. This is
    /// what [`crate::traces_to_csv`] flattens so time-to-quality curves
    /// are plottable without re-running.
    pub trace: Option<Vec<wsn_anytime::TracePoint>>,
    /// Warm-start cache hits this run charged to the caller's
    /// [`AnytimeExec`] (0 or 1 today; 0 for non-anytime algorithms).
    pub cache_hits: u64,
    /// Warm-start cache misses this run charged to the caller's
    /// [`AnytimeExec`].
    pub cache_misses: u64,
}

/// Per-delivery loss probability of the reference coverage metric.
pub const COVERAGE_LOSS: f64 = 0.1;
/// Seeded lossy replays averaged into [`RunResult::mean_coverage`].
pub const COVERAGE_TRIALS: usize = 8;

/// Execution context for the anytime tier inside the runner: portfolio
/// width and the warm-start schedule cache. The plain entry points
/// ([`run_instance`] … [`run_instance_built`]) use a fresh single-chain
/// context per call, which is bit-identical to the pre-portfolio driver;
/// hot loops that re-solve held instances (sweep workers, the claims
/// bench) hold one `AnytimeExec` and thread it through
/// [`run_instance_exec`] so repeat solves warm-start from their previous
/// incumbent.
#[derive(Debug, Default)]
pub struct AnytimeExec {
    /// Portfolio chains racing per anytime solve (`0`/`1` = the serial
    /// chain). Under the sweep's iteration budgets the portfolio is
    /// bit-reproducible at any fixed width and never loses to width 1.
    pub threads: usize,
    /// Warm-start cache keyed on `(topology token, model fingerprint,
    /// source)`; hits feed the legalizer the previous incumbent as hints.
    pub cache: wsn_anytime::ScheduleCache,
}

impl AnytimeExec {
    /// A context running `threads` portfolio chains with an empty cache.
    pub fn with_threads(threads: usize) -> AnytimeExec {
        AnytimeExec {
            threads,
            cache: wsn_anytime::ScheduleCache::new(),
        }
    }
}

/// Runs `algorithm` on one instance. The produced schedule is always passed
/// through the independent verifier; a verification failure is a bug and
/// panics.
///
/// `wake_seed` parameterizes the duty-cycle schedule (ignored for
/// [`Regime::Sync`]); all algorithms given the same seed see the same
/// wake-ups, which is what makes per-instance comparisons meaningful.
pub fn run_instance(
    topo: &Topology,
    source: NodeId,
    regime: Regime,
    algorithm: Algorithm,
    wake_seed: u64,
    search: &SearchConfig,
) -> RunResult {
    run_instance_with(
        topo,
        source,
        regime,
        algorithm,
        wake_seed,
        search,
        &mut BroadcastState::new(),
    )
}

/// As [`run_instance`], reusing a caller-provided [`BroadcastState`]. The
/// sweep workers hold one substrate each and thread it through every
/// instance instead of allocating scratch per run.
pub fn run_instance_with(
    topo: &Topology,
    source: NodeId,
    regime: Regime,
    algorithm: Algorithm,
    wake_seed: u64,
    search: &SearchConfig,
    state: &mut BroadcastState,
) -> RunResult {
    run_instance_model(
        topo,
        source,
        regime,
        algorithm,
        wake_seed,
        search,
        &PhyModelSpec::protocol(),
        state,
    )
}

/// As [`run_instance_with`], under an arbitrary conflict-model spec
/// ([`PhyModelSpec`] — protocol, SINR, K channels). The model is built per
/// instance (SINR gain tables and degenerate parameters derive from the
/// topology) and the produced schedule is verified under it.
///
/// # Panics
///
/// Panics when `algorithm` is a protocol-only baseline
/// ([`Algorithm::supports_models`] is `false`) and the spec is not the
/// default single-channel protocol model.
#[allow(clippy::too_many_arguments)]
pub fn run_instance_model(
    topo: &Topology,
    source: NodeId,
    regime: Regime,
    algorithm: Algorithm,
    wake_seed: u64,
    search: &SearchConfig,
    spec: &PhyModelSpec,
    state: &mut BroadcastState,
) -> RunResult {
    run_instance_built(
        topo,
        source,
        regime,
        algorithm,
        wake_seed,
        search,
        &spec.build(topo),
        state,
    )
}

/// As [`run_instance_exec`], with a fresh single-chain [`AnytimeExec`] —
/// the anytime tier runs the serial chain, bit-identical to
/// [`wsn_anytime::solve_anytime`] under the same derived config.
#[allow(clippy::too_many_arguments)]
pub fn run_instance_built(
    topo: &Topology,
    source: NodeId,
    regime: Regime,
    algorithm: Algorithm,
    wake_seed: u64,
    search: &SearchConfig,
    model: &PhyModel,
    state: &mut BroadcastState,
) -> RunResult {
    run_instance_exec(
        topo,
        source,
        regime,
        algorithm,
        wake_seed,
        search,
        model,
        state,
        &mut AnytimeExec::default(),
    )
}

/// As [`run_instance_model`], with an already-built [`PhyModel`] and a
/// caller-held [`AnytimeExec`] — hot loops that run several algorithms on
/// one `(instance, model)` pair (the sweep workers) build the model once
/// (SINR gain tables cost `O(n²)`) and thread model, substrate and
/// anytime execution context through every algorithm.
#[allow(clippy::too_many_arguments)]
pub fn run_instance_exec(
    topo: &Topology,
    source: NodeId,
    regime: Regime,
    algorithm: Algorithm,
    wake_seed: u64,
    search: &SearchConfig,
    model: &PhyModel,
    state: &mut BroadcastState,
    exec: &mut AnytimeExec,
) -> RunResult {
    assert!(
        model.is_default_protocol() || algorithm.supports_models(),
        "{algorithm:?} is defined on the protocol model only"
    );
    match regime {
        Regime::Sync => run_with(
            topo,
            source,
            regime,
            algorithm,
            &AlwaysAwake,
            model,
            search,
            state,
            exec,
        ),
        Regime::Duty { rate } => {
            let wake = WindowedRandom::new(topo.len(), rate, wake_seed);
            run_with(
                topo, source, regime, algorithm, &wake, model, search, state, exec,
            )
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_with<S: WakeSchedule + Sync>(
    topo: &Topology,
    source: NodeId,
    regime: Regime,
    algorithm: Algorithm,
    wake: &S,
    model: &PhyModel,
    search: &SearchConfig,
    state: &mut BroadcastState,
    exec: &mut AnytimeExec,
) -> RunResult {
    let start = search.start_from;
    let mut exact = None;
    let mut search_stats = None;
    let mut trace = None;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let schedule = match algorithm {
        Algorithm::Layered => {
            schedule_layered_with(topo, source, wake, start, LayeredMode::FixedColors, state)
        }
        Algorithm::LayeredRecolor => {
            schedule_layered_with(topo, source, wake, start, LayeredMode::Recolor, state)
        }
        Algorithm::LayeredPrecomputed => {
            schedule_layered_with(topo, source, wake, start, LayeredMode::Precomputed, state)
        }
        Algorithm::CdsLayered => {
            assert!(
                matches!(regime, Regime::Sync),
                "the CDS baseline is defined for the synchronous system"
            );
            schedule_cds_layered(topo, source)
        }
        Algorithm::GreedyPipeline => run_pipeline_model(
            topo,
            source,
            wake,
            model,
            &mut MaxReceiversSelector,
            &PipelineConfig { start_from: start },
            state,
        ),
        Algorithm::EModelPipeline => {
            let em = EModel::build(topo, wake);
            run_pipeline_model(
                topo,
                source,
                wake,
                model,
                &mut EModelSelector::new(&em),
                &PipelineConfig { start_from: start },
                state,
            )
        }
        Algorithm::Localized => {
            let em = EModel::build(topo, wake);
            wsn_distributed::localized_broadcast_with(topo, source, wake, &em, start, state)
                .schedule
        }
        Algorithm::GOpt => {
            let out = solve_gopt_model(topo, source, wake, model, search, state);
            exact = Some(out.exact);
            search_stats = Some(out.stats);
            out.schedule
        }
        Algorithm::Opt => {
            let out = solve_opt_model(topo, source, wake, model, search, state);
            exact = Some(out.exact);
            search_stats = Some(out.stats);
            out.schedule
        }
        Algorithm::Anytime => {
            // Deterministic iteration budget (never wall-clock here: the
            // sweep guarantees thread-count-independent results) and a
            // seed derived from stable instance features only —
            // `topo.token()` is an allocation counter and must not leak
            // into decisions.
            let cfg = wsn_anytime::AnytimeConfig {
                budget: wsn_anytime::Budget::Iterations(
                    (search.max_states as u64 / 16).max(10_000),
                ),
                seed: 0x1CC5_2012 ^ u64::from(source.0) ^ ((topo.len() as u64) << 32),
                start_from: start,
                ..wsn_anytime::AnytimeConfig::default()
            };
            let port = wsn_anytime::Portfolio::with_config(cfg, exec.threads.max(1));
            let (h0, m0) = (exec.cache.hits(), exec.cache.misses());
            let out = port.solve_cached(topo, source, wake, model, &mut exec.cache);
            cache_hits = exec.cache.hits() - h0;
            cache_misses = exec.cache.misses() - m0;
            exact = Some(out.proved_optimal);
            trace = Some(out.trace);
            out.schedule
        }
    };

    schedule
        .verify_with_model(topo, wake, model)
        .unwrap_or_else(|e| {
            panic!(
                "{} produced an invalid schedule: {e}",
                algorithm.name(regime)
            )
        });

    let ecc = bounds::source_eccentricity(topo, source);
    let (opt_analysis, baseline_bound) = match regime {
        Regime::Sync => (bounds::opt_bound_sync(ecc), bounds::bound_26_approx(ecc)),
        Regime::Duty { rate } => {
            let k = bounds::max_neighbor_wait(topo, wake);
            (
                bounds::opt_bound_duty(ecc, rate),
                bounds::bound_17_approx(ecc, k),
            )
        }
    };

    // Reference coverage metric: seeded on stable instance features only
    // (like the anytime seed above — `topo.token()` must not leak into
    // results).
    let coverage_seed = 0xC0FE_11A6 ^ u64::from(source.0) ^ ((topo.len() as u64) << 32);
    let mean_coverage = crate::lossy::mean_coverage(
        topo,
        &schedule,
        COVERAGE_LOSS,
        COVERAGE_TRIALS,
        coverage_seed,
    );

    RunResult {
        latency: schedule.latency(),
        transmissions: schedule.transmission_count(),
        eccentricity: ecc,
        exact,
        search_stats,
        opt_analysis,
        baseline_bound,
        mean_coverage,
        trace,
        cache_hits,
        cache_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_topology::deploy;

    fn small_instance() -> (Topology, NodeId) {
        // Seed chosen (against the rand shim's stream) so the E-model
        // heuristic beats the layered baseline on this instance; the
        // heuristic offers no per-instance guarantee, only the trend.
        deploy::SyntheticDeployment::paper(60).sample(4)
    }

    #[test]
    fn all_sync_algorithms_run_and_verify() {
        let (topo, src) = small_instance();
        let cfg = SearchConfig::default();
        for alg in [
            Algorithm::Layered,
            Algorithm::LayeredRecolor,
            Algorithm::CdsLayered,
            Algorithm::GreedyPipeline,
            Algorithm::EModelPipeline,
            Algorithm::GOpt,
            Algorithm::Opt,
            Algorithm::Anytime,
        ] {
            let r = run_instance(&topo, src, Regime::Sync, alg, 0, &cfg);
            assert!(r.latency >= 1, "{alg:?}");
            assert!((5..=8).contains(&r.eccentricity));
        }
    }

    #[test]
    fn anytime_is_sandwiched_and_deterministic() {
        // OPT ≤ anytime (verified schedules only) and anytime never loses
        // to the greedy layered baseline it seeds against; identical
        // iteration budgets reproduce identical results.
        let cfg = SearchConfig::default();
        for seed in 0..4u64 {
            let (topo, src) = deploy::SyntheticDeployment::paper(60).sample(seed);
            let opt = run_instance(&topo, src, Regime::Sync, Algorithm::Opt, 0, &cfg);
            let any = run_instance(&topo, src, Regime::Sync, Algorithm::Anytime, 0, &cfg);
            let again = run_instance(&topo, src, Regime::Sync, Algorithm::Anytime, 0, &cfg);
            if opt.exact == Some(true) {
                assert!(opt.latency <= any.latency, "seed {seed}: OPT > anytime");
            }
            assert_eq!(any.latency, again.latency, "seed {seed}: nondeterministic");
            assert_eq!(any.transmissions, again.transmissions);
        }
    }

    #[test]
    fn duty_algorithms_run_and_verify() {
        let (topo, src) = small_instance();
        let cfg = SearchConfig {
            max_states: 200_000,
            ..SearchConfig::default()
        };
        for alg in [
            Algorithm::Layered,
            Algorithm::GreedyPipeline,
            Algorithm::EModelPipeline,
            Algorithm::GOpt,
            Algorithm::Anytime,
        ] {
            let r = run_instance(&topo, src, Regime::Duty { rate: 10 }, alg, 7, &cfg);
            assert!(r.latency >= 1, "{alg:?}");
        }
    }

    #[test]
    fn optimality_ordering_holds() {
        // OPT ≤ G-OPT ≤ E-model per instance (hard guarantees: OPT's
        // branch set ⊆-dominates G-OPT's, and G-OPT minimizes exactly over
        // the classes the E-model pipeline picks heuristically), and
        // everything ≤ its analytical bound per Theorem 1. The heuristic
        // E-model carries no per-instance guarantee against the layered
        // baseline, so that comparison is aggregated over a seed set
        // instead of pinned to one RNG-stream-sensitive instance.
        let cfg = SearchConfig::default();
        let mut em_total = 0u64;
        let mut base_total = 0u64;
        for seed in 0..6u64 {
            let (topo, src) = deploy::SyntheticDeployment::paper(60).sample(seed);
            let opt = run_instance(&topo, src, Regime::Sync, Algorithm::Opt, 0, &cfg);
            let gopt = run_instance(&topo, src, Regime::Sync, Algorithm::GOpt, 0, &cfg);
            let em = run_instance(&topo, src, Regime::Sync, Algorithm::EModelPipeline, 0, &cfg);
            let base = run_instance(&topo, src, Regime::Sync, Algorithm::Layered, 0, &cfg);
            assert!(opt.latency <= gopt.latency, "seed {seed}: OPT > G-OPT");
            if gopt.exact == Some(true) {
                assert!(gopt.latency <= em.latency, "seed {seed}: G-OPT > E-model");
            }
            if opt.exact == Some(true) {
                assert!(opt.latency <= opt.opt_analysis, "Theorem 1 violated");
            }
            em_total += em.latency;
            base_total += base.latency;
        }
        assert!(
            em_total <= base_total,
            "E-model ({em_total}) should beat the layered baseline ({base_total}) on average"
        );
    }

    #[test]
    fn anytime_portfolio_never_loses_and_cache_warm_starts() {
        // The exec path: a width-2 portfolio under the sweep's iteration
        // budget must never return a worse latency than the serial chain
        // (worker 0 is unsalted), and a second solve of the held instance
        // through the same exec must hit the cache without losing ground.
        let (topo, src) = small_instance();
        let cfg = SearchConfig::default();
        let model = PhyModelSpec::protocol().build(&topo);
        let serial = run_instance(&topo, src, Regime::Sync, Algorithm::Anytime, 0, &cfg);
        let mut exec = AnytimeExec::with_threads(2);
        let mut state = BroadcastState::new();
        let port = run_instance_exec(
            &topo,
            src,
            Regime::Sync,
            Algorithm::Anytime,
            0,
            &cfg,
            &model,
            &mut state,
            &mut exec,
        );
        assert!(port.latency <= serial.latency, "portfolio lost to serial");
        assert_eq!(exec.cache.misses(), 1);
        let warm = run_instance_exec(
            &topo,
            src,
            Regime::Sync,
            Algorithm::Anytime,
            0,
            &cfg,
            &model,
            &mut state,
            &mut exec,
        );
        assert_eq!(exec.cache.hits(), 1);
        assert!(warm.latency <= port.latency, "warm start lost ground");
    }

    #[test]
    fn paper_names() {
        assert_eq!(Algorithm::Layered.name(Regime::Sync), "26-approx");
        assert_eq!(
            Algorithm::Layered.name(Regime::Duty { rate: 10 }),
            "17-approx"
        );
        assert_eq!(Algorithm::EModelPipeline.name(Regime::Sync), "E-model");
    }

    #[test]
    fn duty_latency_dominates_sync() {
        let (topo, src) = small_instance();
        let cfg = SearchConfig::default();
        let sync = run_instance(&topo, src, Regime::Sync, Algorithm::EModelPipeline, 3, &cfg);
        let duty = run_instance(
            &topo,
            src,
            Regime::Duty { rate: 10 },
            Algorithm::EModelPipeline,
            3,
            &cfg,
        );
        assert!(duty.latency >= sync.latency);
    }
}
