//! Streaming summary statistics.

/// Mean / standard deviation / extremes over a stream of samples
/// (Welford's online algorithm, so a million-sample sweep needs no
/// buffering).
#[derive(Clone, Debug)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    /// Same as [`Summary::new`] — keeps `.or_default()` bucket creation
    /// from smuggling in `min = 0.0` instead of the empty sentinel.
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary (used when workers keep local summaries).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 for < 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std dev of this classic dataset is ~2.138.
        assert!((s.std_dev() - 2.1380899352993947).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.std_dev() - whole.std_dev()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn empty_and_single() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        // `or_default()` bucket creation must match `new()`: a default
        // summary carries the empty sentinels, not zeros, so the first
        // pushed sample sets `min` correctly.
        let mut d = Summary::default();
        d.push(8.0);
        assert_eq!(d.min(), 8.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        let mut one = Summary::new();
        one.push(3.5);
        assert_eq!(one.mean(), 3.5);
        assert_eq!(one.std_dev(), 0.0);
        let mut merged = Summary::new();
        merged.merge(&one);
        assert_eq!(merged.count(), 1);
    }
}
