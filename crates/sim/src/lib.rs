//! Simulation and experiment harness.
//!
//! Reproduces the paper's custom-simulator methodology (§V): draw
//! eccentricity-constrained uniform deployments at a sweep of densities,
//! run every scheduler on the *same* instances (same topology, same source,
//! same wake schedules), verify each produced schedule independently, and
//! aggregate latency statistics per algorithm and density.
//!
//! * [`Algorithm`] — the unified scheduler registry (baselines, OPT, G-OPT,
//!   E-model, ablation variants);
//! * [`Regime`] — round-based synchronous vs duty-cycle with rate `r`;
//! * [`run_instance`] — one (topology, source, regime, algorithm) run with
//!   verification and metric extraction;
//! * [`Sweep`] — the Figure 3/4/6 experiment: densities × instances ×
//!   algorithms, fanned out over worker threads (results are independent
//!   of worker count — the guide's "parallelize the embarrassingly
//!   parallel outer loop" rule);
//! * [`csv`] — plain-text emission for EXPERIMENTS.md and plotting.
//!
//! Determinism: every instance is derived from `(master_seed, nodes,
//! instance_index)` via SplitMix64, so a sweep is reproducible to the bit
//! regardless of thread scheduling.

mod algorithm;
mod energy;
mod estimator;
mod fault;
mod lossy;
mod stats;
mod sweep;

pub mod csv;

pub use algorithm::{
    run_instance, run_instance_built, run_instance_exec, run_instance_model, run_instance_with,
    Algorithm, AnytimeExec, Regime, RunResult, COVERAGE_LOSS, COVERAGE_TRIALS,
};
pub use csv::{sweep_to_csv, sweep_to_table, traces_to_csv};
pub use energy::{energy_of_schedule, EnergyReport, RadioEnergyModel};
pub use estimator::{replan_on_drift, simulate_acks, DriftReplan, LinkEstimator};
pub use fault::{replay_faulty, Fault, FaultParams, FaultScript, FaultyOutcome};
pub use lossy::{
    mean_coverage, mean_coverage_quality, replay_lossy, replay_lossy_quality, LossyOutcome,
};
pub use stats::Summary;
pub use sweep::{AlgorithmSummary, Sweep, SweepPointResult, SweepResult, TraceRow};
pub use wsn_phy::PhyModelSpec;

/// Derives a stream seed from a master seed and context labels
/// (SplitMix64 over the mixed words).
pub fn derive_seed(master: u64, a: u64, b: u64) -> u64 {
    let mut x =
        master ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_differ_across_context() {
        let s = derive_seed(42, 1, 2);
        assert_ne!(s, derive_seed(42, 1, 3));
        assert_ne!(s, derive_seed(42, 2, 2));
        assert_ne!(s, derive_seed(43, 1, 2));
        assert_eq!(s, derive_seed(42, 1, 2), "deterministic");
    }
}
