//! Online link-quality estimation from simulated ACK streams.
//!
//! The reliability planner provisions repeats against an *assumed*
//! [`LinkQuality`]; deployments drift. This module closes the loop the way
//! transport-wide congestion control (TWCC) does on the web: receivers
//! batch per-packet feedback, the sender keeps a *windowed* history per
//! link, and two signals are fused — a loss-based estimate (ACKed fraction
//! of the last `window` attempts) and a delay-based trend (EWMA of
//! reported ACK delay, rising delay discounting the estimate before losses
//! materialize). When the fused estimate drifts past a threshold from the
//! assumption the schedule was planned under, [`LinkEstimator::drift`]
//! crosses the repair trigger and the caller re-plans repeats (or
//! reschedules) against [`LinkEstimator::to_quality`].
//!
//! Everything is deterministic: [`simulate_acks`] replays a schedule
//! against the *true* quality with seeded draws and feeds the estimator
//! the resulting ACK stream, standing in for the radio.

use mlbs_core::Schedule;
use wsn_anytime::{plan_repeats, reschedule_cached, AnytimeConfig, ChurnDelta, ScheduleCache};
use wsn_dutycycle::WakeSchedule;
use wsn_phy::ConflictModel;
use wsn_topology::{LinkQuality, NodeId, Topology};

/// SplitMix64 step for the simulated ACK draws.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A draw in `[0, 1)`.
fn unit(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// Windowed per-link attempt history plus a delay EWMA (see module docs).
///
/// Per directed CSR link slot the estimator keeps the last `window`
/// attempt outcomes as a bitmask plus an attempt count, and an EWMA of
/// the ACK delay in slots. Storage is parallel to the topology's CSR
/// neighbor array, the same layout [`LinkQuality`] uses.
#[derive(Clone, Debug)]
pub struct LinkEstimator {
    /// Last-`window` outcomes per directed link, newest bit = bit 0.
    history: Vec<u64>,
    /// Attempts observed per directed link (saturating at `window`).
    seen: Vec<u32>,
    /// EWMA of ACK delay (slots) per directed link.
    delay: Vec<f64>,
    /// CSR row offsets.
    offsets: Vec<u32>,
    window: u32,
    /// Delay EWMA smoothing factor.
    alpha: f64,
    /// Delay discount strength: estimates shrink by
    /// `1 / (1 + beta · max(0, delay − 1))`.
    beta: f64,
}

impl LinkEstimator {
    /// A fresh estimator over `topo`'s links with the given attempt
    /// window (clamped to `1..=64`).
    pub fn new(topo: &Topology, window: u32) -> LinkEstimator {
        let window = window.clamp(1, 64);
        let n = topo.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut slots = 0usize;
        for u in topo.nodes() {
            slots += topo.neighbors(u).len();
            offsets.push(slots as u32);
        }
        LinkEstimator {
            history: vec![0; slots],
            seen: vec![0; slots],
            delay: vec![1.0; slots],
            offsets,
            window,
            alpha: 0.2,
            beta: 0.05,
        }
    }

    fn slot_of(&self, topo: &Topology, u: NodeId, v: NodeId) -> usize {
        let k = topo
            .neighbors(u)
            .binary_search(&v)
            .expect("estimator requires an existing link");
        self.offsets[u.idx()] as usize + k
    }

    /// Feeds one attempt over `u → v`: whether the ACK arrived, and the
    /// reported ACK delay in slots (ignored for lost attempts).
    pub fn observe(
        &mut self,
        topo: &Topology,
        u: NodeId,
        v: NodeId,
        acked: bool,
        delay_slots: f64,
    ) {
        let s = self.slot_of(topo, u, v);
        self.history[s] = (self.history[s] << 1) | u64::from(acked);
        self.seen[s] = (self.seen[s] + 1).min(self.window);
        if acked {
            self.delay[s] += self.alpha * (delay_slots - self.delay[s]);
        }
    }

    /// Attempts currently in `u → v`'s window.
    pub fn samples(&self, topo: &Topology, u: NodeId, v: NodeId) -> u32 {
        self.seen[self.slot_of(topo, u, v)]
    }

    /// The fused delivery estimate for `u → v`, or `None` below
    /// `min_samples` attempts (no evidence — keep the prior).
    pub fn estimate(&self, topo: &Topology, u: NodeId, v: NodeId, min_samples: u32) -> Option<f64> {
        let s = self.slot_of(topo, u, v);
        let n = self.seen[s];
        if n < min_samples.max(1) {
            return None;
        }
        let mask = if n as u64 >= 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        };
        let acked = (self.history[s] & mask).count_ones() as f64;
        let loss_based = acked / f64::from(n);
        // Delay-based discount: a rising ACK-delay trend signals queueing
        // or marginal links before losses show up in the window.
        let trend = (self.delay[s] - 1.0).max(0.0);
        Some(loss_based / (1.0 + self.beta * trend))
    }

    /// Largest absolute drift between the fused estimates and `assumed`,
    /// over links with at least `min_samples` attempts. `0.0` when no link
    /// has enough evidence.
    pub fn drift(&self, topo: &Topology, assumed: &LinkQuality, min_samples: u32) -> f64 {
        let mut worst = 0.0f64;
        for u in topo.nodes() {
            for (k, &v) in topo.neighbors(u).iter().enumerate() {
                let s = self.offsets[u.idx()] as usize + k;
                if self.seen[s] < min_samples.max(1) {
                    continue;
                }
                if let Some(est) = self.estimate(topo, u, v, min_samples) {
                    worst = worst.max((est - assumed.delivery_at(u, k)).abs());
                }
            }
        }
        if wsn_obs::enabled() {
            // Drift in per-mille so the integer gauge/event keeps three
            // significant digits of a [0, 1] quantity.
            let permille = (worst * 1000.0).round() as i64;
            wsn_obs::gauge_set("estimator.drift_permille", permille);
            wsn_obs::event_value("estimator.drift", permille);
        }
        worst
    }

    /// Materializes the estimates as a [`LinkQuality`]: links with enough
    /// evidence get their fused estimate (symmetrized by averaging the two
    /// directions), the rest keep `assumed`'s value — the quality a
    /// drift-triggered re-plan runs against.
    pub fn to_quality(
        &self,
        topo: &Topology,
        assumed: &LinkQuality,
        min_samples: u32,
    ) -> LinkQuality {
        let mut q = assumed.clone();
        for u in topo.nodes() {
            for &v in topo.neighbors(u) {
                if u >= v {
                    continue;
                }
                match (
                    self.estimate(topo, u, v, min_samples),
                    self.estimate(topo, v, u, min_samples),
                ) {
                    (Some(a), Some(b)) => {
                        q.set_delivery(topo, u, v, ((a + b) / 2.0).clamp(0.0, 1.0))
                    }
                    (Some(a), None) | (None, Some(a)) => {
                        q.set_delivery(topo, u, v, a.clamp(0.0, 1.0))
                    }
                    (None, None) => {}
                }
            }
        }
        q
    }
}

/// Outcome of [`replan_on_drift`]: whether the estimator's drift crossed
/// the trigger, and the schedule + quality the caller should serve from
/// now on.
#[derive(Clone, Debug)]
pub struct DriftReplan {
    /// Largest per-link drift the estimator reported.
    pub drift: f64,
    /// `true` when `drift ≥ threshold` and an incremental repair ran.
    pub replanned: bool,
    /// The quality the plan now assumes: the estimator's fused view on a
    /// replan, a clone of the old assumption otherwise.
    pub quality: LinkQuality,
    /// The schedule to serve: incrementally repaired and repeat-re-planned
    /// on a replan, a clone of `current` otherwise. Always verifies under
    /// the conflict model.
    pub schedule: Schedule,
    /// Links whose estimate moved by at least `threshold` (the
    /// `ChurnDelta::degraded_links` payload size).
    pub degraded_links: usize,
}

/// Closes the estimator loop incrementally: checks
/// [`LinkEstimator::drift`] against `threshold` and, when crossed, repairs
/// `current` through [`wsn_anytime::reschedule_cached`] with a
/// *quality-only* [`ChurnDelta`] (warm-starting from every surviving
/// placement — link drift invalidates no conflict structure) and re-plans
/// repeat slots against the fused estimate with
/// [`wsn_anytime::plan_repeats`].
///
/// This replaces the old "drift → throw the schedule away and re-solve"
/// pattern: repair cost is one warm legalizer replay plus whatever budget
/// `config` grants, a small fraction of a cold re-solve at scale (pinned
/// in `BENCH_serve.json`). Below the threshold nothing runs and `current`
/// is returned unchanged.
#[allow(clippy::too_many_arguments)]
pub fn replan_on_drift<S: WakeSchedule, M: ConflictModel>(
    cache: &mut ScheduleCache,
    topo: &Topology,
    source: NodeId,
    wake: &S,
    model: &M,
    current: &Schedule,
    assumed: &LinkQuality,
    est: &LinkEstimator,
    epsilon: f64,
    threshold: f64,
    min_samples: u32,
    config: &AnytimeConfig,
) -> DriftReplan {
    let drift = est.drift(topo, assumed, min_samples);
    if drift < threshold {
        return DriftReplan {
            drift,
            replanned: false,
            quality: assumed.clone(),
            schedule: current.clone(),
            degraded_links: 0,
        };
    }
    let quality = est.to_quality(topo, assumed, min_samples);
    // The quality delta: links whose fused estimate moved by at least the
    // trigger (one entry per undirected edge).
    let mut degraded = Vec::new();
    for u in topo.nodes() {
        for (k, &v) in topo.neighbors(u).iter().enumerate() {
            if u >= v {
                continue;
            }
            let newp = quality.delivery_at(u, k);
            if (newp - assumed.delivery_at(u, k)).abs() >= threshold {
                degraded.push((u, v, newp));
            }
        }
    }
    let degraded_links = degraded.len();
    let rep = reschedule_cached(
        cache,
        topo,
        source,
        wake,
        model,
        &ChurnDelta::degradations(degraded),
        config,
    );
    let schedule = if epsilon > 0.0 {
        plan_repeats(&rep.outcome.schedule, topo, wake, model, &quality, epsilon)
    } else {
        rep.outcome.schedule
    };
    wsn_obs::counter_add("estimator.replans", 1);
    wsn_obs::counter_add("estimator.replan_degraded_links", degraded_links as u64);
    DriftReplan {
        drift,
        replanned: true,
        quality,
        schedule,
        degraded_links,
    }
}

/// Replays `schedule` `rounds` times against the *true* quality and feeds
/// the estimator the resulting ACK stream: every candidate delivery is one
/// attempt, delivered with the true per-link probability; ACK delay is the
/// entry's position in the schedule (later entries see longer feedback
/// loops, the TWCC-style delay signal). Deterministic in `seed`.
pub fn simulate_acks(
    topo: &Topology,
    schedule: &Schedule,
    truth: &LinkQuality,
    est: &mut LinkEstimator,
    rounds: u32,
    seed: u64,
) {
    let mut rng = seed ^ 0x00ac_c57a_ea11_u64;
    for _ in 0..rounds {
        for (ei, entry) in schedule.entries.iter().enumerate() {
            let delay = 1.0 + ei as f64 / schedule.entries.len().max(1) as f64;
            for step in 0..schedule.repeat_of(ei) {
                let _ = step;
                for &u in &entry.senders {
                    for (k, &v) in topo.neighbors(u).iter().enumerate() {
                        let p = truth.delivery_at(u, k);
                        let acked = unit(splitmix64(&mut rng)) < p;
                        est.observe(topo, u, v, acked, delay);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_topology::deploy::SyntheticDeployment;
    use wsn_topology::LinkQualityParams;

    fn instance(n: usize, seed: u64) -> (Topology, NodeId, Schedule) {
        let (topo, src) = SyntheticDeployment::paper(n).sample(seed);
        let s = wsn_baselines::schedule_26_approx(&topo, src);
        (topo, src, s)
    }

    #[test]
    fn estimator_converges_to_truth() {
        let (topo, _, s) = instance(120, 1);
        let truth = LinkQuality::uniform(&topo, 0.7);
        let mut est = LinkEstimator::new(&topo, 64);
        simulate_acks(&topo, &s, &truth, &mut est, 80, 5);
        // Drift against the truth itself must be small once converged.
        let d = est.drift(&topo, &truth, 32);
        assert!(d < 0.2, "drift vs truth after convergence: {d:.3}");
    }

    #[test]
    fn drift_detects_degraded_links() {
        let (topo, _, s) = instance(120, 2);
        let assumed = LinkQuality::uniform(&topo, 0.95);
        let degraded = LinkQuality::uniform(&topo, 0.5);
        let mut est = LinkEstimator::new(&topo, 64);
        simulate_acks(&topo, &s, &degraded, &mut est, 80, 6);
        let drift = est.drift(&topo, &assumed, 32);
        assert!(
            drift > 0.25,
            "a 0.95→0.5 degradation must register: {drift:.3}"
        );
    }

    #[test]
    fn to_quality_reflects_estimates_and_keeps_priors() {
        let (topo, _, s) = instance(120, 3);
        let assumed = LinkQuality::synthetic(&topo, &LinkQualityParams::default(), 7);
        let truth = LinkQuality::uniform(&topo, 0.6);
        let mut est = LinkEstimator::new(&topo, 64);
        simulate_acks(&topo, &s, &truth, &mut est, 60, 8);
        let q = est.to_quality(&topo, &assumed, 32);
        // Links the schedule exercises move toward 0.6; untouched links
        // keep the assumed prior exactly.
        let mut moved = 0;
        let mut kept = 0;
        for u in topo.nodes() {
            for &v in topo.neighbors(u) {
                let before = assumed.delivery(&topo, u, v);
                let after = q.delivery(&topo, u, v);
                if (after - before).abs() > 1e-12 {
                    moved += 1;
                } else {
                    kept += 1;
                }
            }
        }
        assert!(moved > 0, "exercised links must re-estimate");
        let _ = kept;
        let _ = s;
    }

    #[test]
    fn drift_replan_routes_through_the_cache_and_stays_incremental() {
        use wsn_anytime::{solve_anytime_cached, AnytimeConfig, Budget, ScheduleCache};
        use wsn_dutycycle::AlwaysAwake;
        use wsn_phy::ProtocolModel;
        let (topo, src) = SyntheticDeployment::paper(150).sample(10);
        let assumed = LinkQuality::uniform(&topo, 0.99);
        let truth = LinkQuality::uniform(&topo, 0.8);
        let cfg = AnytimeConfig {
            budget: Budget::Iterations(5_000),
            ..AnytimeConfig::default()
        };
        let mut cache = ScheduleCache::new();
        let base = solve_anytime_cached(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg, &mut cache);
        let mut est = LinkEstimator::new(&topo, 64);
        simulate_acks(&topo, &base.schedule, &truth, &mut est, 80, 11);
        let repair_cfg = AnytimeConfig {
            budget: Budget::Iterations(0),
            ..AnytimeConfig::default()
        };
        let eps = 0.05;
        let rp = replan_on_drift(
            &mut cache,
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &base.schedule,
            &assumed,
            &est,
            eps,
            0.05,
            32,
            &repair_cfg,
        );
        assert!(rp.replanned, "0.99→0.8 must cross a 0.05 trigger");
        assert!(rp.drift > 0.05);
        assert!(rp.degraded_links > 0);
        // The repaired + repeat-re-planned schedule is reliable under the
        // quality the estimator actually measured.
        rp.schedule
            .verify_reliability(&topo, &AlwaysAwake, &ProtocolModel, &rp.quality, eps)
            .unwrap();
        // Below the threshold nothing runs: same schedule back, quality
        // untouched.
        let quiet = replan_on_drift(
            &mut cache,
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &base.schedule,
            &assumed,
            &est,
            eps,
            1.1,
            32,
            &repair_cfg,
        );
        assert!(!quiet.replanned);
        assert_eq!(quiet.degraded_links, 0);
        assert_eq!(quiet.schedule.entries.len(), base.schedule.entries.len());
        assert!(quiet.quality.is_uniform(0.99));
    }

    #[test]
    fn drift_triggers_replan_that_restores_reliability() {
        use wsn_anytime::{solve_anytime_reliable, AnytimeConfig, Budget};
        use wsn_dutycycle::AlwaysAwake;
        use wsn_phy::ProtocolModel;
        let (topo, src) = SyntheticDeployment::paper(100).sample(4);
        let assumed = LinkQuality::uniform(&topo, 0.99);
        let truth = LinkQuality::uniform(&topo, 0.85);
        let cfg = AnytimeConfig {
            budget: Budget::Iterations(2_000),
            ..AnytimeConfig::default()
        };
        let eps = 0.05;
        let planned = solve_anytime_reliable(
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &assumed,
            eps,
            &cfg,
        );
        // The world is worse than assumed: the estimator notices.
        let mut est = LinkEstimator::new(&topo, 64);
        simulate_acks(&topo, &planned.schedule, &truth, &mut est, 80, 9);
        let drift = est.drift(&topo, &assumed, 32);
        assert!(drift > 0.05, "drift must cross the trigger: {drift:.3}");
        // Re-plan against the estimate: reliability verifies against the
        // re-estimated quality where the stale plan need not.
        let q = est.to_quality(&topo, &assumed, 32);
        let replanned =
            solve_anytime_reliable(&topo, src, &AlwaysAwake, &ProtocolModel, &q, eps, &cfg);
        replanned
            .schedule
            .verify_reliability(&topo, &AlwaysAwake, &ProtocolModel, &q, eps)
            .unwrap();
        assert!(replanned.schedule.slot_budget() >= planned.schedule.slot_budget());
    }
}
