//! The density-sweep experiment: Figures 3, 4 and 6.

use crate::algorithm::{run_instance_exec, Algorithm, AnytimeExec, Regime};
use crate::derive_seed;
use crate::stats::Summary;
use mlbs_core::{BroadcastState, SearchConfig};
use std::collections::HashMap;
use wsn_phy::PhyModelSpec;
use wsn_topology::deploy::SyntheticDeployment;

/// A density sweep: for each node count, draw `instances` deployments and
/// run every algorithm on each — optionally across several conflict
/// models / channel counts (the model axis of `BENCH_phy.json`).
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Node counts (the paper sweeps 50–300 over a 50×50 sq-ft area).
    pub node_counts: Vec<usize>,
    /// Instances per node count.
    pub instances: usize,
    /// Algorithms to run.
    pub algorithms: Vec<Algorithm>,
    /// Timing regime.
    pub regime: Regime,
    /// Conflict-model axis: every algorithm runs on every instance under
    /// every spec (same topology, same source, same wake schedule — the
    /// per-instance comparison the model bench reports). The default is
    /// the paper's single-channel protocol model; with more than one spec
    /// the per-algorithm result labels gain an `@model` suffix, and every
    /// algorithm must be model-aware ([`Algorithm::supports_models`]).
    pub models: Vec<PhyModelSpec>,
    /// Master seed; everything else derives from it.
    pub master_seed: u64,
    /// Search configuration for OPT / G-OPT.
    pub search: SearchConfig,
    /// Per-node-count overrides of `search` — how `wsn-bench` threads its
    /// adaptive budgets through (instance size is not known to a single
    /// `SearchConfig`). First match wins; node counts without an entry use
    /// `search`.
    pub search_overrides: Vec<(usize, SearchConfig)>,
    /// Worker threads (1 = sequential; results are identical either way).
    pub threads: usize,
    /// Portfolio width of the anytime tier: each [`Algorithm::Anytime`]
    /// solve races this many independently-seeded chains. Unlike
    /// `threads`, this axis *may* change results — wider portfolios never
    /// lose latency under the sweep's iteration budgets, and results are
    /// bit-reproducible at any fixed width.
    pub search_threads: usize,
}

impl Sweep {
    /// The paper's Figure 3/4/6 sweep grid at a chosen instance count.
    pub fn paper_grid(regime: Regime, instances: usize, master_seed: u64) -> Self {
        Sweep {
            node_counts: vec![50, 100, 150, 200, 250, 300],
            instances,
            algorithms: Algorithm::paper_set().to_vec(),
            regime,
            models: vec![PhyModelSpec::protocol()],
            master_seed,
            search: SearchConfig::default(),
            search_overrides: Vec::new(),
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
            search_threads: 1,
        }
    }

    /// The display label of `algorithm` under model `mi` — the plain
    /// legend name on a single-model sweep, `name@model` on a model sweep.
    fn result_label(&self, algorithm: Algorithm, mi: usize) -> String {
        if self.models.len() <= 1 {
            algorithm.name(self.regime).to_string()
        } else {
            format!(
                "{}@{}",
                algorithm.name(self.regime),
                self.models[mi].label()
            )
        }
    }

    /// The search configuration a `nodes`-sized instance runs under.
    pub fn search_for_nodes(&self, nodes: usize) -> &SearchConfig {
        self.search_overrides
            .iter()
            .find(|(n, _)| *n == nodes)
            .map_or(&self.search, |(_, cfg)| cfg)
    }

    /// Runs the sweep and aggregates per (algorithm, node count, model).
    pub fn run(&self) -> SweepResult {
        assert!(self.instances > 0 && !self.node_counts.is_empty() && !self.models.is_empty());
        if self.models.iter().any(|m| !m.is_default_protocol()) {
            assert!(
                self.algorithms.iter().all(Algorithm::supports_models),
                "model-axis sweeps support only model-aware algorithms"
            );
        }
        let jobs: Vec<(usize, usize, usize)> = self
            .node_counts
            .iter()
            .flat_map(|&n| {
                (0..self.instances)
                    .flat_map(move |i| (0..self.models.len()).map(move |m| (n, i, m)))
            })
            .collect();

        // One result bucket per (node count, algorithm, model index).
        let mut latency: HashMap<(usize, Algorithm, usize), Summary> = HashMap::new();
        let mut transmissions: HashMap<(usize, Algorithm, usize), Summary> = HashMap::new();
        let mut coverage: HashMap<(usize, Algorithm, usize), Summary> = HashMap::new();
        let mut search_states: HashMap<(usize, Algorithm, usize), Summary> = HashMap::new();
        let mut cache_traffic: HashMap<(usize, Algorithm, usize), (u64, u64)> = HashMap::new();
        let mut traces: Vec<TraceRow> = Vec::new();
        let mut opt_analysis: HashMap<usize, Summary> = HashMap::new();
        let mut baseline_bound: HashMap<usize, Summary> = HashMap::new();
        let mut eccentricity: HashMap<usize, Summary> = HashMap::new();
        let mut inexact = 0usize;

        // Work distribution: an atomic cursor over the job list (an MPMC
        // queue in miniature) feeding an mpsc result channel. Workers
        // claim *batches* of consecutive jobs — one cursor fetch per
        // chunk, not per instance — sized so each worker sees several
        // chunks (load balancing) without contending on the cursor per
        // job. Records are tagged with their job index and aggregated in
        // job order below: Welford accumulation is not
        // permutation-invariant in floating point, and sorting is what
        // makes sweep results bit-identical regardless of thread count
        // and chunk geometry (the property the tests assert).
        let (res_tx, res_rx) = std::sync::mpsc::channel::<(usize, InstanceRecord)>();
        let next_job = std::sync::atomic::AtomicUsize::new(0);

        let workers = self.threads.max(1);
        let chunk = jobs.len().div_ceil(workers * 8).max(1);
        let mut records = std::thread::scope(|scope| {
            for _ in 0..workers {
                let res_tx = res_tx.clone();
                let sweep = &*self;
                let (jobs, next_job) = (&jobs, &next_job);
                scope.spawn(move || {
                    // One broadcast-state substrate per worker, re-targeted
                    // per instance — scratch sets, candidate buffers and
                    // the conflict builder live for the whole sweep. The
                    // anytime exec (portfolio width + warm-start cache)
                    // rides along; sweep instances have unique topology
                    // tokens, so the cache never aliases across jobs and
                    // results stay independent of worker count.
                    let mut substrate = BroadcastState::new();
                    let mut exec = AnytimeExec::with_threads(sweep.search_threads.max(1));
                    loop {
                        let start = next_job.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                        if start >= jobs.len() {
                            return;
                        }
                        for (k, &(nodes, instance, model_idx)) in
                            jobs.iter().enumerate().skip(start).take(chunk)
                        {
                            let rec = sweep.run_one(
                                nodes,
                                instance,
                                model_idx,
                                &mut substrate,
                                &mut exec,
                            );
                            if res_tx.send((k, rec)).is_err() {
                                return;
                            }
                        }
                    }
                });
            }
            drop(res_tx);
            res_rx.iter().collect::<Vec<_>>()
        });
        records.sort_unstable_by_key(|&(k, _)| k);

        for (_, rec) in records {
            for (alg, r) in &rec.runs {
                latency
                    .entry((rec.nodes, *alg, rec.model_idx))
                    .or_default()
                    .push(r.latency as f64);
                transmissions
                    .entry((rec.nodes, *alg, rec.model_idx))
                    .or_default()
                    .push(r.transmissions as f64);
                coverage
                    .entry((rec.nodes, *alg, rec.model_idx))
                    .or_default()
                    .push(r.mean_coverage);
                if let Some(stats) = &r.search_stats {
                    search_states
                        .entry((rec.nodes, *alg, rec.model_idx))
                        .or_default()
                        .push(stats.states as f64);
                }
                let traffic = cache_traffic
                    .entry((rec.nodes, *alg, rec.model_idx))
                    .or_default();
                traffic.0 += r.cache_hits;
                traffic.1 += r.cache_misses;
                if let Some(trace) = &r.trace {
                    let series = self.result_label(*alg, rec.model_idx);
                    traces.extend(trace.iter().map(|t| TraceRow {
                        nodes: rec.nodes,
                        instance: rec.instance,
                        series: series.clone(),
                        elapsed_ms: t.elapsed_ms,
                        moves: t.moves,
                        latency: t.latency,
                    }));
                }
                if r.exact == Some(false) {
                    inexact += 1;
                }
            }
            // Instance metrics are model-independent: record them once per
            // instance, from the first model's record.
            if rec.model_idx == 0 {
                if let Some((_, first)) = rec.runs.first() {
                    opt_analysis
                        .entry(rec.nodes)
                        .or_default()
                        .push(first.opt_analysis as f64);
                    baseline_bound
                        .entry(rec.nodes)
                        .or_default()
                        .push(first.baseline_bound as f64);
                    eccentricity
                        .entry(rec.nodes)
                        .or_default()
                        .push(first.eccentricity as f64);
                }
            }
        }

        let mut points = Vec::new();
        for &nodes in &self.node_counts {
            let density = nodes as f64 / 2500.0; // 50×50 sq ft (§V-A)
            let per_alg = self
                .algorithms
                .iter()
                .flat_map(|&alg| (0..self.models.len()).map(move |mi| (alg, mi)))
                .map(|(alg, mi)| {
                    let (cache_hits, cache_misses) =
                        cache_traffic.remove(&(nodes, alg, mi)).unwrap_or_default();
                    AlgorithmSummary {
                        name: self.result_label(alg, mi),
                        latency: latency.remove(&(nodes, alg, mi)).unwrap_or_default(),
                        transmissions: transmissions.remove(&(nodes, alg, mi)).unwrap_or_default(),
                        coverage: coverage.remove(&(nodes, alg, mi)).unwrap_or_default(),
                        search_states: search_states.remove(&(nodes, alg, mi)).unwrap_or_default(),
                        cache_hits,
                        cache_misses,
                    }
                })
                .collect();
            points.push(SweepPointResult {
                nodes,
                density,
                per_algorithm: per_alg,
                opt_analysis: opt_analysis.remove(&nodes).unwrap_or_default(),
                baseline_bound: baseline_bound.remove(&nodes).unwrap_or_default(),
                eccentricity: eccentricity.remove(&nodes).unwrap_or_default(),
            });
        }
        SweepResult {
            regime: self.regime,
            points,
            inexact_runs: inexact,
            traces,
        }
    }

    /// One `(instance, model)` job: sample the deployment, run every
    /// algorithm on it under the model through the worker's shared
    /// substrate. Deployment and wake randomness depend only on
    /// `(master_seed, nodes, instance)`, so every model sees identical
    /// instances.
    fn run_one(
        &self,
        nodes: usize,
        instance: usize,
        model_idx: usize,
        substrate: &mut BroadcastState,
        exec: &mut AnytimeExec,
    ) -> InstanceRecord {
        let _job_span = wsn_obs::span_value("sweep.job", nodes as i64);
        let seed = derive_seed(self.master_seed, nodes as u64, instance as u64);
        let deployment = SyntheticDeployment::paper(nodes);
        let (topo, source) = deployment.sample(seed);
        let wake_seed = derive_seed(seed, WAKE_SEED_TAG, 0);
        let search = self.search_for_nodes(nodes);
        // One model build per job: every algorithm shares it (SINR gain
        // tables are O(n²), so per-algorithm rebuilds would dominate).
        let model = self.models[model_idx].build(&topo);
        let runs = self
            .algorithms
            .iter()
            .map(|&alg| {
                (
                    alg,
                    run_instance_exec(
                        &topo,
                        source,
                        self.regime,
                        alg,
                        wake_seed,
                        search,
                        &model,
                        substrate,
                        exec,
                    ),
                )
            })
            .collect();
        InstanceRecord {
            nodes,
            instance,
            model_idx,
            runs,
        }
    }
}

/// Tag mixed into wake-schedule seeds so wake schedules are decorrelated
/// from deployment randomness.
const WAKE_SEED_TAG: u64 = 0x57a6_6e8d;

/// Results of all algorithms on one `(instance, model)` job.
struct InstanceRecord {
    nodes: usize,
    instance: usize,
    model_idx: usize,
    runs: Vec<(Algorithm, crate::algorithm::RunResult)>,
}

/// One improving-bound trace point from one anytime run, flattened for
/// CSV export ([`crate::traces_to_csv`]): time-to-quality curves are
/// plottable per `(nodes, instance, series)` group without re-running.
#[derive(Clone, Debug)]
pub struct TraceRow {
    /// Node count of the sweep point.
    pub nodes: usize,
    /// Instance index within the sweep point.
    pub instance: usize,
    /// Result label of the run ([`AlgorithmSummary::name`] convention).
    pub series: String,
    /// Milliseconds since that run's search started (monotonic clock).
    pub elapsed_ms: u64,
    /// Deterministic work units spent when the incumbent was accepted.
    pub moves: u64,
    /// The incumbent latency.
    pub latency: wsn_dutycycle::Slot,
}

/// Per-algorithm aggregates at one sweep point.
#[derive(Clone, Debug)]
pub struct AlgorithmSummary {
    /// Display label (`name`, or `name@model` on a model-axis sweep).
    pub name: String,
    /// End-to-end latency across instances.
    pub latency: Summary,
    /// Transmission counts across instances.
    pub transmissions: Summary,
    /// Mean lossy-replay coverage across instances — the first-class
    /// reliability metric ([`crate::RunResult::mean_coverage`]).
    pub coverage: Summary,
    /// Search states explored per run (empty for non-search algorithms —
    /// the per-run [`mlbs_core::SearchStats`] promoted to the aggregate).
    pub search_states: Summary,
    /// Warm-start cache hits across this series' runs (anytime tier only;
    /// 0 elsewhere).
    pub cache_hits: u64,
    /// Warm-start cache misses across this series' runs.
    pub cache_misses: u64,
}

/// Aggregates for one node count.
#[derive(Clone, Debug)]
pub struct SweepPointResult {
    /// Node count.
    pub nodes: usize,
    /// Density in nodes per sq ft.
    pub density: f64,
    /// Per-algorithm aggregates, in `algorithms × models` order.
    pub per_algorithm: Vec<AlgorithmSummary>,
    /// Theorem 1 bound across instances.
    pub opt_analysis: Summary,
    /// Baseline analytical bound across instances.
    pub baseline_bound: Summary,
    /// Source eccentricity across instances.
    pub eccentricity: Summary,
}

/// A full sweep result.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The regime the sweep ran under.
    pub regime: Regime,
    /// One entry per node count, in sweep order.
    pub points: Vec<SweepPointResult>,
    /// Search runs that hit a cap (0 in exact reproductions).
    pub inexact_runs: usize,
    /// Flattened improving-bound traces of every anytime run, in job
    /// order (deterministic across thread counts up to the wall-clock
    /// `elapsed_ms` column; the `moves` column is bit-reproducible).
    pub traces: Vec<TraceRow>,
}

impl SweepResult {
    /// Mean latency of `name` at the sweep point for `nodes`, if present.
    pub fn mean_latency(&self, nodes: usize, name: &str) -> Option<f64> {
        self.points.iter().find(|p| p.nodes == nodes).and_then(|p| {
            p.per_algorithm
                .iter()
                .find(|a| a.name == name)
                .map(|a| a.latency.mean())
        })
    }

    /// Mean lossy-replay coverage of `name` at the sweep point for
    /// `nodes`, if present.
    pub fn mean_coverage(&self, nodes: usize, name: &str) -> Option<f64> {
        self.points.iter().find(|p| p.nodes == nodes).and_then(|p| {
            p.per_algorithm
                .iter()
                .find(|a| a.name == name)
                .map(|a| a.coverage.mean())
        })
    }

    /// Relative improvement of `better` over `baseline` at each point
    /// (`1 − better/baseline`), averaged across points — the §V-C claim
    /// metric ("room of at least 70% improvement").
    pub fn mean_improvement(&self, better: &str, baseline: &str) -> f64 {
        let mut acc = 0.0;
        let mut k = 0;
        for p in &self.points {
            let b = p
                .per_algorithm
                .iter()
                .find(|a| a.name == baseline)
                .map(|a| a.latency.mean());
            let g = p
                .per_algorithm
                .iter()
                .find(|a| a.name == better)
                .map(|a| a.latency.mean());
            if let (Some(b), Some(g)) = (b, g) {
                if b > 0.0 {
                    acc += 1.0 - g / b;
                    k += 1;
                }
            }
        }
        if k == 0 {
            0.0
        } else {
            acc / k as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep(threads: usize) -> SweepResult {
        Sweep {
            node_counts: vec![50, 80],
            instances: 3,
            algorithms: vec![
                Algorithm::Layered,
                Algorithm::GOpt,
                Algorithm::EModelPipeline,
            ],
            regime: Regime::Sync,
            models: vec![PhyModelSpec::protocol()],
            master_seed: 1234,
            search: SearchConfig::default(),
            search_overrides: Vec::new(),
            threads,
            search_threads: 1,
        }
        .run()
    }

    #[test]
    fn sweep_collects_all_points() {
        let r = tiny_sweep(2);
        assert_eq!(r.points.len(), 2);
        for p in &r.points {
            assert_eq!(p.per_algorithm.len(), 3);
            for a in &p.per_algorithm {
                assert_eq!(a.latency.count(), 3);
                assert_eq!(a.transmissions.count(), 3);
                assert!(a.latency.mean() >= 1.0);
                assert_eq!(a.coverage.count(), 3);
                assert!((0.0..=1.0).contains(&a.coverage.mean()));
                assert!(a.coverage.mean() > 0.5, "10% loss can't erase coverage");
            }
            assert_eq!(p.eccentricity.count(), 3);
        }
    }

    #[test]
    fn search_override_selects_per_node_config() {
        let mut s = Sweep::paper_grid(Regime::Sync, 1, 7);
        s.search_overrides.push((
            100,
            SearchConfig {
                branch_cap: 5,
                ..SearchConfig::default()
            },
        ));
        assert_eq!(s.search_for_nodes(100).branch_cap, 5);
        assert_eq!(
            s.search_for_nodes(150).branch_cap,
            SearchConfig::default().branch_cap
        );
    }

    #[test]
    fn results_independent_of_thread_count() {
        // Thread count also changes the chunk geometry of the batched job
        // pool, so this doubles as the chunking-is-transparent check.
        let a = tiny_sweep(1);
        let b = tiny_sweep(4);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            for (a, b) in pa.per_algorithm.iter().zip(&pb.per_algorithm) {
                assert_eq!(a.name, b.name);
                assert_eq!(
                    a.latency.mean(),
                    b.latency.mean(),
                    "algorithm {} differs across thread counts",
                    a.name
                );
                assert_eq!(a.latency.min(), b.latency.min());
                assert_eq!(a.latency.max(), b.latency.max());
                assert_eq!(
                    a.coverage.mean(),
                    b.coverage.mean(),
                    "coverage of {} differs across thread counts",
                    a.name
                );
            }
        }
    }

    #[test]
    fn search_threads_axis_never_loses_latency() {
        // The portfolio axis: anytime results at width 2 must be ≤ width 1
        // per sweep point (worker 0 runs the unsalted serial chain under a
        // deterministic iteration budget, so this is a theorem, not a
        // trend), and each width must reproduce bit-identically.
        let sweep_at = |search_threads: usize| {
            Sweep {
                node_counts: vec![60],
                instances: 2,
                algorithms: vec![Algorithm::Anytime],
                regime: Regime::Sync,
                models: vec![PhyModelSpec::protocol()],
                master_seed: 99,
                search: SearchConfig::default(),
                search_overrides: Vec::new(),
                threads: 2,
                search_threads,
            }
            .run()
        };
        let serial = sweep_at(1);
        let wide = sweep_at(2);
        let wide_again = sweep_at(2);
        let mean = |r: &SweepResult| r.mean_latency(60, "anytime").unwrap();
        assert!(mean(&wide) <= mean(&serial), "portfolio lost to serial");
        assert_eq!(mean(&wide), mean(&wide_again), "width-2 nondeterministic");
    }

    #[test]
    fn gopt_beats_layered_on_average() {
        let r = tiny_sweep(2);
        for p in &r.points {
            let layered = p
                .per_algorithm
                .iter()
                .find(|a| a.name == "26-approx")
                .unwrap()
                .latency
                .mean();
            let gopt = p
                .per_algorithm
                .iter()
                .find(|a| a.name == "G-OPT")
                .unwrap()
                .latency
                .mean();
            assert!(gopt <= layered);
        }
        assert!(r.mean_improvement("G-OPT", "26-approx") >= 0.0);
    }

    #[test]
    fn mean_latency_lookup() {
        let r = tiny_sweep(2);
        assert!(r.mean_latency(50, "G-OPT").is_some());
        assert!(r.mean_latency(50, "nonexistent").is_none());
        assert!(r.mean_latency(999, "G-OPT").is_none());
    }

    #[test]
    fn model_axis_labels_and_orders_results() {
        let r = Sweep {
            node_counts: vec![50],
            instances: 2,
            algorithms: vec![Algorithm::GOpt, Algorithm::GreedyPipeline],
            regime: Regime::Sync,
            models: vec![
                PhyModelSpec::protocol(),
                PhyModelSpec::protocol().with_channels(2),
            ],
            master_seed: 7,
            search: SearchConfig::default(),
            search_overrides: Vec::new(),
            threads: 2,
            search_threads: 1,
        }
        .run();
        let p = &r.points[0];
        // algorithms × models result columns, labeled with the model.
        assert_eq!(p.per_algorithm.len(), 4);
        // Both model columns exist and carry results. (No latency-order
        // assertion here: greedy-restricted G-OPT carries no coverage
        // monotonicity, so K = 2 beating K = 1 is the trend, not a
        // theorem — the exactness-guarded OPT comparison lives in the
        // core and proptest suites.)
        assert!(r.mean_latency(50, "G-OPT@protocol").unwrap() >= 1.0);
        assert!(r.mean_latency(50, "G-OPT@protocol-k2").unwrap() >= 1.0);
        // Instance metrics are recorded once per instance, not per model.
        assert_eq!(p.eccentricity.count(), 2);
        for a in &p.per_algorithm {
            assert_eq!(a.latency.count(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "model-aware")]
    fn model_axis_rejects_protocol_only_baselines() {
        let mut s = Sweep::paper_grid(Regime::Sync, 1, 7);
        s.node_counts = vec![50];
        s.models = vec![PhyModelSpec::protocol().with_channels(2)];
        s.algorithms = vec![Algorithm::Layered];
        s.run();
    }
}
