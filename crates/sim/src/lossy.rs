//! Link-loss robustness (extension).
//!
//! §VI criticizes schemes that "rely on healthy, interference-free links":
//! a precomputed schedule transmits each message exactly once per relay, so
//! a single lost delivery can strand whole subtrees. This module measures
//! that fragility: replay a schedule while dropping each delivery
//! independently with probability `p`, and report what fraction of the
//! network still gets covered. It quantifies *why* §VII calls for "a more
//! reliable … solution" and gives the localized protocol's
//! retransmission-friendly design a measurable target.

use mlbs_core::Schedule;
use wsn_bitset::NodeSet;
use wsn_topology::{LinkQuality, Topology};

/// SplitMix64 step for the loss draws (self-contained; keeps the module
/// deterministic without threading an external RNG through the replay).
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Outcome of one lossy replay.
#[derive(Clone, Debug)]
pub struct LossyOutcome {
    /// Nodes that received the message.
    pub covered: NodeSet,
    /// Deliveries that the loss process dropped.
    pub lost_deliveries: usize,
    /// Scheduled transmissions that were skipped because their sender never
    /// received the message (cascade failures).
    pub stranded_transmissions: usize,
}

impl LossyOutcome {
    /// Fraction of nodes covered.
    pub fn coverage(&self, n: usize) -> f64 {
        self.covered.len() as f64 / n as f64
    }
}

/// The shared replay loop, parametrized over the per-delivery loss
/// probability so the global-`p` path and the per-link path share one draw
/// sequence: entries in order, each fired once per repeat slot, senders in
/// entry order, uninformed neighbors in CSR order, one draw per candidate
/// delivery. For schedules without repeat slots and a constant closure
/// this is exactly the legacy `replay_lossy` loop — bit-identical by
/// construction.
fn replay_with(
    topo: &Topology,
    schedule: &Schedule,
    seed: u64,
    mut loss_of: impl FnMut(wsn_topology::NodeId, wsn_topology::NodeId) -> f64,
) -> LossyOutcome {
    let n = topo.len();
    // Tag decorrelates loss draws from other uses of the same seed.
    let mut rng = seed ^ 0x005e_ed0f_da7a_u64;
    let mut covered = NodeSet::new(n);
    covered.insert(schedule.source.idx());
    let mut lost = 0;
    let mut stranded = 0;

    for (ei, entry) in schedule.entries.iter().enumerate() {
        for _attempt in 0..schedule.repeat_of(ei) {
            for &u in &entry.senders {
                if !covered.contains(u.idx()) {
                    stranded += 1;
                    continue;
                }
                for &v in topo.neighbors(u) {
                    if covered.contains(v.idx()) {
                        continue;
                    }
                    // Draw in [0,1): delivered iff above the loss threshold.
                    let draw = (splitmix64(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
                    if draw < loss_of(u, v) {
                        lost += 1;
                    } else {
                        covered.insert(v.idx());
                    }
                }
            }
        }
    }
    LossyOutcome {
        covered,
        lost_deliveries: lost,
        stranded_transmissions: stranded,
    }
}

/// Replays `schedule` with iid per-delivery loss probability `loss`.
///
/// A sender that never received the message (because its own delivery was
/// lost) skips its slot — it has nothing to relay; the replay records the
/// cascade. Interference is not re-checked: the schedule was conflict-free
/// and losing transmissions only removes signals. Repeat slots
/// (`schedule.repeats`) fire the whole entry once per occupied slot.
///
/// This is the uniform-quality convenience wrapper over
/// [`replay_lossy_quality`]; the two are bit-identical when the quality is
/// `LinkQuality::uniform(topo, 1.0 - loss)`.
pub fn replay_lossy(topo: &Topology, schedule: &Schedule, loss: f64, seed: u64) -> LossyOutcome {
    assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
    replay_with(topo, schedule, seed, |_, _| loss)
}

/// Replays `schedule` with per-link loss probabilities from `quality`:
/// each candidate delivery `u → v` is dropped with probability
/// `1 − quality.delivery(topo, u, v)`. Same cascade semantics and draw
/// sequence as [`replay_lossy`].
pub fn replay_lossy_quality(
    topo: &Topology,
    schedule: &Schedule,
    quality: &LinkQuality,
    seed: u64,
) -> LossyOutcome {
    replay_with(topo, schedule, seed, |u, v| {
        1.0 - quality.delivery(topo, u, v)
    })
}

/// Mean coverage over `trials` independent loss replays.
pub fn mean_coverage(
    topo: &Topology,
    schedule: &Schedule,
    loss: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(trials > 0);
    (0..trials)
        .map(|t| {
            replay_lossy(topo, schedule, loss, seed.wrapping_add(t as u64)).coverage(topo.len())
        })
        .sum::<f64>()
        / trials as f64
}

/// Mean coverage over `trials` independent per-link-quality replays.
pub fn mean_coverage_quality(
    topo: &Topology,
    schedule: &Schedule,
    quality: &LinkQuality,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(trials > 0);
    (0..trials)
        .map(|t| {
            replay_lossy_quality(topo, schedule, quality, seed.wrapping_add(t as u64))
                .coverage(topo.len())
        })
        .sum::<f64>()
        / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{run_instance, Algorithm, Regime};
    use mlbs_core::SearchConfig;
    use wsn_topology::deploy::SyntheticDeployment;

    fn schedule_for(n: usize, seed: u64) -> (wsn_topology::Topology, Schedule) {
        let (topo, src) = SyntheticDeployment::paper(n).sample(seed);
        let s = wsn_baselines::schedule_26_approx(&topo, src);
        (topo, s)
    }

    #[test]
    fn zero_loss_is_lossless() {
        let (topo, s) = schedule_for(100, 1);
        let out = replay_lossy(&topo, &s, 0.0, 42);
        assert!(out.covered.is_full());
        assert_eq!(out.lost_deliveries, 0);
        assert_eq!(out.stranded_transmissions, 0);
    }

    #[test]
    fn full_loss_reaches_nobody() {
        let (topo, s) = schedule_for(80, 2);
        let out = replay_lossy(&topo, &s, 1.0, 42);
        assert_eq!(out.covered.len(), 1, "only the source holds the message");
        assert!(out.lost_deliveries > 0);
    }

    #[test]
    fn coverage_decreases_with_loss() {
        let (topo, s) = schedule_for(150, 3);
        let c05 = mean_coverage(&topo, &s, 0.05, 20, 7);
        let c30 = mean_coverage(&topo, &s, 0.30, 20, 7);
        assert!(c05 > c30, "coverage {c05:.3} vs {c30:.3}");
        assert!(c05 > 0.5);
    }

    #[test]
    fn sparse_schedules_are_more_fragile() {
        // The minimum-latency schedules transmit less, so under loss they
        // cover *less* than the redundant baseline — the §VI reliability
        // trade-off, measured.
        let (topo, src) = SyntheticDeployment::paper(200).sample(4);
        let cfg = SearchConfig::default();
        let _ = run_instance(&topo, src, Regime::Sync, Algorithm::GOpt, 0, &cfg);
        let lean = mlbs_core::solve_gopt(&topo, src, &wsn_dutycycle::AlwaysAwake, &cfg).schedule;
        let redundant = wsn_baselines::schedule_26_approx(&topo, src);
        assert!(lean.transmission_count() <= redundant.transmission_count());
        let c_lean = mean_coverage(&topo, &lean, 0.2, 30, 11);
        let c_red = mean_coverage(&topo, &redundant, 0.2, 30, 11);
        // Not asserted strictly (both lose coverage); report-style check:
        // both are hurt, and the lean schedule is not *more* robust.
        assert!(
            c_lean <= c_red + 0.05,
            "lean {c_lean:.3} vs redundant {c_red:.3}"
        );
    }

    #[test]
    fn uniform_quality_is_bit_identical_to_global_loss() {
        use wsn_topology::LinkQuality;
        let (topo, s) = schedule_for(150, 6);
        for &loss in &[0.0, 0.125, 0.2, 0.5] {
            let q = LinkQuality::uniform(&topo, 1.0 - loss);
            for seed in 0..5u64 {
                let a = replay_lossy(&topo, &s, loss, seed);
                let b = replay_lossy_quality(&topo, &s, &q, seed);
                assert_eq!(a.covered.to_vec(), b.covered.to_vec());
                assert_eq!(a.lost_deliveries, b.lost_deliveries);
                assert_eq!(a.stranded_transmissions, b.stranded_transmissions);
            }
        }
    }

    #[test]
    fn synthetic_quality_hurts_far_links_more() {
        use wsn_topology::{LinkQuality, LinkQualityParams};
        let (topo, s) = schedule_for(150, 8);
        let clean = LinkQuality::uniform(&topo, 1.0);
        let noisy = LinkQuality::synthetic(&topo, &LinkQualityParams::default(), 21);
        let c_clean = mean_coverage_quality(&topo, &s, &clean, 10, 3);
        let c_noisy = mean_coverage_quality(&topo, &s, &noisy, 10, 3);
        assert_eq!(c_clean, 1.0);
        assert!(c_noisy < 1.0, "synthetic loss must bite: {c_noisy:.3}");
    }

    #[test]
    fn repeat_slots_recover_coverage() {
        let (topo, s) = schedule_for(120, 9);
        // Give every entry three attempts.
        let mut boosted = s.clone();
        boosted.repeats = vec![3; boosted.entries.len()];
        let base = mean_coverage(&topo, &s, 0.3, 20, 13);
        let more = mean_coverage(&topo, &boosted, 0.3, 20, 13);
        assert!(
            more > base,
            "repeats must raise coverage: {more:.3} vs {base:.3}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let (topo, s) = schedule_for(100, 5);
        let a = replay_lossy(&topo, &s, 0.2, 9).covered.to_vec();
        let b = replay_lossy(&topo, &s, 0.2, 9).covered.to_vec();
        assert_eq!(a, b);
    }
}
