//! Link-loss robustness (extension).
//!
//! §VI criticizes schemes that "rely on healthy, interference-free links":
//! a precomputed schedule transmits each message exactly once per relay, so
//! a single lost delivery can strand whole subtrees. This module measures
//! that fragility: replay a schedule while dropping each delivery
//! independently with probability `p`, and report what fraction of the
//! network still gets covered. It quantifies *why* §VII calls for "a more
//! reliable … solution" and gives the localized protocol's
//! retransmission-friendly design a measurable target.

use mlbs_core::Schedule;
use wsn_bitset::NodeSet;
use wsn_topology::Topology;

/// SplitMix64 step for the loss draws (self-contained; keeps the module
/// deterministic without threading an external RNG through the replay).
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Outcome of one lossy replay.
#[derive(Clone, Debug)]
pub struct LossyOutcome {
    /// Nodes that received the message.
    pub covered: NodeSet,
    /// Deliveries that the loss process dropped.
    pub lost_deliveries: usize,
    /// Scheduled transmissions that were skipped because their sender never
    /// received the message (cascade failures).
    pub stranded_transmissions: usize,
}

impl LossyOutcome {
    /// Fraction of nodes covered.
    pub fn coverage(&self, n: usize) -> f64 {
        self.covered.len() as f64 / n as f64
    }
}

/// Replays `schedule` with iid per-delivery loss probability `loss`.
///
/// A sender that never received the message (because its own delivery was
/// lost) skips its slot — it has nothing to relay; the replay records the
/// cascade. Interference is not re-checked: the schedule was conflict-free
/// and losing transmissions only removes signals.
pub fn replay_lossy(topo: &Topology, schedule: &Schedule, loss: f64, seed: u64) -> LossyOutcome {
    assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
    let n = topo.len();
    // Tag decorrelates loss draws from other uses of the same seed.
    let mut rng = seed ^ 0x005e_ed0f_da7a_u64;
    let mut covered = NodeSet::new(n);
    covered.insert(schedule.source.idx());
    let mut lost = 0;
    let mut stranded = 0;

    for entry in &schedule.entries {
        for &u in &entry.senders {
            if !covered.contains(u.idx()) {
                stranded += 1;
                continue;
            }
            for &v in topo.neighbors(u) {
                if covered.contains(v.idx()) {
                    continue;
                }
                // Draw in [0,1): delivered iff above the loss threshold.
                let draw = (splitmix64(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
                if draw < loss {
                    lost += 1;
                } else {
                    covered.insert(v.idx());
                }
            }
        }
    }
    LossyOutcome {
        covered,
        lost_deliveries: lost,
        stranded_transmissions: stranded,
    }
}

/// Mean coverage over `trials` independent loss replays.
pub fn mean_coverage(
    topo: &Topology,
    schedule: &Schedule,
    loss: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(trials > 0);
    (0..trials)
        .map(|t| {
            replay_lossy(topo, schedule, loss, seed.wrapping_add(t as u64)).coverage(topo.len())
        })
        .sum::<f64>()
        / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{run_instance, Algorithm, Regime};
    use mlbs_core::SearchConfig;
    use wsn_topology::deploy::SyntheticDeployment;

    fn schedule_for(n: usize, seed: u64) -> (wsn_topology::Topology, Schedule) {
        let (topo, src) = SyntheticDeployment::paper(n).sample(seed);
        let s = wsn_baselines::schedule_26_approx(&topo, src);
        (topo, s)
    }

    #[test]
    fn zero_loss_is_lossless() {
        let (topo, s) = schedule_for(100, 1);
        let out = replay_lossy(&topo, &s, 0.0, 42);
        assert!(out.covered.is_full());
        assert_eq!(out.lost_deliveries, 0);
        assert_eq!(out.stranded_transmissions, 0);
    }

    #[test]
    fn full_loss_reaches_nobody() {
        let (topo, s) = schedule_for(80, 2);
        let out = replay_lossy(&topo, &s, 1.0, 42);
        assert_eq!(out.covered.len(), 1, "only the source holds the message");
        assert!(out.lost_deliveries > 0);
    }

    #[test]
    fn coverage_decreases_with_loss() {
        let (topo, s) = schedule_for(150, 3);
        let c05 = mean_coverage(&topo, &s, 0.05, 20, 7);
        let c30 = mean_coverage(&topo, &s, 0.30, 20, 7);
        assert!(c05 > c30, "coverage {c05:.3} vs {c30:.3}");
        assert!(c05 > 0.5);
    }

    #[test]
    fn sparse_schedules_are_more_fragile() {
        // The minimum-latency schedules transmit less, so under loss they
        // cover *less* than the redundant baseline — the §VI reliability
        // trade-off, measured.
        let (topo, src) = SyntheticDeployment::paper(200).sample(4);
        let cfg = SearchConfig::default();
        let _ = run_instance(&topo, src, Regime::Sync, Algorithm::GOpt, 0, &cfg);
        let lean = mlbs_core::solve_gopt(&topo, src, &wsn_dutycycle::AlwaysAwake, &cfg).schedule;
        let redundant = wsn_baselines::schedule_26_approx(&topo, src);
        assert!(lean.transmission_count() <= redundant.transmission_count());
        let c_lean = mean_coverage(&topo, &lean, 0.2, 30, 11);
        let c_red = mean_coverage(&topo, &redundant, 0.2, 30, 11);
        // Not asserted strictly (both lose coverage); report-style check:
        // both are hurt, and the lean schedule is not *more* robust.
        assert!(
            c_lean <= c_red + 0.05,
            "lean {c_lean:.3} vs redundant {c_red:.3}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let (topo, s) = schedule_for(100, 5);
        let a = replay_lossy(&topo, &s, 0.2, 9).covered.to_vec();
        let b = replay_lossy(&topo, &s, 0.2, 9).covered.to_vec();
        assert_eq!(a, b);
    }
}
