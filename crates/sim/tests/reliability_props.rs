//! Property tests for the ε-reliability tier end to end: for any
//! (instance, conflict model, quality) triple, the planned schedule
//! verifies under the model's exact semantics with every per-node
//! delivery bound at `1 − ε`, and the bound is *honest* — each node's
//! empirical miss rate across seeded per-link lossy replays stays
//! within the binomial tail of `ε` (the replay grants overhearing the
//! bound does not credit, so the analytic side is the conservative one).

use proptest::prelude::*;
use wsn_anytime::{solve_anytime_reliable, AnytimeConfig, Budget};
use wsn_dutycycle::AlwaysAwake;
use wsn_phy::{PhyModelSpec, SinrParams};
use wsn_sim::replay_lossy_quality;
use wsn_topology::deploy::SyntheticDeployment;
use wsn_topology::{LinkQuality, LinkQualityParams};

const EPSILON: f64 = 0.01;

fn budget(iters: u64) -> AnytimeConfig {
    AnytimeConfig {
        budget: Budget::Iterations(iters),
        ..AnytimeConfig::default()
    }
}

/// Moderate heterogeneous quality: clean short links, marginal far
/// links, no flaky subset — the regime the planner must handle without
/// degenerate repeat counts.
fn quality_for(topo: &wsn_topology::Topology, seed: u64) -> LinkQuality {
    let params = LinkQualityParams {
        loss_near: 0.01,
        loss_far: 0.10,
        gamma: 1.5,
        flaky_fraction: 0.0,
        flaky_extra_loss: 0.0,
    };
    LinkQuality::synthetic(topo, &params, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any (instance, model): the ε-plan verifies under the exact model
    /// semantics — repeats never introduce a conflict the lossless
    /// schedule did not have — and the reliability report meets `1 − ε`.
    #[test]
    fn reliable_schedules_verify_under_every_model(
        seed in 0..48u64,
        n in 40usize..100,
        model_ix in 0usize..3,
    ) {
        let (topo, src) = SyntheticDeployment::paper(n).sample(seed);
        let spec = match model_ix {
            0 => PhyModelSpec::protocol(),
            1 => PhyModelSpec::sinr(SinrParams::calibrated(topo.radius(), 3.0, 1.5)),
            _ => PhyModelSpec::protocol().with_channels(3),
        };
        let model = spec.build(&topo);
        let quality = quality_for(&topo, seed ^ 0x9A11);
        let out = solve_anytime_reliable(
            &topo, src, &AlwaysAwake, &model, &quality, EPSILON, &budget(2_000),
        );
        prop_assert!(out.meets_target, "{}: plan must reach 1 − ε", spec.label());
        let report = out
            .schedule
            .verify_reliability(&topo, &AlwaysAwake, &model, &quality, EPSILON);
        let report = match report {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!(
                "{}: reliability verification failed: {e:?}", spec.label()))),
        };
        prop_assert!(report.min_delivery >= 1.0 - EPSILON);
        prop_assert!(report.mean_delivery >= report.min_delivery);
        prop_assert_eq!(report.slot_budget, out.schedule.slot_budget());
    }

    /// The bound is honest against the replay, checked per node: with the
    /// plan promising delivery ≥ `1 − ε`, each node's miss count over `T`
    /// seeded per-link lossy replays is Binomial(T, ≤ε) — mean `Tε` with a
    /// far Poisson tail. A cap of 8 misses in 64 trials has false-alarm
    /// probability ~7e-7 per node if the bound holds, and trips reliably
    /// if any node's true delivery is materially below it. (A plain mean-
    /// coverage assertion is unsound at this scale: one bound-compliant
    /// near-root strand in a dozen trials drags the mean below `1 − ε`.)
    #[test]
    fn empirical_coverage_clears_the_bound(seed in 0..48u64, n in 40usize..100) {
        const TRIALS: u64 = 64;
        const MISS_CAP: u32 = 8;
        let (topo, src) = SyntheticDeployment::paper(n).sample(seed);
        let quality = quality_for(&topo, seed ^ 0x9A11);
        let out = solve_anytime_reliable(
            &topo, src, &AlwaysAwake, &wsn_phy::ProtocolModel, &quality, EPSILON,
            &budget(2_000),
        );
        prop_assert!(out.meets_target);
        let mut misses = vec![0u32; topo.len()];
        for t in 0..TRIALS {
            let replay = replay_lossy_quality(
                &topo, &out.schedule, &quality, (seed ^ 0x5EED).wrapping_add(t),
            );
            for v in topo.nodes() {
                if !replay.covered.contains(v.idx()) {
                    misses[v.idx()] += 1;
                }
            }
        }
        for v in topo.nodes() {
            prop_assert!(
                misses[v.idx()] <= MISS_CAP,
                "node {v:?} missed {}/{TRIALS} replays against a {:.4} bound",
                misses[v.idx()],
                out.report.per_node[v.idx()]
            );
        }
    }
}
