//! Minimum-latency broadcast scheduling with conflict awareness.
//!
//! This crate implements the contribution of *Jiang, Wu, Guo, Wu, Kline,
//! Wang — "Minimum Latency Broadcasting with Conflict Awareness in Wireless
//! Sensor Networks" (ICPP 2012)*: a pipelined, conflict-aware broadcast
//! scheduling discipline for wireless sensor networks, in both the
//! round-based synchronous and the asynchronous duty-cycle timing regimes.
//!
//! # The model
//!
//! A broadcast from a source `s` proceeds in *advances*: in each round/slot
//! one conflict-free set of informed senders (a *color*, Eq. 1) transmits,
//! and every uninformed neighbor of a sender receives. The defining idea of
//! the paper is that after every advance the candidate relays are
//! **re-colored against the current informed set `W`** — backed-off relays
//! compete again next slot together with freshly informed nodes, forming a
//! pipeline instead of the per-BFS-layer barrier of prior schemes.
//!
//! # Schedulers (Algorithm 3)
//!
//! * [`solve_opt`] — the OPT target: exact minimization of the time counter
//!   `M` (Eq. 4) branching over *every* admissible color (maximal
//!   conflict-free sender sets; Eq. 5/6). Exponential in the worst case;
//!   a branch cap turns it into a beam search whose result is still a
//!   valid schedule and an upper bound on true OPT (see DESIGN.md).
//! * [`solve_gopt`] — the G-OPT target: the same recursion restricted to
//!   the classes of the extended greedy color scheme (Eq. 7/8).
//! * [`EModel`] + [`run_pipeline`] — the practical scheme: a proactive
//!   4-tuple `E_i(u)` estimating the delay from `u` to the network edge in
//!   each quadrant (Algorithm 2; Eq. 9 sync / Eq. 11 duty-cycle) drives the
//!   color selection (Eq. 10) in a single forward pass.
//!
//! Both timing regimes run through the same code paths, parameterized by a
//! [`wsn_dutycycle::WakeSchedule`]: the synchronous system is simply the
//! [`wsn_dutycycle::AlwaysAwake`] schedule (`r = 1`).
//!
//! # Entry points
//!
//! ```
//! use mlbs_core::{run_pipeline, EModel, EModelSelector, PipelineConfig};
//! use wsn_dutycycle::AlwaysAwake;
//! use wsn_topology::fixtures;
//!
//! let f = fixtures::fig1();
//! let emodel = EModel::build(&f.topo, &AlwaysAwake);
//! let schedule = run_pipeline(
//!     &f.topo,
//!     f.source,
//!     &AlwaysAwake,
//!     &mut EModelSelector::new(&emodel),
//!     &PipelineConfig::default(),
//! );
//! assert_eq!(schedule.latency(), 3); // the paper's optimum for Figure 1
//! schedule.verify(&f.topo, &AlwaysAwake).unwrap();
//! ```

pub mod bounds;
mod emodel;
mod pipeline;
mod reliability;
mod schedule;
mod search;
mod trace;

pub use emodel::{EModel, EModelSelector, EModelStats, ScalarESelector, ScalarEdgeDistance};
pub use pipeline::{
    run_pipeline, run_pipeline_model, run_pipeline_with, ColorSelector, MaxReceiversSelector,
    PipelineConfig,
};
pub use reliability::{ReliabilityError, ReliabilityReport};
pub use schedule::{Schedule, ScheduleEntry, ScheduleError};
pub use search::{
    solve_gopt, solve_gopt_model, solve_gopt_with, solve_opt, solve_opt_model, solve_opt_with,
    BranchOrder, SearchConfig, SearchOutcome, SearchStats,
};
pub use trace::{SearchTrace, TraceState};

// The broadcast-state substrate every scheduler threads through; re-exported
// so consumers of the schedulers can hold one without a direct
// `wsn-coloring` dependency.
pub use wsn_coloring::BroadcastState;
