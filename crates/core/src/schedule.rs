//! Broadcast schedules and their verification.

use wsn_bitset::NodeSet;
use wsn_dutycycle::{Slot, WakeSchedule};
use wsn_phy::{ConflictModel, ProtocolModel};
use wsn_topology::{NodeId, Topology};

/// One advance: a conflict-free sender set launched in a slot. Under a
/// multi-channel model the slot may carry several sender groups, one per
/// orthogonal channel, recorded in `channels`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// The slot of the transmission.
    pub slot: Slot,
    /// The senders (one color, or one group per channel), ascending by
    /// node id.
    pub senders: Vec<NodeId>,
    /// Channel of each sender, parallel to `senders`. Empty means "all on
    /// channel 0" — the single-channel system, and the shape of every
    /// schedule produced under a `channels() == 1` model.
    pub channels: Vec<u8>,
}

impl ScheduleEntry {
    /// A single-channel advance (`channels` empty).
    pub fn new(slot: Slot, senders: Vec<NodeId>) -> ScheduleEntry {
        ScheduleEntry {
            slot,
            senders,
            channels: Vec::new(),
        }
    }

    /// The channel of sender `i` (0 when the entry is single-channel).
    #[inline]
    pub fn channel_of(&self, i: usize) -> u8 {
        self.channels.get(i).copied().unwrap_or(0)
    }
}

/// A complete broadcast schedule: which conflict-free set transmits in
/// which slot, from the source's first sending slot `t_s` until coverage.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// The broadcast source.
    pub source: NodeId,
    /// The source's first sending slot (`t_s`).
    pub start: Slot,
    /// Advances in strictly increasing slot order.
    pub entries: Vec<ScheduleEntry>,
    /// Slot in which each node became informed (`start` for the source).
    pub receive_slot: Vec<Slot>,
    /// Per-entry repeat counts, parallel to `entries` — the ε-reliability
    /// retransmission budget. Entry `i` occupies the slot range
    /// `[slot, slot + repeats[i])`: its sender set re-fires in each slot of
    /// the range (skipping slots where a sender is asleep or not yet
    /// informed), and the next entry's range must start strictly after.
    /// Empty means "every entry fires exactly once" — the lossless system
    /// and the shape of every schedule the lossless schedulers produce, so
    /// all historical paths stay bit-identical. See
    /// [`Schedule::verify_reliability`] for the objective the repeats buy.
    pub repeats: Vec<u32>,
}

impl Schedule {
    /// The repeat count of entry `i` (1 when `repeats` is empty).
    #[inline]
    pub fn repeat_of(&self, i: usize) -> u32 {
        self.repeats.get(i).copied().unwrap_or(1)
    }

    /// The last slot entry `i` occupies (`slot` itself without repeats).
    #[inline]
    pub fn entry_end(&self, i: usize) -> Slot {
        self.entries[i].slot + Slot::from(self.repeat_of(i).max(1)) - 1
    }

    /// Total occupied slots across all entries (the retransmission *slot
    /// budget* reliability comparisons hold fixed); equals the entry count
    /// for a repeat-free schedule.
    pub fn slot_budget(&self) -> u64 {
        if self.repeats.is_empty() {
            return self.entries.len() as u64;
        }
        self.repeats.iter().map(|&r| u64::from(r.max(1))).sum()
    }

    /// The slot of the last transmission (`t_e` in Eq. 4; `M(N, t) = t−1`
    /// makes the counter equal the final transmission slot). Repeat slots
    /// count: with repeats the completion slot is the end of the last
    /// entry's occupied range.
    ///
    /// # Panics
    ///
    /// Panics on a schedule with no entries (a 1-node broadcast needs no
    /// transmission; callers special-case it).
    pub fn completion_slot(&self) -> Slot {
        assert!(!self.entries.is_empty(), "schedule has no transmissions");
        self.entry_end(self.entries.len() - 1)
    }

    /// End-to-end latency in rounds/slots: `t_e − t_s + 1`, the elapsed
    /// number of slots from the source's first transmission through the
    /// last. This is the `P(A)` the paper reports when `t_s = 1`.
    pub fn latency(&self) -> Slot {
        if self.entries.is_empty() {
            return 0;
        }
        self.completion_slot() - self.start + 1
    }

    /// Total number of transmissions (channel uses) across all advances —
    /// the redundancy metric of broadcast-storm discussions. Each repeat
    /// slot re-fires the entry's whole sender set, so repeats multiply.
    pub fn transmission_count(&self) -> usize {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| e.senders.len() * self.repeat_of(i).max(1) as usize)
            .sum()
    }

    /// Replays the schedule and checks every legality condition under the
    /// paper's protocol model, single channel. Verified schedules are
    /// exactly those executable on the paper's network model:
    ///
    /// 1. entries are in strictly increasing slot order, none before `t_s`;
    /// 2. every sender is informed before its slot, awake in it
    ///    (`slot ∈ T(u)`), and transmits at most once over the schedule;
    /// 3. no two concurrent senders share an uninformed neighbor — checked
    ///    independently of the scheduler via receiver-side collision
    ///    resolution;
    /// 4. every node is informed by the end (full coverage).
    ///
    /// Schedules produced under another conflict regime (SINR,
    /// multi-channel) must be checked with
    /// [`Schedule::verify_with_model`] instead — this entry point rejects
    /// any entry that uses a channel other than 0.
    pub fn verify<S: WakeSchedule>(&self, topo: &Topology, wake: &S) -> Result<(), ScheduleError> {
        self.verify_with_model(topo, wake, &ProtocolModel)
    }

    /// As [`Schedule::verify`], under an arbitrary [`ConflictModel`]:
    /// reception is resolved by the model (SINR capture, …) **per channel
    /// group**, every used channel must exist (`< model.channels()`), and
    /// a collision inside any group is an error. The informed set grows by
    /// the union of the groups' clean receptions.
    pub fn verify_with_model<S: WakeSchedule, M: ConflictModel>(
        &self,
        topo: &Topology,
        wake: &S,
        model: &M,
    ) -> Result<(), ScheduleError> {
        self.verify_covering_with_model(topo, wake, model, None)
    }

    /// As [`Schedule::verify_with_model`], over the subgraph that survives
    /// removing `excluded` (dead nodes under churn): excluded nodes may
    /// never transmit, don't count as collision victims or uninformed
    /// witnesses, and are not owed coverage. `excluded = None` is exactly
    /// full verification — the repair tier checks its output with the same
    /// replay the lossless tier uses.
    pub fn verify_covering_with_model<S: WakeSchedule, M: ConflictModel>(
        &self,
        topo: &Topology,
        wake: &S,
        model: &M,
        excluded: Option<&NodeSet>,
    ) -> Result<(), ScheduleError> {
        let n = topo.len();
        if !self.repeats.is_empty()
            && (self.repeats.len() != self.entries.len() || self.repeats.contains(&0))
        {
            return Err(ScheduleError::RepeatArity);
        }
        let mut informed = NodeSet::new(n);
        informed.insert(self.source.idx());
        if let Some(dead) = excluded {
            if dead.contains(self.source.idx()) {
                return Err(ScheduleError::ExcludedSender {
                    node: self.source,
                    slot: self.start,
                });
            }
            informed.union_with(dead);
        }
        let mut has_sent = NodeSet::new(n);
        let mut prev_slot: Option<Slot> = None;

        for (ei, entry) in self.entries.iter().enumerate() {
            if entry.slot < self.start {
                return Err(ScheduleError::BeforeStart { slot: entry.slot });
            }
            // With repeats an entry occupies `[slot, entry_end]`; the next
            // entry must start strictly after the whole range.
            if let Some(p) = prev_slot {
                if entry.slot <= p {
                    return Err(ScheduleError::NonMonotonicSlots {
                        prev: p,
                        next: entry.slot,
                    });
                }
            }
            prev_slot = Some(self.entry_end(ei));

            if entry.senders.is_empty() {
                return Err(ScheduleError::EmptyAdvance { slot: entry.slot });
            }
            if !entry.channels.is_empty() && entry.channels.len() != entry.senders.len() {
                return Err(ScheduleError::ChannelArity { slot: entry.slot });
            }

            // One sender bitset per used channel, built while the
            // per-sender conditions are checked.
            let mut groups: Vec<(u8, NodeSet)> = Vec::new();
            for (i, &u) in entry.senders.iter().enumerate() {
                if excluded.is_some_and(|dead| dead.contains(u.idx())) {
                    return Err(ScheduleError::ExcludedSender {
                        node: u,
                        slot: entry.slot,
                    });
                }
                if !informed.contains(u.idx()) {
                    return Err(ScheduleError::UninformedSender {
                        node: u,
                        slot: entry.slot,
                    });
                }
                if !wake.can_send(u.idx(), entry.slot) {
                    return Err(ScheduleError::AsleepSender {
                        node: u,
                        slot: entry.slot,
                    });
                }
                if has_sent.contains(u.idx()) {
                    return Err(ScheduleError::DuplicateSender { node: u });
                }
                has_sent.insert(u.idx());
                let c = entry.channel_of(i);
                if u32::from(c) >= model.channels() {
                    return Err(ScheduleError::BadChannel {
                        node: u,
                        slot: entry.slot,
                        channel: c,
                    });
                }
                match groups.iter_mut().find(|(gc, _)| *gc == c) {
                    Some((_, set)) => {
                        set.insert(u.idx());
                    }
                    None => {
                        let mut set = NodeSet::new(n);
                        set.insert(u.idx());
                        groups.push((c, set));
                    }
                }
            }

            // All groups transmit simultaneously against the same W̄; a
            // receiver is served when any channel delivers to it cleanly.
            let uninformed = informed.complement();
            let mut received = NodeSet::new(n);
            for (_, senders) in &groups {
                let outcome = model.resolve_receptions(topo, senders, &uninformed);
                if let Some(victim) = outcome.collided.min() {
                    return Err(ScheduleError::Collision {
                        victim: NodeId(victim as u32),
                        slot: entry.slot,
                    });
                }
                received.union_with(&outcome.received);
            }
            informed.union_with(&received);
        }

        if !informed.is_full() {
            let missing = informed.complement().min().expect("non-full set");
            return Err(ScheduleError::Incomplete {
                node: NodeId(missing as u32),
            });
        }
        Ok(())
    }

    /// The informed set after replaying the first `k` entries (diagnostic
    /// helper used by traces and visualization).
    pub fn informed_after(&self, topo: &Topology, k: usize) -> NodeSet {
        let mut informed = NodeSet::new(topo.len());
        informed.insert(self.source.idx());
        for entry in self.entries.iter().take(k) {
            for &u in &entry.senders {
                let mut recv = topo.neighbor_set(u).clone();
                recv.difference_with(&informed);
                informed.union_with(&recv);
            }
        }
        informed
    }
}

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A transmission precedes the source's start slot.
    BeforeStart { slot: Slot },
    /// Entries are not strictly increasing in slot.
    NonMonotonicSlots { prev: Slot, next: Slot },
    /// An entry with no senders.
    EmptyAdvance { slot: Slot },
    /// A sender transmits before being informed.
    UninformedSender { node: NodeId, slot: Slot },
    /// A sender transmits in a slot where its sending channel is off.
    AsleepSender { node: NodeId, slot: Slot },
    /// A node transmits twice.
    DuplicateSender { node: NodeId },
    /// Two concurrent senders collide at an uninformed node.
    Collision { victim: NodeId, slot: Slot },
    /// Some node never receives the message.
    Incomplete { node: NodeId },
    /// A sender uses a channel the model does not provide.
    BadChannel {
        node: NodeId,
        slot: Slot,
        channel: u8,
    },
    /// An entry's channel list does not match its sender list.
    ChannelArity { slot: Slot },
    /// A non-empty repeat list does not match the entry list, or contains a
    /// zero repeat count.
    RepeatArity,
    /// An excluded (dead) node transmits, or the source itself is excluded.
    ExcludedSender { node: NodeId, slot: Slot },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::BeforeStart { slot } => {
                write!(f, "transmission at slot {slot} precedes the start slot")
            }
            ScheduleError::NonMonotonicSlots { prev, next } => {
                write!(f, "slot {next} does not follow slot {prev}")
            }
            ScheduleError::EmptyAdvance { slot } => write!(f, "empty advance at slot {slot}"),
            ScheduleError::UninformedSender { node, slot } => {
                write!(f, "node {node} transmits at slot {slot} before receiving")
            }
            ScheduleError::AsleepSender { node, slot } => {
                write!(f, "node {node} transmits at slot {slot} while asleep")
            }
            ScheduleError::DuplicateSender { node } => {
                write!(f, "node {node} transmits more than once")
            }
            ScheduleError::Collision { victim, slot } => {
                write!(f, "collision at node {victim} in slot {slot}")
            }
            ScheduleError::Incomplete { node } => {
                write!(f, "node {node} never receives the message")
            }
            ScheduleError::BadChannel {
                node,
                slot,
                channel,
            } => {
                write!(
                    f,
                    "node {node} transmits at slot {slot} on nonexistent channel {channel}"
                )
            }
            ScheduleError::ChannelArity { slot } => {
                write!(f, "entry at slot {slot} has mismatched channel list")
            }
            ScheduleError::RepeatArity => {
                write!(f, "repeat list does not match entries or contains zero")
            }
            ScheduleError::ExcludedSender { node, slot } => {
                write!(f, "excluded (dead) node {node} transmits at slot {slot}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_dutycycle::{AlwaysAwake, ExplicitSchedule};
    use wsn_topology::fixtures;

    /// The Table II schedule for Figure 2(a): slot 1 node "1" transmits,
    /// slot 2 node "2" transmits.
    fn table2_schedule() -> (Schedule, wsn_topology::fixtures::Fixture) {
        let f = fixtures::fig2a();
        let s = Schedule {
            source: f.source,
            start: 1,
            entries: vec![
                ScheduleEntry::new(1, vec![f.id("1")]),
                ScheduleEntry::new(2, vec![f.id("2")]),
            ],
            receive_slot: vec![1, 2, 2, 3, 3],
            repeats: Vec::new(),
        };
        (s, f)
    }

    #[test]
    fn paper_optimal_fig2a_verifies() {
        let (s, f) = table2_schedule();
        s.verify(&f.topo, &AlwaysAwake).unwrap();
        assert_eq!(s.latency(), 2);
        assert_eq!(s.completion_slot(), 2);
        assert_eq!(s.transmission_count(), 2);
    }

    #[test]
    fn conflicting_senders_rejected() {
        let f = fixtures::fig2a();
        // Launching "2" and "3" together collides at "4".
        let s = Schedule {
            source: f.source,
            start: 1,
            entries: vec![
                ScheduleEntry::new(1, vec![f.id("1")]),
                ScheduleEntry::new(2, vec![f.id("2"), f.id("3")]),
            ],
            receive_slot: vec![],
            repeats: Vec::new(),
        };
        let err = s.verify(&f.topo, &AlwaysAwake).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::Collision {
                victim: f.id("4"),
                slot: 2
            }
        );
    }

    #[test]
    fn uninformed_sender_rejected() {
        let f = fixtures::fig2a();
        let s = Schedule {
            source: f.source,
            start: 1,
            entries: vec![ScheduleEntry::new(1, vec![f.id("2")])],
            receive_slot: vec![],
            repeats: Vec::new(),
        };
        assert!(matches!(
            s.verify(&f.topo, &AlwaysAwake).unwrap_err(),
            ScheduleError::UninformedSender { .. }
        ));
    }

    #[test]
    fn asleep_sender_rejected() {
        let (s, f) = table2_schedule();
        // Node "1" (id 0) only wakes at slot 3 — its slot-1 transmission is
        // illegal under this duty cycle.
        let wake = ExplicitSchedule::new(vec![vec![3], vec![2], vec![2], vec![2], vec![2]], 10);
        assert!(matches!(
            s.verify(&f.topo, &wake).unwrap_err(),
            ScheduleError::AsleepSender { .. }
        ));
    }

    #[test]
    fn incomplete_coverage_rejected() {
        let f = fixtures::fig2a();
        let s = Schedule {
            source: f.source,
            start: 1,
            entries: vec![ScheduleEntry::new(1, vec![f.id("1")])],
            receive_slot: vec![],
            repeats: Vec::new(),
        };
        assert!(matches!(
            s.verify(&f.topo, &AlwaysAwake).unwrap_err(),
            ScheduleError::Incomplete { .. }
        ));
    }

    #[test]
    fn slot_order_enforced() {
        let (mut s, f) = table2_schedule();
        s.entries.swap(0, 1);
        assert!(matches!(
            s.verify(&f.topo, &AlwaysAwake).unwrap_err(),
            // Node "2" now transmits at slot 2 before anything reached it…
            // except slot order is checked per entry as we replay: the
            // swapped order fails monotonicity first.
            ScheduleError::UninformedSender { .. } | ScheduleError::NonMonotonicSlots { .. }
        ));
    }

    #[test]
    fn informed_after_replays_prefixes() {
        let (s, f) = table2_schedule();
        let w0 = s.informed_after(&f.topo, 0);
        assert_eq!(w0.to_vec(), vec![f.source.idx()]);
        let w1 = s.informed_after(&f.topo, 1);
        assert_eq!(w1.len(), 3);
        let w2 = s.informed_after(&f.topo, 2);
        assert!(w2.is_full());
    }

    #[test]
    fn multichannel_entry_verifies_under_its_model() {
        use wsn_phy::{MultiChannel, ProtocolModel};
        let f = fixtures::fig2a();
        // "2" and "3" conflict at "4" on one channel — but on two channels
        // they may fire in the same slot.
        let s = Schedule {
            source: f.source,
            start: 1,
            entries: vec![
                ScheduleEntry::new(1, vec![f.id("1")]),
                ScheduleEntry {
                    slot: 2,
                    senders: vec![f.id("2"), f.id("3")],
                    channels: vec![0, 1],
                },
            ],
            receive_slot: vec![1, 2, 2, 2, 2],
            repeats: Vec::new(),
        };
        let two = MultiChannel::new(ProtocolModel, 2);
        s.verify_with_model(&f.topo, &AlwaysAwake, &two).unwrap();
        // The single-channel verifier rejects the channel-1 transmission…
        assert!(matches!(
            s.verify(&f.topo, &AlwaysAwake).unwrap_err(),
            ScheduleError::BadChannel { channel: 1, .. }
        ));
        // …and a mismatched channel list is rejected outright.
        let mut bad = s.clone();
        bad.entries[1].channels = vec![0];
        assert!(matches!(
            bad.verify_with_model(&f.topo, &AlwaysAwake, &two)
                .unwrap_err(),
            ScheduleError::ChannelArity { slot: 2 }
        ));
        // Same-channel conflicting senders still collide.
        let mut collide = s.clone();
        collide.entries[1].channels = vec![0, 0];
        assert!(matches!(
            collide
                .verify_with_model(&f.topo, &AlwaysAwake, &two)
                .unwrap_err(),
            ScheduleError::Collision { slot: 2, .. }
        ));
    }

    #[test]
    fn covering_verification_masks_dead_nodes() {
        use wsn_phy::ProtocolModel;
        let f = fixtures::fig2a();
        // Kill node "5" (a leaf): the lossless schedule minus its coverage
        // obligation still verifies, and the full verifier still demands it.
        let dead_leaf = f.id("5");
        let s = Schedule {
            source: f.source,
            start: 1,
            entries: vec![
                ScheduleEntry::new(1, vec![f.id("1")]),
                ScheduleEntry::new(2, vec![f.id("2")]),
            ],
            receive_slot: vec![1, 2, 2, 3, 3],
            repeats: Vec::new(),
        };
        let mut dead = NodeSet::new(f.topo.len());
        dead.insert(dead_leaf.idx());
        s.verify_covering_with_model(&f.topo, &AlwaysAwake, &ProtocolModel, Some(&dead))
            .unwrap();
        // A dead sender is rejected outright.
        let mut dead_sender = NodeSet::new(f.topo.len());
        dead_sender.insert(f.id("2").idx());
        assert!(matches!(
            s.verify_covering_with_model(&f.topo, &AlwaysAwake, &ProtocolModel, Some(&dead_sender))
                .unwrap_err(),
            ScheduleError::ExcludedSender { .. }
        ));
        // A dead source is rejected outright.
        let mut dead_src = NodeSet::new(f.topo.len());
        dead_src.insert(f.source.idx());
        assert!(matches!(
            s.verify_covering_with_model(&f.topo, &AlwaysAwake, &ProtocolModel, Some(&dead_src))
                .unwrap_err(),
            ScheduleError::ExcludedSender { .. }
        ));
    }

    #[test]
    fn empty_schedule_latency_zero() {
        let s = Schedule {
            source: NodeId(0),
            start: 1,
            entries: vec![],
            receive_slot: vec![1],
            repeats: Vec::new(),
        };
        assert_eq!(s.latency(), 0);
    }
}
