//! Analytical bounds: Theorem 1 and the baselines' guarantees.
//!
//! Theorem 1 bounds the minimum-latency broadcast at `d + 2` rounds in the
//! round-based system and `2r(d + 2)` slots in the duty-cycle system, where
//! `d` is the source's eccentricity. Figures 3, 5 and 7 plot these curves
//! (`OPT-analysis`) against the approximation baselines' guarantees:
//! `26·d` for the synchronous 26-approximation of \[2\] and `17·k·d` for
//! the duty-cycle 17-approximation of \[12\], with `k` the maximum wait
//! between any pair of neighbors.

use wsn_bitset::NodeSet;
use wsn_dutycycle::{Slot, WakeSchedule};
use wsn_topology::{metrics, NodeId, Topology};

/// Theorem 1, round-based system: `P(A) − t_s + 1 ≤ d + 2` rounds.
pub fn opt_bound_sync(eccentricity: u32) -> Slot {
    eccentricity as Slot + 2
}

/// Theorem 1, duty-cycle system: `P(A) − t_s + 1 ≤ 2r(d + 2)` slots.
pub fn opt_bound_duty(eccentricity: u32, rate: u32) -> Slot {
    2 * rate as Slot * (eccentricity as Slot + 2)
}

/// The 26-approximation guarantee of Chen et al. \[2\]: latency at most
/// `26·d` rounds.
pub fn bound_26_approx(eccentricity: u32) -> Slot {
    26 * eccentricity as Slot
}

/// The 17-approximation guarantee of Jiao et al. \[12\]: latency at most
/// `17·k·d` slots, `k` being the maximum wait slots required between any
/// pair of neighboring nodes.
pub fn bound_17_approx(eccentricity: u32, max_wait: Slot) -> Slot {
    17 * max_wait * eccentricity as Slot
}

/// Measures `k` for [`bound_17_approx`] on a concrete instance: the
/// maximum, over all directed neighbor pairs, of the worst-case CWT.
pub fn max_neighbor_wait<S: WakeSchedule>(topo: &Topology, wake: &S) -> Slot {
    let mut k = 1;
    for (u, v) in topo.csr().edges() {
        k = k.max(wake.max_cwt(u.idx(), v.idx()));
        k = k.max(wake.max_cwt(v.idx(), u.idx()));
    }
    k
}

/// Admissible lower bound on the remaining broadcast delay from informed
/// set `W`: the farthest uninformed node in hops. Each slot launches at
/// most one conflict-free advance, which extends the informed set by at
/// most one hop, so at least `h` further slots are needed to reach a node
/// `h` hops away. Used by the branch-and-bound searches.
pub fn remaining_hops_lower_bound(topo: &Topology, informed: &NodeSet) -> Slot {
    remaining_hops_profile(topo, informed).0
}

/// As [`remaining_hops_lower_bound`], additionally returning the per-node
/// BFS hop distances from `W` that the bound was computed from. The search
/// reuses the profile to score branch orderings (deep uninformed nodes are
/// worth informing first) without running a second BFS per state.
pub fn remaining_hops_profile(topo: &Topology, informed: &NodeSet) -> (Slot, Vec<u32>) {
    let dist = metrics::bfs_hops_from_set(topo, informed);
    let mut far = 0;
    for (u, &d) in dist.iter().enumerate() {
        if informed.contains(u) {
            continue;
        }
        debug_assert_ne!(
            d,
            metrics::UNREACHABLE,
            "lower bound undefined on disconnected instances"
        );
        far = far.max(d);
    }
    (far as Slot, dist)
}

/// Eccentricity of the source, the `d` every bound is phrased in.
///
/// # Panics
///
/// Panics when the topology is disconnected.
pub fn source_eccentricity(topo: &Topology, source: NodeId) -> u32 {
    metrics::eccentricity(topo, source).expect("bounds require a connected topology")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_dutycycle::{AlwaysAwake, WindowedRandom};
    use wsn_topology::{deploy, fixtures};

    #[test]
    fn theorem1_values() {
        assert_eq!(opt_bound_sync(3), 5);
        assert_eq!(opt_bound_duty(3, 10), 100);
        assert_eq!(opt_bound_duty(5, 50), 700);
        assert_eq!(bound_26_approx(4), 104);
        assert_eq!(bound_17_approx(4, 19), 1292);
    }

    #[test]
    fn fig1_respects_theorem1() {
        // Figure 1: d = 3, optimum P(A) = 3 < d + 2 = 5.
        let f = fixtures::fig1();
        let d = source_eccentricity(&f.topo, f.source);
        assert_eq!(d, 3);
        let out = crate::solve_gopt(
            &f.topo,
            f.source,
            &AlwaysAwake,
            &crate::SearchConfig::default(),
        );
        assert!(out.latency < opt_bound_sync(d));
    }

    #[test]
    fn lower_bound_is_admissible_on_fixtures() {
        // On Fig 2(a): from W = {source}, the farthest node is 2 hops away
        // and the optimum is exactly 2.
        let f = fixtures::fig2a();
        let w = NodeSet::from_indices(5, [f.source.idx()]);
        assert_eq!(remaining_hops_lower_bound(&f.topo, &w), 2);
        let out = crate::solve_gopt(
            &f.topo,
            f.source,
            &AlwaysAwake,
            &crate::SearchConfig::default(),
        );
        assert!(out.latency >= 2);
    }

    #[test]
    fn lower_bound_zero_when_one_hop_remains_nowhere() {
        let f = fixtures::fig2a();
        assert_eq!(remaining_hops_lower_bound(&f.topo, &NodeSet::full(5)), 0);
    }

    #[test]
    fn max_neighbor_wait_sync_is_one() {
        let f = fixtures::fig2a();
        assert_eq!(max_neighbor_wait(&f.topo, &AlwaysAwake), 1);
    }

    #[test]
    fn max_neighbor_wait_duty_in_range() {
        let (topo, _) = deploy::SyntheticDeployment::paper(60).sample(2);
        let wake = WindowedRandom::new(topo.len(), 10, 5);
        let k = max_neighbor_wait(&topo, &wake);
        assert!((1..20).contains(&k), "k = {k} outside [1, 2r)");
    }
}
