//! Search traces: the raw material for regenerating Tables II–IV.
//!
//! The paper's tables list, per evaluated task `M(W, t)`: the greedy colors
//! `C_1 … C_λ`, the `M` value considered for each color, the selected
//! color, and the advance. [`SearchTrace`] records exactly that during a
//! search (in first-visit order, which matches the tables' task ordering).

use wsn_dutycycle::Slot;
use wsn_topology::NodeId;

/// One branch considered at a state.
#[derive(Clone, Debug)]
pub struct TraceOption {
    /// The color (sender set) of this branch.
    pub class: Vec<NodeId>,
    /// The evaluated time counter `M(W + C, t + 1)` — the completion slot
    /// `t_e` of the best continuation — or `None` when branch-and-bound
    /// pruned the branch before an exact value was established.
    pub m_value: Option<Slot>,
}

/// One evaluated state `M(W, t)`.
#[derive(Clone, Debug)]
pub struct TraceState {
    /// The informed set, ascending node ids.
    pub informed: Vec<usize>,
    /// The slot of the evaluation.
    pub slot: Slot,
    /// Considered branches in color order. Empty together with a set
    /// `jumped_to` represents the paper's `N/A → φ` rows (no awake
    /// candidate).
    pub options: Vec<TraceOption>,
    /// Index of the branch achieving the minimum, if the state completed.
    pub chosen: Option<usize>,
    /// For duty-cycle states with no awake candidates: the slot the search
    /// jumped to.
    pub jumped_to: Option<Slot>,
}

/// A full search trace in first-visit (preorder) order.
#[derive(Clone, Debug, Default)]
pub struct SearchTrace {
    /// Evaluated states.
    pub states: Vec<TraceState>,
}

impl SearchTrace {
    /// Renders the trace as a Table II/III/IV-style text table, using
    /// `label` to map node ids to the paper's names.
    pub fn render(&self, label: &dyn Fn(NodeId) -> String) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<38} {:<22} {:<30} {:<10} A(W,t)",
            "Task M(W,t)", "colors C1..Cλ", "M in consideration", "selected"
        );
        for st in &self.states {
            let w_str = format!(
                "M({{{}}}, {})",
                st.informed
                    .iter()
                    .map(|&u| label(NodeId(u as u32)))
                    .collect::<Vec<_>>()
                    .join(","),
                st.slot
            );
            if st.options.is_empty() {
                let jump = st
                    .jumped_to
                    .map(|t| format!("jump to {t}"))
                    .unwrap_or_else(|| "-".into());
                let _ = writeln!(
                    out,
                    "{:<38} {:<22} {:<30} {:<10} φ ({jump})",
                    w_str, "N/A", "-", "N/A"
                );
                continue;
            }
            for (i, opt) in st.options.iter().enumerate() {
                let colors = format!(
                    "C{}: {{{}}}",
                    i + 1,
                    opt.class
                        .iter()
                        .map(|&u| label(u))
                        .collect::<Vec<_>>()
                        .join(",")
                );
                let m = opt
                    .m_value
                    .map(|v| format!("M(·,{}) = {}", st.slot + 1, v))
                    .unwrap_or_else(|| "pruned".into());
                let selected = if st.chosen == Some(i) {
                    format!("C{}", i + 1)
                } else {
                    String::new()
                };
                let first_col = if i == 0 { w_str.clone() } else { String::new() };
                let _ = writeln!(
                    out,
                    "{:<38} {:<22} {:<30} {:<10}",
                    first_col, colors, m, selected
                );
            }
        }
        out
    }
}
