//! The pipelined advance engine: one forward pass, re-coloring after every
//! advance.
//!
//! This is the execution discipline shared by the practical schedulers: at
//! each slot, compute the eligible (and awake) candidates against the
//! *current* informed set, run the extended greedy color scheme, ask a
//! [`ColorSelector`] which color to launch, and advance. Unselected relays
//! are re-labeled next slot together with freshly informed nodes — the
//! paper's pipeline (§IV-A). The engine never blocks on a BFS layer.

use crate::schedule::{Schedule, ScheduleEntry};
use wsn_bitset::NodeSet;
use wsn_coloring::BroadcastState;
use wsn_dutycycle::{Slot, WakeSchedule};
use wsn_phy::{ConflictModel, ProtocolModel};
use wsn_topology::{NodeId, Topology};

/// Chooses which greedy color class to launch at each advance.
pub trait ColorSelector {
    /// Returns the index of the class to launch. `classes` is non-empty
    /// and each class is non-empty; `state` is loaded with the current `W`
    /// (so `state.uninformed()` is `W̄` with no per-slot allocation).
    fn select(
        &mut self,
        topo: &Topology,
        state: &BroadcastState,
        classes: &[Vec<NodeId>],
        slot: Slot,
    ) -> usize;
}

/// The plain greedy policy: always launch `C_1`, the class led by the
/// candidate with the most receivers. This is the selector ablated against
/// the E-model (it has no global awareness at all).
#[derive(Clone, Debug, Default)]
pub struct MaxReceiversSelector;

impl ColorSelector for MaxReceiversSelector {
    fn select(
        &mut self,
        _topo: &Topology,
        _state: &BroadcastState,
        _classes: &[Vec<NodeId>],
        _slot: Slot,
    ) -> usize {
        0
    }
}

/// Pipeline execution parameters.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// The slot from which the source may first transmit; the actual start
    /// `t_s` is the source's first sending slot at or after this. The
    /// paper's examples start at 1 (Tables II/III) or 2 (Table IV).
    pub start_from: Slot,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { start_from: 1 }
    }
}

/// Runs the pipelined broadcast from `source` and returns the schedule.
///
/// Works for both timing regimes: with [`wsn_dutycycle::AlwaysAwake`] this
/// is the round-based system; with a duty-cycle schedule, slots where no
/// eligible sender is awake are skipped by jumping straight to the next
/// wake-up among eligible senders (the paper's `N/A → φ` rows in
/// Table IV).
///
/// # Panics
///
/// Panics if the topology is disconnected (the broadcast cannot complete)
/// or `source` is out of range.
pub fn run_pipeline<S: WakeSchedule, C: ColorSelector>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    selector: &mut C,
    config: &PipelineConfig,
) -> Schedule {
    run_pipeline_with(
        topo,
        source,
        wake,
        selector,
        config,
        &mut BroadcastState::new(),
    )
}

/// As [`run_pipeline`], with a caller-provided [`BroadcastState`] so hot
/// loops (sweeps, searches) reuse one substrate — scratch sets, candidate
/// buffers and the incremental conflict graph — across runs instead of
/// allocating per instance.
pub fn run_pipeline_with<S: WakeSchedule, C: ColorSelector>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    selector: &mut C,
    config: &PipelineConfig,
    state: &mut BroadcastState,
) -> Schedule {
    run_pipeline_model(topo, source, wake, &ProtocolModel, selector, config, state)
}

/// As [`run_pipeline_with`], under an arbitrary [`ConflictModel`]: the
/// greedy classes are colored on the model's conflict graph, and with a
/// multi-channel model the selected class transmits on channel 0 while the
/// remaining candidates fill channels `1..K` greedily
/// (`BroadcastState::pack_channels_with`). The default protocol model
/// takes exactly the pre-model code path.
pub fn run_pipeline_model<S: WakeSchedule, C: ColorSelector, M: ConflictModel>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    model: &M,
    selector: &mut C,
    config: &PipelineConfig,
    state: &mut BroadcastState,
) -> Schedule {
    assert!(source.idx() < topo.len(), "source out of range");
    let n = topo.len();
    let t_s = wake.next_send(source.idx(), config.start_from);
    state.reset_for(topo);

    let mut informed = NodeSet::new(n);
    informed.insert(source.idx());
    let mut receive_slot = vec![t_s; n];
    let mut entries: Vec<ScheduleEntry> = Vec::new();
    let mut t = t_s;

    while !informed.is_full() {
        state.load_awake(topo, &informed, wake, t);
        if state.candidates().is_empty() {
            // Jump to the earliest slot at which any eligible sender wakes.
            state.load(topo, &informed);
            let eligible = state.candidates();
            assert!(
                !eligible.is_empty(),
                "broadcast cannot complete: no eligible sender for uninformed nodes \
                 (disconnected topology?)"
            );
            t = eligible
                .iter()
                .map(|u| wake.next_send(u.idx(), t + 1))
                .min()
                .expect("non-empty eligible set");
            continue;
        }

        let classes = state.greedy_classes_with(topo, model);
        let choice = selector.select(topo, state, &classes, t);
        assert!(choice < classes.len(), "selector returned invalid class");
        let (senders, channels) = if model.channels() > 1 {
            state.pack_channels_with(topo, model, &classes[choice])
        } else {
            let mut sorted = classes[choice].clone();
            sorted.sort_unstable();
            (sorted, Vec::new())
        };

        let mut advance = NodeSet::new(n);
        for &u in &senders {
            advance.union_with(topo.neighbor_set(u));
        }
        advance.difference_with(&informed);
        debug_assert!(!advance.is_empty(), "a color always covers someone new");
        for w in advance.iter() {
            receive_slot[w] = t;
        }
        informed.union_with(&advance);

        entries.push(ScheduleEntry {
            slot: t,
            senders,
            channels,
        });
        t += 1;
    }

    Schedule {
        source,
        start: t_s,
        entries,
        receive_slot,
        repeats: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_dutycycle::{AlwaysAwake, ExplicitSchedule};
    use wsn_topology::{deploy, fixtures};

    #[test]
    fn fig2a_greedy_pipeline_achieves_table_ii_optimum() {
        let f = fixtures::fig2a();
        let s = run_pipeline(
            &f.topo,
            f.source,
            &AlwaysAwake,
            &mut MaxReceiversSelector,
            &PipelineConfig::default(),
        );
        s.verify(&f.topo, &AlwaysAwake).unwrap();
        // Table II: P(A) = 2 — and the greedy selector happens to choose
        // node "2" first, which is the optimal branch.
        assert_eq!(s.latency(), 2);
        assert_eq!(s.start, 1);
    }

    #[test]
    fn schedules_always_verify_on_random_instances() {
        for seed in 0..5u64 {
            let d = deploy::SyntheticDeployment::paper(80);
            let (topo, src) = d.sample(seed);
            let s = run_pipeline(
                &topo,
                src,
                &AlwaysAwake,
                &mut MaxReceiversSelector,
                &PipelineConfig::default(),
            );
            s.verify(&topo, &AlwaysAwake).unwrap();
        }
    }

    #[test]
    fn duty_cycle_jumps_over_sleeping_slots() {
        let f = fixtures::fig2a();
        // Table IV timing: source wakes at 2; nodes "2" and "3" wake at 4;
        // "2" again at 13 (r = 10).
        let wake = ExplicitSchedule::new(vec![vec![2], vec![4, 13], vec![4], vec![9], vec![9]], 20);
        let s = run_pipeline(
            &f.topo,
            f.source,
            &wake,
            &mut MaxReceiversSelector,
            &PipelineConfig::default(),
        );
        s.verify(&f.topo, &wake).unwrap();
        assert_eq!(s.start, 2);
        // Slot 2: source; slot 3: nobody awake (the N/A row); slot 4:
        // node "2" covers {4, 5} → done. P(A) = t_e = 4.
        assert_eq!(s.completion_slot(), 4);
        assert_eq!(s.entries.len(), 2);
        assert_eq!(s.entries[1].slot, 4);
    }

    #[test]
    fn single_node_topology_yields_empty_schedule() {
        let topo = wsn_topology::Topology::unit_disk(vec![wsn_geom::Point::new(0.0, 0.0)], 1.0);
        let s = run_pipeline(
            &topo,
            NodeId(0),
            &AlwaysAwake,
            &mut MaxReceiversSelector,
            &PipelineConfig::default(),
        );
        assert!(s.entries.is_empty());
        assert_eq!(s.latency(), 0);
    }

    #[test]
    #[should_panic(expected = "broadcast cannot complete")]
    fn disconnected_topology_panics() {
        let topo = wsn_topology::Topology::unit_disk(
            vec![
                wsn_geom::Point::new(0.0, 0.0),
                wsn_geom::Point::new(9.0, 0.0),
            ],
            1.0,
        );
        run_pipeline(
            &topo,
            NodeId(0),
            &AlwaysAwake,
            &mut MaxReceiversSelector,
            &PipelineConfig::default(),
        );
    }

    #[test]
    fn start_from_is_respected() {
        let f = fixtures::fig2a();
        let s = run_pipeline(
            &f.topo,
            f.source,
            &AlwaysAwake,
            &mut MaxReceiversSelector,
            &PipelineConfig { start_from: 7 },
        );
        assert_eq!(s.start, 7);
        assert_eq!(s.completion_slot(), 8);
        assert_eq!(s.latency(), 2);
    }
}
