//! ε-reliability: what a schedule's repeat slots buy under lossy links.
//!
//! The lossless verifier treats every in-range, collision-free reception as
//! certain. Under a [`LinkQuality`] layer each attempt on edge `(u, w)`
//! succeeds only with probability `q_uw`, so a node served once by a single
//! relay is stranded with probability `1 − q_uw` — and every descendant of a
//! stranded relay is stranded with it. The repeat counts on
//! [`Schedule::repeats`] are the defense: entry `i` re-fires its sender set
//! in each slot of `[slot, slot + repeats[i])` (skipping slots where a
//! sender's duty cycle is off), multiplying each delivery's success odds.
//!
//! # DESIGN: repeat-slot semantics and the product-form bound
//!
//! [`Schedule::delivery_profile`] replays the schedule exactly as
//! [`Schedule::verify_with_model`] does — same per-channel-group
//! [`ConflictModel::resolve_receptions`] resolution, same informed-set
//! growth — and propagates a *delivery lower bound* along the serving tree
//! the replay induces:
//!
//! ```text
//! p_source = 1
//! p_w      = p_u · (1 − (1 − q_uw)^{r_u})
//! ```
//!
//! where `u` is the sender credited with serving `w` and `r_u` is the
//! number of occupied slots in `u`'s entry range where `u` is awake (≥ 1:
//! the first slot is verified awake). This is a lower bound on the true
//! delivery probability for two independent reasons: a node may be in range
//! of *several* non-conflicting senders (under capture models more than one
//! adjacent group member can deliver; we credit only the best single
//! sender), and a node that misses its scheduled serving may still overhear
//! a later repeat. Both slack sources only help, so a schedule whose bound
//! clears `1 − ε` truly delivers to every node with probability ≥ `1 − ε`.
//!
//! # Why this composes with channel assignments
//!
//! Reliability is accounted *per delivery edge*, after the conflict model
//! has resolved which receptions are clean. A multi-channel entry resolves
//! each channel group independently (exactly as verification does), so a
//! `(sender, receiver)` delivery credited here was collision-free *on its
//! channel* — loss and interference never mix. Repeats re-fire the whole
//! entry, channels included, so the repeat slots inherit the entry's
//! conflict-freedom verbatim: if the entry verifies once it verifies in
//! every slot of its range where the senders are awake. That is why
//! [`Schedule::verify_reliability`] is model-generic — it runs the full
//! conflict-model verification first and only then asks whether the
//! probability mass reaches `1 − ε`.

use crate::schedule::{Schedule, ScheduleError};
use wsn_bitset::NodeSet;
use wsn_dutycycle::{Slot, WakeSchedule};
use wsn_phy::ConflictModel;
use wsn_topology::{LinkQuality, NodeId, Topology};

/// Outcome of a successful [`Schedule::verify_reliability`] check: the
/// delivery bound per node plus the aggregate reliability metrics the
/// claims harness reports.
#[derive(Clone, Debug)]
pub struct ReliabilityReport {
    /// Product-form delivery lower bound per node (1.0 for the source).
    pub per_node: Vec<f64>,
    /// The weakest node's delivery bound — the quantity compared to `1−ε`.
    pub min_delivery: f64,
    /// Mean delivery bound across all nodes.
    pub mean_delivery: f64,
    /// Latency including repeat slots (`completion − start + 1`; 0 for an
    /// empty schedule).
    pub expanded_latency: Slot,
    /// Total occupied slots ([`Schedule::slot_budget`]).
    pub slot_budget: u64,
}

/// A reliability-verification failure: either the schedule is not valid
/// under the conflict model at all, or it is valid but some node's delivery
/// bound misses the `1 − ε` target.
#[derive(Clone, Debug, PartialEq)]
pub enum ReliabilityError {
    /// The underlying schedule failed conflict-model verification.
    Invalid(ScheduleError),
    /// A node's cumulative delivery probability bound falls short of `1−ε`.
    UnderReliable {
        /// The weakest node.
        node: NodeId,
        /// Its delivery bound.
        delivery: f64,
    },
}

impl From<ScheduleError> for ReliabilityError {
    fn from(e: ScheduleError) -> Self {
        ReliabilityError::Invalid(e)
    }
}

impl std::fmt::Display for ReliabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReliabilityError::Invalid(e) => write!(f, "schedule invalid: {e}"),
            ReliabilityError::UnderReliable { node, delivery } => {
                write!(
                    f,
                    "node {node} delivery bound {delivery:.6} misses the reliability target"
                )
            }
        }
    }
}

impl std::error::Error for ReliabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReliabilityError::Invalid(e) => Some(e),
            ReliabilityError::UnderReliable { .. } => None,
        }
    }
}

impl Schedule {
    /// The product-form delivery lower bound per node (see the module docs)
    /// under `quality`, replayed with `model`'s reception rule.
    ///
    /// Verifies the schedule first ([`Schedule::verify_with_model`]) — the
    /// profile is only meaningful for a schedule that executes cleanly.
    pub fn delivery_profile<S: WakeSchedule, M: ConflictModel>(
        &self,
        topo: &Topology,
        wake: &S,
        model: &M,
        quality: &LinkQuality,
    ) -> Result<Vec<f64>, ScheduleError> {
        self.verify_with_model(topo, wake, model)?;
        let n = topo.len();
        let mut p = vec![0.0f64; n];
        p[self.source.idx()] = 1.0;
        let mut informed = NodeSet::new(n);
        informed.insert(self.source.idx());

        for (ei, entry) in self.entries.iter().enumerate() {
            // Awake occupied slots per sender: how many times the sender
            // actually re-fires across the entry's range. The first slot is
            // awake by verification, so every count is ≥ 1.
            let end = self.entry_end(ei);
            let attempts: Vec<u32> = entry
                .senders
                .iter()
                .map(|&u| {
                    let mut r = 0u32;
                    let mut t = entry.slot;
                    while t <= end {
                        if wake.can_send(u.idx(), t) {
                            r += 1;
                        }
                        t += 1;
                    }
                    r.max(1)
                })
                .collect();

            // Same per-channel-group resolution as verification; a
            // received node is credited to the adjacent group sender whose
            // contribution bound is largest (exactly one exists under the
            // protocol model; capture models may offer several and picking
            // one keeps the bound a lower bound).
            let uninformed = informed.complement();
            let mut groups: Vec<(u8, NodeSet)> = Vec::new();
            for (i, &u) in entry.senders.iter().enumerate() {
                let c = entry.channel_of(i);
                match groups.iter_mut().find(|(gc, _)| *gc == c) {
                    Some((_, set)) => {
                        set.insert(u.idx());
                    }
                    None => {
                        let mut set = NodeSet::new(n);
                        set.insert(u.idx());
                        groups.push((c, set));
                    }
                }
            }
            let mut newly: Vec<usize> = Vec::new();
            for (gc, senders) in &groups {
                let outcome = model.resolve_receptions(topo, senders, &uninformed);
                for w in outcome.received.iter() {
                    let mut best = 0.0f64;
                    for (i, &u) in entry.senders.iter().enumerate() {
                        if entry.channel_of(i) != *gc || !senders.contains(u.idx()) {
                            continue;
                        }
                        if !topo.adjacent(u, NodeId(w as u32)) {
                            continue;
                        }
                        let q = quality.delivery(topo, u, NodeId(w as u32));
                        let miss = (1.0 - q).powi(attempts[i] as i32);
                        let bound = p[u.idx()] * (1.0 - miss);
                        if bound > best {
                            best = bound;
                        }
                    }
                    if best > p[w] {
                        p[w] = best;
                    }
                    newly.push(w);
                }
            }
            for w in newly {
                informed.insert(w);
            }
        }
        Ok(p)
    }

    /// Verifies the schedule under `model` **and** checks that every
    /// node's delivery bound reaches `1 − ε` under `quality`, returning
    /// the full [`ReliabilityReport`] on success.
    pub fn verify_reliability<S: WakeSchedule, M: ConflictModel>(
        &self,
        topo: &Topology,
        wake: &S,
        model: &M,
        quality: &LinkQuality,
        epsilon: f64,
    ) -> Result<ReliabilityReport, ReliabilityError> {
        let per_node = self.delivery_profile(topo, wake, model, quality)?;
        let target = 1.0 - epsilon;
        let mut min_delivery = 1.0f64;
        let mut min_node = self.source;
        let mut sum = 0.0f64;
        for (i, &pi) in per_node.iter().enumerate() {
            sum += pi;
            if pi < min_delivery {
                min_delivery = pi;
                min_node = NodeId(i as u32);
            }
        }
        // Strictness up to f64 rounding: the planner targets exactly 1−ε,
        // so a product that lands within one ulp-ish of the target passes.
        if min_delivery + 1e-12 < target {
            return Err(ReliabilityError::UnderReliable {
                node: min_node,
                delivery: min_delivery,
            });
        }
        Ok(ReliabilityReport {
            min_delivery,
            mean_delivery: sum / per_node.len().max(1) as f64,
            per_node,
            expanded_latency: self.latency(),
            slot_budget: self.slot_budget(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_dutycycle::AlwaysAwake;
    use wsn_phy::ProtocolModel;
    use wsn_topology::fixtures;

    fn fig2a_schedule() -> (Schedule, wsn_topology::fixtures::Fixture) {
        let f = fixtures::fig2a();
        let s = Schedule {
            source: f.source,
            start: 1,
            entries: vec![
                crate::schedule::ScheduleEntry::new(1, vec![f.id("1")]),
                crate::schedule::ScheduleEntry::new(3, vec![f.id("2")]),
            ],
            receive_slot: vec![1, 2, 2, 3, 3],
            repeats: vec![2, 2],
        };
        (s, f)
    }

    #[test]
    fn lossless_quality_gives_certain_delivery() {
        let (s, f) = fig2a_schedule();
        let q = LinkQuality::uniform(&f.topo, 1.0);
        let report = s
            .verify_reliability(&f.topo, &AlwaysAwake, &ProtocolModel, &q, 0.01)
            .unwrap();
        assert_eq!(report.min_delivery, 1.0);
        assert_eq!(report.slot_budget, 4);
        assert_eq!(report.expanded_latency, 4);
    }

    #[test]
    fn repeats_multiply_the_bound() {
        let (mut s, f) = fig2a_schedule();
        let q = LinkQuality::uniform(&f.topo, 0.9);
        // Two attempts per delivery: hop-1 bound 1−0.01 = 0.99, hop-2
        // bound 0.99², both ≥ 1−ε for ε = 0.02.
        let two = s
            .delivery_profile(&f.topo, &AlwaysAwake, &ProtocolModel, &q)
            .unwrap();
        let deepest = two.iter().cloned().fold(1.0, f64::min);
        assert!((deepest - 0.99f64.powi(2)).abs() < 1e-12, "{deepest}");
        s.verify_reliability(&f.topo, &AlwaysAwake, &ProtocolModel, &q, 0.02)
            .unwrap();

        // Without repeats the deepest bound is 0.9² = 0.81 — far short.
        s.repeats = Vec::new();
        s.entries[1].slot = 2;
        let err = s
            .verify_reliability(&f.topo, &AlwaysAwake, &ProtocolModel, &q, 0.02)
            .unwrap_err();
        assert!(matches!(err, ReliabilityError::UnderReliable { .. }));
    }

    #[test]
    fn overlapping_repeat_ranges_rejected() {
        let (mut s, f) = fig2a_schedule();
        // Entry 0 occupies [1, 2] — starting entry 1 at slot 2 overlaps.
        s.entries[1].slot = 2;
        let q = LinkQuality::uniform(&f.topo, 1.0);
        let err = s
            .verify_reliability(&f.topo, &AlwaysAwake, &ProtocolModel, &q, 0.01)
            .unwrap_err();
        assert!(matches!(
            err,
            ReliabilityError::Invalid(ScheduleError::NonMonotonicSlots { .. })
        ));
    }

    #[test]
    fn zero_repeat_rejected() {
        let (mut s, f) = fig2a_schedule();
        s.repeats = vec![2, 0];
        let q = LinkQuality::uniform(&f.topo, 1.0);
        assert_eq!(
            s.verify_reliability(&f.topo, &AlwaysAwake, &ProtocolModel, &q, 0.01)
                .unwrap_err(),
            ReliabilityError::Invalid(ScheduleError::RepeatArity)
        );
    }
}
