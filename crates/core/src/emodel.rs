//! The lightweight estimation 4-tuple `E` (Algorithm 2, Eq. 9/10/11).
//!
//! `E_i(u)` estimates the remaining broadcast delay from `u` toward the
//! network edge within quadrant `Q_i(u)` — the *unfinished* work, in
//! contrast to hop-distance-from-source schemes that only measure finished
//! work. Construction is proactive (Theorem 3: `O(1)` information
//! exchanges per node) and entirely local in message-passing terms; here it
//! is computed centrally as a multi-source shortest-path per quadrant:
//!
//! * pass 1 seeds the *network-edge* nodes whose quadrant-`i` neighborhood
//!   is empty with `E_i = 0` and relaxes
//!   `E_i(u) = t(u,v) + E_i(v)` over `v ∈ N(u) ∩ Q_i(u)` (Eq. 11; the
//!   synchronous Eq. 9 is the special case `t(u,v) = 1`);
//! * pass 2 promotes the remaining local-minimum nodes (`∞` with an empty
//!   quadrant — hole boundaries) to 0 and re-relaxes **only** the `∞`
//!   values, exactly as §IV-E specifies.
//!
//! Because the quadrant relation is a strict partial order on positions,
//! every chain of quadrant-`i` edges terminates at a node with an empty
//! quadrant, so after pass 2 no `∞` survives (asserted).

use crate::pipeline::ColorSelector;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wsn_bitset::NodeSet;
use wsn_coloring::BroadcastState;
use wsn_dutycycle::{Slot, WakeSchedule};
use wsn_geom::Quadrant;
use wsn_topology::{boundary, NodeId, Topology};

/// The per-node, per-quadrant delay estimates.
#[derive(Clone, Debug)]
pub struct EModel {
    /// `values[q][u]` = `E_{q+1}(u)`.
    values: [Vec<f64>; 4],
}

/// f64 ordered for the Dijkstra heap (weights are ≥ 1 and finite).
#[derive(PartialEq)]
struct HeapKey(f64);

impl Eq for HeapKey {}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Construction-cost accounting for Theorem 3 ("the E-model has a cost
/// complexity of O(1) in terms of the number of information exchanges and
/// updates" — each node updates each `E_i` once from `∞`, ≤ `4N` total).
#[derive(Clone, Debug, Default)]
pub struct EModelStats {
    /// Per quadrant: nodes whose value left `∞` (the updates Theorem 3
    /// counts). At most `N` each.
    pub first_assignments: [usize; 4],
    /// Per quadrant: later improvements to an already finite value. Zero
    /// under uniform (synchronous) weights; small under CWT weights, where
    /// the distributed protocol would send these as follow-up beacons.
    pub refinements: [usize; 4],
    /// Per quadrant: local-minimum (hole-boundary) nodes seeded in pass 2.
    pub pass2_seeds: [usize; 4],
}

impl EModelStats {
    /// Total accepted updates across all quadrants.
    pub fn total_updates(&self) -> usize {
        self.first_assignments.iter().sum::<usize>() + self.refinements.iter().sum::<usize>()
    }
}

impl EModel {
    /// Builds the 4-tuple for `topo` under the given wake schedule.
    ///
    /// With [`wsn_dutycycle::AlwaysAwake`] every edge weight is 1 and this
    /// is exactly Eq. (9); with a duty-cycle schedule the weight of `u → v`
    /// is the expected cycle waiting time `t(u, v)` (Eq. 11).
    pub fn build<S: WakeSchedule>(topo: &Topology, wake: &S) -> Self {
        Self::build_with_stats(topo, wake).0
    }

    /// As [`EModel::build`], also returning the Theorem 3 cost accounting.
    pub fn build_with_stats<S: WakeSchedule>(topo: &Topology, wake: &S) -> (Self, EModelStats) {
        let n = topo.len();
        let edge_nodes: NodeSet =
            NodeSet::from_indices(n, boundary::edge_nodes(topo).iter().map(|u| u.idx()));

        let mut stats = EModelStats::default();
        let mut values: [Vec<f64>; 4] = std::array::from_fn(|_| vec![f64::INFINITY; n]);
        for q in Quadrant::ALL {
            let vals = &mut values[q.index()];
            let (mut firsts, mut refines) = (0usize, 0usize);

            // Pass 1: network-edge seeds.
            let mut heap: BinaryHeap<Reverse<(HeapKey, usize)>> = BinaryHeap::new();
            for u in topo.nodes() {
                if edge_nodes.contains(u.idx()) && !topo.has_neighbor_in_quadrant(u, q) {
                    vals[u.idx()] = 0.0;
                    heap.push(Reverse((HeapKey(0.0), u.idx())));
                }
            }
            Self::relax(topo, wake, q, vals, heap, None, &mut firsts, &mut refines);

            // Pass 2: promote surviving local minima (hole boundaries) and
            // re-relax, updating only nodes that are still ∞. Pass-1 values
            // are frozen by seeding them into the heap as settled sources.
            let frozen: NodeSet = NodeSet::from_indices(n, (0..n).filter(|&u| vals[u].is_finite()));
            let mut heap: BinaryHeap<Reverse<(HeapKey, usize)>> = BinaryHeap::new();
            let mut pass2 = 0usize;
            for u in topo.nodes() {
                if vals[u.idx()].is_infinite() && !topo.has_neighbor_in_quadrant(u, q) {
                    vals[u.idx()] = 0.0;
                    pass2 += 1;
                }
            }
            if pass2 > 0 || !frozen.is_full() {
                for (u, &val) in vals.iter().enumerate() {
                    if val.is_finite() {
                        heap.push(Reverse((HeapKey(val), u)));
                    }
                }
                Self::relax(
                    topo,
                    wake,
                    q,
                    vals,
                    heap,
                    Some(&frozen),
                    &mut firsts,
                    &mut refines,
                );
            }

            stats.first_assignments[q.index()] = firsts;
            stats.refinements[q.index()] = refines;
            stats.pass2_seeds[q.index()] = pass2;

            debug_assert!(
                vals.iter().all(|v| v.is_finite()),
                "quadrant {q:?}: the quadrant order is strict, every chain must terminate"
            );
        }
        (EModel { values }, stats)
    }

    /// Multi-source Dijkstra on the reversed quadrant graph: popping a
    /// settled `v` relaxes every `u ∈ N(v)` that sees `v` in quadrant `q`
    /// (equivalently `u ∈ N(v) ∩ Q_opposite(v)`). When `frozen` is given,
    /// nodes in it are never updated (pass-2 semantics: "update its ∞ value
    /// and only ∞ value").
    #[allow(clippy::too_many_arguments)]
    fn relax<S: WakeSchedule>(
        topo: &Topology,
        wake: &S,
        q: Quadrant,
        vals: &mut [f64],
        mut heap: BinaryHeap<Reverse<(HeapKey, usize)>>,
        frozen: Option<&NodeSet>,
        first_assignments: &mut usize,
        refinements: &mut usize,
    ) {
        let pv_quadrant =
            |u: NodeId, v: NodeId| Quadrant::of(&topo.position(u), &topo.position(v)) == Some(q);
        while let Some(Reverse((HeapKey(dv), v))) = heap.pop() {
            if dv > vals[v] {
                continue; // stale entry
            }
            let v_id = NodeId(v as u32);
            for &u in topo.neighbors(v_id) {
                if let Some(f) = frozen {
                    if f.contains(u.idx()) {
                        continue;
                    }
                }
                if !pv_quadrant(u, v_id) {
                    continue;
                }
                let w = wake.expected_cwt(u.idx(), v);
                let cand = w + dv;
                if cand < vals[u.idx()] {
                    if vals[u.idx()].is_infinite() {
                        *first_assignments += 1;
                    } else {
                        *refinements += 1;
                    }
                    vals[u.idx()] = cand;
                    heap.push(Reverse((HeapKey(cand), u.idx())));
                }
            }
        }
    }

    /// `E_i(u)` for quadrant `q`.
    #[inline]
    pub fn value(&self, u: NodeId, q: Quadrant) -> f64 {
        self.values[q.index()][u.idx()]
    }

    /// The full 4-tuple of `u` in quadrant order.
    pub fn tuple(&self, u: NodeId) -> [f64; 4] {
        std::array::from_fn(|q| self.values[q][u.idx()])
    }

    /// The Eq. (10) score of a sender `u` against the uninformed set: the
    /// largest `E_k(u)` over quadrants `k` that still contain uninformed
    /// neighbors of `u` (`N(u) ∩ Q_k(u) ∩ W̄ ≠ ∅`).
    pub fn score(&self, topo: &Topology, u: NodeId, uninformed: &NodeSet) -> f64 {
        let pu = topo.position(u);
        let mut best = f64::NEG_INFINITY;
        for &v in topo.neighbors(u) {
            if !uninformed.contains(v.idx()) {
                continue;
            }
            if let Some(q) = Quadrant::of(&pu, &topo.position(v)) {
                best = best.max(self.value(u, q));
            }
        }
        best
    }

    /// Eq. (10) color selection: the class containing the sender with the
    /// largest quadrant-restricted `E` value; ties resolve to the earliest
    /// (greediest) class.
    pub fn select_class(
        &self,
        topo: &Topology,
        informed: &NodeSet,
        classes: &[Vec<NodeId>],
    ) -> usize {
        self.select_class_against(topo, &informed.complement(), classes)
    }

    /// As [`EModel::select_class`], scoring directly against a prepared
    /// `W̄` — the allocation-free path the pipeline substrate uses.
    pub fn select_class_against(
        &self,
        topo: &Topology,
        uninformed: &NodeSet,
        classes: &[Vec<NodeId>],
    ) -> usize {
        assert!(!classes.is_empty(), "no classes to select from");
        let mut best_idx = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, class) in classes.iter().enumerate() {
            let s = class
                .iter()
                .map(|&u| self.score(topo, u, uninformed))
                .fold(f64::NEG_INFINITY, f64::max);
            if s > best_score {
                best_score = s;
                best_idx = i;
            }
        }
        best_idx
    }
}

/// [`ColorSelector`] adapter for the E-model (the paper's practical
/// scheduler when plugged into [`crate::run_pipeline`]).
pub struct EModelSelector<'a> {
    emodel: &'a EModel,
}

impl<'a> EModelSelector<'a> {
    /// Wraps a prebuilt E-model.
    pub fn new(emodel: &'a EModel) -> Self {
        EModelSelector { emodel }
    }
}

impl ColorSelector for EModelSelector<'_> {
    fn select(
        &mut self,
        topo: &Topology,
        state: &BroadcastState,
        classes: &[Vec<NodeId>],
        _slot: Slot,
    ) -> usize {
        self.emodel
            .select_class_against(topo, state.uninformed(), classes)
    }
}

/// Ablation variant of the estimate: the plain (direction-less) delay to
/// the nearest network edge, i.e. the 4-tuple collapsed to a scalar.
///
/// DESIGN.md calls this ablation out to quantify how much of the E-model's
/// value comes from its *directionality* (scoring only quadrants that
/// still hold uninformed neighbors) versus merely knowing the distance to
/// the edge. Construction is a single multi-source Dijkstra from all edge
/// nodes over the undirected adjacency.
#[derive(Clone, Debug)]
pub struct ScalarEdgeDistance {
    dist: Vec<f64>,
}

impl ScalarEdgeDistance {
    /// Builds the scalar estimate (CWT-weighted under duty cycling).
    pub fn build<S: WakeSchedule>(topo: &Topology, wake: &S) -> Self {
        let n = topo.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut heap: BinaryHeap<Reverse<(HeapKey, usize)>> = BinaryHeap::new();
        for u in boundary::edge_nodes(topo) {
            dist[u.idx()] = 0.0;
            heap.push(Reverse((HeapKey(0.0), u.idx())));
        }
        while let Some(Reverse((HeapKey(dv), v))) = heap.pop() {
            if dv > dist[v] {
                continue;
            }
            for &u in topo.neighbors(NodeId(v as u32)) {
                let cand = wake.expected_cwt(u.idx(), v) + dv;
                if cand < dist[u.idx()] {
                    dist[u.idx()] = cand;
                    heap.push(Reverse((HeapKey(cand), u.idx())));
                }
            }
        }
        ScalarEdgeDistance { dist }
    }

    /// The scalar estimate of `u`.
    #[inline]
    pub fn value(&self, u: NodeId) -> f64 {
        self.dist[u.idx()]
    }
}

/// [`ColorSelector`] for the scalar ablation: launch the class whose
/// farthest-from-edge member is largest, ignoring direction entirely.
pub struct ScalarESelector<'a> {
    scalar: &'a ScalarEdgeDistance,
}

impl<'a> ScalarESelector<'a> {
    /// Wraps a prebuilt scalar estimate.
    pub fn new(scalar: &'a ScalarEdgeDistance) -> Self {
        ScalarESelector { scalar }
    }
}

impl ColorSelector for ScalarESelector<'_> {
    fn select(
        &mut self,
        _topo: &Topology,
        _state: &BroadcastState,
        classes: &[Vec<NodeId>],
        _slot: Slot,
    ) -> usize {
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, class) in classes.iter().enumerate() {
            let s = class
                .iter()
                .map(|&u| self.scalar.value(u))
                .fold(f64::NEG_INFINITY, f64::max);
            if s > best_score {
                best_score = s;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_dutycycle::{AlwaysAwake, WindowedRandom};
    use wsn_topology::{deploy, fixtures};

    #[test]
    fn paper_e2_example_values() {
        // §IV-E: "E2(7) = E2(8) = E2(9) = 0, and E2(0) = E2(4) = E2(5) =
        // E2(6) = E2(10) = 1. We have E2(1) = 2 as the maximum."
        let f = fixtures::fig1();
        let em = EModel::build(&f.topo, &AlwaysAwake);
        let e2 = |label: &str| em.value(f.id(label), Quadrant::Q2);
        for l in ["7", "8", "9"] {
            assert_eq!(e2(l), 0.0, "E2({l})");
        }
        for l in ["0", "4", "5", "6", "10"] {
            assert_eq!(e2(l), 1.0, "E2({l})");
        }
        assert_eq!(e2("1"), 2.0, "E2(1)");
    }

    #[test]
    fn paper_selection_picks_node_1_color() {
        // At W = {s, 0, 1, 2} the greedy classes are [{0}, {1}, {2}]; the
        // E-model must select node 1's color (Figure 1 (c): magenta first).
        let f = fixtures::fig1();
        let em = EModel::build(&f.topo, &AlwaysAwake);
        let w = NodeSet::from_indices(12, [f.source.idx(), 0, 1, 2]);
        let classes = wsn_coloring::greedy_coloring(&f.topo, &w);
        let chosen = em.select_class(&f.topo, &w, &classes);
        assert_eq!(classes[chosen], vec![f.id("1")]);
    }

    #[test]
    fn grid_values_count_hops_to_edge() {
        // On a 5×5 unit grid (4-adjacency), E1 of column x is the number of
        // eastward hops to the east edge… for nodes with an eastward
        // neighbor; edge columns are seeds.
        let t = deploy::grid(5, 5, 1.0, 1.1);
        let em = EModel::build(&t, &AlwaysAwake);
        // Center node (2,2) = id 12: two hops east, west, north, south.
        let center = NodeId(12);
        assert_eq!(em.value(center, Quadrant::Q1), 2.0);
        assert_eq!(em.value(center, Quadrant::Q2), 2.0);
        assert_eq!(em.value(center, Quadrant::Q3), 2.0);
        assert_eq!(em.value(center, Quadrant::Q4), 2.0);
        // East-edge middle (4,2) = id 14: no Q1 neighbor → 0.
        assert_eq!(em.value(NodeId(14), Quadrant::Q1), 0.0);
        assert_eq!(em.value(NodeId(14), Quadrant::Q3), 4.0);
    }

    #[test]
    fn all_values_finite_on_random_deployments() {
        for seed in 0..3 {
            let (topo, _) = deploy::SyntheticDeployment::paper(150).sample(seed);
            let em = EModel::build(&topo, &AlwaysAwake);
            for u in topo.nodes() {
                for q in Quadrant::ALL {
                    assert!(em.value(u, q).is_finite(), "E_{q:?}({u}) infinite");
                }
            }
        }
    }

    #[test]
    fn async_values_scale_with_cycle_rate() {
        // With cycle rate r, each hop costs an expected CWT in [1, 2r), so
        // E values grow roughly r/2× the synchronous ones but stay finite
        // and ordered.
        let (topo, _) = deploy::SyntheticDeployment::paper(100).sample(9);
        let sync = EModel::build(&topo, &AlwaysAwake);
        let wake = WindowedRandom::new(topo.len(), 10, 7);
        let duty = EModel::build(&topo, &wake);
        let mut grew = 0;
        let mut total = 0;
        for u in topo.nodes() {
            for q in Quadrant::ALL {
                let (s, d) = (sync.value(u, q), duty.value(u, q));
                assert!(d.is_finite());
                assert!(d >= s, "duty-cycle estimate below hop count at {u} {q:?}");
                if s > 0.0 {
                    total += 1;
                    if d > s {
                        grew += 1;
                    }
                }
            }
        }
        assert!(
            grew * 2 > total,
            "CWT weights should increase most estimates"
        );
    }

    #[test]
    fn score_ignores_informed_quadrants() {
        let f = fixtures::fig1();
        let em = EModel::build(&f.topo, &AlwaysAwake);
        // With only node 3 uninformed, node 1's score collapses to the
        // quadrant containing 3 (Q2 → E2(1) = 2).
        let mut informed = NodeSet::full(12);
        informed.remove(f.id("3").idx());
        let uninformed = informed.complement();
        assert_eq!(em.score(&f.topo, f.id("1"), &uninformed), 2.0);
        // A node with no uninformed neighbors scores −∞.
        assert_eq!(em.score(&f.topo, f.id("7"), &uninformed), f64::NEG_INFINITY);
    }

    #[test]
    fn theorem3_update_counts() {
        // Theorem 3: each node's E_i leaves ∞ at most once → at most 4N
        // first assignments in total; under uniform (synchronous) weights
        // the relaxation settles in distance order, so no refinements.
        for seed in 0..3 {
            let (topo, _) = deploy::SyntheticDeployment::paper(150).sample(seed);
            let (_, stats) = EModel::build_with_stats(&topo, &AlwaysAwake);
            for q in 0..4 {
                assert!(stats.first_assignments[q] <= topo.len());
                assert_eq!(stats.refinements[q], 0, "quadrant {q} refinements");
            }
            assert!(stats.total_updates() <= 4 * topo.len());
        }
    }

    #[test]
    fn theorem3_refinements_stay_small_under_cwt_weights() {
        let (topo, _) = deploy::SyntheticDeployment::paper(150).sample(1);
        let wake = WindowedRandom::new(topo.len(), 10, 3);
        let (_, stats) = EModel::build_with_stats(&topo, &wake);
        let firsts: usize = stats.first_assignments.iter().sum();
        let refines: usize = stats.refinements.iter().sum();
        assert!(firsts <= 4 * topo.len());
        // Non-uniform weights may revise a few values, but the protocol
        // stays O(1) per node on average.
        assert!(
            refines <= firsts,
            "refinements {refines} exceed first assignments {firsts}"
        );
    }

    #[test]
    fn pass2_seeds_appear_with_holes() {
        // Whether a particular sampled rim carries local minima depends on
        // the RNG stream, so aggregate over a seed set instead of pinning
        // one seed: across several hole deployments at this size, at least
        // one rim must produce pass-2 seeds, and *every* deployment must
        // end with finite estimates regardless.
        let mut seeds_seen = 0usize;
        for seed in 0..8u64 {
            let mut d = deploy::SyntheticDeployment::paper(250);
            d.hole = Some((wsn_geom::Point::new(25.0, 25.0), 9.0));
            let (topo, _) = d.sample(seed);
            let (em, stats) = EModel::build_with_stats(&topo, &AlwaysAwake);
            seeds_seen += stats.pass2_seeds.iter().sum::<usize>();
            for u in topo.nodes() {
                for q in Quadrant::ALL {
                    assert!(em.value(u, q).is_finite(), "seed {seed}: E infinite");
                }
            }
        }
        assert!(
            seeds_seen > 0,
            "no hole deployment produced hole-boundary pass-2 seeds"
        );
    }

    #[test]
    fn scalar_ablation_measures_edge_distance() {
        let t = deploy::grid(5, 5, 1.0, 1.1);
        let scalar = ScalarEdgeDistance::build(&t, &AlwaysAwake);
        // Perimeter nodes are the seeds; the grid center is 2 hops in.
        assert_eq!(scalar.value(NodeId(0)), 0.0);
        assert_eq!(scalar.value(NodeId(2)), 0.0);
        assert_eq!(scalar.value(NodeId(12)), 2.0);
        assert_eq!(scalar.value(NodeId(7)), 1.0); // (2,1): one hop from the rim
    }

    #[test]
    fn scalar_selector_is_weaker_than_directional_on_fig1() {
        // On Figure 1, both node 1 and node 2 sit deep inside the network,
        // but only the directional Eq. (10) score tells them apart: the
        // scalar selector is a valid policy yet loses the tie-break
        // information. We only assert both produce verified schedules and
        // the directional one is never worse here.
        let f = fixtures::fig1();
        let em = EModel::build(&f.topo, &AlwaysAwake);
        let scalar = ScalarEdgeDistance::build(&f.topo, &AlwaysAwake);
        let directional = crate::run_pipeline(
            &f.topo,
            f.source,
            &AlwaysAwake,
            &mut EModelSelector::new(&em),
            &crate::PipelineConfig::default(),
        );
        let flat = crate::run_pipeline(
            &f.topo,
            f.source,
            &AlwaysAwake,
            &mut ScalarESelector::new(&scalar),
            &crate::PipelineConfig::default(),
        );
        directional.verify(&f.topo, &AlwaysAwake).unwrap();
        flat.verify(&f.topo, &AlwaysAwake).unwrap();
        assert!(directional.latency() <= flat.latency());
    }

    #[test]
    fn emodel_pipeline_matches_optimum_on_fig1() {
        // End-to-end: the E-model-driven pipeline achieves the paper's
        // minimum latency P(A) = 3 on Figure 1 (Table III).
        let f = fixtures::fig1();
        let em = EModel::build(&f.topo, &AlwaysAwake);
        let s = crate::run_pipeline(
            &f.topo,
            f.source,
            &AlwaysAwake,
            &mut EModelSelector::new(&em),
            &crate::PipelineConfig::default(),
        );
        s.verify(&f.topo, &AlwaysAwake).unwrap();
        assert_eq!(s.latency(), 3);
    }
}
