//! The OPT and G-OPT searches: exact minimization of the time counter `M`.
//!
//! Eq. (4) defines the delay of a broadcast as the fixpoint of
//! `M(W, t) = M(W + A(W, t), t + 1)` with `M(N, t) = t − 1`; OPT (Eq. 5/6)
//! picks at every state the color minimizing the continuation over *all*
//! admissible colors, G-OPT (Eq. 7/8) over the greedy classes only. Both
//! are realized here as one memoized depth-first branch-and-bound:
//!
//! * **State** — `(W, t mod P)` where `P` is the wake schedule's period:
//!   the remaining delay is Markov in the informed set and the schedule
//!   phase (rem(W, t) = rem(W, t + P) by periodicity).
//! * **Upper bound seeding** — the pipeline with the plain greedy selector
//!   provides an achievable initial budget, so the search only explores
//!   improving branches.
//! * **Lower bound** — an uninformed node `h` hops from `W` needs at least
//!   `h` further slots (one advance per slot); see
//!   [`crate::bounds::remaining_hops_lower_bound`].
//! * **Branch rules** — greedy classes (G-OPT), or every maximal
//!   conflict-free sender set plus the maximal extensions of the greedy
//!   classes (OPT; including the extensions guarantees OPT ≤ G-OPT even
//!   when the enumeration cap truncates — see DESIGN.md).
//!
//! Monotonicity (a larger informed set can always simulate a smaller one)
//! justifies both never-defer and maximal-set branching; the property tests
//! in `tests/` check optimality against exhaustive search on small
//! instances.
//!
//! # DESIGN: phase folding, dominance pruning, and adaptive caps
//!
//! Keying the memo on the raw phase is what makes the duty-cycled regime
//! hard: `WindowedRandom` has `P = r × windows`, so at `r = 50` the phase
//! axis alone multiplies the state space by thousands, and the same
//! informed set reached along two timing paths memoizes twice. Three
//! mechanisms attack that, all default-compatible with the synchronous
//! pins:
//!
//! * **Phase-folded memo keys** ([`SearchConfig::phase_fold`]). The
//!   remaining delay from `(W, t)` depends on the wake schedule only
//!   through `can_send(u, t + h)` for nodes `u` in the *relevant set*
//!   `R(W) = {u : N(u) ∩ W̄ ≠ ∅}` — every present or future candidate
//!   sender has an uninformed neighbor now, because `W` only grows down a
//!   subtree (monotonicity) so `W̄` only shrinks and `R` with it. And a
//!   completion in `L` slots only reads offsets `h < L`. So two phases
//!   whose wake patterns *restricted to `R(W)`* agree over a horizon `H`
//!   share every schedule of length ≤ `H` (periodicity makes the window
//!   well-defined), and may share one memo entry for any exact remainder
//!   `rem ≤ H` or lower bound `lb ≤ H + 1`. The searcher builds a geometric
//!   horizon ladder (8, 32, 128, … capped below the period and the seeded
//!   root budget), renders the schedule once into a
//!   [`wsn_dutycycle::WakePatternTable`], and interns per-node windows and
//!   per-state joint signatures into collision-free dense ids
//!   ([`wsn_bitset::WordSeqInterner`]); the memo key becomes
//!   `(StateId, pattern-class)`. An exact result is stored at the smallest
//!   horizon certifying it, so short remainders — the bulk of the state
//!   space — fold across the thousands of phases that look alike near the
//!   end of a broadcast. Lookups probe every ladder level plus the raw
//!   phase (the store of last resort), and never insert signatures, so
//!   misses cost nothing. Reconstruction re-derives any suffix whose
//!   memoized choices came from a folded phase by re-running the (warm)
//!   search from that state.
//! * **Superset dominance** ([`SearchConfig::dominance`], OPT only). For
//!   the all-colors value function, `W ⊆ W'` implies `rem(W) ≥ rem(W')`
//!   (the larger set can simulate any continuation of the smaller), so a
//!   memoized exact result for a superset is a valid lower bound: the
//!   searcher keeps a small per-phase store of exact results and scans it
//!   for supersets before branching, and inside the branch loop prunes any
//!   color whose coverage is a subset of an already-evaluated sibling's.
//!   Both bounds also feed the branch loop's floor, stopping it as soon as
//!   a branch meets the strongest known lower bound. G-OPT is excluded:
//!   its greedy-restricted value function carries no such monotonicity
//!   guarantee.
//! * **Best-first branch ordering + overscan**
//!   ([`SearchConfig::branch_order`], [`SearchConfig::overscan`]). The
//!   enumeration explores up to `overscan × branch_cap` maximal sets; if it
//!   completes, the search stays exact at an effectively larger cap, and if
//!   it truncates, the frontier-weighted scorer (newly informed nodes
//!   weighted by their hop depth) decides which `branch_cap` branches the
//!   beam keeps — the worst branches are truncated instead of whichever
//!   the enumeration found last. The greedy-class extensions always
//!   survive truncation, preserving OPT ≤ G-OPT.
//!
//! The regime-constant caps that used to live in `wsn-bench::search_for`
//! are replaced by `wsn_bench::AdaptiveBudget`, which derives `max_states`
//! from a wall-clock target and a states/ms throughput (measured or the
//! baked-in default) and scales `branch_cap`/`overscan` with instance
//! size, so small duty instances complete exactly where the old constant
//! caps forced a beam.

use crate::bounds::remaining_hops_profile;
use crate::pipeline::{run_pipeline_model, MaxReceiversSelector, PipelineConfig};
use crate::schedule::{Schedule, ScheduleEntry};
use crate::trace::{SearchTrace, TraceOption, TraceState};
use std::collections::HashMap;
use wsn_bitset::{NodeSet, SetInterner, StateId, WordSeqInterner};
use wsn_coloring::{
    extend_to_maximal, maximal_conflict_free_sets, order_best_first, truncate_keeping,
    BroadcastState,
};
use wsn_dutycycle::{Slot, WakePatternTable, WakeSchedule};
use wsn_phy::{ConflictModel, ProtocolModel};
use wsn_topology::{NodeId, Topology};

/// How the OPT search orders the enumerated color sets before branching.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BranchOrder {
    /// Legacy ordering: descending sum of per-sender fresh-neighbor counts
    /// (double-counts overlapping coverage, but matches the pre-fold
    /// searches bit for bit).
    #[default]
    CoverageSum,
    /// Best-first: descending exact newly-informed count, each new node
    /// weighted by `1 + hop distance from W` so branches that push the
    /// frontier where the lower bound lives sort first.
    FrontierWeighted,
}

/// Search parameters.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Slot from which the source may first transmit (`t_s` is its first
    /// sending slot at or after this).
    pub start_from: Slot,
    /// OPT only: maximum number of branches kept per state (beam mode once
    /// enumeration truncates).
    pub branch_cap: usize,
    /// Hard cap on distinct states evaluated; beyond it new states are
    /// abandoned (the search still returns a valid schedule, flagged
    /// inexact).
    pub max_states: usize,
    /// Record a [`SearchTrace`] (used by the table binaries).
    pub collect_trace: bool,
    /// Disable upper-bound seeding, budget tightening, phase folding and
    /// dominance pruning so that every branch is evaluated exactly —
    /// required for complete paper-style traces; only sensible on small
    /// fixtures.
    pub exhaustive: bool,
    /// Fold memo keys across phases whose wake patterns agree on the
    /// uninformed neighborhood (see the module-level DESIGN note). No-op
    /// for period-1 schedules, so the synchronous searches are unaffected.
    pub phase_fold: bool,
    /// Prune via superset dominance (OPT only; see the DESIGN note).
    /// Off by default: on truncated beam searches it can only shrink the
    /// explored tree, which perturbs the historically pinned `exact`
    /// flags and conflict-row accounting; the duty-cycle configurations
    /// of `wsn_bench::AdaptiveBudget` switch it on.
    pub dominance: bool,
    /// Branch ordering rule for the OPT enumeration.
    pub branch_order: BranchOrder,
    /// OPT only: enumeration explores up to `overscan × branch_cap` sets
    /// before the beam truncates back to `branch_cap`; `1` reproduces the
    /// legacy truncate-at-cap behavior.
    pub overscan: u32,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            start_from: 1,
            branch_cap: 64,
            max_states: 2_000_000,
            collect_trace: false,
            exhaustive: false,
            phase_fold: true,
            dominance: false,
            branch_order: BranchOrder::CoverageSum,
            overscan: 1,
        }
    }
}

/// Search statistics.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// `(W, phase)` state evaluations (re-evaluations after a lower-bound
    /// abandonment included).
    pub states: usize,
    /// Memo lookups that short-circuited a subtree.
    pub memo_hits: usize,
    /// Branches pruned by bound reasoning.
    pub pruned: usize,
    /// States whose OPT enumeration hit the exploration cap.
    pub truncated_enumerations: usize,
    /// `true` when `max_states` stopped the search somewhere.
    pub state_cap_hit: bool,
    /// Distinct informed sets canonicalized by the memo-key interner.
    pub interned_sets: usize,
    /// Conflict-graph rows computed from scratch during the search.
    pub conflict_rows_built: usize,
    /// Conflict-graph rows carried across states by the incremental
    /// builder. `built + reused` is what a rebuild-per-state strategy
    /// would have computed, so `reused ≥ built` means the substrate cut
    /// row computations at least in half. That inequality holds for the
    /// *synchronous* searches (sibling states share candidate lists) and
    /// is pinned in `tests/substrate_regression.rs`; duty-cycle searches
    /// churn the candidate list every slot (the awake set changes
    /// wholesale), so there `reused < built` is the measured norm — also
    /// pinned, so an improvement to duty-regime row reuse shows up as a
    /// test update, not silently.
    pub conflict_rows_reused: usize,
    /// Entries in the memo at the end of the search — the distinct
    /// memoized states after phase folding (equals the distinct
    /// `(W, phase)` keys when folding is off or trivial).
    pub memo_entries: usize,
    /// Distinct joint wake-pattern classes interned by the phase folder
    /// (0 when folding is off or the schedule has period 1).
    pub phase_classes: usize,
    /// Branches or states pruned by superset dominance (memo-store scans
    /// plus sibling coverage subsumption).
    pub dominance_prunes: usize,
    /// States whose branch list the frontier-weighted scorer actually
    /// permuted.
    pub branch_reorders: usize,
}

/// Result of a search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The best schedule found.
    pub schedule: Schedule,
    /// End-to-end latency of that schedule (`t_e − t_s + 1`).
    pub latency: Slot,
    /// `true` when the result is provably optimal for the branch rule
    /// (no enumeration truncation, no state-cap abandonment).
    pub exact: bool,
    /// Statistics.
    pub stats: SearchStats,
    /// The trace, when requested.
    pub trace: Option<SearchTrace>,
}

/// Which colors a state may branch over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BranchRule {
    /// The λ classes of the extended greedy scheme (G-OPT, Eq. 7/8).
    GreedyClasses,
    /// All maximal conflict-free sender sets (OPT, Eq. 5/6), capped.
    MaximalSets,
}

/// G-OPT: minimum-latency schedule over greedy-scheme colors (Eq. 7/8).
pub fn solve_gopt<S: WakeSchedule>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    config: &SearchConfig,
) -> SearchOutcome {
    solve_gopt_with(topo, source, wake, config, &mut BroadcastState::new())
}

/// As [`solve_gopt`], reusing a caller-provided substrate (one per sweep
/// worker instead of one per instance).
pub fn solve_gopt_with<S: WakeSchedule>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    config: &SearchConfig,
    state: &mut BroadcastState,
) -> SearchOutcome {
    solve_gopt_model(topo, source, wake, &ProtocolModel, config, state)
}

/// As [`solve_gopt_with`], under an arbitrary [`ConflictModel`] (greedy
/// classes colored on the model's conflict graph; multi-channel models
/// pack extra channels per advance). The default protocol model takes
/// exactly the pre-model code path.
pub fn solve_gopt_model<S: WakeSchedule, M: ConflictModel>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    model: &M,
    config: &SearchConfig,
    state: &mut BroadcastState,
) -> SearchOutcome {
    let started = wsn_obs::enabled().then(std::time::Instant::now);
    let out =
        Searcher::new(topo, wake, model, config, BranchRule::GreedyClasses, state).run(source);
    if let Some(t0) = started {
        record_search_obs("searcher.gopt_solves", &out, t0.elapsed());
    }
    out
}

/// OPT: minimum-latency schedule over every admissible color (Eq. 5/6).
///
/// Exact when the per-state enumeration never exceeds the exploration cap
/// ([`SearchConfig::branch_cap`] × [`SearchConfig::overscan`]); otherwise a
/// beam search whose result is still ≤ the G-OPT latency (greedy classes
/// are always in the branch set).
pub fn solve_opt<S: WakeSchedule>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    config: &SearchConfig,
) -> SearchOutcome {
    solve_opt_with(topo, source, wake, config, &mut BroadcastState::new())
}

/// As [`solve_opt`], reusing a caller-provided substrate.
pub fn solve_opt_with<S: WakeSchedule>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    config: &SearchConfig,
    state: &mut BroadcastState,
) -> SearchOutcome {
    solve_opt_model(topo, source, wake, &ProtocolModel, config, state)
}

/// As [`solve_opt_with`], under an arbitrary [`ConflictModel`]. The branch
/// sets are maximal conflict-free sets *of the model's graph*; under a
/// multi-channel model each branch seeds channel 0 and the remaining
/// candidates fill channels `1..K` greedily, which can only add coverage
/// (so the searched latency is an upper bound on true multi-channel OPT
/// and collapses to exactly the single-channel search at `K = 1`).
pub fn solve_opt_model<S: WakeSchedule, M: ConflictModel>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    model: &M,
    config: &SearchConfig,
    state: &mut BroadcastState,
) -> SearchOutcome {
    let started = wsn_obs::enabled().then(std::time::Instant::now);
    let out = Searcher::new(topo, wake, model, config, BranchRule::MaximalSets, state).run(source);
    if let Some(t0) = started {
        record_search_obs("searcher.opt_solves", &out, t0.elapsed());
    }
    out
}

/// Promote a finished search's [`SearchStats`] to `wsn-obs` metrics: one
/// bulk export per solve, never per state, so the enabled overhead is a
/// dozen atomic RMWs amortized over the whole search. Only reached when
/// recording is enabled (the disabled path is the single relaxed load in
/// [`wsn_obs::enabled`] plus a skipped `Instant::now`).
#[cold]
fn record_search_obs(solves: &'static str, out: &SearchOutcome, wall: std::time::Duration) {
    let s = &out.stats;
    wsn_obs::counter_add(solves, 1);
    wsn_obs::counter_add("searcher.states", s.states as u64);
    wsn_obs::counter_add("searcher.memo_hits", s.memo_hits as u64);
    wsn_obs::counter_add("searcher.pruned", s.pruned as u64);
    wsn_obs::counter_add("searcher.dominance_prunes", s.dominance_prunes as u64);
    wsn_obs::counter_add("searcher.branch_reorders", s.branch_reorders as u64);
    wsn_obs::counter_add(
        "searcher.truncated_enumerations",
        s.truncated_enumerations as u64,
    );
    wsn_obs::counter_add("searcher.conflict_rows_built", s.conflict_rows_built as u64);
    wsn_obs::counter_add(
        "searcher.conflict_rows_reused",
        s.conflict_rows_reused as u64,
    );
    if s.state_cap_hit {
        wsn_obs::counter_add("searcher.state_cap_hits", 1);
    }
    wsn_obs::gauge_set("searcher.memo_entries", s.memo_entries as i64);
    wsn_obs::gauge_set("searcher.phase_classes", s.phase_classes as i64);
    wsn_obs::observe_us("searcher.wall_us", wall.as_micros() as u64);
    wsn_obs::observe_us("searcher.latency_slots", out.latency);
}

/// Memo entry: either the exact remaining delay (with the chosen sender
/// set and its channel assignment), or a proven lower bound on it.
enum MemoEntry {
    Exact {
        rem: Slot,
        choice: Box<[NodeId]>,
        channels: Box<[u8]>,
    },
    LowerBound(Slot),
}

/// One branch of a state: a sender set (channel 0 under multi-channel
/// models seeds it, packed extras carry their channel ids).
struct Branch {
    senders: Vec<NodeId>,
    channels: Vec<u8>,
}

/// Sentinel budget for exhaustive mode: effectively infinite but with
/// headroom against overflow in `budget + t` arithmetic.
const INF_BUDGET: Slot = Slot::MAX / 4;

/// High bit tagging folded memo keys, keeping them disjoint from raw
/// phases (periods are asserted far below this).
const FOLD_KEY: u64 = 1 << 63;

/// Ladder depth cap — a backstop; the period/budget clamps bind first.
const MAX_FOLD_LEVELS: usize = 8;

/// Exact results kept per phase for superset-dominance scans.
const DOMINANCE_BUCKET_CAP: usize = 16;

/// `true` when `sup` ⊇ `sub`, word-parallel.
#[inline]
fn is_superset(sup: &[u64], sub: &[u64]) -> bool {
    sub.iter().zip(sup).all(|(&s, &p)| s & !p == 0)
}

/// The phase-folding tables: a rendered wake schedule, the horizon ladder,
/// and the interners that canonicalize restricted wake-pattern windows to
/// dense collision-free class ids (see the module-level DESIGN note).
struct PhaseFolder {
    table: WakePatternTable,
    /// Ascending fold horizons, all `< period`; the last is the first
    /// ladder rung at or above the root budget (so every non-exhaustive
    /// remainder has a certifying level) unless the period clamps earlier.
    levels: Vec<u32>,
    /// Per-node wake windows, namespaced by `(level, node)`.
    windows: WordSeqInterner,
    /// Per-state joint signatures over the relevant set, namespaced by
    /// level.
    joints: WordSeqInterner,
    /// Scratch: the relevant set `R(W)` of the state being keyed.
    relevant: NodeSet,
    /// Scratch: per-node window ids of the current signature.
    ids: Vec<u32>,
    /// Scratch: the packed joint signature.
    packed: Vec<u64>,
    /// Scratch: window extraction buffer.
    wbuf: Vec<u64>,
}

impl PhaseFolder {
    /// Builds the folder, or `None` when the schedule's period is too
    /// short for any fold horizon to exist (e.g. the synchronous system).
    fn new<S: WakeSchedule>(wake: &S, n: usize, root_budget: Slot) -> Option<Self> {
        let period = wake.period();
        let mut levels = Vec::new();
        let mut h: u64 = 8;
        while h < period && levels.len() < MAX_FOLD_LEVELS {
            levels.push(h as u32);
            if h >= root_budget {
                break;
            }
            h *= 4;
        }
        if levels.is_empty() {
            return None;
        }
        Some(PhaseFolder {
            table: WakePatternTable::build(wake, n),
            levels,
            windows: WordSeqInterner::new(),
            joints: WordSeqInterner::new(),
            relevant: NodeSet::new(n),
            ids: Vec::new(),
            packed: Vec::new(),
            wbuf: Vec::new(),
        })
    }

    /// Loads the relevant set `R(W)` — every node with an uninformed
    /// neighbor — for subsequent [`PhaseFolder::key_at`] calls.
    fn prepare(&mut self, topo: &Topology, informed: &NodeSet) {
        self.relevant.clear();
        for u in 0..topo.len() {
            if !topo.neighbor_set(NodeId(u as u32)).is_subset(informed) {
                self.relevant.insert(u);
            }
        }
    }

    /// The memo key of the prepared state at fold level `li` and `phase`.
    /// With `insert` false (lookups) the key exists only if the exact
    /// signature was interned by an earlier store; misses return `None`
    /// without touching the arenas.
    fn key_at(&mut self, li: usize, phase: Slot, insert: bool) -> Option<u64> {
        let PhaseFolder {
            table,
            levels,
            windows,
            joints,
            relevant,
            ids,
            packed,
            wbuf,
        } = self;
        let horizon = levels[li];
        ids.clear();
        for u in relevant.iter() {
            wbuf.clear();
            table.window(u, phase, horizon, wbuf);
            let ns = ((li as u64) << 32) | u as u64;
            let id = if insert {
                windows.intern(ns, wbuf)
            } else {
                windows.get(ns, wbuf)?
            };
            ids.push(id);
        }
        packed.clear();
        packed.push(ids.len() as u64);
        for pair in ids.chunks(2) {
            let hi = pair.get(1).copied().unwrap_or(u32::MAX) as u64;
            packed.push(((pair[0] as u64) << 32) | hi);
        }
        let joint = if insert {
            joints.intern(li as u64, packed)
        } else {
            joints.get(li as u64, packed)?
        };
        Some(FOLD_KEY | ((li as u64) << 32) | joint as u64)
    }

    /// Smallest fold level whose horizon certifies an exact remainder.
    fn level_for_exact(&self, rem: Slot) -> Option<usize> {
        self.levels.iter().position(|&h| h as u64 >= rem)
    }

    /// Smallest fold level whose horizon certifies a lower bound (`lb`
    /// rules out schedules of length `< lb`, which read `lb − 1` offsets).
    fn level_for_bound(&self, lb: Slot) -> Option<usize> {
        self.levels.iter().position(|&h| h as u64 + 1 >= lb)
    }
}

struct Searcher<'a, S: WakeSchedule, M: ConflictModel> {
    topo: &'a Topology,
    wake: &'a S,
    /// The conflict model every graph, branch set and reception check of
    /// this search runs under.
    model: &'a M,
    config: &'a SearchConfig,
    rule: BranchRule,
    /// Memo keyed by `(interned W, phase key)` — the phase key is either
    /// the raw `t mod period` or a folded `(level, pattern-class)` id,
    /// both collision-free by construction, and both salted with the
    /// model fingerprint (`key_salt`).
    memo: HashMap<(StateId, u64), MemoEntry>,
    /// Model-fingerprint salt XORed into every phase key. The memo is
    /// per-run today (one model per `Searcher`), so this is a structural
    /// guard, not a live disambiguator: entries are regime-tagged by
    /// construction, so a future persistent/shared memo cannot silently
    /// mix conflict regimes. XOR by a per-run constant is a bijection —
    /// it introduces no collisions.
    key_salt: u64,
    /// Canonicalizes informed sets to the dense ids the memo keys on.
    interner: SetInterner,
    /// Phase-folding tables (`None` = raw phase keys only).
    folder: Option<PhaseFolder>,
    /// Exact results bucketed by raw phase, scanned for supersets of a
    /// new state (OPT dominance).
    dominance: HashMap<Slot, Vec<(StateId, Slot)>>,
    /// `true` when dominance pruning is active for this run.
    use_dominance: bool,
    /// Shared substrate: scratch sets, candidate buffers, and the
    /// incrementally-maintained conflict graph.
    state: &'a mut BroadcastState,
    /// Scratch for branch coverage scoring.
    score_scratch: NodeSet,
    /// Scratch: the uninformed set of the state being branched (channel
    /// packing reads it while the conflict graph borrows the substrate).
    unf_scratch: NodeSet,
    stats: SearchStats,
    trace: SearchTrace,
}

impl<'a, S: WakeSchedule, M: ConflictModel> Searcher<'a, S, M> {
    fn new(
        topo: &'a Topology,
        wake: &'a S,
        model: &'a M,
        config: &'a SearchConfig,
        rule: BranchRule,
        state: &'a mut BroadcastState,
    ) -> Self {
        Searcher {
            topo,
            wake,
            model,
            config,
            rule,
            memo: HashMap::new(),
            key_salt: model.fingerprint(),
            interner: SetInterner::new(topo.len()),
            folder: None,
            dominance: HashMap::new(),
            // Dominance soundness rests on rem(W) being monotone in W,
            // proven for the all-maximal-sets branch rule on ONE channel.
            // Greedy channel packing makes per-branch coverage
            // non-monotone in W (channels exhaust on different
            // candidates), so K > 1 runs keep dominance off.
            use_dominance: config.dominance
                && !config.exhaustive
                && rule == BranchRule::MaximalSets
                && model.channels() == 1,
            state,
            score_scratch: NodeSet::new(topo.len()),
            unf_scratch: NodeSet::new(topo.len()),
            stats: SearchStats::default(),
            trace: SearchTrace::default(),
        }
    }

    fn run(mut self, source: NodeId) -> SearchOutcome {
        assert!(source.idx() < self.topo.len(), "source out of range");
        let n = self.topo.len();
        assert!(
            self.wake.period() < FOLD_KEY,
            "wake period too large for memo key encoding"
        );
        let t_s = self.wake.next_send(source.idx(), self.config.start_from);

        let mut w0 = NodeSet::new(n);
        w0.insert(source.idx());

        if w0.is_full() {
            // Single-node network: nothing to schedule.
            return SearchOutcome {
                schedule: Schedule {
                    source,
                    start: t_s,
                    entries: vec![],
                    receive_slot: vec![t_s; n],
                    repeats: Vec::new(),
                },
                latency: 0,
                exact: true,
                stats: self.stats,
                trace: self.config.collect_trace.then(|| self.trace.clone()),
            };
        }

        // Seed the budget with an achievable pipeline schedule under the
        // same conflict model; it doubles as the fallback when the state
        // cap aborts the search. The pipeline re-targets the shared
        // substrate to this topology, so the search below continues from
        // warm caches.
        let seed = run_pipeline_model(
            self.topo,
            source,
            self.wake,
            self.model,
            &mut MaxReceiversSelector,
            &PipelineConfig {
                start_from: self.config.start_from,
            },
            self.state,
        );
        let budget = if self.config.exhaustive {
            INF_BUDGET
        } else {
            seed.latency()
        };
        if self.config.phase_fold && !self.config.exhaustive {
            self.folder = PhaseFolder::new(self.wake, n, budget);
        }
        let conflict_base = *self.state.conflict_stats();

        let (schedule, fell_back) = match self.dfs(&w0, t_s, budget) {
            Some(rem) => match self.reconstruct(source, t_s, &w0, rem) {
                Some(schedule) => {
                    debug_assert!(schedule.latency() <= rem);
                    (schedule, false)
                }
                // The state cap fired while re-deriving a folded suffix;
                // the seed is still a valid schedule.
                None => (seed, true),
            },
            // The search found nothing within the seeded budget: either the
            // state cap aborted it, or (beam OPT only) enumeration caps cut
            // every path that could match the greedy seed. The seed itself
            // is a valid schedule either way.
            None => (seed, true),
        };
        let exact = !fell_back
            && !self.stats.state_cap_hit
            && (self.rule == BranchRule::GreedyClasses || self.stats.truncated_enumerations == 0);
        let conflict = self.state.conflict_stats().since(&conflict_base);
        self.stats.conflict_rows_built = conflict.rows_built;
        self.stats.conflict_rows_reused = conflict.rows_reused;
        self.stats.interned_sets = self.interner.len();
        self.stats.memo_entries = self.memo.len();
        self.stats.phase_classes = self.folder.as_ref().map_or(0, |f| f.joints.len());
        SearchOutcome {
            latency: schedule.latency(),
            schedule,
            exact,
            stats: self.stats.clone(),
            trace: self.config.collect_trace.then(|| self.trace.clone()),
        }
    }

    /// The branch colors of a state, most promising first. Each branch is a
    /// conflict-free sender set among the awake candidates (under a
    /// multi-channel model: the channel-0 seed, packed with extra-channel
    /// senders after ordering/truncation — ordering scores the seeds, and
    /// packing can only add coverage). The substrate must be loaded with
    /// `(informed, t)` by the caller; one incremental conflict-graph
    /// update serves both the greedy coloring and the maximal-set
    /// enumeration. `dist` is the hop profile from `W` (for
    /// frontier-weighted scoring).
    fn branches(&mut self, informed: &NodeSet, dist: &[u32]) -> Vec<Branch> {
        let sets = match self.rule {
            BranchRule::GreedyClasses => self.state.greedy_classes_with(self.topo, self.model),
            BranchRule::MaximalSets => self.maximal_branch_sets(informed, dist),
        };
        if self.model.channels() <= 1 {
            return sets
                .into_iter()
                .map(|set| Branch {
                    senders: set,
                    channels: Vec::new(),
                })
                .collect();
        }
        // Multi-channel packing: one conflict-graph fetch (a zero-delta
        // builder touch — the substrate is already loaded with this
        // state) and one greedy sweep order for the whole branch list,
        // not one per branch.
        self.unf_scratch.copy_from(informed);
        self.unf_scratch.invert();
        let cg = self.state.conflict_graph_with(self.topo, self.model);
        let order = wsn_coloring::greedy_pack_order(self.topo, cg, &self.unf_scratch);
        sets.into_iter()
            .map(|set| {
                let (senders, channels) = wsn_coloring::pack_channels_ordered(
                    self.topo,
                    cg,
                    &self.unf_scratch,
                    &set,
                    self.model.channels(),
                    &order,
                );
                Branch { senders, channels }
            })
            .collect()
    }

    /// The OPT branch seeds: maximal conflict-free sets plus the maximal
    /// extensions of the greedy classes, ordered and beam-truncated.
    fn maximal_branch_sets(&mut self, informed: &NodeSet, dist: &[u32]) -> Vec<Vec<NodeId>> {
        let explore_cap = self
            .config
            .branch_cap
            .saturating_mul(self.config.overscan.max(1) as usize);
        let (classes, cg) = self.state.classes_and_graph_with(self.topo, self.model);
        let outcome = maximal_conflict_free_sets(cg, explore_cap);
        if outcome.truncated {
            self.stats.truncated_enumerations += 1;
        }
        let mut sets: Vec<Vec<NodeId>> = outcome
            .sets
            .iter()
            .map(|idxs| {
                let mut v: Vec<NodeId> = idxs.iter().map(|&i| cg.node(i)).collect();
                v.sort_unstable();
                v
            })
            .collect();
        // Guarantee OPT ⊆-dominates G-OPT: extend each greedy class
        // to a maximal set and include it.
        let mut extensions: Vec<Vec<NodeId>> = classes
            .iter()
            .map(|class| extend_to_maximal(cg, class))
            .collect();
        sets.extend(extensions.iter().cloned());
        sets.sort();
        sets.dedup();
        match self.config.branch_order {
            // Most new coverage first → tight budgets early.
            BranchOrder::CoverageSum => {
                sets.sort_by_key(|set| {
                    std::cmp::Reverse(
                        set.iter()
                            .map(|&u| self.topo.neighbor_set(u).difference_len(informed))
                            .sum::<usize>(),
                    )
                });
            }
            BranchOrder::FrontierWeighted => {
                let scratch = &mut self.score_scratch;
                let topo = self.topo;
                let mut scored: Vec<(u64, Vec<NodeId>)> = sets
                    .drain(..)
                    .map(|set| {
                        scratch.clear();
                        for &u in &set {
                            scratch.union_with(topo.neighbor_set(u));
                        }
                        scratch.difference_with(informed);
                        let score: u64 = scratch.iter().map(|v| 1 + dist[v] as u64).sum();
                        (score, set)
                    })
                    .collect();
                if order_best_first(&mut scored, |&(score, _)| score) {
                    self.stats.branch_reorders += 1;
                }
                sets = scored.into_iter().map(|(_, set)| set).collect();
            }
        }
        // Beam truncation (either ordering): only once overscan
        // actually widened the exploration — with `overscan = 1`
        // the enumeration cap alone bounds the list, matching the
        // pre-fold searches bit for bit. The greedy-class
        // extensions always survive (OPT ≤ G-OPT).
        if outcome.truncated && self.config.overscan > 1 && sets.len() > self.config.branch_cap {
            extensions.sort();
            extensions.dedup();
            truncate_keeping(&mut sets, self.config.branch_cap, |set| {
                extensions.binary_search(set).is_ok()
            });
        }
        sets
    }

    /// Gathers every phase key of the state — the raw phase plus one per
    /// fold level whose pattern class already exists (lookup mode) or the
    /// raw phase only (folding off). Every key is salted with the model
    /// fingerprint. Returns the key count.
    fn lookup_keys(&mut self, informed: &NodeSet, phase: Slot, keys: &mut [u64]) -> usize {
        keys[0] = phase ^ self.key_salt;
        let mut n = 1;
        if let Some(f) = self.folder.as_mut() {
            f.prepare(self.topo, informed);
            for li in 0..f.levels.len() {
                if let Some(k) = f.key_at(li, phase, false) {
                    keys[n] = k ^ self.key_salt;
                    n += 1;
                }
            }
        }
        n
    }

    /// Returns the minimum remaining delay (slots from `t` through the last
    /// transmission, inclusive) if it is ≤ `budget`, else `None`. Exact
    /// values and the corresponding first advance are memoized.
    fn dfs(&mut self, informed: &NodeSet, t: Slot, budget: Slot) -> Option<Slot> {
        debug_assert!(!informed.is_full());
        let phase = t % self.wake.period();
        let sid = self.interner.intern(informed);

        let mut keys = [0u64; MAX_FOLD_LEVELS + 1];
        let nkeys = self.lookup_keys(informed, phase, &mut keys);
        let mut known_lb: Slot = 0;
        let mut known_exact: Option<Slot> = None;
        for &key in &keys[..nkeys] {
            match self.memo.get(&(sid, key)) {
                Some(MemoEntry::Exact { rem, .. }) => {
                    known_exact = Some(*rem);
                    break;
                }
                Some(MemoEntry::LowerBound(lb)) => known_lb = known_lb.max(*lb),
                None => {}
            }
        }
        if let Some(rem) = known_exact {
            self.stats.memo_hits += 1;
            return (rem <= budget).then_some(rem);
        }
        if known_lb > budget {
            self.stats.memo_hits += 1;
            self.stats.pruned += 1;
            return None;
        }

        if self.stats.states >= self.config.max_states {
            self.stats.state_cap_hit = true;
            return None;
        }
        self.stats.states += 1;

        // Admissible lower bound: farthest uninformed node in hops. The
        // hop profile doubles as the branch-scoring weight below.
        let (hop_lb, dist) = remaining_hops_profile(self.topo, informed);
        let mut lb = hop_lb.max(known_lb);
        if hop_lb > budget {
            self.stats.pruned += 1;
            self.record_lower_bound(sid, phase, informed, hop_lb);
            return None;
        }

        // Superset dominance: a memoized exact result for W' ⊇ W at this
        // phase lower-bounds our remainder by monotonicity.
        if self.use_dominance {
            let interner = &self.interner;
            if let Some(bucket) = self.dominance.get(&phase) {
                for &(dsid, drem) in bucket {
                    if drem > lb
                        && dsid != sid
                        && is_superset(interner.words(dsid), informed.words())
                    {
                        lb = drem;
                    }
                }
            }
            if lb > budget {
                self.stats.pruned += 1;
                self.stats.dominance_prunes += 1;
                self.record_lower_bound(sid, phase, informed, lb);
                return None;
            }
        }

        self.state.load_awake(self.topo, informed, self.wake, t);
        if self.state.candidates().is_empty() {
            // Duty-cycle wait: jump to the earliest wake-up among eligible
            // senders. The remaining delay is the wait plus the remainder.
            self.state.load(self.topo, informed);
            let eligible = self.state.candidates();
            assert!(
                !eligible.is_empty(),
                "broadcast cannot complete: disconnected topology"
            );
            let t_next = eligible
                .iter()
                .map(|u| self.wake.next_send(u.idx(), t + 1))
                .min()
                .expect("non-empty");
            let wait = t_next - t;
            if self.config.collect_trace {
                self.trace.states.push(TraceState {
                    informed: informed.to_vec(),
                    slot: t,
                    options: vec![],
                    chosen: None,
                    jumped_to: Some(t_next),
                });
            }
            if wait + 1 > budget {
                self.stats.pruned += 1;
                self.record_lower_bound(sid, phase, informed, wait + 1);
                return None;
            }
            let sub = self.dfs(informed, t_next, budget - wait);
            return match sub {
                Some(r) => {
                    // Memoize through the wait so reconstruction can replay.
                    self.record_exact(
                        sid,
                        phase,
                        informed,
                        wait + r,
                        Box::default(),
                        Box::default(),
                    );
                    Some(wait + r)
                }
                None => {
                    self.record_lower_bound(sid, phase, informed, wait + 1);
                    None
                }
            };
        }

        let branches = self.branches(informed, &dist);
        debug_assert!(!branches.is_empty());

        let trace_idx = if self.config.collect_trace {
            self.trace.states.push(TraceState {
                informed: informed.to_vec(),
                slot: t,
                options: branches
                    .iter()
                    .map(|b| TraceOption {
                        class: b.senders.clone(),
                        m_value: None,
                    })
                    .collect(),
                chosen: None,
                jumped_to: None,
            });
            Some(self.trace.states.len() - 1)
        } else {
            None
        };

        // No branch can beat the strongest known lower bound; stop the
        // loop as soon as one meets it.
        let floor = lb.max(1);
        let mut best: Option<(Slot, usize)> = None;
        let mut local_budget = budget;
        let mut evaluated: Vec<NodeSet> = Vec::new();
        for (bi, branch) in branches.iter().enumerate() {
            let mut next = informed.clone();
            for &u in &branch.senders {
                next.union_with(self.topo.neighbor_set(u));
            }
            if self.use_dominance && evaluated.iter().any(|prev| next.is_subset(prev)) {
                // Sibling dominance: an already-evaluated branch covers at
                // least this much, and every evaluated sibling is over the
                // tightened budget, so by monotonicity this one is too.
                self.stats.pruned += 1;
                self.stats.dominance_prunes += 1;
                continue;
            }
            let rem = if next.is_full() {
                Some(1)
            } else if local_budget == 0 {
                self.stats.pruned += 1;
                None
            } else {
                self.dfs(&next, t + 1, local_budget - 1).map(|r| r + 1)
            };
            if let Some(r) = rem {
                if let Some(ti) = trace_idx {
                    // Completion slot of this branch: t_e = t + rem − 1.
                    self.trace.states[ti].options[bi].m_value = Some(t + r - 1);
                }
                let better = best.as_ref().is_none_or(|(b, _)| r < *b);
                if better {
                    let done = r == floor;
                    best = Some((r, bi));
                    // Only strictly better continuations are interesting,
                    // unless exhaustive mode wants every exact value.
                    if !self.config.exhaustive {
                        local_budget = r - 1;
                        if done {
                            break;
                        }
                    }
                }
            }
            if self.use_dominance {
                evaluated.push(next);
            }
        }

        match best {
            Some((rem, bi)) => {
                if let Some(ti) = trace_idx {
                    self.trace.states[ti].chosen = Some(bi);
                }
                let chosen = &branches[bi];
                self.record_exact(
                    sid,
                    phase,
                    informed,
                    rem,
                    chosen.senders.clone().into_boxed_slice(),
                    chosen.channels.clone().into_boxed_slice(),
                );
                Some(rem)
            }
            None => {
                self.record_lower_bound(sid, phase, informed, budget + 1);
                None
            }
        }
    }

    /// Memoizes an exact remainder under the tightest phase key certifying
    /// it, and publishes it to the dominance store.
    fn record_exact(
        &mut self,
        sid: StateId,
        phase: Slot,
        informed: &NodeSet,
        rem: Slot,
        choice: Box<[NodeId]>,
        channels: Box<[u8]>,
    ) {
        let key = self.store_key(phase, informed, |f| f.level_for_exact(rem));
        self.memo.insert(
            (sid, key),
            MemoEntry::Exact {
                rem,
                choice,
                channels,
            },
        );
        if self.use_dominance {
            let bucket = self.dominance.entry(phase).or_default();
            if bucket.len() < DOMINANCE_BUCKET_CAP {
                bucket.push((sid, rem));
            } else if let Some(weakest) = bucket.iter_mut().min_by_key(|&&mut (_, r)| r) {
                if rem > weakest.1 {
                    *weakest = (sid, rem);
                }
            }
        }
    }

    /// Records `lb` as a proven lower bound under the tightest phase key
    /// certifying it, keeping the strongest bound per key.
    fn record_lower_bound(&mut self, sid: StateId, phase: Slot, informed: &NodeSet, lb: Slot) {
        let key = self.store_key(phase, informed, |f| f.level_for_bound(lb));
        match self.memo.get_mut(&(sid, key)) {
            Some(MemoEntry::Exact { .. }) => {}
            Some(MemoEntry::LowerBound(old)) => {
                if lb > *old {
                    *old = lb;
                }
            }
            None => {
                self.memo.insert((sid, key), MemoEntry::LowerBound(lb));
            }
        }
    }

    /// The phase key to store an entry under: the chosen fold level when
    /// folding is on and a level certifies the value, the raw phase
    /// otherwise. Salted with the model fingerprint like every lookup key.
    fn store_key(
        &mut self,
        phase: Slot,
        informed: &NodeSet,
        pick: impl FnOnce(&PhaseFolder) -> Option<usize>,
    ) -> u64 {
        let raw = match self.folder.as_mut() {
            Some(f) => match pick(f) {
                Some(li) => {
                    f.prepare(self.topo, informed);
                    f.key_at(li, phase, true)
                        .expect("insert-mode key_at always yields a key")
                }
                None => phase,
            },
            None => phase,
        };
        raw ^ self.key_salt
    }

    /// The memoized exact entry of `(informed, t)`, across all phase keys.
    #[allow(clippy::type_complexity)]
    fn lookup_exact(
        &mut self,
        informed: &NodeSet,
        t: Slot,
    ) -> Option<(Slot, Box<[NodeId]>, Box<[u8]>)> {
        let phase = t % self.wake.period();
        let sid = self.interner.intern(informed);
        let mut keys = [0u64; MAX_FOLD_LEVELS + 1];
        let nkeys = self.lookup_keys(informed, phase, &mut keys);
        for &key in &keys[..nkeys] {
            if let Some(MemoEntry::Exact {
                rem,
                choice,
                channels,
            }) = self.memo.get(&(sid, key))
            {
                return Some((*rem, choice.clone(), channels.clone()));
            }
        }
        None
    }

    /// Replays the memoized choices from the root into a schedule.
    /// Returns `None` only if the state cap fires while re-deriving a
    /// folded suffix (the caller then falls back to the seed schedule).
    fn reconstruct(
        &mut self,
        source: NodeId,
        t_s: Slot,
        w0: &NodeSet,
        rem_root: Slot,
    ) -> Option<Schedule> {
        let n = self.topo.len();
        let mut informed = w0.clone();
        let mut receive_slot = vec![t_s; n];
        let mut entries = Vec::new();
        let mut t = t_s;
        while !informed.is_full() {
            let Some((_, entry, chans)) = self.lookup_exact(&informed, t) else {
                // The optimal path ran through a folded entry whose subtree
                // was memoized under another phase's pattern classes;
                // re-derive this suffix (cheap — the memo is warm) so the
                // choices exist under our keys too.
                let elapsed = t - t_s;
                if rem_root <= elapsed || self.dfs(&informed, t, rem_root - elapsed).is_none() {
                    return None;
                }
                continue;
            };
            if entry.is_empty() {
                // A recorded wait: jump to the next wake-up among eligible
                // senders (same computation as the search).
                self.state.load(self.topo, &informed);
                t = self
                    .state
                    .candidates()
                    .iter()
                    .map(|u| self.wake.next_send(u.idx(), t + 1))
                    .min()
                    .expect("non-empty");
                continue;
            }
            let mut advance = NodeSet::new(n);
            for &u in entry.iter() {
                advance.union_with(self.topo.neighbor_set(u));
            }
            advance.difference_with(&informed);
            for w in advance.iter() {
                receive_slot[w] = t;
            }
            informed.union_with(&advance);
            entries.push(ScheduleEntry {
                slot: t,
                senders: entry.to_vec(),
                channels: chans.to_vec(),
            });
            t += 1;
        }
        Some(Schedule {
            source,
            start: t_s,
            entries,
            receive_slot,
            repeats: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_dutycycle::{AlwaysAwake, ExplicitSchedule, WindowedRandom};
    use wsn_topology::{deploy, fixtures};

    #[test]
    fn gopt_fig2a_matches_table_ii() {
        let f = fixtures::fig2a();
        let out = solve_gopt(&f.topo, f.source, &AlwaysAwake, &SearchConfig::default());
        assert!(out.exact);
        assert_eq!(out.latency, 2, "Table II: P(A) = 2");
        out.schedule.verify(&f.topo, &AlwaysAwake).unwrap();
        // The optimal first-hop choice is node "2" (covers 4 and 5).
        assert_eq!(out.schedule.entries[1].senders, vec![f.id("2")]);
    }

    #[test]
    fn gopt_fig1_matches_table_iii() {
        let f = fixtures::fig1();
        let out = solve_gopt(&f.topo, f.source, &AlwaysAwake, &SearchConfig::default());
        assert!(out.exact);
        assert_eq!(out.latency, 3, "Table III: P(A) = 3");
        out.schedule.verify(&f.topo, &AlwaysAwake).unwrap();
        // Table III's optimal second advance launches node 1's color.
        assert_eq!(out.schedule.entries[1].senders, vec![f.id("1")]);
        // And the third advance is {0, 4} covering {5,6,7,8,9}.
        assert_eq!(out.schedule.entries[2].senders, vec![f.id("0"), f.id("4")]);
    }

    #[test]
    fn opt_never_worse_than_gopt() {
        for seed in 0..4u64 {
            let (topo, src) = deploy::SyntheticDeployment::paper(60).sample(seed);
            let g = solve_gopt(&topo, src, &AlwaysAwake, &SearchConfig::default());
            let o = solve_opt(&topo, src, &AlwaysAwake, &SearchConfig::default());
            assert!(
                o.latency <= g.latency,
                "seed {seed}: OPT {} > G-OPT {}",
                o.latency,
                g.latency
            );
            o.schedule.verify(&topo, &AlwaysAwake).unwrap();
            g.schedule.verify(&topo, &AlwaysAwake).unwrap();
        }
    }

    #[test]
    fn table_iv_duty_cycle_trace() {
        // Figure 2(e) under the Table IV wake schedule: t_s = 2, the
        // optimum completes at slot 4 (P(A) = 4 in the paper's absolute
        // numbering; elapsed latency 3).
        let f = fixtures::fig2a();
        let wake = ExplicitSchedule::new(vec![vec![2], vec![4, 13], vec![4], vec![9], vec![9]], 20);
        let out = solve_gopt(
            &f.topo,
            f.source,
            &wake,
            &SearchConfig {
                start_from: 1,
                collect_trace: true,
                exhaustive: true,
                ..SearchConfig::default()
            },
        );
        assert_eq!(out.schedule.start, 2);
        assert_eq!(out.schedule.completion_slot(), 4, "Table IV: P(A) = 4");
        out.schedule.verify(&f.topo, &wake).unwrap();

        // The alternative branch (selecting node "3" at slot 4) must defer
        // completion to slot 13 = r + 3, as the paper's last row shows.
        let trace = out.trace.unwrap();
        let slot4 = trace
            .states
            .iter()
            .find(|s| s.slot == 4 && s.options.len() == 2)
            .expect("the two-color state at slot 4");
        assert_eq!(slot4.options[0].m_value, Some(4));
        assert_eq!(slot4.options[1].m_value, Some(13));
        assert_eq!(slot4.chosen, Some(0));
        // And the N/A row at slot 3 is present with a jump to 4.
        assert!(trace
            .states
            .iter()
            .any(|s| s.slot == 3 && s.options.is_empty() && s.jumped_to == Some(4)));
    }

    #[test]
    fn exhaustive_trace_records_all_branch_values() {
        let f = fixtures::fig2a();
        let out = solve_gopt(
            &f.topo,
            f.source,
            &AlwaysAwake,
            &SearchConfig {
                collect_trace: true,
                exhaustive: true,
                ..SearchConfig::default()
            },
        );
        let trace = out.trace.unwrap();
        // Table II state M({1,2,3},2): options C1={2} with M=2, C2={3}
        // with M=3.
        let st = trace
            .states
            .iter()
            .find(|s| s.informed.len() == 3 && s.slot == 2)
            .expect("state with W = {1,2,3}");
        assert_eq!(st.options.len(), 2);
        assert_eq!(st.options[0].m_value, Some(2));
        assert_eq!(st.options[1].m_value, Some(3));
        assert_eq!(st.chosen, Some(0));
    }

    #[test]
    fn search_on_single_node() {
        let topo = wsn_topology::Topology::unit_disk(vec![wsn_geom::Point::new(0.0, 0.0)], 1.0);
        let out = solve_gopt(&topo, NodeId(0), &AlwaysAwake, &SearchConfig::default());
        assert_eq!(out.latency, 0);
        assert!(out.exact);
    }

    #[test]
    fn state_cap_degrades_gracefully() {
        let (topo, src) = deploy::SyntheticDeployment::paper(80).sample(1);
        let out = solve_gopt(
            &topo,
            src,
            &AlwaysAwake,
            &SearchConfig {
                max_states: 1,
                ..SearchConfig::default()
            },
        );
        // Still a valid schedule (the seeded pipeline budget is achievable
        // and reconstruction follows whatever was memoized)…
        out.schedule.verify(&topo, &AlwaysAwake).unwrap();
        // …but flagged inexact.
        assert!(!out.exact);
        assert!(out.stats.state_cap_hit);
    }

    /// The duty-cycle configurations the folding tests sweep.
    fn duty_wake(n: usize, rate: u32, seed: u64) -> WindowedRandom {
        WindowedRandom::with_windows(n, rate, seed, 8)
    }

    #[test]
    fn phase_folding_preserves_results_on_fixtures() {
        for rate in [2u32, 5, 10, 50] {
            for seed in 0..3u64 {
                let (topo, src) = deploy::SyntheticDeployment::paper(60).sample(seed);
                let wake = duty_wake(topo.len(), rate, seed ^ 0xd00d);
                let folded = SearchConfig::default();
                let unfolded = SearchConfig {
                    phase_fold: false,
                    ..SearchConfig::default()
                };
                let a = solve_gopt(&topo, src, &wake, &folded);
                let b = solve_gopt(&topo, src, &wake, &unfolded);
                assert_eq!(
                    (a.latency, a.exact),
                    (b.latency, b.exact),
                    "rate {rate} seed {seed}: folding changed the G-OPT result"
                );
                a.schedule.verify(&topo, &wake).unwrap();
                assert!(
                    a.stats.memo_entries <= b.stats.memo_entries,
                    "rate {rate} seed {seed}: folding grew the memo"
                );
                if rate >= 5 {
                    assert!(a.stats.phase_classes > 0, "folder never engaged");
                }
            }
        }
    }

    #[test]
    fn dominance_preserves_opt_results() {
        for seed in 0..3u64 {
            let (topo, src) = deploy::SyntheticDeployment::paper(60).sample(seed);
            let on = solve_opt(
                &topo,
                src,
                &AlwaysAwake,
                &SearchConfig {
                    dominance: true,
                    ..SearchConfig::default()
                },
            );
            let off = solve_opt(&topo, src, &AlwaysAwake, &SearchConfig::default());
            assert_eq!(on.latency, off.latency, "seed {seed}: latency drifted");
            // Dominance can only make the search *more* exact: it skips
            // subtrees (sometimes the very ones whose enumeration would
            // truncate) but never introduces truncation or caps.
            assert!(
                on.exact || !off.exact,
                "seed {seed}: dominance lost exactness"
            );
            assert!(on.stats.states <= off.stats.states);
        }
    }

    #[test]
    fn frontier_ordering_with_overscan_stays_valid() {
        for seed in 0..2u64 {
            let (topo, src) = deploy::SyntheticDeployment::paper(60).sample(seed);
            let wake = duty_wake(topo.len(), 10, seed);
            let cfg = SearchConfig {
                branch_cap: 12,
                overscan: 4,
                branch_order: BranchOrder::FrontierWeighted,
                ..SearchConfig::default()
            };
            let out = solve_opt(&topo, src, &wake, &cfg);
            out.schedule.verify(&topo, &wake).unwrap();
            let g = solve_gopt(&topo, src, &wake, &cfg);
            assert!(
                out.latency <= g.latency,
                "seed {seed}: beam OPT above G-OPT despite kept extensions"
            );
        }
    }

    #[test]
    fn multichannel_search_dissolves_conflicts() {
        use wsn_phy::{MultiChannel, PhyModelSpec, ProtocolModel};
        let mut extra_channels_used = false;
        for seed in 0..3u64 {
            let (topo, src) = deploy::SyntheticDeployment::paper(60).sample(seed);
            let cfg = SearchConfig::default();
            let mut state = BroadcastState::new();
            let single =
                solve_opt_model(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg, &mut state);
            let ecc = crate::bounds::source_eccentricity(&topo, src) as u64;
            for k in [2u32, 4] {
                let model = MultiChannel::new(ProtocolModel, k);
                let out = solve_opt_model(&topo, src, &AlwaysAwake, &model, &cfg, &mut state);
                out.schedule
                    .verify_with_model(&topo, &AlwaysAwake, &model)
                    .unwrap();
                // Packing only ever adds per-slot coverage, so when both
                // searches are exact the K-channel optimum cannot lose to
                // the single-channel one (every single-channel branch seed
                // exists in the K-channel tree with ⊇ coverage).
                if single.exact && out.exact {
                    assert!(
                        out.latency <= single.latency,
                        "seed {seed}: K={k} latency {} above single-channel {}",
                        out.latency,
                        single.latency
                    );
                }
                // The eccentricity (hop radius) is a hard floor no channel
                // count can beat.
                assert!(out.latency >= ecc, "seed {seed}: under the hop floor");
                extra_channels_used |= out
                    .schedule
                    .entries
                    .iter()
                    .any(|e| e.channels.iter().any(|&c| c > 0));
            }
            // And the spec round-trips through the same model.
            let spec = PhyModelSpec::protocol().with_channels(4);
            let m = spec.build(&topo);
            let out = solve_opt_model(&topo, src, &AlwaysAwake, &m, &cfg, &mut state);
            out.schedule
                .verify_with_model(&topo, &AlwaysAwake, &m)
                .unwrap();
        }
        assert!(
            extra_channels_used,
            "no slot on any seed ever packed a second channel"
        );
    }

    #[test]
    fn sinr_search_verifies_under_its_model() {
        use wsn_phy::{SinrModel, SinrParams};
        for seed in 0..2u64 {
            let (topo, src) = deploy::SyntheticDeployment::paper(60).sample(seed);
            let model = SinrModel::new(SinrParams::calibrated(topo.radius(), 3.0, 1.5), &topo);
            let cfg = SearchConfig::default();
            let mut state = BroadcastState::new();
            let opt = solve_opt_model(&topo, src, &AlwaysAwake, &model, &cfg, &mut state);
            opt.schedule
                .verify_with_model(&topo, &AlwaysAwake, &model)
                .unwrap();
            let gopt = solve_gopt_model(&topo, src, &AlwaysAwake, &model, &cfg, &mut state);
            gopt.schedule
                .verify_with_model(&topo, &AlwaysAwake, &model)
                .unwrap();
            assert!(
                opt.latency <= gopt.latency,
                "seed {seed}: SINR OPT above G-OPT"
            );
        }
    }
}
