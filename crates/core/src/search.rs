//! The OPT and G-OPT searches: exact minimization of the time counter `M`.
//!
//! Eq. (4) defines the delay of a broadcast as the fixpoint of
//! `M(W, t) = M(W + A(W, t), t + 1)` with `M(N, t) = t − 1`; OPT (Eq. 5/6)
//! picks at every state the color minimizing the continuation over *all*
//! admissible colors, G-OPT (Eq. 7/8) over the greedy classes only. Both
//! are realized here as one memoized depth-first branch-and-bound:
//!
//! * **State** — `(W, t mod P)` where `P` is the wake schedule's period:
//!   the remaining delay is Markov in the informed set and the schedule
//!   phase (rem(W, t) = rem(W, t + P) by periodicity).
//! * **Upper bound seeding** — the pipeline with the plain greedy selector
//!   provides an achievable initial budget, so the search only explores
//!   improving branches.
//! * **Lower bound** — an uninformed node `h` hops from `W` needs at least
//!   `h` further slots (one advance per slot); see
//!   [`crate::bounds::remaining_hops_lower_bound`].
//! * **Branch rules** — greedy classes (G-OPT), or every maximal
//!   conflict-free sender set plus the maximal extensions of the greedy
//!   classes (OPT; including the extensions guarantees OPT ≤ G-OPT even
//!   when the enumeration cap truncates — see DESIGN.md).
//!
//! Monotonicity (a larger informed set can always simulate a smaller one)
//! justifies both never-defer and maximal-set branching; the property tests
//! in `tests/` check optimality against exhaustive search on small
//! instances.

use crate::bounds::remaining_hops_lower_bound;
use crate::pipeline::{run_pipeline_with, MaxReceiversSelector, PipelineConfig};
use crate::schedule::{Schedule, ScheduleEntry};
use crate::trace::{SearchTrace, TraceOption, TraceState};
use std::collections::HashMap;
use wsn_bitset::{NodeSet, SetInterner, StateId};
use wsn_coloring::{extend_to_maximal, maximal_conflict_free_sets, BroadcastState};
use wsn_dutycycle::{Slot, WakeSchedule};
use wsn_topology::{NodeId, Topology};

/// Search parameters.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Slot from which the source may first transmit (`t_s` is its first
    /// sending slot at or after this).
    pub start_from: Slot,
    /// OPT only: maximum number of maximal conflict-free sets enumerated
    /// per state before the branch list is truncated (beam mode).
    pub branch_cap: usize,
    /// Hard cap on distinct states evaluated; beyond it new states are
    /// abandoned (the search still returns a valid schedule, flagged
    /// inexact).
    pub max_states: usize,
    /// Record a [`SearchTrace`] (used by the table binaries).
    pub collect_trace: bool,
    /// Disable upper-bound seeding and budget tightening so that every
    /// branch is evaluated exactly — required for complete paper-style
    /// traces; only sensible on small fixtures.
    pub exhaustive: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            start_from: 1,
            branch_cap: 64,
            max_states: 2_000_000,
            collect_trace: false,
            exhaustive: false,
        }
    }
}

/// Search statistics.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Distinct `(W, phase)` states evaluated.
    pub states: usize,
    /// Memo lookups that short-circuited a subtree.
    pub memo_hits: usize,
    /// Branches pruned by bound reasoning.
    pub pruned: usize,
    /// States whose OPT enumeration hit the branch cap.
    pub truncated_enumerations: usize,
    /// `true` when `max_states` stopped the search somewhere.
    pub state_cap_hit: bool,
    /// Distinct informed sets canonicalized by the memo-key interner.
    pub interned_sets: usize,
    /// Conflict-graph rows computed from scratch during the search.
    pub conflict_rows_built: usize,
    /// Conflict-graph rows carried across states by the incremental
    /// builder. `built + reused` is what a rebuild-per-state strategy
    /// would have computed, so `reused ≥ built` means the substrate cut
    /// row computations at least in half.
    pub conflict_rows_reused: usize,
}

/// Result of a search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The best schedule found.
    pub schedule: Schedule,
    /// End-to-end latency of that schedule (`t_e − t_s + 1`).
    pub latency: Slot,
    /// `true` when the result is provably optimal for the branch rule
    /// (no enumeration truncation, no state-cap abandonment).
    pub exact: bool,
    /// Statistics.
    pub stats: SearchStats,
    /// The trace, when requested.
    pub trace: Option<SearchTrace>,
}

/// Which colors a state may branch over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BranchRule {
    /// The λ classes of the extended greedy scheme (G-OPT, Eq. 7/8).
    GreedyClasses,
    /// All maximal conflict-free sender sets (OPT, Eq. 5/6), capped.
    MaximalSets,
}

/// G-OPT: minimum-latency schedule over greedy-scheme colors (Eq. 7/8).
pub fn solve_gopt<S: WakeSchedule>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    config: &SearchConfig,
) -> SearchOutcome {
    solve_gopt_with(topo, source, wake, config, &mut BroadcastState::new())
}

/// As [`solve_gopt`], reusing a caller-provided substrate (one per sweep
/// worker instead of one per instance).
pub fn solve_gopt_with<S: WakeSchedule>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    config: &SearchConfig,
    state: &mut BroadcastState,
) -> SearchOutcome {
    Searcher::new(topo, wake, config, BranchRule::GreedyClasses, state).run(source)
}

/// OPT: minimum-latency schedule over every admissible color (Eq. 5/6).
///
/// Exact when the per-state enumeration never exceeds
/// [`SearchConfig::branch_cap`]; otherwise a beam search whose result is
/// still ≤ the G-OPT latency (greedy classes are always in the branch set).
pub fn solve_opt<S: WakeSchedule>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    config: &SearchConfig,
) -> SearchOutcome {
    solve_opt_with(topo, source, wake, config, &mut BroadcastState::new())
}

/// As [`solve_opt`], reusing a caller-provided substrate.
pub fn solve_opt_with<S: WakeSchedule>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    config: &SearchConfig,
    state: &mut BroadcastState,
) -> SearchOutcome {
    Searcher::new(topo, wake, config, BranchRule::MaximalSets, state).run(source)
}

/// Memo entry: either the exact remaining delay (with the chosen sender
/// set), or a proven lower bound on it.
enum MemoEntry {
    Exact { rem: Slot, choice: Box<[NodeId]> },
    LowerBound(Slot),
}

/// Sentinel budget for exhaustive mode: effectively infinite but with
/// headroom against overflow in `budget + t` arithmetic.
const INF_BUDGET: Slot = Slot::MAX / 4;

struct Searcher<'a, S: WakeSchedule> {
    topo: &'a Topology,
    wake: &'a S,
    config: &'a SearchConfig,
    rule: BranchRule,
    /// Memo keyed by `(interned W, t mod period)` — collision-free by
    /// construction, unlike the fingerprint keys this replaced.
    memo: HashMap<(StateId, Slot), MemoEntry>,
    /// Canonicalizes informed sets to the dense ids the memo keys on.
    interner: SetInterner,
    /// Shared substrate: scratch sets, candidate buffers, and the
    /// incrementally-maintained conflict graph.
    state: &'a mut BroadcastState,
    stats: SearchStats,
    trace: SearchTrace,
}

impl<'a, S: WakeSchedule> Searcher<'a, S> {
    fn new(
        topo: &'a Topology,
        wake: &'a S,
        config: &'a SearchConfig,
        rule: BranchRule,
        state: &'a mut BroadcastState,
    ) -> Self {
        Searcher {
            topo,
            wake,
            config,
            rule,
            memo: HashMap::new(),
            interner: SetInterner::new(topo.len()),
            state,
            stats: SearchStats::default(),
            trace: SearchTrace::default(),
        }
    }

    fn run(mut self, source: NodeId) -> SearchOutcome {
        assert!(source.idx() < self.topo.len(), "source out of range");
        let n = self.topo.len();
        let t_s = self.wake.next_send(source.idx(), self.config.start_from);

        let mut w0 = NodeSet::new(n);
        w0.insert(source.idx());

        if w0.is_full() {
            // Single-node network: nothing to schedule.
            return SearchOutcome {
                schedule: Schedule {
                    source,
                    start: t_s,
                    entries: vec![],
                    receive_slot: vec![t_s; n],
                },
                latency: 0,
                exact: true,
                stats: self.stats,
                trace: self.config.collect_trace.then(|| self.trace.clone()),
            };
        }

        // Seed the budget with an achievable pipeline schedule; it doubles
        // as the fallback when the state cap aborts the search. The
        // pipeline re-targets the shared substrate to this topology, so
        // the search below continues from warm caches.
        let seed = run_pipeline_with(
            self.topo,
            source,
            self.wake,
            &mut MaxReceiversSelector,
            &PipelineConfig {
                start_from: self.config.start_from,
            },
            self.state,
        );
        let budget = if self.config.exhaustive {
            INF_BUDGET
        } else {
            seed.latency()
        };
        let conflict_base = *self.state.conflict_stats();

        let (schedule, fell_back) = match self.dfs(&w0, t_s, budget) {
            Some(rem) => {
                let schedule = self.reconstruct(source, t_s, &w0);
                debug_assert_eq!(schedule.latency(), rem);
                (schedule, false)
            }
            // The search found nothing within the seeded budget: either the
            // state cap aborted it, or (beam OPT only) enumeration caps cut
            // every path that could match the greedy seed. The seed itself
            // is a valid schedule either way.
            None => (seed, true),
        };
        let exact = !fell_back
            && !self.stats.state_cap_hit
            && (self.rule == BranchRule::GreedyClasses || self.stats.truncated_enumerations == 0);
        let conflict = self.state.conflict_stats().since(&conflict_base);
        self.stats.conflict_rows_built = conflict.rows_built;
        self.stats.conflict_rows_reused = conflict.rows_reused;
        self.stats.interned_sets = self.interner.len();
        SearchOutcome {
            latency: schedule.latency(),
            schedule,
            exact,
            stats: self.stats.clone(),
            trace: self.config.collect_trace.then(|| self.trace.clone()),
        }
    }

    /// The branch colors of a state, most promising first. Each branch is a
    /// conflict-free sender set among the awake candidates. The substrate
    /// must be loaded with `(informed, t)` by the caller; one incremental
    /// conflict-graph update serves both the greedy coloring and the
    /// maximal-set enumeration.
    fn branches(&mut self, informed: &NodeSet) -> Vec<Vec<NodeId>> {
        match self.rule {
            BranchRule::GreedyClasses => self.state.greedy_classes(self.topo),
            BranchRule::MaximalSets => {
                let (classes, cg) = self.state.classes_and_graph(self.topo);
                let outcome = maximal_conflict_free_sets(cg, self.config.branch_cap);
                if outcome.truncated {
                    self.stats.truncated_enumerations += 1;
                }
                let mut sets: Vec<Vec<NodeId>> = outcome
                    .sets
                    .iter()
                    .map(|idxs| {
                        let mut v: Vec<NodeId> = idxs.iter().map(|&i| cg.node(i)).collect();
                        v.sort_unstable();
                        v
                    })
                    .collect();
                // Guarantee OPT ⊆-dominates G-OPT: extend each greedy class
                // to a maximal set and include it.
                for class in &classes {
                    sets.push(extend_to_maximal(cg, class));
                }
                sets.sort();
                sets.dedup();
                // Most new coverage first → tight budgets early.
                sets.sort_by_key(|set| {
                    std::cmp::Reverse(
                        set.iter()
                            .map(|&u| self.topo.neighbor_set(u).difference_len(informed))
                            .sum::<usize>(),
                    )
                });
                sets
            }
        }
    }

    /// Returns the minimum remaining delay (slots from `t` through the last
    /// transmission, inclusive) if it is ≤ `budget`, else `None`. Exact
    /// values and the corresponding first advance are memoized.
    fn dfs(&mut self, informed: &NodeSet, t: Slot, budget: Slot) -> Option<Slot> {
        debug_assert!(!informed.is_full());
        let phase = t % self.wake.period();
        let key = (self.interner.intern(informed), phase);

        match self.memo.get(&key) {
            Some(MemoEntry::Exact { rem, .. }) => {
                self.stats.memo_hits += 1;
                return (*rem <= budget).then_some(*rem);
            }
            Some(MemoEntry::LowerBound(lb)) if *lb > budget => {
                self.stats.memo_hits += 1;
                self.stats.pruned += 1;
                return None;
            }
            _ => {}
        }

        if self.stats.states >= self.config.max_states {
            self.stats.state_cap_hit = true;
            return None;
        }
        self.stats.states += 1;

        // Admissible lower bound: farthest uninformed node in hops.
        let lb = remaining_hops_lower_bound(self.topo, informed);
        if lb > budget {
            self.stats.pruned += 1;
            self.bump_lower_bound(key, lb);
            return None;
        }

        self.state.load_awake(self.topo, informed, self.wake, t);
        if self.state.candidates().is_empty() {
            // Duty-cycle wait: jump to the earliest wake-up among eligible
            // senders. The remaining delay is the wait plus the remainder.
            self.state.load(self.topo, informed);
            let eligible = self.state.candidates();
            assert!(
                !eligible.is_empty(),
                "broadcast cannot complete: disconnected topology"
            );
            let t_next = eligible
                .iter()
                .map(|u| self.wake.next_send(u.idx(), t + 1))
                .min()
                .expect("non-empty");
            let wait = t_next - t;
            if self.config.collect_trace {
                self.trace.states.push(TraceState {
                    informed: informed.to_vec(),
                    slot: t,
                    options: vec![],
                    chosen: None,
                    jumped_to: Some(t_next),
                });
            }
            if wait + 1 > budget {
                self.stats.pruned += 1;
                self.bump_lower_bound(key, wait + 1);
                return None;
            }
            let sub = self.dfs(informed, t_next, budget - wait);
            return match sub {
                Some(r) => {
                    // Memoize through the wait so reconstruction can replay.
                    self.memo.insert(
                        key,
                        MemoEntry::Exact {
                            rem: wait + r,
                            choice: Box::default(),
                        },
                    );
                    Some(wait + r)
                }
                None => {
                    self.bump_lower_bound(key, wait + 1);
                    None
                }
            };
        }

        let branches = self.branches(informed);
        debug_assert!(!branches.is_empty());

        let trace_idx = if self.config.collect_trace {
            self.trace.states.push(TraceState {
                informed: informed.to_vec(),
                slot: t,
                options: branches
                    .iter()
                    .map(|b| TraceOption {
                        class: b.clone(),
                        m_value: None,
                    })
                    .collect(),
                chosen: None,
                jumped_to: None,
            });
            Some(self.trace.states.len() - 1)
        } else {
            None
        };

        let mut best: Option<(Slot, Vec<NodeId>, usize)> = None;
        let mut local_budget = budget;
        for (bi, senders) in branches.iter().enumerate() {
            let mut next = informed.clone();
            for &u in senders {
                next.union_with(self.topo.neighbor_set(u));
            }
            let rem = if next.is_full() {
                Some(1)
            } else if local_budget == 0 {
                self.stats.pruned += 1;
                None
            } else {
                self.dfs(&next, t + 1, local_budget - 1).map(|r| r + 1)
            };
            if let Some(r) = rem {
                if let Some(ti) = trace_idx {
                    // Completion slot of this branch: t_e = t + rem − 1.
                    self.trace.states[ti].options[bi].m_value = Some(t + r - 1);
                }
                let better = best.as_ref().is_none_or(|(b, _, _)| r < *b);
                if better {
                    best = Some((r, senders.clone(), bi));
                    // Only strictly better continuations are interesting,
                    // unless exhaustive mode wants every exact value.
                    if !self.config.exhaustive {
                        local_budget = r - 1;
                    }
                }
            }
        }

        match best {
            Some((rem, choice, bi)) => {
                if let Some(ti) = trace_idx {
                    self.trace.states[ti].chosen = Some(bi);
                }
                self.memo.insert(
                    key,
                    MemoEntry::Exact {
                        rem,
                        choice: choice.into_boxed_slice(),
                    },
                );
                Some(rem)
            }
            None => {
                self.bump_lower_bound(key, budget + 1);
                None
            }
        }
    }

    /// Records `lb` as a proven lower bound, keeping the strongest one.
    fn bump_lower_bound(&mut self, key: (StateId, Slot), lb: Slot) {
        match self.memo.get_mut(&key) {
            Some(MemoEntry::Exact { .. }) => {}
            Some(MemoEntry::LowerBound(old)) => {
                if lb > *old {
                    *old = lb;
                }
            }
            None => {
                self.memo.insert(key, MemoEntry::LowerBound(lb));
            }
        }
    }

    /// Replays the memoized choices from the root into a schedule.
    fn reconstruct(&mut self, source: NodeId, t_s: Slot, w0: &NodeSet) -> Schedule {
        let n = self.topo.len();
        let mut informed = w0.clone();
        let mut receive_slot = vec![t_s; n];
        let mut entries = Vec::new();
        let mut t = t_s;
        while !informed.is_full() {
            let key = (self.interner.intern(&informed), t % self.wake.period());
            let entry = match self.memo.get(&key) {
                Some(MemoEntry::Exact { choice, .. }) => choice,
                _ => unreachable!("optimal path must be memoized exactly"),
            };
            if entry.is_empty() {
                // A recorded wait: jump to the next wake-up among eligible
                // senders (same computation as the search).
                self.state.load(self.topo, &informed);
                t = self
                    .state
                    .candidates()
                    .iter()
                    .map(|u| self.wake.next_send(u.idx(), t + 1))
                    .min()
                    .expect("non-empty");
                continue;
            }
            let mut advance = NodeSet::new(n);
            for &u in entry {
                advance.union_with(self.topo.neighbor_set(u));
            }
            advance.difference_with(&informed);
            for w in advance.iter() {
                receive_slot[w] = t;
            }
            informed.union_with(&advance);
            entries.push(ScheduleEntry {
                slot: t,
                senders: entry.to_vec(),
            });
            t += 1;
        }
        Schedule {
            source,
            start: t_s,
            entries,
            receive_slot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_dutycycle::{AlwaysAwake, ExplicitSchedule};
    use wsn_topology::{deploy, fixtures};

    #[test]
    fn gopt_fig2a_matches_table_ii() {
        let f = fixtures::fig2a();
        let out = solve_gopt(&f.topo, f.source, &AlwaysAwake, &SearchConfig::default());
        assert!(out.exact);
        assert_eq!(out.latency, 2, "Table II: P(A) = 2");
        out.schedule.verify(&f.topo, &AlwaysAwake).unwrap();
        // The optimal first-hop choice is node "2" (covers 4 and 5).
        assert_eq!(out.schedule.entries[1].senders, vec![f.id("2")]);
    }

    #[test]
    fn gopt_fig1_matches_table_iii() {
        let f = fixtures::fig1();
        let out = solve_gopt(&f.topo, f.source, &AlwaysAwake, &SearchConfig::default());
        assert!(out.exact);
        assert_eq!(out.latency, 3, "Table III: P(A) = 3");
        out.schedule.verify(&f.topo, &AlwaysAwake).unwrap();
        // Table III's optimal second advance launches node 1's color.
        assert_eq!(out.schedule.entries[1].senders, vec![f.id("1")]);
        // And the third advance is {0, 4} covering {5,6,7,8,9}.
        assert_eq!(out.schedule.entries[2].senders, vec![f.id("0"), f.id("4")]);
    }

    #[test]
    fn opt_never_worse_than_gopt() {
        for seed in 0..4u64 {
            let (topo, src) = deploy::SyntheticDeployment::paper(60).sample(seed);
            let g = solve_gopt(&topo, src, &AlwaysAwake, &SearchConfig::default());
            let o = solve_opt(&topo, src, &AlwaysAwake, &SearchConfig::default());
            assert!(
                o.latency <= g.latency,
                "seed {seed}: OPT {} > G-OPT {}",
                o.latency,
                g.latency
            );
            o.schedule.verify(&topo, &AlwaysAwake).unwrap();
            g.schedule.verify(&topo, &AlwaysAwake).unwrap();
        }
    }

    #[test]
    fn table_iv_duty_cycle_trace() {
        // Figure 2(e) under the Table IV wake schedule: t_s = 2, the
        // optimum completes at slot 4 (P(A) = 4 in the paper's absolute
        // numbering; elapsed latency 3).
        let f = fixtures::fig2a();
        let wake = ExplicitSchedule::new(vec![vec![2], vec![4, 13], vec![4], vec![9], vec![9]], 20);
        let out = solve_gopt(
            &f.topo,
            f.source,
            &wake,
            &SearchConfig {
                start_from: 1,
                collect_trace: true,
                exhaustive: true,
                ..SearchConfig::default()
            },
        );
        assert_eq!(out.schedule.start, 2);
        assert_eq!(out.schedule.completion_slot(), 4, "Table IV: P(A) = 4");
        out.schedule.verify(&f.topo, &wake).unwrap();

        // The alternative branch (selecting node "3" at slot 4) must defer
        // completion to slot 13 = r + 3, as the paper's last row shows.
        let trace = out.trace.unwrap();
        let slot4 = trace
            .states
            .iter()
            .find(|s| s.slot == 4 && s.options.len() == 2)
            .expect("the two-color state at slot 4");
        assert_eq!(slot4.options[0].m_value, Some(4));
        assert_eq!(slot4.options[1].m_value, Some(13));
        assert_eq!(slot4.chosen, Some(0));
        // And the N/A row at slot 3 is present with a jump to 4.
        assert!(trace
            .states
            .iter()
            .any(|s| s.slot == 3 && s.options.is_empty() && s.jumped_to == Some(4)));
    }

    #[test]
    fn exhaustive_trace_records_all_branch_values() {
        let f = fixtures::fig2a();
        let out = solve_gopt(
            &f.topo,
            f.source,
            &AlwaysAwake,
            &SearchConfig {
                collect_trace: true,
                exhaustive: true,
                ..SearchConfig::default()
            },
        );
        let trace = out.trace.unwrap();
        // Table II state M({1,2,3},2): options C1={2} with M=2, C2={3}
        // with M=3.
        let st = trace
            .states
            .iter()
            .find(|s| s.informed.len() == 3 && s.slot == 2)
            .expect("state with W = {1,2,3}");
        assert_eq!(st.options.len(), 2);
        assert_eq!(st.options[0].m_value, Some(2));
        assert_eq!(st.options[1].m_value, Some(3));
        assert_eq!(st.chosen, Some(0));
    }

    #[test]
    fn search_on_single_node() {
        let topo = wsn_topology::Topology::unit_disk(vec![wsn_geom::Point::new(0.0, 0.0)], 1.0);
        let out = solve_gopt(&topo, NodeId(0), &AlwaysAwake, &SearchConfig::default());
        assert_eq!(out.latency, 0);
        assert!(out.exact);
    }

    #[test]
    fn state_cap_degrades_gracefully() {
        let (topo, src) = deploy::SyntheticDeployment::paper(80).sample(1);
        let out = solve_gopt(
            &topo,
            src,
            &AlwaysAwake,
            &SearchConfig {
                max_states: 1,
                ..SearchConfig::default()
            },
        );
        // Still a valid schedule (the seeded pipeline budget is achievable
        // and reconstruction follows whatever was memoized)…
        out.schedule.verify(&topo, &AlwaysAwake).unwrap();
        // …but flagged inexact.
        assert!(!out.exact);
        assert!(out.stats.state_cap_hit);
    }
}
