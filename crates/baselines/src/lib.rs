//! Baseline broadcast schedulers: the hop-distance (BFS-layered) schemes
//! the paper compares against.
//!
//! The defining property of all prior conflict-aware schemes (§I, §VI) is
//! the **layer barrier**: relays are scheduled per BFS layer, and "all
//! relays in a 1-hop propagation \[must\] finish before the next round of
//! neighbor coloring", blocking interference-free relays from already
//! informed nodes. This crate implements the two baselines the evaluation
//! uses, plus extensions:
//!
//! * [`schedule_26_approx`] — the synchronous 26-approximation of Chen et
//!   al. \[2\] as §V-A simulates it: BFS + greedy coloring per layer +
//!   layer barrier;
//! * [`schedule_17_approx`] — the duty-cycle 17-approximation of Jiao et
//!   al. \[12\]: the same layer discipline where a relay additionally waits
//!   for its own sending slot (backed-off colors re-initiate after their
//!   next wake-up, a `1 ≤ k ≤ 2r` slot wait);
//! * [`schedule_cds_layered`] — a connected-dominating-set variant in the
//!   style of Gandhi et al. \[4\]: only CDS members relay, still layered
//!   (extension; not plotted by the paper but useful for ablations);
//! * [`flood_once`] — unscheduled flooding with receiver-side collisions,
//!   the broadcast-storm reference \[17\] (returns per-run outcomes rather
//!   than a verifiable schedule, since collisions can leave nodes
//!   uncovered).

mod cds;
mod flood;
mod layered;

pub use cds::{greedy_connected_dominating_set, schedule_cds_layered};
pub use flood::{flood_once, FloodOutcome};
pub use layered::{
    schedule_17_approx, schedule_26_approx, schedule_layered, schedule_layered_with, LayeredMode,
};
