//! The BFS-layered scheduling engine behind the 26- and 17-approximations.

use mlbs_core::{BroadcastState, Schedule, ScheduleEntry};
use wsn_bitset::NodeSet;
use wsn_dutycycle::{AlwaysAwake, Slot, WakeSchedule};
use wsn_topology::{metrics, NodeId, Topology};

/// How a layer schedules its colors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayeredMode {
    /// The paper's reading of the baselines (§I: coloring happens once per
    /// 1-hop propagation, "each relay with any unselected color \[backs\]
    /// off"): the layer is colored once, colors fire strictly in sequence.
    /// Members whose neighborhoods are fully informed by the time their
    /// color fires skip silently, but colors are never merged.
    FixedColors,
    /// A stronger variant that re-runs the greedy coloring every slot
    /// within the layer, letting colors merge as conflicts disappear.
    /// Still bound by the layer barrier — used by the ablation benches to
    /// separate "barrier cost" from "stale coloring cost".
    Recolor,
    /// The weakest (fully rigid, TDMA-like) variant: the per-layer
    /// coloring is a *precomputed schedule* — every member of every color
    /// transmits in its color's turn whether or not anyone still needs the
    /// message. The upper end of how prior-art implementations behave;
    /// part of the baseline-strength ablation.
    Precomputed,
}

/// Runs the layered (hop-distance) discipline: only nodes of the current
/// BFS layer may relay, and the next layer starts only when the current
/// layer has no candidate left — the synchronization barrier of the
/// approximation schemes. Slots where no pending relay is awake are
/// skipped by jumping to the next wake-up (the `1 ≤ k ≤ 2r` back-off wait
/// of §V-A).
///
/// # Panics
///
/// Panics when the topology is disconnected.
pub fn schedule_layered<S: WakeSchedule>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    start_from: Slot,
    mode: LayeredMode,
) -> Schedule {
    schedule_layered_with(
        topo,
        source,
        wake,
        start_from,
        mode,
        &mut BroadcastState::new(),
    )
}

/// As [`schedule_layered`], reusing a caller-provided substrate across
/// instances (the sweep workers hold one each).
pub fn schedule_layered_with<S: WakeSchedule>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    start_from: Slot,
    mode: LayeredMode,
    sub: &mut BroadcastState,
) -> Schedule {
    let n = topo.len();
    let hops = metrics::bfs_hops(topo, source);
    assert!(
        hops.iter().all(|&h| h != metrics::UNREACHABLE),
        "broadcast cannot complete: disconnected topology"
    );
    let depth = hops.iter().copied().max().unwrap_or(0);
    sub.reset_for(topo);

    let t_s = wake.next_send(source.idx(), start_from);
    let mut state = LayerRun {
        topo,
        wake,
        sub,
        informed: {
            let mut w = NodeSet::new(n);
            w.insert(source.idx());
            w
        },
        receive_slot: vec![t_s; n],
        entries: Vec::new(),
        t: t_s,
    };

    for layer in 0..depth {
        let layer_nodes: Vec<NodeId> = (0..n)
            .filter(|&u| hops[u] == layer)
            .map(|u| NodeId(u as u32))
            .collect();
        match mode {
            LayeredMode::FixedColors => state.run_layer_fixed(&layer_nodes),
            LayeredMode::Recolor => state.run_layer_recolor(&layer_nodes),
            LayeredMode::Precomputed => state.run_layer_precomputed(&layer_nodes),
        }
    }

    Schedule {
        source,
        start: t_s,
        entries: state.entries,
        receive_slot: state.receive_slot,
        repeats: Vec::new(),
    }
}

/// Working state of a layered run.
struct LayerRun<'a, S: WakeSchedule> {
    topo: &'a Topology,
    wake: &'a S,
    /// Shared substrate: scratch sets and the incremental conflict graph
    /// behind the per-layer colorings.
    sub: &'a mut BroadcastState,
    informed: NodeSet,
    receive_slot: Vec<Slot>,
    entries: Vec<ScheduleEntry>,
    t: Slot,
}

impl<S: WakeSchedule> LayerRun<'_, S> {
    /// `true` while `u` still has an uninformed neighbor (degree-local —
    /// this runs per pending relay per slot, so it must not touch
    /// `O(n/64)`-word sets on 100k-node instances).
    fn still_useful(&self, u: NodeId) -> bool {
        self.topo
            .neighbors(u)
            .iter()
            .any(|&v| !self.informed.contains(v.idx()))
    }

    /// Colors an explicit candidate list against the current informed set
    /// through the substrate.
    fn classes_of(&mut self, candidates: &[NodeId]) -> Vec<Vec<NodeId>> {
        self.sub
            .load_candidates(self.topo, &self.informed, candidates);
        self.sub.greedy_classes(self.topo)
    }

    /// Transmits `senders` (assumed conflict-free) in slot `self.t`.
    fn fire(&mut self, mut senders: Vec<NodeId>) {
        for &u in &senders {
            for &w in self.topo.neighbors(u) {
                if self.informed.insert(w.idx()) {
                    self.receive_slot[w.idx()] = self.t;
                }
            }
        }
        senders.sort_unstable();
        self.entries.push(ScheduleEntry::new(self.t, senders));
        self.t += 1;
    }

    /// FixedColors: color the layer once, fire colors strictly in order.
    fn run_layer_fixed(&mut self, layer_nodes: &[NodeId]) {
        let candidates: Vec<NodeId> = layer_nodes
            .iter()
            .copied()
            .filter(|&u| self.informed.contains(u.idx()) && self.still_useful(u))
            .collect();
        if candidates.is_empty() {
            return;
        }
        let classes = self.classes_of(&candidates);
        for class in classes {
            let mut pending: Vec<NodeId> = class;
            loop {
                // Members whose whole neighborhood got informed meanwhile
                // back out silently.
                pending.retain(|&u| self.still_useful(u));
                if pending.is_empty() {
                    break;
                }
                let awake: Vec<NodeId> = pending
                    .iter()
                    .copied()
                    .filter(|&u| self.wake.can_send(u.idx(), self.t))
                    .collect();
                if awake.is_empty() {
                    self.t = pending
                        .iter()
                        .map(|u| self.wake.next_send(u.idx(), self.t + 1))
                        .min()
                        .expect("pending non-empty");
                    continue;
                }
                pending.retain(|u| !awake.contains(u));
                self.fire(awake);
            }
        }
    }

    /// Precomputed: the layer's coloring is a fixed TDMA schedule; every
    /// member transmits in its color's turn, useful or not.
    fn run_layer_precomputed(&mut self, layer_nodes: &[NodeId]) {
        let candidates: Vec<NodeId> = layer_nodes
            .iter()
            .copied()
            .filter(|&u| self.informed.contains(u.idx()) && self.still_useful(u))
            .collect();
        if candidates.is_empty() {
            return;
        }
        let classes = self.classes_of(&candidates);
        for class in classes {
            let mut pending: Vec<NodeId> = class;
            while !pending.is_empty() {
                let awake: Vec<NodeId> = pending
                    .iter()
                    .copied()
                    .filter(|&u| self.wake.can_send(u.idx(), self.t))
                    .collect();
                if awake.is_empty() {
                    self.t = pending
                        .iter()
                        .map(|u| self.wake.next_send(u.idx(), self.t + 1))
                        .min()
                        .expect("pending non-empty");
                    continue;
                }
                pending.retain(|u| !awake.contains(u));
                self.fire(awake);
            }
        }
    }

    /// Recolor: re-run the greedy coloring every slot within the layer and
    /// fire its first color.
    fn run_layer_recolor(&mut self, layer_nodes: &[NodeId]) {
        loop {
            let candidates: Vec<NodeId> = layer_nodes
                .iter()
                .copied()
                .filter(|&u| self.informed.contains(u.idx()) && self.still_useful(u))
                .collect();
            if candidates.is_empty() {
                break;
            }
            let awake: Vec<NodeId> = candidates
                .iter()
                .copied()
                .filter(|&u| self.wake.can_send(u.idx(), self.t))
                .collect();
            if awake.is_empty() {
                self.t = candidates
                    .iter()
                    .map(|u| self.wake.next_send(u.idx(), self.t + 1))
                    .min()
                    .expect("candidates non-empty");
                continue;
            }
            let classes = self.classes_of(&awake);
            self.fire(classes[0].clone());
        }
    }
}

/// The 26-approximation baseline (synchronous): BFS layers, one greedy
/// coloring per layer, colors fired in sequence behind the layer barrier.
pub fn schedule_26_approx(topo: &Topology, source: NodeId) -> Schedule {
    schedule_layered(topo, source, &AlwaysAwake, 1, LayeredMode::FixedColors)
}

/// The 17-approximation baseline (duty-cycle): the layered discipline under
/// a wake schedule, backed-off relays waiting for their next wake-up.
pub fn schedule_17_approx<S: WakeSchedule>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    start_from: Slot,
) -> Schedule {
    schedule_layered(topo, source, wake, start_from, LayeredMode::FixedColors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlbs_core::{solve_gopt, SearchConfig};
    use wsn_dutycycle::WindowedRandom;
    use wsn_topology::{deploy, fixtures};

    #[test]
    fn layered_schedules_verify() {
        for seed in 0..4u64 {
            let (topo, src) = deploy::SyntheticDeployment::paper(90).sample(seed);
            for mode in [LayeredMode::FixedColors, LayeredMode::Recolor] {
                let s = schedule_layered(&topo, src, &AlwaysAwake, 1, mode);
                s.verify(&topo, &AlwaysAwake).unwrap();
            }
        }
    }

    #[test]
    fn layer_barrier_blocks_pipelining_on_fig1() {
        // On Figure 1 the barrier costs 4 rounds (s; then 0; then 1; then 3
        // — node 2 backs out redundant), whereas the paper's pipelined
        // optimum is 3.
        let f = fixtures::fig1();
        let s = schedule_26_approx(&f.topo, f.source);
        s.verify(&f.topo, &AlwaysAwake).unwrap();
        assert_eq!(s.latency(), 4);
        let opt = solve_gopt(&f.topo, f.source, &AlwaysAwake, &SearchConfig::default());
        assert!(s.latency() > opt.latency);
    }

    #[test]
    fn baseline_strength_ordering() {
        // Recolor ≤ FixedColors ≤ Precomputed: each step removes an
        // inefficiency of the rigid prior-art reading.
        for seed in 0..5u64 {
            let (topo, src) = deploy::SyntheticDeployment::paper(150).sample(seed);
            let pre = schedule_layered(&topo, src, &AlwaysAwake, 1, LayeredMode::Precomputed);
            let fixed = schedule_layered(&topo, src, &AlwaysAwake, 1, LayeredMode::FixedColors);
            let recolor = schedule_layered(&topo, src, &AlwaysAwake, 1, LayeredMode::Recolor);
            pre.verify(&topo, &AlwaysAwake).unwrap();
            assert!(
                recolor.latency() <= fixed.latency(),
                "seed {seed}: recolor {} > fixed {}",
                recolor.latency(),
                fixed.latency()
            );
            assert!(
                fixed.latency() <= pre.latency(),
                "seed {seed}: fixed {} > precomputed {}",
                fixed.latency(),
                pre.latency()
            );
        }
    }

    #[test]
    fn senders_respect_layer_order() {
        let f = fixtures::fig1();
        let s = schedule_26_approx(&f.topo, f.source);
        let hops = metrics::bfs_hops(&f.topo, f.source);
        let mut current_layer = 0;
        for e in &s.entries {
            for &u in &e.senders {
                let layer = hops[u.idx()];
                assert!(
                    layer >= current_layer,
                    "sender from layer {layer} after layer {current_layer} started"
                );
                current_layer = current_layer.max(layer);
            }
            // All senders of one slot share a layer under the barrier.
            let layers: std::collections::BTreeSet<u32> =
                e.senders.iter().map(|u| hops[u.idx()]).collect();
            assert_eq!(layers.len(), 1);
        }
    }

    #[test]
    fn duty_cycle_layered_verifies_and_is_slower() {
        for seed in 0..3u64 {
            let (topo, src) = deploy::SyntheticDeployment::paper(80).sample(seed);
            let wake = WindowedRandom::new(topo.len(), 10, seed ^ 0xabc);
            let duty = schedule_17_approx(&topo, src, &wake, 1);
            duty.verify(&topo, &wake).unwrap();
            let sync = schedule_26_approx(&topo, src);
            assert!(
                duty.latency() >= sync.latency(),
                "cycle waiting cannot make the layered scheme faster"
            );
        }
    }

    #[test]
    fn trivial_networks() {
        // Two nodes: one transmission.
        let topo = wsn_topology::Topology::unit_disk(
            vec![
                wsn_geom::Point::new(0.0, 0.0),
                wsn_geom::Point::new(1.0, 0.0),
            ],
            1.5,
        );
        let s = schedule_26_approx(&topo, NodeId(0));
        s.verify(&topo, &AlwaysAwake).unwrap();
        assert_eq!(s.latency(), 1);
        // Single node: empty schedule.
        let topo1 = wsn_topology::Topology::unit_disk(vec![wsn_geom::Point::new(0.0, 0.0)], 1.0);
        let s1 = schedule_26_approx(&topo1, NodeId(0));
        assert!(s1.entries.is_empty());
    }
}
