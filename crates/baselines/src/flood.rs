//! Unscheduled flooding: the broadcast-storm reference.
//!
//! Every informed node relays exactly once, at its first sending
//! opportunity after receiving, with no interference coordination at all.
//! Concurrent transmissions collide at common uninformed neighbors
//! (\[17\]); a collided node simply fails to receive and must hope for a
//! later, cleaner transmission. Coverage is therefore not guaranteed —
//! this returns a [`FloodOutcome`] instead of a verifiable schedule.

use wsn_bitset::NodeSet;
use wsn_dutycycle::{Slot, WakeSchedule};
use wsn_interference::resolve_receptions;
use wsn_topology::{NodeId, Topology};

/// Result of a flooding run.
#[derive(Clone, Debug)]
pub struct FloodOutcome {
    /// Nodes that received the message.
    pub covered: NodeSet,
    /// Slot of the last successful reception (`None` when only the source
    /// ever held the message).
    pub completion_slot: Option<Slot>,
    /// Total transmissions.
    pub transmissions: usize,
    /// Number of (node, slot) reception failures due to collisions.
    pub collisions: usize,
}

impl FloodOutcome {
    /// Fraction of nodes covered.
    pub fn coverage(&self, n: usize) -> f64 {
        self.covered.len() as f64 / n as f64
    }
}

/// Simulates send-once flooding from `source`. Every node transmits at its
/// first sending slot after receiving; all transmissions of a slot are
/// concurrent and collide per the protocol model.
///
/// `horizon` caps the simulated slots (a safety net; flooding terminates
/// naturally once every informed node has transmitted).
pub fn flood_once<S: WakeSchedule>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    start_from: Slot,
    horizon: Slot,
) -> FloodOutcome {
    let n = topo.len();
    let mut informed = NodeSet::new(n);
    informed.insert(source.idx());
    let mut has_sent = NodeSet::new(n);
    let mut transmissions = 0;
    let mut collisions = 0;
    let mut completion_slot = None;

    let t_s = wake.next_send(source.idx(), start_from);
    let mut t = t_s;
    while t < t_s + horizon {
        // Everyone informed, not yet sent, and awake transmits now.
        let mut senders = NodeSet::new(n);
        for u in informed.iter() {
            if !has_sent.contains(u) && wake.can_send(u, t) {
                senders.insert(u);
            }
        }
        if senders.is_empty() {
            // Jump to the next wake-up among pending relays; stop when none
            // remain.
            let next = informed
                .iter()
                .filter(|&u| !has_sent.contains(u))
                .map(|u| wake.next_send(u, t + 1))
                .min();
            match next {
                Some(tn) => {
                    t = tn;
                    continue;
                }
                None => break,
            }
        }
        transmissions += senders.len();
        has_sent.union_with(&senders);
        let uninformed = informed.complement();
        let outcome = resolve_receptions(topo, &senders, &uninformed);
        collisions += outcome.collided.len();
        if !outcome.received.is_empty() {
            completion_slot = Some(t);
        }
        informed.union_with(&outcome.received);
        t += 1;
    }

    FloodOutcome {
        covered: informed,
        completion_slot,
        transmissions,
        collisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_dutycycle::{AlwaysAwake, WindowedRandom};
    use wsn_topology::{deploy, fixtures};

    #[test]
    fn flooding_a_path_succeeds() {
        // On a path there are never two concurrent senders with a common
        // uninformed neighbor… except siblings; a 1-D path floods cleanly.
        let topo = wsn_topology::Topology::unit_disk(
            (0..6)
                .map(|i| wsn_geom::Point::new(i as f64, 0.0))
                .collect(),
            1.0,
        );
        let out = flood_once(&topo, NodeId(0), &AlwaysAwake, 1, 100);
        assert!(out.covered.is_full());
        assert_eq!(out.collisions, 0);
        assert_eq!(out.completion_slot, Some(5));
    }

    #[test]
    fn storm_collides_on_fig2a() {
        // Figure 2(a): nodes "2" and "3" receive together and both relay in
        // the next slot → their transmissions collide at "4".
        let f = fixtures::fig2a();
        let out = flood_once(&f.topo, f.source, &AlwaysAwake, 1, 100);
        assert!(out.collisions > 0, "expected the storm collision at node 4");
        // "4" never receives: both of its neighbors transmitted (once)
        // simultaneously — coverage is incomplete.
        assert!(!out.covered.contains(f.id("4").idx()));
    }

    #[test]
    fn dense_deployments_lose_coverage() {
        let (topo, src) = deploy::SyntheticDeployment::paper(200).sample(11);
        let out = flood_once(&topo, src, &AlwaysAwake, 1, 1000);
        assert!(
            out.coverage(topo.len()) < 1.0,
            "dense synchronous flooding should storm"
        );
        assert!(out.collisions > 0);
    }

    #[test]
    fn duty_cycle_desynchronizes_the_storm() {
        // Staggered wake-ups act as a natural collision-avoidance jitter,
        // so duty-cycled flooding covers more than synchronous flooding on
        // the same dense instance.
        let (topo, src) = deploy::SyntheticDeployment::paper(200).sample(11);
        let sync = flood_once(&topo, src, &AlwaysAwake, 1, 2000);
        let wake = WindowedRandom::new(topo.len(), 10, 99);
        let duty = flood_once(&topo, src, &wake, 1, 5000);
        assert!(duty.coverage(topo.len()) >= sync.coverage(topo.len()));
    }

    #[test]
    fn horizon_zero_means_no_activity() {
        let f = fixtures::fig2a();
        let out = flood_once(&f.topo, f.source, &AlwaysAwake, 1, 0);
        assert_eq!(out.transmissions, 0);
        assert_eq!(out.covered.len(), 1);
        assert_eq!(out.completion_slot, None);
    }
}
