//! Connected-dominating-set relaying (extension baseline).
//!
//! Gandhi et al. \[4\] build the broadcast tree over a connected dominating
//! set (CDS): only CDS members relay, which reduces redundancy at some cost
//! in latency flexibility. The paper cites this family as prior work; we
//! provide a greedy CDS construction plus a layered scheduler restricted to
//! it, used by the ablation benches.

use mlbs_core::{Schedule, ScheduleEntry};
use wsn_bitset::NodeSet;
use wsn_coloring::greedy_coloring_of_candidates;
use wsn_topology::{metrics, NodeId, Topology};

/// Greedy connected dominating set containing `root`.
///
/// Classic two-phase construction: greedily add the node covering the most
/// uncovered nodes until the set dominates the graph, then connect the
/// pieces through BFS-parents toward `root`. Not minimum (that is NP-hard)
/// but small in practice.
pub fn greedy_connected_dominating_set(topo: &Topology, root: NodeId) -> NodeSet {
    let n = topo.len();
    let mut cds = NodeSet::new(n);
    let mut covered = NodeSet::new(n);
    cds.insert(root.idx());
    covered.union_with(topo.closed_neighbor_set(root));

    // Phase 1: dominate. Coverage gains only shrink as `covered` grows, so
    // a lazily re-evaluated max-heap reproduces the full-scan greedy
    // *exactly* (same `(gain, Reverse(id))` order, hence the same picks):
    // when a popped entry's recomputed gain still equals its key, no other
    // node can beat it — every other key is an upper bound on that node's
    // current gain, and on key ties the heap already surfaced the smaller
    // id. Each pick costs O(deg) re-evaluations instead of an O(n²) scan,
    // which is what lets the 10k–100k baselines finish.
    let gain_of = |covered: &NodeSet, u: NodeId| -> usize {
        usize::from(!covered.contains(u.idx()))
            + topo
                .neighbors(u)
                .iter()
                .filter(|v| !covered.contains(v.idx()))
                .count()
    };
    let mut heap: std::collections::BinaryHeap<(usize, std::cmp::Reverse<NodeId>)> = topo
        .nodes()
        .filter(|&u| u != root)
        .map(|u| (gain_of(&covered, u), std::cmp::Reverse(u)))
        .collect();
    let mut uncovered = n - covered.len();
    while uncovered > 0 {
        let mut best = None;
        while let Some((stale, std::cmp::Reverse(u))) = heap.pop() {
            let fresh = gain_of(&covered, u);
            debug_assert!(fresh <= stale, "coverage gains are monotone");
            if fresh == stale {
                best = Some((fresh, u));
                break;
            }
            heap.push((fresh, std::cmp::Reverse(u)));
        }
        let Some((gain, u)) = best else { break };
        if gain == 0 {
            break; // disconnected remainder; caller's problem
        }
        cds.insert(u.idx());
        if covered.insert(u.idx()) {
            uncovered -= 1;
        }
        for &v in topo.neighbors(u) {
            if covered.insert(v.idx()) {
                uncovered -= 1;
            }
        }
    }

    // Phase 2: connect every CDS member to the root via BFS parents.
    let hops = metrics::bfs_hops(topo, root);
    for u in cds.clone().iter() {
        let mut cur = NodeId(u as u32);
        while hops[cur.idx()] != 0 && hops[cur.idx()] != metrics::UNREACHABLE {
            // Walk to any neighbor strictly closer to the root.
            let parent = topo
                .neighbors(cur)
                .iter()
                .copied()
                .find(|&v| hops[v.idx()] + 1 == hops[cur.idx()])
                .expect("BFS parent exists");
            cds.insert(parent.idx());
            cur = parent;
        }
    }
    cds
}

/// Layered broadcast restricted to CDS relays (synchronous).
///
/// # Panics
///
/// Panics when the topology is disconnected.
pub fn schedule_cds_layered(topo: &Topology, source: NodeId) -> Schedule {
    let n = topo.len();
    let hops = metrics::bfs_hops(topo, source);
    assert!(
        hops.iter().all(|&h| h != metrics::UNREACHABLE),
        "broadcast cannot complete: disconnected topology"
    );
    let cds = greedy_connected_dominating_set(topo, source);
    let depth = hops.iter().copied().max().unwrap_or(0);

    let mut informed = NodeSet::new(n);
    informed.insert(source.idx());
    let mut receive_slot = vec![1; n];
    let mut entries: Vec<ScheduleEntry> = Vec::new();
    let mut t = 1;

    // Per-layer CDS member lists (ascending by id, like the 0..n scan this
    // replaces) so each round only touches the layer's relays.
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); depth as usize + 1];
    for u in cds.iter() {
        members[hops[u] as usize].push(NodeId(u as u32));
    }

    for layer in 0..=depth {
        loop {
            // CDS members of this layer with uninformed neighbors.
            let candidates: Vec<NodeId> = members[layer as usize]
                .iter()
                .copied()
                .filter(|&u| {
                    informed.contains(u.idx())
                        && topo
                            .neighbors(u)
                            .iter()
                            .any(|&w| !informed.contains(w.idx()))
                })
                .collect();
            if candidates.is_empty() {
                break;
            }
            let classes = greedy_coloring_of_candidates(topo, &informed, &candidates);
            let mut senders = classes[0].clone();
            for &u in &senders {
                for &w in topo.neighbors(u) {
                    if informed.insert(w.idx()) {
                        receive_slot[w.idx()] = t;
                    }
                }
            }
            senders.sort_unstable();
            entries.push(ScheduleEntry::new(t, senders));
            t += 1;
        }
    }

    Schedule {
        source,
        start: 1,
        entries,
        receive_slot,
        repeats: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_dutycycle::AlwaysAwake;
    use wsn_topology::{deploy, fixtures};

    #[test]
    fn cds_dominates_and_contains_root() {
        for seed in 0..3u64 {
            let (topo, src) = deploy::SyntheticDeployment::paper(100).sample(seed);
            let cds = greedy_connected_dominating_set(&topo, src);
            assert!(cds.contains(src.idx()));
            // Domination: every node is in the CDS or adjacent to a member.
            for u in topo.nodes() {
                assert!(
                    cds.contains(u.idx()) || topo.neighbor_set(u).intersects(&cds),
                    "node {u} undominated"
                );
            }
        }
    }

    #[test]
    fn cds_is_connected() {
        let (topo, src) = deploy::SyntheticDeployment::paper(120).sample(7);
        let cds = greedy_connected_dominating_set(&topo, src);
        // BFS within the CDS from the source must reach every member.
        let members: Vec<usize> = cds.to_vec();
        let mut seen = NodeSet::new(topo.len());
        seen.insert(src.idx());
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            for &v in topo.neighbors(u) {
                if cds.contains(v.idx()) && seen.insert(v.idx()) {
                    queue.push_back(v);
                }
            }
        }
        for m in members {
            assert!(seen.contains(m), "CDS member {m} unreachable inside CDS");
        }
    }

    #[test]
    fn cds_schedule_verifies_and_covers() {
        let f = fixtures::fig1();
        let s = schedule_cds_layered(&f.topo, f.source);
        s.verify(&f.topo, &AlwaysAwake).unwrap();
    }

    #[test]
    fn cds_schedule_on_random_instances() {
        for seed in 0..3u64 {
            let (topo, src) = deploy::SyntheticDeployment::paper(80).sample(seed);
            let s = schedule_cds_layered(&topo, src);
            s.verify(&topo, &AlwaysAwake).unwrap();
        }
    }

    #[test]
    fn cds_reduces_transmissions_vs_plain_layered() {
        let (topo, src) = deploy::SyntheticDeployment::paper(200).sample(3);
        let plain = crate::schedule_26_approx(&topo, src);
        let cds = schedule_cds_layered(&topo, src);
        assert!(
            cds.transmission_count() <= plain.transmission_count(),
            "CDS restriction should not transmit more: {} vs {}",
            cds.transmission_count(),
            plain.transmission_count()
        );
    }
}
