//! Property tests for incremental repair: after an arbitrary churn walk
//! (nodes dying in waves), `reschedule` always emits a schedule that
//! verifies over the survivors, reports the disconnected remainder
//! instead of failing, and never ends worse than re-legalizing the same
//! masked instance from scratch.

use proptest::prelude::*;
use std::collections::HashSet;
use wsn_anytime::{reschedule, solve_anytime, AnytimeConfig, Budget, ChurnDelta};
use wsn_dutycycle::AlwaysAwake;
use wsn_phy::ProtocolModel;
use wsn_topology::deploy::SyntheticDeployment;
use wsn_topology::NodeId;

fn cfg(iters: u64) -> AnytimeConfig {
    AnytimeConfig {
        budget: Budget::Iterations(iters),
        ..AnytimeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A churn walk of up to three death waves: every intermediate repair
    /// verifies over the survivors (uncovered nodes are reported, not
    /// silently dropped), and the final repaired schedule is never worse
    /// than a cold re-legalization of the same masked instance.
    #[test]
    fn churn_walk_repairs_stay_valid_and_never_lose_to_cold(
        seed in 0..40u64,
        n in 60usize..120,
        waves in 1usize..4,
        per_wave in 1usize..3,
    ) {
        let (topo, src) = SyntheticDeployment::paper(n).sample(seed);
        let base = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg(3_000));

        // Deterministic victim walk: hash-pick alive non-source nodes.
        let mut dead: Vec<NodeId> = Vec::new();
        let mut dead_set: HashSet<u32> = HashSet::new();
        let mut current = base.schedule.clone();
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xC0DE;
        for _wave in 0..waves {
            for _ in 0..per_wave {
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x ^= x >> 27;
                let pick = NodeId((x % n as u64) as u32);
                if pick != src && dead_set.insert(pick.0) {
                    dead.push(pick);
                }
            }
            // Cumulative delta: the mask is rebuilt from scratch each wave.
            let delta = ChurnDelta::deaths(dead.iter().copied());
            let rep = reschedule(
                &topo, src, &AlwaysAwake, &ProtocolModel, &current, &delta, &cfg(200),
            );
            prop_assert!(rep
                .outcome
                .schedule
                .verify_covering_with_model(&topo, &AlwaysAwake, &ProtocolModel, Some(&rep.mask))
                .is_ok());
            for &d in &dead {
                prop_assert!(rep.mask.contains(d.idx()), "dead node must be masked");
            }
            for &u in &rep.uncovered {
                prop_assert!(rep.mask.contains(u.idx()), "uncovered implies masked");
                prop_assert!(!dead_set.contains(&u.0), "uncovered nodes are alive");
            }
            current = rep.outcome.schedule.clone();
        }

        // Final state: warm repair from the walked schedule vs a cold
        // re-legalization of the same masked instance.
        let delta = ChurnDelta::deaths(dead.iter().copied());
        let warm = reschedule(
            &topo, src, &AlwaysAwake, &ProtocolModel, &current, &delta, &cfg(0),
        );
        let empty = mlbs_core::Schedule {
            source: src,
            start: 1,
            entries: Vec::new(),
            receive_slot: Vec::new(),
            repeats: Vec::new(),
        };
        let cold = reschedule(
            &topo, src, &AlwaysAwake, &ProtocolModel, &empty, &delta, &cfg(0),
        );
        prop_assert!(
            warm.outcome.latency <= cold.outcome.latency,
            "warm repair ({}) must not lose to cold re-legalization ({})",
            warm.outcome.latency,
            cold.outcome.latency
        );
    }
}
