//! Property tests for the anytime tier: every emitted schedule verifies
//! under the conflict model it was searched with, the improving-bound
//! trace is strictly monotone, and a generous budget recovers the exact
//! tier's optimum on paper-scale pinned instances.

use proptest::prelude::*;
use wsn_anytime::{solve_anytime, AnytimeConfig, Budget, Portfolio};
use wsn_dutycycle::{AlwaysAwake, WindowedRandom};
use wsn_phy::{PhyModelSpec, SinrParams};
use wsn_topology::deploy::SyntheticDeployment;

fn budget(iters: u64) -> AnytimeConfig {
    AnytimeConfig {
        budget: Budget::Iterations(iters),
        ..AnytimeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (instance, model) pair: the final schedule verifies under the
    /// exact model semantics and the trace is strictly improving.
    #[test]
    fn schedules_verify_under_every_model(
        seed in 0..64u64,
        n in 40usize..110,
        model_ix in 0usize..4,
    ) {
        let (topo, src) = SyntheticDeployment::paper(n).sample(seed);
        let spec = match model_ix {
            0 => PhyModelSpec::protocol(),
            1 => PhyModelSpec::sinr(SinrParams::calibrated(topo.radius(), 3.0, 1.5)),
            2 => PhyModelSpec::protocol().with_channels(3),
            _ => PhyModelSpec::sinr(SinrParams::calibrated(topo.radius(), 3.5, 2.0))
                .with_channels(2),
        };
        let model = spec.build(&topo);
        let out = solve_anytime(&topo, src, &AlwaysAwake, &model, &budget(4_000));
        prop_assert!(out.schedule.verify_with_model(&topo, &AlwaysAwake, &model).is_ok(),
            "{} schedule failed verification", spec.label());
        prop_assert_eq!(out.latency, out.schedule.latency());
        for pair in out.trace.windows(2) {
            prop_assert!(pair[1].latency < pair[0].latency, "trace not improving");
            prop_assert!(pair[1].elapsed_ms >= pair[0].elapsed_ms);
        }
        prop_assert_eq!(out.trace.last().unwrap().latency, out.latency);
    }

    /// Duty-cycled instances: senders must additionally respect wake-ups,
    /// which the verifier checks.
    #[test]
    fn duty_cycle_schedules_verify(seed in 0..64u64, rate in prop::sample::select(vec![5u32, 10, 50])) {
        let (topo, src) = SyntheticDeployment::paper(70).sample(seed);
        let wake = WindowedRandom::new(topo.len(), rate, seed ^ 0xD00F);
        let out = solve_anytime(&topo, src, &wake, &wsn_phy::ProtocolModel, &budget(4_000));
        prop_assert!(out.schedule.verify(&topo, &wake).is_ok());
    }

    /// Iteration budgets are bit-reproducible regardless of wall clock.
    #[test]
    fn iteration_budget_reproduces(seed in 0..32u64) {
        let (topo, src) = SyntheticDeployment::paper(80).sample(seed);
        let a = solve_anytime(&topo, src, &AlwaysAwake, &wsn_phy::ProtocolModel, &budget(6_000));
        let b = solve_anytime(&topo, src, &AlwaysAwake, &wsn_phy::ProtocolModel, &budget(6_000));
        prop_assert_eq!(a.latency, b.latency);
        prop_assert_eq!(a.moves, b.moves);
        prop_assert_eq!(a.schedule.entries, b.schedule.entries);
    }

    /// Iteration-budget portfolios reproduce bit-identically at any fixed
    /// thread count and never lose to the serial chain (worker 0 runs the
    /// unsalted seed; the reduction is deterministic round-robin).
    #[test]
    fn iteration_portfolio_reproduces_and_never_loses(
        seed in 0..32u64,
        threads in 2usize..5,
    ) {
        let (topo, src) = SyntheticDeployment::paper(80).sample(seed);
        let serial = solve_anytime(&topo, src, &AlwaysAwake, &wsn_phy::ProtocolModel, &budget(3_000));
        let port = Portfolio::with_config(budget(3_000), threads);
        let a = port.solve(&topo, src, &AlwaysAwake, &wsn_phy::ProtocolModel);
        let b = port.solve(&topo, src, &AlwaysAwake, &wsn_phy::ProtocolModel);
        prop_assert!(a.latency <= serial.latency, "portfolio lost to serial");
        prop_assert_eq!(a.latency, b.latency);
        prop_assert_eq!(a.moves, b.moves);
        prop_assert_eq!(a.restarts, b.restarts);
        prop_assert_eq!(a.schedule.entries, b.schedule.entries);
    }
}

/// On paper-scale pinned instances a generous iteration budget recovers
/// the exact tier's optimum (the ≤300-node OPT-match acceptance bar).
#[test]
fn generous_budget_matches_exact_opt_on_pinned_instances() {
    use mlbs_core::{solve_opt, SearchConfig};
    // Instances where the exact tier completes without beaming (verified
    // offline with branch_cap 4096 / max_states 8M): true OPT is known.
    let wide = SearchConfig {
        branch_cap: 4096,
        max_states: 8_000_000,
        ..SearchConfig::default()
    };
    for &(n, seed) in &[(100usize, 0u64), (100, 1), (150, 0)] {
        let (topo, src) = SyntheticDeployment::paper(n).sample(seed);
        let opt = solve_opt(&topo, src, &AlwaysAwake, &wide);
        assert!(opt.exact, "n={n} seed={seed}: exact tier hit its cap");
        let out = solve_anytime(
            &topo,
            src,
            &AlwaysAwake,
            &wsn_phy::ProtocolModel,
            &budget(400_000),
        );
        out.schedule.verify(&topo, &AlwaysAwake).unwrap();
        assert_eq!(
            out.latency, opt.latency,
            "n={n} seed={seed}: anytime {} vs OPT {}",
            out.latency, opt.latency
        );
    }
    // 300-node pins: exact search beams out at any affordable cap, so the
    // bar is the beam search's best-known latency (anytime matches it on
    // both pins today; `<=` keeps the pin robust if the beam improves).
    for &seed in &[0u64, 1] {
        let (topo, src) = SyntheticDeployment::paper(300).sample(seed);
        let beam = solve_opt(&topo, src, &AlwaysAwake, &SearchConfig::default());
        let out = solve_anytime(
            &topo,
            src,
            &AlwaysAwake,
            &wsn_phy::ProtocolModel,
            &budget(400_000),
        );
        out.schedule.verify(&topo, &AlwaysAwake).unwrap();
        assert!(
            out.latency <= beam.latency,
            "n=300 seed={seed}: anytime {} worse than beam search {}",
            out.latency,
            beam.latency
        );
    }
}
