//! Regression pins for the serial search chain.
//!
//! The portfolio refactor routed `solve_anytime` through the shared chain
//! body (`run_chain`); these pins freeze the chain's iteration-budget
//! behavior against values recorded from the pre-portfolio driver, so any
//! future edit that silently perturbs the serial path — an extra RNG
//! draw, a changed deadline cadence, a reordered accept test — fails
//! loudly instead of drifting the recorded baselines.

use wsn_anytime::{solve_anytime, AnytimeConfig, AnytimeOutcome, Budget, Portfolio};
use wsn_dutycycle::AlwaysAwake;
use wsn_phy::ProtocolModel;
use wsn_topology::deploy;

/// Order-sensitive digest of a schedule's entries.
fn schedule_sig(out: &AnytimeOutcome) -> u64 {
    out.schedule
        .entries
        .iter()
        .map(|e| e.slot.wrapping_mul(31) ^ e.senders.iter().map(|s| u64::from(s.0)).sum::<u64>())
        .fold(0u64, |acc, x| acc.rotate_left(7) ^ x)
}

/// `(n, deployment seed, iteration budget)` → expected
/// `(latency, moves, passes, restarts, entries, sig)`, recorded from the
/// PR 5 serial driver.
#[allow(clippy::type_complexity)]
const PINS: [((usize, u64, u64), (u64, u64, u64, u64, usize, u64)); 3] = [
    ((120, 5, 10_000), (5, 314, 72, 18, 5, 12_188_235_637)),
    (
        (200, 11, 30_000),
        (7, 30_000, 7_500, 1_875, 7, 165_761_005_759_570),
    ),
    (
        (300, 2, 25_000),
        (8, 25_062, 9, 2, 8, 128_524_792_643_724_510),
    ),
];

#[test]
fn serial_chain_is_bit_identical_to_pr5_driver() {
    for ((n, seed, budget), (latency, moves, passes, restarts, entries, sig)) in PINS {
        let (topo, src) = deploy::SyntheticDeployment::paper(n).sample(seed);
        let cfg = AnytimeConfig {
            budget: Budget::Iterations(budget),
            ..AnytimeConfig::default()
        };
        let out = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg);
        assert_eq!(
            (
                out.latency,
                out.moves,
                out.passes,
                out.restarts,
                out.schedule.entries.len(),
                schedule_sig(&out),
            ),
            (latency, moves, passes, restarts, entries, sig),
            "n={n} seed={seed}: serial chain drifted from the PR 5 pin"
        );
    }
}

#[test]
fn single_thread_portfolio_is_the_serial_chain() {
    for ((n, seed, budget), _) in PINS {
        let (topo, src) = deploy::SyntheticDeployment::paper(n).sample(seed);
        let cfg = AnytimeConfig {
            budget: Budget::Iterations(budget),
            ..AnytimeConfig::default()
        };
        let serial = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg);
        let port = Portfolio::with_config(cfg, 1).solve(&topo, src, &AlwaysAwake, &ProtocolModel);
        assert_eq!(port.latency, serial.latency);
        assert_eq!(port.moves, serial.moves);
        assert_eq!(port.passes, serial.passes);
        assert_eq!(port.restarts, serial.restarts);
        assert_eq!(schedule_sig(&port), schedule_sig(&serial), "n={n}");
        // Traces carry wall-clock stamps; compare the deterministic parts.
        let lat = |t: &[wsn_anytime::TracePoint]| t.iter().map(|p| p.latency).collect::<Vec<_>>();
        assert_eq!(lat(&port.trace), lat(&serial.trace));
        let det = |d: &[wsn_anytime::DetailPoint]| {
            d.iter().map(|p| (p.latency, p.kind)).collect::<Vec<_>>()
        };
        assert_eq!(det(&port.detail), det(&serial.detail));
    }
}
