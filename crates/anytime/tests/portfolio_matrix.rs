//! Thread-matrix smoke for the parallel scheduling engine (run by CI):
//! portfolios at threads ∈ {1, 2, 4} on a 2k-node instance must return
//! valid schedules that never lose to the serial driver, under all three
//! conflict models — plus warm-start cache and wall-clock budget checks.

use std::time::Instant;
use wsn_anytime::{
    solve_anytime, solve_anytime_cached, AnytimeConfig, Budget, Portfolio, ScheduleCache,
};
use wsn_dutycycle::AlwaysAwake;
use wsn_phy::{ConflictModel, MultiChannel, ProtocolModel, SinrModel, SinrParams};
use wsn_topology::deploy;

fn config() -> AnytimeConfig {
    AnytimeConfig {
        budget: Budget::Iterations(3_000),
        ..AnytimeConfig::default()
    }
}

fn matrix_case<M: ConflictModel>(
    model_name: &str,
    n: usize,
    make_model: impl Fn(&wsn_topology::Topology) -> M,
) {
    let (topo, src) = deploy::SyntheticDeployment::paper(n).sample(42);
    let model = &make_model(&topo);
    let cfg = config();
    let serial = solve_anytime(&topo, src, &AlwaysAwake, model, &cfg);
    serial
        .schedule
        .verify_with_model(&topo, &AlwaysAwake, model)
        .unwrap();
    for threads in [1usize, 2, 4] {
        let port = Portfolio::with_config(cfg.clone(), threads);
        let out = port.solve(&topo, src, &AlwaysAwake, model);
        out.schedule
            .verify_with_model(&topo, &AlwaysAwake, model)
            .unwrap();
        assert!(
            out.latency <= serial.latency,
            "{model_name} threads={threads}: portfolio latency {} beats serial {}? no",
            out.latency,
            serial.latency
        );
        if threads == 1 {
            assert_eq!(out.latency, serial.latency, "{model_name}: threads=1 pin");
        }
    }
}

#[test]
fn protocol_matrix() {
    matrix_case("protocol", 2_000, |_| ProtocolModel);
}

#[test]
fn sinr_matrix() {
    // SINR verification is the expensive leg; a smaller instance keeps the
    // smoke within CI budgets while still exercising the same code paths.
    matrix_case("sinr", 600, |topo| {
        SinrModel::new(SinrParams::calibrated(topo.radius(), 3.0, 1.5), topo)
    });
}

#[test]
fn multichannel_matrix() {
    matrix_case("multichannel", 2_000, |_| {
        MultiChannel::new(ProtocolModel, 3)
    });
}

#[test]
fn iteration_portfolio_reproduces_bit_identically() {
    let (topo, src) = deploy::SyntheticDeployment::paper(400).sample(7);
    let cfg = config();
    for threads in [2usize, 4] {
        let port = Portfolio::with_config(cfg.clone(), threads);
        let a = port.solve(&topo, src, &AlwaysAwake, &ProtocolModel);
        let b = port.solve(&topo, src, &AlwaysAwake, &ProtocolModel);
        assert_eq!(a.latency, b.latency, "threads {threads}");
        assert_eq!(a.moves, b.moves);
        assert_eq!(a.passes, b.passes);
        assert_eq!(a.restarts, b.restarts);
        assert_eq!(a.schedule.entries.len(), b.schedule.entries.len());
        for (ea, eb) in a.schedule.entries.iter().zip(&b.schedule.entries) {
            assert_eq!(ea.slot, eb.slot);
            assert_eq!(ea.senders, eb.senders);
        }
    }
}

#[test]
fn wall_clock_portfolio_produces_valid_schedules() {
    let (topo, src) = deploy::SyntheticDeployment::paper(800).sample(3);
    let cfg = AnytimeConfig {
        budget: Budget::WallClockMs(150),
        ..AnytimeConfig::default()
    };
    let port = Portfolio::with_config(cfg, 3);
    let out = port.solve(&topo, src, &AlwaysAwake, &ProtocolModel);
    out.schedule.verify(&topo, &AlwaysAwake).unwrap();
    assert_eq!(out.latency, out.schedule.latency());
    assert_eq!(out.trace.last().unwrap().latency, out.latency);
}

#[test]
fn wall_clock_budget_is_not_overshot() {
    // The satellite fix: deadline checks now poll every 16 moves inside
    // pass loops and an EWMA guard declines passes that cannot fit, so
    // billed time stays within a small tolerance of the budget. The
    // tolerance absorbs pass-setup granularity on slow CI machines; the
    // pre-fix failure mode was unbounded (a whole pass past the deadline).
    let (topo, src) = deploy::SyntheticDeployment::paper(2_000).sample(9);
    let budget_ms = 300u64;
    let cfg = AnytimeConfig {
        budget: Budget::WallClockMs(budget_ms),
        ..AnytimeConfig::default()
    };
    let started = Instant::now();
    let out = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg);
    let elapsed = started.elapsed().as_millis() as u64;
    out.schedule.verify(&topo, &AlwaysAwake).unwrap();
    assert!(
        elapsed <= budget_ms + 150,
        "billed {elapsed} ms against a {budget_ms} ms budget"
    );
}

#[test]
fn warm_cache_reaches_previous_incumbent_fast() {
    let (topo, src) = deploy::SyntheticDeployment::paper(1_500).sample(13);
    let cfg = config();
    let mut cache = ScheduleCache::new();

    let cold = solve_anytime_cached(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg, &mut cache);
    assert_eq!(cache.len(), 1);
    assert_eq!(cache.misses(), 1);

    // Re-solve the held instance with a zero-iteration budget: the warm
    // hints alone must reproduce the previous incumbent's latency.
    let warm_cfg = AnytimeConfig {
        budget: Budget::Iterations(0),
        ..AnytimeConfig::default()
    };
    let warm = solve_anytime_cached(
        &topo,
        src,
        &AlwaysAwake,
        &ProtocolModel,
        &warm_cfg,
        &mut cache,
    );
    assert_eq!(cache.hits(), 1);
    assert!(
        warm.latency <= cold.latency,
        "warm start lost ground: {} vs {}",
        warm.latency,
        cold.latency
    );
    warm.schedule.verify(&topo, &AlwaysAwake).unwrap();

    // A different source key misses.
    let other = wsn_topology::NodeId(if src.0 == 0 { 1 } else { 0 });
    let mut probe_cache = cache.clone();
    assert!(probe_cache.lookup(&topo, &ProtocolModel, other).is_none());

    // The cache keeps the better schedule on observe.
    let worse_budget = AnytimeConfig {
        budget: Budget::Iterations(0),
        seed: 0xDEAD,
        ..AnytimeConfig::default()
    };
    solve_anytime_cached(
        &topo,
        src,
        &AlwaysAwake,
        &ProtocolModel,
        &worse_budget,
        &mut cache,
    );
    let held = cache.lookup(&topo, &ProtocolModel, src).unwrap();
    assert!(held.latency() <= cold.latency);
}

#[test]
fn portfolio_cache_roundtrip() {
    let (topo, src) = deploy::SyntheticDeployment::paper(500).sample(21);
    let mut cache = ScheduleCache::new();
    let port = Portfolio::with_config(config(), 2);
    let cold = port.solve_cached(&topo, src, &AlwaysAwake, &ProtocolModel, &mut cache);
    let warm = port.solve_cached(&topo, src, &AlwaysAwake, &ProtocolModel, &mut cache);
    assert_eq!(cache.hits(), 1);
    assert_eq!(cache.misses(), 1);
    assert!(warm.latency <= cold.latency);
    warm.schedule.verify(&topo, &AlwaysAwake).unwrap();
}
