//! Repair under physical-layer models: the `reschedule` warm-vs-cold
//! race is model-generic, but until now only the protocol model pinned
//! it. These tests exercise incremental repair under `SinrModel` and
//! `MultiChannel` K=2, asserting repaired schedules verify under the
//! exact model semantics and never lose to a cold greedy
//! re-legalization under the same mask.

use proptest::prelude::*;
use wsn_anytime::{
    reschedule, reschedule_cached, solve_anytime, AnytimeConfig, Budget, ChurnDelta, ScheduleCache,
};
use wsn_dutycycle::AlwaysAwake;
use wsn_phy::{PhyModelSpec, SinrParams};
use wsn_topology::deploy::SyntheticDeployment;
use wsn_topology::{NodeId, Topology};

fn budget(iters: u64) -> AnytimeConfig {
    AnytimeConfig {
        budget: Budget::Iterations(iters),
        ..AnytimeConfig::default()
    }
}

/// Every `stride`-th node except the source — a deterministic churn set.
fn churn_set(topo: &Topology, source: NodeId, stride: usize) -> Vec<NodeId> {
    topo.nodes()
        .filter(|&u| u != source && u.idx() % stride == stride - 1)
        .collect()
}

/// Cold baseline: a greedy masked re-legalization with no warm start (an
/// empty cache forces the cold path of `reschedule_cached`).
fn cold_relegalize<M: wsn_phy::ConflictModel>(
    topo: &Topology,
    source: NodeId,
    model: &M,
    delta: &ChurnDelta,
) -> wsn_anytime::RepairOutcome {
    let mut empty = ScheduleCache::new();
    reschedule_cached(
        &mut empty,
        topo,
        source,
        &AlwaysAwake,
        model,
        delta,
        &budget(0),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any instance × {SINR, SINR-K2, protocol-K2}: the repaired schedule
    /// verifies over the surviving subgraph under the exact model, and
    /// its latency never exceeds the cold re-legalization's.
    #[test]
    fn repair_verifies_and_never_loses_under_phy_models(
        seed in 0..24u64,
        n in 40usize..100,
        model_ix in 0usize..3,
        stride in 5usize..9,
    ) {
        let (topo, src) = SyntheticDeployment::paper(n).sample(seed);
        let spec = match model_ix {
            0 => PhyModelSpec::sinr(SinrParams::calibrated(topo.radius(), 3.0, 1.5)),
            1 => PhyModelSpec::sinr(SinrParams::calibrated(topo.radius(), 3.0, 1.5))
                .with_channels(2),
            _ => PhyModelSpec::protocol().with_channels(2),
        };
        let model = spec.build(&topo);
        let base = solve_anytime(&topo, src, &AlwaysAwake, &model, &budget(4_000));
        let dead = churn_set(&topo, src, stride);
        prop_assert!(!dead.is_empty(), "n >= 40 guarantees a non-empty churn set");
        let delta = ChurnDelta::deaths(dead);

        let rep = reschedule(&topo, src, &AlwaysAwake, &model, &base.schedule, &delta, &budget(2_000));
        prop_assert!(
            rep.outcome.schedule
                .verify_covering_with_model(&topo, &AlwaysAwake, &model, Some(&rep.mask))
                .is_ok(),
            "{} repair failed verification", spec.label()
        );

        let cold = cold_relegalize(&topo, src, &model, &delta);
        prop_assert!(
            rep.outcome.latency <= cold.outcome.latency,
            "{} repair ({}) lost to cold re-legalization ({})",
            spec.label(), rep.outcome.latency, cold.outcome.latency
        );
    }

    /// Quality-only deltas under SINR: the mask stays empty, every
    /// surviving placement is reused, and the repair still verifies.
    #[test]
    fn quality_only_repair_under_sinr_reuses_everything(
        seed in 0..16u64,
        n in 40usize..80,
    ) {
        let (topo, src) = SyntheticDeployment::paper(n).sample(seed);
        let model = PhyModelSpec::sinr(SinrParams::calibrated(topo.radius(), 3.0, 1.5))
            .with_channels(2)
            .build(&topo);
        let base = solve_anytime(&topo, src, &AlwaysAwake, &model, &budget(3_000));
        let degraded: Vec<_> = topo
            .nodes()
            .flat_map(|u| topo.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u < v)
            .step_by(3)
            .map(|(u, v)| (u, v, 0.6))
            .collect();
        prop_assert!(!degraded.is_empty(), "paper densities always have links");
        let delta = ChurnDelta::degradations(degraded);
        let rep = reschedule(&topo, src, &AlwaysAwake, &model, &base.schedule, &delta, &budget(0));
        prop_assert!(rep.mask.is_empty());
        prop_assert_eq!(rep.uncovered.len(), 0);
        prop_assert_eq!(rep.stranded, 0);
        prop_assert!(rep.outcome.schedule
            .verify_with_model(&topo, &AlwaysAwake, &model)
            .is_ok());
        prop_assert!(rep.outcome.latency <= base.latency);
    }
}

/// Pinned instance: repair under SINR + MultiChannel K=2 on the paper's
/// 150-node density, with a ~12% churn, must verify, reuse survivors,
/// and beat-or-match cold.
#[test]
fn pinned_sinr_k2_repair() {
    let (topo, src) = SyntheticDeployment::paper(150).sample(0);
    let model = PhyModelSpec::sinr(SinrParams::calibrated(topo.radius(), 3.0, 1.5))
        .with_channels(2)
        .build(&topo);
    let base = solve_anytime(&topo, src, &AlwaysAwake, &model, &budget(8_000));
    base.schedule
        .verify_with_model(&topo, &AlwaysAwake, &model)
        .unwrap();
    let dead = churn_set(&topo, src, 8);
    assert!(!dead.is_empty());
    let delta = ChurnDelta::deaths(dead);
    let rep = reschedule(
        &topo,
        src,
        &AlwaysAwake,
        &model,
        &base.schedule,
        &delta,
        &budget(4_000),
    );
    rep.outcome
        .schedule
        .verify_covering_with_model(&topo, &AlwaysAwake, &model, Some(&rep.mask))
        .unwrap();
    assert!(rep.reused > 0, "repair must reuse surviving placements");
    let cold = cold_relegalize(&topo, src, &model, &delta);
    assert!(
        rep.outcome.latency <= cold.outcome.latency,
        "repair {} lost to cold {}",
        rep.outcome.latency,
        cold.outcome.latency
    );
}
