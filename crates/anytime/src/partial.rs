//! [`PartialSchedule`]: the mutable assignment the tabu/PARTIALCOL local
//! search permutes.
//!
//! A complete broadcast schedule induces an assignment `relay → slot` plus
//! a *frozen* conflict structure: for every pair of relays whose witness
//! set is non-empty, the last slot at which they may not share a slot is
//! `deadline(u, v) = max_w receive_slot[w]` over their witnesses `w` — a
//! witness received in slot `r` is vulnerable through slot `r` inclusive.
//! Against that frozen structure, evaluating a single-relay move costs
//! `O(degree)`: bump a per-slot cost counter for each partner, read the
//! counter at the target slot. The structure is *frozen* (receive times do
//! not track the moves), so a zero-cost assignment here is a *candidate*,
//! not a theorem — the legalizer re-simulates every candidate under the
//! real model before it can become the incumbent.
//!
//! Two move disciplines share this state, both classic graph-coloring
//! local searches transplanted onto slots-with-deadlines:
//!
//! * **PARTIALCOL** ([`PartialSchedule::begin_compress`] +
//!   [`PartialSchedule::compress_step`]): evict the last occupied slot,
//!   then repeatedly place an unassigned relay into its cheapest feasible
//!   slot, evicting whoever it collides with (tabu forbids the evictee's
//!   old slot for a tenure). Success = no unassigned relays ⇒ a schedule
//!   hint one slot shorter.
//! * **TabuCol** ([`PartialSchedule::begin_squash`] +
//!   [`PartialSchedule::repair_step`]): force the last slot's relays into
//!   random earlier slots (conflicts allowed), then reassign conflicted
//!   relays toward zero total conflicts, tabu on the (relay, old-slot)
//!   pair, aspiration on conflict-free placements.

use mlbs_core::Schedule;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use wsn_bitset::NodeSet;
use wsn_dutycycle::{Slot, WakeSchedule};
use wsn_interference::ConflictGraphBuilder;
use wsn_phy::ConflictModel;
use wsn_topology::{NodeId, Topology};

use crate::legalize::Hints;

/// Sentinel slot for "relay currently unassigned".
const UNASSIGNED: Slot = Slot::MAX;

/// One step of a local-search discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The target condition is met (no unassigned relays / no conflicts).
    Done,
    /// A move was made; keep stepping.
    Progress,
    /// No feasible slot exists for the current relay (narrow wake window);
    /// the pass cannot succeed.
    Stuck,
}

/// The mutable per-pass assignment (see the module docs).
pub struct PartialSchedule {
    /// Relay ids; index space of everything below.
    relays: Vec<NodeId>,
    /// Partner lists: `adj[i] = [(j, deadline), …]` — co-slot placement of
    /// `relays[i]` and `relays[j]` at slot `t` conflicts iff `t ≤ deadline`.
    adj: Vec<Vec<(u32, Slot)>>,
    /// Current absolute slot per relay ([`UNASSIGNED`] while evicted).
    slot_of: Vec<Slot>,
    /// Frozen earliest sending slot per relay (`receive_slot + 1`; the
    /// source is pinned to the start slot and never moved).
    earliest: Vec<Slot>,
    /// Occupants per window offset (`slot − start`).
    buckets: Vec<Vec<u32>>,
    /// Source slot (window origin).
    start: Slot,
    /// Highest slot a move may currently target.
    cap: Slot,
    /// Relay index of the broadcast source.
    src: u32,
    /// `(relay, slot) → iteration until which the move is tabu`.
    tabu: HashMap<(u32, Slot), u64>,
    iter: u64,
    /// Scratch per-offset move costs plus the touched offsets.
    cost: Vec<u32>,
    touched: Vec<u32>,
    /// PARTIALCOL: currently evicted relays.
    unassigned: Vec<u32>,
    /// TabuCol: per-relay conflict count and total conflicting pairs.
    conf: Vec<u32>,
    total_conf: u64,
    /// TabuCol: queue of possibly-conflicted relays (lazily filtered).
    conflicted: Vec<u32>,
}

impl PartialSchedule {
    /// Freezes `schedule`'s conflict structure into a move-searchable
    /// assignment. Partner pairs come from `builder` rows under `model`
    /// (spatially pruned at scale), deadlines from the cached witness sets
    /// against the schedule's receive times.
    pub fn from_schedule<M: ConflictModel>(
        schedule: &Schedule,
        topo: &Topology,
        model: &M,
        builder: &mut ConflictGraphBuilder,
    ) -> PartialSchedule {
        PartialSchedule::from_schedule_masked(schedule, topo, model, builder, None)
    }

    /// As [`PartialSchedule::from_schedule`], with dead nodes masked out of
    /// the frozen structure: dead nodes cannot witness a conflict (they are
    /// excluded from the partner-row universe and from deadline
    /// computation), which is what makes repair-time passes as mobile as
    /// the surviving topology allows. The schedule itself must already be
    /// free of dead senders.
    pub fn from_schedule_masked<M: ConflictModel>(
        schedule: &Schedule,
        topo: &Topology,
        model: &M,
        builder: &mut ConflictGraphBuilder,
        dead: Option<&NodeSet>,
    ) -> PartialSchedule {
        let n = topo.len();
        let mut relays: Vec<NodeId> = Vec::new();
        let mut slot_of: Vec<Slot> = Vec::new();
        for entry in &schedule.entries {
            for &u in &entry.senders {
                relays.push(u);
                slot_of.push(entry.slot);
            }
        }
        let k = relays.len();
        let start = schedule.start;
        let end = schedule.entries.last().map_or(start, |e| e.slot);

        let mut src = u32::MAX;
        let mut earliest = vec![0; k];
        for (i, &u) in relays.iter().enumerate() {
            if u == schedule.source {
                src = i as u32;
                earliest[i] = start;
            } else {
                earliest[i] = schedule.receive_slot[u.idx()] + 1;
            }
        }

        // Partner rows against "everyone but the source may still be
        // uninformed"; the deadline then narrows each edge to the slots
        // where some witness is actually vulnerable.
        let mut unf = NodeSet::full(n);
        unf.remove(schedule.source.idx());
        if let Some(dead) = dead {
            unf.difference_with(dead);
        }
        builder.update_with(model, topo, &relays, &unf);
        let mut adj: Vec<Vec<(u32, Slot)>> = vec![Vec::new(); k];
        for i in 0..k {
            let row: Vec<usize> = builder.graph().row(i).iter().collect();
            for j in row {
                if j <= i {
                    continue;
                }
                let deadline = builder
                    .witnesses(model, topo, relays[i], relays[j])
                    .iter()
                    .filter(|&&w| dead.is_none_or(|d| !d.contains(w as usize)))
                    .map(|&w| schedule.receive_slot[w as usize])
                    .max()
                    .unwrap_or(0);
                adj[i].push((j as u32, deadline));
                adj[j].push((i as u32, deadline));
            }
        }

        let window = (end - start + 1) as usize;
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); window];
        for (i, &t) in slot_of.iter().enumerate() {
            buckets[(t - start) as usize].push(i as u32);
        }

        PartialSchedule {
            adj,
            slot_of,
            earliest,
            buckets,
            start,
            cap: end,
            src,
            tabu: HashMap::new(),
            iter: 0,
            cost: vec![0; window],
            touched: Vec::new(),
            unassigned: Vec::new(),
            conf: vec![0; k],
            total_conf: 0,
            conflicted: Vec::new(),
            relays,
        }
    }

    /// The relay list (the assignment's index space).
    pub fn relays(&self) -> &[NodeId] {
        &self.relays
    }

    /// Current slot of relay `i`, `None` while evicted.
    pub fn slot_of(&self, i: usize) -> Option<Slot> {
        (self.slot_of[i] != UNASSIGNED).then_some(self.slot_of[i])
    }

    /// Number of currently unassigned relays.
    pub fn unassigned_len(&self) -> usize {
        self.unassigned.len()
    }

    /// Total conflicting pairs under the frozen structure (TabuCol
    /// objective).
    pub fn total_conflicts(&self) -> u64 {
        self.total_conf
    }

    /// Frozen-structure cost of placing relay `i` at slot `t`: the number
    /// of partners already sitting in `t` with a live deadline. `O(degree)`.
    pub fn move_cost(&self, i: usize, t: Slot) -> u32 {
        self.adj[i]
            .iter()
            .filter(|&&(j, dl)| self.slot_of[j as usize] == t && t <= dl)
            .count() as u32
    }

    /// The last occupied window offset, if any slot is occupied.
    fn last_occupied(&self) -> Option<usize> {
        self.buckets.iter().rposition(|b| !b.is_empty())
    }

    /// Starts a PARTIALCOL pass: evicts every relay of the last occupied
    /// slot and forbids any slot beyond the second-to-last. Returns `false`
    /// when the schedule is too short to compress (source slot only).
    pub fn begin_compress(&mut self) -> bool {
        let Some(off) = self.last_occupied() else {
            return false;
        };
        if off == 0 {
            return false;
        }
        for i in std::mem::take(&mut self.buckets[off]) {
            self.slot_of[i as usize] = UNASSIGNED;
            self.unassigned.push(i);
        }
        self.cap = self.start + off as Slot - 1;
        true
    }

    /// One PARTIALCOL move: place an unassigned relay into its cheapest
    /// non-tabu feasible slot, evicting the partners it collides with.
    pub fn compress_step<S: WakeSchedule>(
        &mut self,
        wake: &S,
        tenure: u64,
        rng: &mut StdRng,
    ) -> StepOutcome {
        let Some(pick) = self.pick_unassigned(rng) else {
            return StepOutcome::Done;
        };
        let Some(t) = self.best_slot(pick, wake, rng) else {
            // No wake-feasible slot inside the window: undo the pick.
            self.unassigned.push(pick as u32);
            return StepOutcome::Stuck;
        };
        self.place_evicting(pick, t, tenure, rng);
        self.iter += 1;
        if self.unassigned.is_empty() {
            StepOutcome::Done
        } else {
            StepOutcome::Progress
        }
    }

    /// Starts a TabuCol pass: forces every relay of the last occupied slot
    /// into a random earlier feasible slot (conflicts allowed), then
    /// recomputes the conflict counters. Returns `false` when the window
    /// cannot shrink or some squashed relay has no feasible slot.
    pub fn begin_squash<S: WakeSchedule>(&mut self, wake: &S, rng: &mut StdRng) -> bool {
        let Some(off) = self.last_occupied() else {
            return false;
        };
        if off == 0 {
            return false;
        }
        self.cap = self.start + off as Slot - 1;
        for i in std::mem::take(&mut self.buckets[off]) {
            self.slot_of[i as usize] = UNASSIGNED;
            let feasible: Vec<Slot> = self.feasible_slots(i as usize, wake).collect();
            if feasible.is_empty() {
                return false;
            }
            let t = feasible[rng.random_range(0..feasible.len())];
            self.slot_of[i as usize] = t;
            self.buckets[(t - self.start) as usize].push(i);
        }
        self.recount_conflicts();
        true
    }

    /// One TabuCol move: reassign a conflicted relay to the slot minimizing
    /// its conflict count (tabu on the slot it leaves, aspiration on
    /// conflict-free placements).
    pub fn repair_step<S: WakeSchedule>(
        &mut self,
        wake: &S,
        tenure: u64,
        rng: &mut StdRng,
    ) -> StepOutcome {
        if self.total_conf == 0 {
            return StepOutcome::Done;
        }
        let x = loop {
            let Some(c) = self.conflicted.pop() else {
                // Lazy queue drained while conflicts remain: rebuild it.
                self.conflicted = (0..self.conf.len() as u32)
                    .filter(|&i| self.conf[i as usize] > 0)
                    .collect();
                debug_assert!(!self.conflicted.is_empty());
                continue;
            };
            if self.conf[c as usize] > 0 {
                if c == self.src {
                    // The source is pinned; a conflict on it cannot be
                    // repaired by moving it.
                    return StepOutcome::Stuck;
                }
                break c as usize;
            }
        };
        let old = self.slot_of[x];
        let Some(t) = self.best_slot(x, wake, rng) else {
            return StepOutcome::Stuck;
        };
        if t != old {
            self.unplace(x);
            self.tabu.insert((x as u32, old), self.iter + tenure);
            self.place_counting(x, t);
        }
        self.iter += 1;
        if self.total_conf == 0 {
            StepOutcome::Done
        } else {
            StepOutcome::Progress
        }
    }

    /// Extracts the current assignment as legalizer hints (assigned relays
    /// only), slot-keyed.
    pub fn hints(&self) -> Hints {
        let mut hints = Hints::new();
        for (i, &t) in self.slot_of.iter().enumerate() {
            if t != UNASSIGNED {
                hints.entry(t).or_default().push(self.relays[i]);
            }
        }
        for list in hints.values_mut() {
            list.sort_unstable();
        }
        hints
    }

    /// Picks the next relay to place, randomly from the unassigned stack.
    fn pick_unassigned(&mut self, rng: &mut StdRng) -> Option<usize> {
        if self.unassigned.is_empty() {
            return None;
        }
        let at = rng.random_range(0..self.unassigned.len());
        Some(self.unassigned.swap_remove(at) as usize)
    }

    /// Wake-feasible target slots for relay `i` within the window.
    fn feasible_slots<'a, S: WakeSchedule>(
        &'a self,
        i: usize,
        wake: &'a S,
    ) -> impl Iterator<Item = Slot> + 'a {
        let lo = self.earliest[i].max(self.start + 1);
        let node = self.relays[i].idx();
        (lo..=self.cap).filter(move |&t| wake.can_send(node, t))
    }

    /// The cheapest non-tabu feasible slot for relay `i` (aspiration:
    /// zero-cost slots ignore tabu; if everything is tabu, the cheapest
    /// slot overall). Ties break uniformly at random. `None` when no
    /// wake-feasible slot exists.
    fn best_slot<S: WakeSchedule>(&mut self, i: usize, wake: &S, rng: &mut StdRng) -> Option<Slot> {
        // Bump per-offset costs from the partner list (O(degree)).
        for idx in self.touched.drain(..) {
            self.cost[idx as usize] = 0;
        }
        for &(j, dl) in &self.adj[i] {
            let t = self.slot_of[j as usize];
            if t != UNASSIGNED && t <= dl {
                let off = (t - self.start) as usize;
                if self.cost[off] == 0 {
                    self.touched.push(off as u32);
                }
                self.cost[off] += 1;
            }
        }
        let mut best: Option<(u32, bool, Slot)> = None; // (cost, was_tabu_free, slot)
        let mut ties = 0u32;
        let lo = self.earliest[i].max(self.start + 1);
        let node = self.relays[i].idx();
        for t in lo..=self.cap {
            if !wake.can_send(node, t) {
                continue;
            }
            let c = self.cost[(t - self.start) as usize];
            let free = c == 0
                || self
                    .tabu
                    .get(&(i as u32, t))
                    .is_none_or(|&until| until <= self.iter);
            let better = match best {
                None => true,
                // Non-tabu beats tabu; then lower cost; equal → reservoir.
                Some((bc, bfree, _)) => {
                    (free, std::cmp::Reverse(c)) > (bfree, std::cmp::Reverse(bc))
                }
            };
            if better {
                best = Some((c, free, t));
                ties = 1;
            } else if let Some((bc, bfree, _)) = best {
                if c == bc && free == bfree {
                    ties += 1;
                    if rng.random_range(0..ties) == 0 {
                        best = Some((c, free, t));
                    }
                }
            }
        }
        best.map(|(_, _, t)| t)
    }

    /// Places relay `i` at `t`, evicting every partner it conflicts with
    /// (PARTIALCOL semantics; evicted relays join the unassigned stack and
    /// their old slot becomes tabu).
    fn place_evicting(&mut self, i: usize, t: Slot, tenure: u64, rng: &mut StdRng) {
        // Dynamic tenure: longer while the unassigned set is larger, plus
        // noise so cycles do not lock in.
        let until =
            self.iter + tenure + self.unassigned.len() as u64 / 2 + rng.random_range(0..3u64);
        let adj = std::mem::take(&mut self.adj[i]);
        for &(j, dl) in &adj {
            let j = j as usize;
            if self.slot_of[j] == t && t <= dl {
                self.remove_from_bucket(j);
                self.slot_of[j] = UNASSIGNED;
                self.unassigned.push(j as u32);
                self.tabu.insert((j as u32, t), until);
            }
        }
        self.adj[i] = adj;
        self.slot_of[i] = t;
        self.buckets[(t - self.start) as usize].push(i as u32);
    }

    /// Removes relay `j` from its slot bucket.
    fn remove_from_bucket(&mut self, j: usize) {
        let off = (self.slot_of[j] - self.start) as usize;
        let bucket = &mut self.buckets[off];
        let at = bucket
            .iter()
            .position(|&x| x as usize == j)
            .expect("assigned relay sits in its bucket");
        bucket.swap_remove(at);
    }

    /// TabuCol bookkeeping: removes `x` from its slot, updating conflict
    /// counters.
    fn unplace(&mut self, x: usize) {
        let t = self.slot_of[x];
        self.remove_from_bucket(x);
        let adj = std::mem::take(&mut self.adj[x]);
        for &(j, dl) in &adj {
            let j = j as usize;
            if self.slot_of[j] == t && t <= dl {
                self.conf[x] -= 1;
                self.conf[j] -= 1;
                self.total_conf -= 1;
            }
        }
        self.adj[x] = adj;
        self.slot_of[x] = UNASSIGNED;
    }

    /// TabuCol bookkeeping: places `x` at `t`, updating conflict counters
    /// and enqueueing newly conflicted partners.
    fn place_counting(&mut self, x: usize, t: Slot) {
        self.slot_of[x] = t;
        self.buckets[(t - self.start) as usize].push(x as u32);
        let adj = std::mem::take(&mut self.adj[x]);
        for &(j, dl) in &adj {
            let j = j as usize;
            if self.slot_of[j] == t && t <= dl {
                self.conf[x] += 1;
                if self.conf[j] == 0 {
                    self.conflicted.push(j as u32);
                }
                self.conf[j] += 1;
                self.total_conf += 1;
            }
        }
        self.adj[x] = adj;
        if self.conf[x] > 0 {
            self.conflicted.push(x as u32);
        }
    }

    /// Recomputes all conflict counters from scratch (pass setup).
    fn recount_conflicts(&mut self) {
        self.conf.iter_mut().for_each(|c| *c = 0);
        self.total_conf = 0;
        self.conflicted.clear();
        for i in 0..self.relays.len() {
            let t = self.slot_of[i];
            if t == UNASSIGNED {
                continue;
            }
            for &(j, dl) in &self.adj[i] {
                let j = j as usize;
                if j > i && self.slot_of[j] == t && t <= dl {
                    self.conf[i] += 1;
                    self.conf[j] += 1;
                    self.total_conf += 1;
                }
            }
        }
        for i in 0..self.conf.len() {
            if self.conf[i] > 0 {
                self.conflicted.push(i as u32);
            }
        }
    }
}
