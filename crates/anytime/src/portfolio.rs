//! Parallel portfolio anytime search: N independently-seeded
//! tabu/PARTIALCOL chains racing on the same instance.
//!
//! Metaheuristic scheduling gains most of its quality from restart
//! diversity, and restart diversity is free across cores: each worker runs
//! the full serial chain ([`run_chain`]) under its own salted seed, so the
//! portfolio explores N basins for the wall-clock price of one. Two
//! regimes, split by [`Budget`]:
//!
//! * **Wall-clock budgets** — workers exchange incumbents through a
//!   lock-light [`SharedBest`]: an atomic latency bound gates the fast
//!   path (no lock unless an improvement is plausible) in front of a
//!   mutex-guarded elite schedule. Chains adopt a better elite between
//!   passes, and randomized restarts are *biased away* from the elite's
//!   early-sender signature so siblings do not pile into the incumbent's
//!   basin.
//! * **Iteration budgets** — workers share nothing: every chain spends
//!   the full deterministic budget, and the reduction picks the best
//!   outcome in fixed worker order. The result is bit-reproducible at any
//!   fixed thread count, and worker 0 runs the unsalted seed, so the
//!   portfolio provably never returns a worse latency than the serial
//!   driver on the same config.
//!
//! Threading is `std::thread::scope` only — same discipline as
//! `wsn-sim`'s sweep pool; no work-stealing runtime.

use mlbs_core::Schedule;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use wsn_bitset::NodeSet;
use wsn_dutycycle::{Slot, WakeSchedule};
use wsn_phy::ConflictModel;
use wsn_topology::{NodeId, Topology};

use crate::driver::{run_chain, AnytimeConfig, AnytimeOutcome, Budget, ChainCtx};

/// Lock-light incumbent exchange between portfolio chains: a relaxed
/// atomic latency bound in front of a mutex-guarded elite schedule. The
/// bound makes the overwhelmingly common case — "nothing new" — a single
/// atomic load; the mutex is touched only when an improvement is at least
/// plausible.
pub(crate) struct SharedBest {
    /// Latency of the elite ([`u64::MAX`] while empty). Monotone
    /// non-increasing; always ≤ the elite's actual latency when read
    /// before locking, so a stale read can only cause a harmless extra
    /// lock or a skipped adoption, never a wrong adoption.
    bound: AtomicU64,
    elite: Mutex<Option<Elite>>,
}

struct Elite {
    schedule: Schedule,
    /// Early-sender signature: nodes transmitting in the first half of the
    /// occupied window. Restart bias demotes these so sibling chains build
    /// structurally different schedules.
    signature: NodeSet,
}

impl SharedBest {
    pub(crate) fn new() -> SharedBest {
        SharedBest {
            bound: AtomicU64::new(u64::MAX),
            elite: Mutex::new(None),
        }
    }

    /// Publishes `schedule` as the elite if it beats the current one.
    pub(crate) fn offer(&self, schedule: &Schedule, universe: usize) {
        let latency = schedule.latency();
        if latency >= self.bound.load(Ordering::Relaxed) {
            return;
        }
        let mut guard = self.elite.lock().expect("shared best poisoned");
        let better = guard
            .as_ref()
            .is_none_or(|e| latency < e.schedule.latency());
        if better {
            self.bound.fetch_min(latency, Ordering::Relaxed);
            *guard = Some(Elite {
                schedule: schedule.clone(),
                signature: signature_of(schedule, universe),
            });
        }
    }

    /// Clones the elite schedule when it is strictly better than
    /// `current`; the atomic bound screens out the no-improvement case
    /// without locking.
    pub(crate) fn adopt_if_better(&self, current: Slot) -> Option<Schedule> {
        if self.bound.load(Ordering::Relaxed) >= current {
            return None;
        }
        let guard = self.elite.lock().expect("shared best poisoned");
        guard
            .as_ref()
            .filter(|e| e.schedule.latency() < current)
            .map(|e| e.schedule.clone())
    }

    /// Clones the elite's early-sender signature for restart biasing.
    pub(crate) fn elite_signature(&self) -> Option<NodeSet> {
        let guard = self.elite.lock().expect("shared best poisoned");
        guard.as_ref().map(|e| e.signature.clone())
    }
}

/// Nodes transmitting in the first half of the schedule's occupied window.
fn signature_of(schedule: &Schedule, universe: usize) -> NodeSet {
    let mut sig = NodeSet::new(universe);
    let end = schedule.completion_slot();
    let mid = schedule.start + (end - schedule.start) / 2;
    for entry in &schedule.entries {
        if entry.slot <= mid {
            for &u in &entry.senders {
                sig.insert(u.idx());
            }
        }
    }
    sig
}

/// Parallel portfolio anytime scheduler (see the module docs).
///
/// `threads == 1` is bit-identical to [`solve_anytime`](crate::solve_anytime)
/// on the same config — the portfolio collapses to one standalone chain —
/// so promoting call sites to `Portfolio` is behavior-preserving until
/// they actually raise the thread count.
#[derive(Clone, Debug)]
pub struct Portfolio {
    config: AnytimeConfig,
    threads: usize,
}

impl Portfolio {
    /// A portfolio of `threads` chains under the default config.
    pub fn new(threads: usize) -> Portfolio {
        Portfolio::with_config(AnytimeConfig::default(), threads)
    }

    /// A portfolio of `threads` chains under `config` (worker 0 runs the
    /// config's seed verbatim; workers 1.. run salted variants).
    pub fn with_config(config: AnytimeConfig, threads: usize) -> Portfolio {
        Portfolio {
            config,
            threads: threads.max(1),
        }
    }

    /// Worker count.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The base chain config.
    #[inline]
    pub fn config(&self) -> &AnytimeConfig {
        &self.config
    }

    /// Runs the portfolio cold. See [`Portfolio::solve_warm`].
    pub fn solve<S, M>(
        &self,
        topo: &Topology,
        source: NodeId,
        wake: &S,
        model: &M,
    ) -> AnytimeOutcome
    where
        S: WakeSchedule + Sync,
        M: ConflictModel,
    {
        self.solve_warm(topo, source, wake, model, None)
    }

    /// Runs the portfolio, optionally warm-starting every chain's first
    /// legalization from `warm` (a previous incumbent for this instance,
    /// e.g. a [`ScheduleCache`](crate::ScheduleCache) hit). The returned
    /// outcome is the best chain's, with `moves`/`passes`/`restarts`
    /// summed across all chains so billed work stays comparable to the
    /// serial driver's accounting.
    pub fn solve_warm<S, M>(
        &self,
        topo: &Topology,
        source: NodeId,
        wake: &S,
        model: &M,
        warm: Option<&Schedule>,
    ) -> AnytimeOutcome
    where
        S: WakeSchedule + Sync,
        M: ConflictModel,
    {
        let mut solve_span = wsn_obs::span("portfolio.solve");
        wsn_obs::counter_add("portfolio.solves", 1);
        wsn_obs::counter_add("portfolio.chains", self.threads as u64);
        wsn_obs::gauge_set("portfolio.threads", self.threads as i64);
        if warm.is_some() {
            wsn_obs::counter_add("portfolio.warm_starts", 1);
        }
        if self.threads == 1 {
            let out = run_chain(
                topo,
                source,
                wake,
                model,
                &self.config,
                ChainCtx {
                    shared: None,
                    warm,
                    dead: None,
                },
            );
            solve_span.set_value(out.latency as i64);
            return out;
        }
        // Incumbent exchange only under wall-clock budgets: iteration
        // budgets promise bit-reproducibility, and cross-thread adoption
        // order is inherently racy.
        let share = matches!(self.config.budget, Budget::WallClockMs(_));
        let shared = SharedBest::new();
        let mut outcomes: Vec<AnytimeOutcome> = Vec::with_capacity(self.threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|w| {
                    let cfg = self.worker_config(w);
                    let shared = share.then_some(&shared);
                    scope.spawn(move || {
                        run_chain(
                            topo,
                            source,
                            wake,
                            model,
                            &cfg,
                            ChainCtx {
                                shared,
                                warm,
                                dead: None,
                            },
                        )
                    })
                })
                .collect();
            for h in handles {
                outcomes.push(h.join().expect("portfolio worker panicked"));
            }
        });
        // Deterministic round-robin reduction: fixed worker order, first
        // minimum wins. With iteration budgets every input is itself
        // deterministic, so the portfolio result is bit-reproducible at a
        // fixed thread count.
        let winner = outcomes
            .iter()
            .enumerate()
            .min_by_key(|(i, o)| (o.latency, *i))
            .map(|(i, _)| i)
            .expect("at least one worker");
        let moves = outcomes.iter().map(|o| o.moves).sum();
        let passes = outcomes.iter().map(|o| o.passes).sum();
        let restarts = outcomes.iter().map(|o| o.restarts).sum();
        let mut out = outcomes.swap_remove(winner);
        out.moves = moves;
        out.passes = passes;
        out.restarts = restarts;
        solve_span.set_value(out.latency as i64);
        out
    }

    /// [`Portfolio::solve_warm`] wired to a [`ScheduleCache`]: a hit
    /// warm-starts every chain, and the winning schedule is folded back
    /// into the cache.
    pub fn solve_cached<S, M>(
        &self,
        topo: &Topology,
        source: NodeId,
        wake: &S,
        model: &M,
        cache: &mut crate::ScheduleCache,
    ) -> AnytimeOutcome
    where
        S: WakeSchedule + Sync,
        M: ConflictModel,
    {
        let warm = cache.lookup(topo, model, source);
        let out = self.solve_warm(topo, source, wake, model, warm.as_ref());
        cache.observe(topo, model, source, &out.schedule);
        out
    }

    /// Worker 0 keeps the configured seed (so the serial chain is always
    /// in the portfolio); workers 1.. get golden-ratio-salted seeds for
    /// independent diversification streams.
    fn worker_config(&self, worker: usize) -> AnytimeConfig {
        let mut cfg = self.config.clone();
        if worker > 0 {
            cfg.seed ^= (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        cfg
    }
}
