//! Anytime metaheuristic scheduling tier: tabu/PARTIALCOL local search
//! that schedules 10k–100k-node networks within a wall-clock budget.
//!
//! The exact tier (`mlbs_core::solve_opt`) prices optimality in state
//! enumeration and stops being usable a little beyond the paper's 300-node
//! instances. This crate trades proof for *interrupt-anytime* semantics:
//!
//! 1. a greedy legalizer seeds a valid schedule in `O(E)` ([`legalize`]
//!    internals),
//! 2. a [`PartialSchedule`] freezes the incumbent's conflict structure —
//!    partner pairs from the incremental conflict-graph builder
//!    (spatially pruned at scale), per-pair *deadlines* from cached
//!    witness sets — so single-relay moves delta-evaluate in `O(degree)`,
//! 3. PARTIALCOL compression passes (evict the last slot, re-place its
//!    relays under tabu tenure) and TabuCol squash-repair kicks search for
//!    assignments one slot shorter,
//! 4. every candidate is re-simulated by the legalizer and re-verified
//!    under the real [`ConflictModel`](wsn_phy::ConflictModel) before it
//!    may become the incumbent, and each acceptance appends to the
//!    improving-bound [`TracePoint`] trace.
//!
//! Stop it whenever: [`solve_anytime`] returns the best-so-far schedule,
//! always valid, with the latency-vs-time trace that anytime algorithms
//! are judged by. Budgets are wall-clock for benchmarking or
//! iteration-counted for bit-reproducible sweeps ([`Budget`]).
//!
//! Two multipliers sit on top of the single chain: [`Portfolio`] races N
//! independently-seeded chains on scoped threads (wall-clock chains
//! exchange incumbents through a lock-light shared best; iteration-budget
//! portfolios stay bit-reproducible and never lose to the serial driver),
//! and [`ScheduleCache`] warm-starts repeat solves of a held instance from
//! their previous incumbent ([`solve_anytime_cached`]).

mod cache;
mod driver;
mod legalize;
mod partial;
mod portfolio;
mod reliable;
mod repair;

pub use cache::{solve_anytime_cached, ScheduleCache};
pub use driver::{
    solve_anytime, AnytimeConfig, AnytimeOutcome, Budget, DetailPoint, TraceKind, TracePoint,
};
pub use partial::{PartialSchedule, StepOutcome};
pub use portfolio::Portfolio;
pub use reliable::{
    plan_repeats, solve_anytime_reliable, ReliableOutcome, RepeatLedger, MAX_REPEAT,
};
pub use repair::{reschedule, reschedule_cached, ChurnDelta, RepairOutcome};

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_dutycycle::{AlwaysAwake, WindowedRandom};
    use wsn_geom::Point;
    use wsn_interference::ConflictGraphBuilder;
    use wsn_phy::{
        ConflictModel, MultiChannel, PhyModelSpec, ProtocolModel, SinrModel, SinrParams,
    };
    use wsn_topology::{deploy, NodeId, Topology};

    fn line(n: usize) -> Topology {
        Topology::unit_disk(
            (0..n).map(|i| Point::new(i as f64 * 0.8, 0.0)).collect(),
            1.0,
        )
    }

    #[test]
    fn greedy_seed_verifies_on_paper_instances() {
        for seed in 0..3u64 {
            let (topo, src) = deploy::SyntheticDeployment::paper(150).sample(seed);
            let cfg = AnytimeConfig {
                budget: Budget::Iterations(0),
                ..AnytimeConfig::default()
            };
            let out = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg);
            out.schedule.verify(&topo, &AlwaysAwake).unwrap();
            assert_eq!(out.latency, out.schedule.latency());
            assert_eq!(out.trace.first().unwrap().latency, out.latency);
        }
    }

    #[test]
    fn search_improves_or_matches_seed_and_trace_is_monotone() {
        let (topo, src) = deploy::SyntheticDeployment::paper(200).sample(11);
        let cfg = AnytimeConfig {
            budget: Budget::Iterations(30_000),
            ..AnytimeConfig::default()
        };
        let out = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg);
        out.schedule.verify(&topo, &AlwaysAwake).unwrap();
        assert!(!out.trace.is_empty());
        for pair in out.trace.windows(2) {
            assert!(pair[1].latency < pair[0].latency, "trace must improve");
            assert!(pair[1].elapsed_ms >= pair[0].elapsed_ms);
        }
        assert_eq!(out.trace.last().unwrap().latency, out.latency);
        // The detail trace sees every candidate, not only incumbents: with
        // thousands of passes it must be strictly richer than the
        // incumbent trace.
        assert!(out.detail.len() > out.trace.len());
        assert!(out
            .detail
            .iter()
            .any(|d| matches!(d.kind, TraceKind::PassBest | TraceKind::RestartSalvage)));
    }

    #[test]
    fn iteration_budget_is_deterministic() {
        let (topo, src) = deploy::SyntheticDeployment::paper(120).sample(5);
        let cfg = AnytimeConfig {
            budget: Budget::Iterations(10_000),
            ..AnytimeConfig::default()
        };
        let a = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg);
        let b = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.moves, b.moves);
        assert_eq!(a.passes, b.passes);
        assert_eq!(
            a.schedule.entries.len(),
            b.schedule.entries.len(),
            "same seed + iteration budget must be bit-reproducible"
        );
        for (ea, eb) in a.schedule.entries.iter().zip(&b.schedule.entries) {
            assert_eq!(ea.slot, eb.slot);
            assert_eq!(ea.senders, eb.senders);
        }
    }

    #[test]
    fn duty_cycle_schedules_verify() {
        for seed in 0..2u64 {
            let (topo, src) = deploy::SyntheticDeployment::paper(90).sample(seed);
            let wake = WindowedRandom::new(topo.len(), 8, seed ^ 0x5eed);
            let cfg = AnytimeConfig {
                budget: Budget::Iterations(8_000),
                ..AnytimeConfig::default()
            };
            let out = solve_anytime(&topo, src, &wake, &ProtocolModel, &cfg);
            out.schedule.verify(&topo, &wake).unwrap();
        }
    }

    #[test]
    fn sinr_and_multichannel_schedules_verify() {
        let (topo, src) = deploy::SyntheticDeployment::paper(100).sample(3);
        let cfg = AnytimeConfig {
            budget: Budget::Iterations(6_000),
            ..AnytimeConfig::default()
        };
        let sinr = SinrModel::new(SinrParams::calibrated(topo.radius(), 3.0, 1.5), &topo);
        let out = solve_anytime(&topo, src, &AlwaysAwake, &sinr, &cfg);
        out.schedule
            .verify_with_model(&topo, &AlwaysAwake, &sinr)
            .unwrap();

        let multi = MultiChannel::new(ProtocolModel, 3);
        let out = solve_anytime(&topo, src, &AlwaysAwake, &multi, &cfg);
        out.schedule
            .verify_with_model(&topo, &AlwaysAwake, &multi)
            .unwrap();

        let spec = PhyModelSpec::protocol().with_channels(2).build(&topo);
        let out = solve_anytime(&topo, src, &AlwaysAwake, &spec, &cfg);
        out.schedule
            .verify_with_model(&topo, &AlwaysAwake, &spec)
            .unwrap();
    }

    #[test]
    fn line_network_reaches_the_depth_bound() {
        // On a path the BFS-depth lower bound is achievable; the search
        // should find it and stop early with optimality proven.
        let topo = line(12);
        let cfg = AnytimeConfig {
            budget: Budget::Iterations(20_000),
            ..AnytimeConfig::default()
        };
        let out = solve_anytime(&topo, NodeId(0), &AlwaysAwake, &ProtocolModel, &cfg);
        out.schedule.verify(&topo, &AlwaysAwake).unwrap();
        assert!(out.proved_optimal);
    }

    #[test]
    fn trivial_networks() {
        // Single node: no transmissions, empty trace-compatible outcome.
        let topo1 = Topology::unit_disk(vec![Point::new(0.0, 0.0)], 1.0);
        let out = solve_anytime(
            &topo1,
            NodeId(0),
            &AlwaysAwake,
            &ProtocolModel,
            &AnytimeConfig::default(),
        );
        assert!(out.schedule.entries.is_empty());
        assert_eq!(out.latency, 0);
        // Two nodes: exactly one transmission.
        let topo2 = line(2);
        let out = solve_anytime(
            &topo2,
            NodeId(0),
            &AlwaysAwake,
            &ProtocolModel,
            &AnytimeConfig::default(),
        );
        assert_eq!(out.latency, 1);
        assert!(out.proved_optimal);
    }

    #[test]
    fn partial_schedule_move_costs_match_brute_force() {
        let (topo, src) = deploy::SyntheticDeployment::paper(80).sample(2);
        let cfg = AnytimeConfig {
            budget: Budget::Iterations(0),
            ..AnytimeConfig::default()
        };
        let out = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg);
        let mut builder = ConflictGraphBuilder::new();
        let partial =
            PartialSchedule::from_schedule(&out.schedule, &topo, &ProtocolModel, &mut builder);
        let start = out.schedule.start;
        let end = out.schedule.completion_slot();
        // Delta-evaluated move costs must equal a from-scratch recount of
        // live-deadline partners at the target slot.
        for i in 0..partial.relays().len().min(20) {
            for t in start + 1..=end {
                let got = partial.move_cost(i, t);
                let brute = (0..partial.relays().len())
                    .filter(|&j| j != i && partial.slot_of(j) == Some(t))
                    .filter(|&j| {
                        let u = partial.relays()[i];
                        let v = partial.relays()[j];
                        let mut wit = Vec::new();
                        ProtocolModel.collect_witnesses(&topo, u, v, &mut wit);
                        wit.iter()
                            .any(|&w| t <= out.schedule.receive_slot[w as usize])
                    })
                    .count() as u32;
                assert_eq!(got, brute, "relay {i} slot {t}");
            }
        }
    }
}
