//! Loss-aware scheduling on top of the anytime tier: plan per-entry repeat
//! counts so every node's delivery bound reaches `1 − ε`, then compress the
//! retransmissions the probability mass doesn't demand.
//!
//! The lossless anytime search ([`solve_anytime`]) already minimizes the
//! entry count — fewer serving hops means fewer deliveries to harden, so
//! its output is exactly the right substrate for reliability planning.
//! [`solve_anytime_reliable`] composes three stages on it:
//!
//! 1. **Plan** ([`plan_repeats`]): replay the schedule once to extract the
//!    serving tree (who informs whom, resolved by the real
//!    [`ConflictModel`] per channel group, so the tree is exactly the one
//!    `verify_with_model` would execute), then give every delivery a
//!    per-hop reliability target `θ = (1−ε)^(1/depth)` and each entry the
//!    repeat count its weakest delivery demands,
//!    `r = ⌈ln(1−θ)/ln(1−q)⌉`. The entry ranges are re-timed so occupied
//!    slot ranges stay disjoint and every sender is awake in its entry's
//!    first slot — the legalizer's admission conditions, extended to
//!    repeat slots (a repeat slot where a sender's duty cycle is off
//!    simply doesn't fire and is excluded from the probability mass).
//! 2. **Compress** ([`RepeatLedger`]): the per-hop target overprovisions
//!    every subtree shallower than the deepest one. The ledger caches the
//!    serving tree, each node's delivery bound and each entry's demand
//!    list, so trying to shave one repeat off an entry delta-evaluates
//!    against only the affected subtrees — O(degree) work per touched
//!    node — instead of a full O(V+E) profile recompute. Decrements only
//!    consume slack, never create it, so one ascending pass with per-entry
//!    fixpoints is a complete greedy trim.
//! 3. **Escalate** (safety net): one exact profile recompute; while some
//!    node still misses the target (duty-cycled repeat slots can deliver
//!    fewer awake attempts than planned), bump the weakest delivery on its
//!    serving path and re-time. Under [`AlwaysAwake`]-style wakes the plan
//!    is exact and this loop is a no-op.
//!
//! The result always verifies under the conflict model; whether the `1−ε`
//! target was actually reached is reported (`meets_target`) rather than
//! panicked on, because a hard link (delivery probability near zero) can
//! make the target unreachable at any repeat cap.
//!
//! [`AlwaysAwake`]: wsn_dutycycle::AlwaysAwake

use mlbs_core::{ReliabilityReport, Schedule};
use wsn_bitset::NodeSet;
use wsn_dutycycle::{Slot, WakeSchedule};
use wsn_phy::ConflictModel;
use wsn_topology::{LinkQuality, NodeId, Topology};

use crate::driver::{solve_anytime, AnytimeConfig, AnytimeOutcome};

/// Hard cap on a single entry's repeat count. A delivery that cannot reach
/// its per-hop target within the cap (delivery probability ≈ 0) is planned
/// at the cap and reported as missing the target instead of ballooning the
/// schedule without bound.
pub const MAX_REPEAT: u32 = 24;

/// Slack below which the retime alignment loop gives up (pathological
/// duty cycles with no common awake slot).
const ALIGN_CAP: u32 = 10_000;

/// Result of [`solve_anytime_reliable`].
#[derive(Clone, Debug)]
pub struct ReliableOutcome {
    /// The reliability-planned schedule (always verifies under the model).
    pub schedule: Schedule,
    /// Delivery bounds and aggregate metrics of `schedule`.
    pub report: ReliabilityReport,
    /// The lossless anytime outcome the plan was built on.
    pub base: AnytimeOutcome,
    /// `true` when every node's delivery bound reaches `1 − ε`.
    pub meets_target: bool,
    /// Occupied slots removed by the ledger trim (plan minus final).
    pub trimmed_slots: u64,
}

/// The serving tree a schedule induces when replayed under a conflict
/// model: for every non-source node, the entry and sender credited with
/// informing it.
struct ServingTree {
    /// Serving sender per node (`None` for the source / unreached nodes).
    parent: Vec<Option<u32>>,
    /// Serving entry index per node (`usize::MAX` for source/unreached).
    entry_of: Vec<usize>,
    /// Delivery probability of the serving link.
    q_in: Vec<f64>,
    /// Children per node under the serving-tree parent relation.
    children: Vec<Vec<u32>>,
    /// Serving-tree depth (0 for the source).
    depth: Vec<u32>,
}

/// Replays `schedule` exactly as verification does and returns the
/// product-form delivery bound plus the serving tree behind it. Attempts
/// per delivery count the *awake* occupied slots of the serving sender.
fn tree_profile<S: WakeSchedule, M: ConflictModel>(
    schedule: &Schedule,
    topo: &Topology,
    wake: &S,
    model: &M,
    quality: &LinkQuality,
) -> (Vec<f64>, ServingTree) {
    let n = topo.len();
    let mut p = vec![0.0f64; n];
    p[schedule.source.idx()] = 1.0;
    let mut tree = ServingTree {
        parent: vec![None; n],
        entry_of: vec![usize::MAX; n],
        q_in: vec![1.0; n],
        children: vec![Vec::new(); n],
        depth: vec![0; n],
    };
    let mut informed = NodeSet::new(n);
    informed.insert(schedule.source.idx());

    for (ei, entry) in schedule.entries.iter().enumerate() {
        let end = schedule.entry_end(ei);
        let attempts: Vec<u32> = entry
            .senders
            .iter()
            .map(|&u| {
                let mut r = 0u32;
                let mut t = entry.slot;
                while t <= end {
                    if wake.can_send(u.idx(), t) {
                        r += 1;
                    }
                    t += 1;
                }
                r.max(1)
            })
            .collect();

        let uninformed = informed.complement();
        let mut channels: Vec<u8> = Vec::new();
        for i in 0..entry.senders.len() {
            let c = entry.channel_of(i);
            if !channels.contains(&c) {
                channels.push(c);
            }
        }
        let mut newly: Vec<usize> = Vec::new();
        for &c in &channels {
            let mut senders = NodeSet::new(n);
            for (i, &u) in entry.senders.iter().enumerate() {
                if entry.channel_of(i) == c {
                    senders.insert(u.idx());
                }
            }
            let outcome = model.resolve_receptions(topo, &senders, &uninformed);
            for w in outcome.received.iter() {
                let mut best: Option<(f64, u32, f64, u32)> = None; // (bound, sender, q, attempts)
                for (i, &u) in entry.senders.iter().enumerate() {
                    if entry.channel_of(i) != c || !topo.adjacent(u, NodeId(w as u32)) {
                        continue;
                    }
                    let q = quality.delivery(topo, u, NodeId(w as u32));
                    let bound = p[u.idx()] * (1.0 - (1.0 - q).powi(attempts[i] as i32));
                    let better = match best {
                        None => true,
                        Some((b, s, _, _)) => bound > b || (bound == b && u.0 < s),
                    };
                    if better {
                        best = Some((bound, u.0, q, attempts[i]));
                    }
                }
                if let Some((bound, u, q, _)) = best {
                    if bound > p[w] {
                        p[w] = bound;
                        tree.parent[w] = Some(u);
                        tree.entry_of[w] = ei;
                        tree.q_in[w] = q;
                        tree.depth[w] = tree.depth[u as usize] + 1;
                    }
                    newly.push(w);
                }
            }
        }
        for w in newly {
            informed.insert(w);
        }
    }
    for w in 0..n {
        if let Some(u) = tree.parent[w] {
            tree.children[u as usize].push(w as u32);
        }
    }
    (p, tree)
}

/// Smallest repeat count whose cumulative success reaches the per-hop
/// target `theta` on a link of delivery probability `q`, capped.
fn needed_repeats(q: f64, theta: f64) -> u32 {
    if q >= theta {
        return 1;
    }
    if q <= 0.0 || theta >= 1.0 {
        return MAX_REPEAT;
    }
    let r = ((1.0 - theta).ln() / (1.0 - q).ln()).ceil();
    if !r.is_finite() || r >= f64::from(MAX_REPEAT) {
        MAX_REPEAT
    } else {
        (r as u32).max(1)
    }
}

/// Re-times entry slots so occupied ranges `[slot, slot+repeat)` are
/// disjoint and every sender is awake in its entry's first slot, pulling
/// entries as early as those constraints allow (entry order — and with it
/// the informedness replay — is preserved; slot values carry no other
/// meaning for validity). Refreshes `start`.
fn retime<S: WakeSchedule>(schedule: &mut Schedule, wake: &S) {
    let mut prev_end: Option<Slot> = None;
    for i in 0..schedule.entries.len() {
        let mut t = match prev_end {
            None => schedule.entries[i].slot,
            Some(p) => p + 1,
        };
        let mut spins = 0u32;
        loop {
            let aligned = schedule.entries[i]
                .senders
                .iter()
                .map(|&u| wake.next_send(u.idx(), t))
                .max()
                .unwrap_or(t);
            if aligned == t || spins >= ALIGN_CAP {
                break;
            }
            t = aligned;
            spins += 1;
        }
        schedule.entries[i].slot = t;
        prev_end = Some(t + Slot::from(schedule.repeat_of(i).max(1)) - 1);
    }
    if let Some(first) = schedule.entries.first() {
        schedule.start = first.slot;
    }
}

/// Rewrites `receive_slot` from the serving tree (each node informed at
/// its serving entry's first slot, the source at `start`).
fn refresh_receive_slots(schedule: &mut Schedule, tree: &ServingTree) {
    for w in 0..schedule.receive_slot.len() {
        schedule.receive_slot[w] = match tree.entry_of.get(w) {
            Some(&ei) if ei != usize::MAX => schedule.entries[ei].slot,
            _ => schedule.start,
        };
    }
}

/// Exact repair loop: recompute the profile, and while some node misses
/// the target, bump the weakest delivery on its serving path (respecting
/// [`MAX_REPEAT`]) and re-time. Returns whether the target was reached,
/// leaving `schedule` re-timed with `receive_slot` refreshed either way.
fn escalate<S: WakeSchedule, M: ConflictModel>(
    schedule: &mut Schedule,
    topo: &Topology,
    wake: &S,
    model: &M,
    quality: &LinkQuality,
    epsilon: f64,
) -> bool {
    let target = 1.0 - epsilon;
    let rounds = schedule.entries.len() as u64 * u64::from(MAX_REPEAT) + 8;
    for _ in 0..rounds {
        retime(schedule, wake);
        let (p, tree) = tree_profile(schedule, topo, wake, model, quality);
        let (mut min_p, mut min_w) = (1.0f64, schedule.source.idx());
        for (w, &pw) in p.iter().enumerate() {
            if pw < min_p {
                min_p = pw;
                min_w = w;
            }
        }
        if min_p + 1e-12 >= target {
            refresh_receive_slots(schedule, &tree);
            return true;
        }
        // Weakest bumpable delivery on the failing node's serving path.
        let mut bump: Option<(f64, usize)> = None;
        let mut w = min_w;
        while let Some(u) = tree.parent[w] {
            let ei = tree.entry_of[w];
            if schedule.repeat_of(ei) < MAX_REPEAT {
                let r = schedule.repeat_of(ei);
                let success = 1.0 - (1.0 - tree.q_in[w]).powi(r as i32);
                if bump.is_none_or(|(s, _)| success < s) {
                    bump = Some((success, ei));
                }
            }
            w = u as usize;
        }
        let Some((_, ei)) = bump else {
            refresh_receive_slots(schedule, &tree);
            return false; // every entry on the path is at the cap
        };
        if schedule.repeats.is_empty() {
            schedule.repeats = vec![1; schedule.entries.len()];
        }
        schedule.repeats[ei] += 1;
    }
    let (_, tree) = tree_profile(schedule, topo, wake, model, quality);
    refresh_receive_slots(schedule, &tree);
    false
}

/// Plans per-entry repeat counts for `schedule` so every node's delivery
/// bound reaches `1 − ε` under `quality` (see the module docs), re-timing
/// the entries to make room. Returns the input unchanged (bit-identical,
/// `repeats` empty) when no link demands a retransmission — in particular
/// for lossless quality.
pub fn plan_repeats<S: WakeSchedule, M: ConflictModel>(
    schedule: &Schedule,
    topo: &Topology,
    wake: &S,
    model: &M,
    quality: &LinkQuality,
    epsilon: f64,
) -> Schedule {
    if schedule.entries.is_empty() {
        return schedule.clone();
    }
    let (_, tree) = tree_profile(schedule, topo, wake, model, quality);
    let depth = tree.depth.iter().copied().max().unwrap_or(1).max(1);
    let theta = (1.0 - epsilon).powf(1.0 / f64::from(depth));
    let mut repeats = vec![1u32; schedule.entries.len()];
    for w in 0..topo.len() {
        let ei = tree.entry_of[w];
        if ei == usize::MAX {
            continue;
        }
        repeats[ei] = repeats[ei].max(needed_repeats(tree.q_in[w], theta));
    }
    if repeats.iter().all(|&r| r == 1) && schedule.repeats.is_empty() {
        return schedule.clone();
    }
    let mut planned = schedule.clone();
    planned.repeats = repeats;
    escalate(&mut planned, topo, wake, model, quality, epsilon);
    planned
}

/// The repeat-compression ledger: the serving tree of a planned schedule
/// with per-node delivery bounds and per-entry demand lists cached, so a
/// candidate "shave one repeat off entry `e`" move is evaluated against
/// only the subtrees hanging off `e`'s deliveries — O(degree) per touched
/// node — instead of a full profile recompute. Decrements never *create*
/// slack, so a single ascending pass with per-entry fixpoints
/// ([`RepeatLedger::compress`]) is a complete greedy trim.
///
/// The cached bounds equate attempts with repeat counts, exact whenever
/// every sender is awake across its entry range (`AlwaysAwake`); the
/// caller re-checks the result exactly afterwards
/// ([`solve_anytime_reliable`] escalates on any shortfall).
pub struct RepeatLedger {
    repeats: Vec<u32>,
    /// Nodes served by each entry.
    served: Vec<Vec<u32>>,
    parent: Vec<Option<u32>>,
    children: Vec<Vec<u32>>,
    q_in: Vec<f64>,
    entry_of: Vec<usize>,
    /// Current delivery bound per node under `repeats`.
    p: Vec<f64>,
    target: f64,
}

impl RepeatLedger {
    /// Builds the ledger for a planned schedule.
    pub fn build<S: WakeSchedule, M: ConflictModel>(
        schedule: &Schedule,
        topo: &Topology,
        wake: &S,
        model: &M,
        quality: &LinkQuality,
        epsilon: f64,
    ) -> RepeatLedger {
        let (_, tree) = tree_profile(schedule, topo, wake, model, quality);
        let repeats: Vec<u32> = (0..schedule.entries.len())
            .map(|i| schedule.repeat_of(i))
            .collect();
        let mut served = vec![Vec::new(); schedule.entries.len()];
        for w in 0..topo.len() {
            if tree.entry_of[w] != usize::MAX {
                served[tree.entry_of[w]].push(w as u32);
            }
        }
        // Recompute bounds in repeats-space (attempts == repeats) so the
        // delta algebra below is self-consistent.
        let mut p = vec![0.0f64; topo.len()];
        p[schedule.source.idx()] = 1.0;
        let mut order: Vec<usize> = (0..topo.len()).collect();
        order.sort_unstable_by_key(|&w| tree.depth[w]);
        for w in order {
            if let Some(u) = tree.parent[w] {
                let r = repeats[tree.entry_of[w]];
                p[w] = p[u as usize] * (1.0 - (1.0 - tree.q_in[w]).powi(r as i32));
            }
        }
        RepeatLedger {
            repeats,
            served,
            parent: tree.parent,
            children: tree.children,
            q_in: tree.q_in,
            entry_of: tree.entry_of,
            p,
            target: 1.0 - epsilon,
        }
    }

    /// Total occupied slots under the current repeat counts.
    pub fn expanded_slots(&self) -> u64 {
        self.repeats.iter().map(|&r| u64::from(r)).sum()
    }

    /// Weakest delivery bound in the ledger's repeats-space accounting.
    pub fn min_delivery(&self) -> f64 {
        self.p.iter().cloned().fold(1.0, f64::min)
    }

    /// The current repeat counts (parallel to the schedule's entries).
    pub fn repeats(&self) -> &[u32] {
        &self.repeats
    }

    /// Attempts to shave one repeat off entry `e`: delta-evaluates the
    /// bound over the subtrees hanging off `e`'s deliveries and commits
    /// when every affected node stays at or above the target. Returns
    /// whether the decrement was taken.
    pub fn try_decrement(&mut self, e: usize) -> bool {
        let r = self.repeats[e];
        if r <= 1 {
            return false;
        }
        // Phase 1: check. Each served node's whole subtree scales by the
        // ratio of its delivery's success at r−1 vs r.
        let mut ratios: Vec<f64> = Vec::with_capacity(self.served[e].len());
        for &w in &self.served[e] {
            let q = self.q_in[w as usize];
            let s_old = 1.0 - (1.0 - q).powi(r as i32);
            let s_new = 1.0 - (1.0 - q).powi(r as i32 - 1);
            if s_old <= 0.0 {
                return false;
            }
            let ratio = s_new / s_old;
            ratios.push(ratio);
            let mut stack = vec![w];
            while let Some(x) = stack.pop() {
                if self.p[x as usize] * ratio + 1e-12 < self.target {
                    return false;
                }
                stack.extend_from_slice(&self.children[x as usize]);
            }
        }
        // Phase 2: commit.
        for (&w, &ratio) in self.served[e].iter().zip(&ratios) {
            let mut stack = vec![w];
            while let Some(x) = stack.pop() {
                self.p[x as usize] *= ratio;
                stack.extend_from_slice(&self.children[x as usize]);
            }
        }
        self.repeats[e] = r - 1;
        true
    }

    /// Greedy complete trim: one ascending pass, shaving each entry to its
    /// fixpoint. Returns the number of slots removed.
    pub fn compress(&mut self) -> u64 {
        let mut removed = 0u64;
        for e in 0..self.repeats.len() {
            while self.try_decrement(e) {
                removed += 1;
            }
        }
        removed
    }

    /// Repeat demand the ledger currently records for node `w`'s serving
    /// delivery (`None` for the source / unreached nodes) — the O(1)
    /// lookup relocation deltas are built from.
    pub fn demand_of(&self, w: NodeId) -> Option<(usize, u32)> {
        let ei = *self.entry_of.get(w.idx())?;
        (ei != usize::MAX).then(|| (ei, self.repeats[ei]))
    }

    /// Writes the ledger's repeat counts back onto `schedule` (collapsing
    /// to the empty all-ones form when no entry repeats).
    pub fn apply(&self, schedule: &mut Schedule) {
        if self.repeats.iter().all(|&r| r == 1) {
            schedule.repeats = Vec::new();
        } else {
            schedule.repeats = self.repeats.clone();
        }
    }

    /// The serving parent of `w`, if any (diagnostics / repair hooks).
    pub fn parent_of(&self, w: NodeId) -> Option<NodeId> {
        self.parent.get(w.idx()).copied().flatten().map(NodeId)
    }
}

/// Loss-aware anytime scheduling: run the lossless anytime search, plan
/// repeat counts to reach the `1 − ε` delivery target, trim the slack, and
/// report the resulting delivery profile. See the module docs for the
/// stage breakdown.
///
/// The returned schedule always verifies under `model`; `meets_target`
/// says whether the reliability bound was actually reached (a
/// near-zero-quality link can make it unreachable at the repeat cap).
///
/// # Panics
///
/// Panics when the topology is disconnected (inherited from
/// [`solve_anytime`]).
pub fn solve_anytime_reliable<S: WakeSchedule, M: ConflictModel>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    model: &M,
    quality: &LinkQuality,
    epsilon: f64,
    config: &AnytimeConfig,
) -> ReliableOutcome {
    let mut solve_span = wsn_obs::span("reliable.solve");
    let solve_started = wsn_obs::enabled().then(std::time::Instant::now);
    let base = solve_anytime(topo, source, wake, model, config);
    let planned = plan_repeats(&base.schedule, topo, wake, model, quality, epsilon);
    let planned_budget = planned.slot_budget();

    let mut schedule = planned;
    if !schedule.repeats.is_empty() {
        let mut ledger = RepeatLedger::build(&schedule, topo, wake, model, quality, epsilon);
        if ledger.compress() > 0 {
            ledger.apply(&mut schedule);
        }
        // Exact re-check (and duty-cycle repair) of the trimmed plan.
        escalate(&mut schedule, topo, wake, model, quality, epsilon);
    }

    let per_node = schedule
        .delivery_profile(topo, wake, model, quality)
        .expect("planned schedule must verify");
    let mut min_delivery = 1.0f64;
    let mut sum = 0.0f64;
    for &pw in &per_node {
        sum += pw;
        min_delivery = min_delivery.min(pw);
    }
    let meets_target = min_delivery + 1e-12 >= 1.0 - epsilon;
    let report = ReliabilityReport {
        min_delivery,
        mean_delivery: sum / per_node.len().max(1) as f64,
        per_node,
        expanded_latency: schedule.latency(),
        slot_budget: schedule.slot_budget(),
    };
    if let Some(t0) = solve_started {
        wsn_obs::counter_add("reliable.solves", 1);
        if meets_target {
            wsn_obs::counter_add("reliable.targets_met", 1);
        }
        wsn_obs::counter_add(
            "reliable.trimmed_slots",
            planned_budget.saturating_sub(schedule.slot_budget()),
        );
        wsn_obs::observe_us("reliable.wall_us", t0.elapsed().as_micros() as u64);
        wsn_obs::observe_us("reliable.slot_budget", schedule.slot_budget());
        solve_span.set_value(schedule.latency() as i64);
    }
    ReliableOutcome {
        trimmed_slots: planned_budget.saturating_sub(schedule.slot_budget()),
        meets_target,
        base,
        schedule,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Budget;
    use wsn_dutycycle::AlwaysAwake;
    use wsn_phy::{MultiChannel, ProtocolModel, SinrModel, SinrParams};
    use wsn_topology::{deploy, LinkQualityParams};

    fn quick_cfg() -> AnytimeConfig {
        AnytimeConfig {
            budget: Budget::Iterations(2_000),
            ..AnytimeConfig::default()
        }
    }

    #[test]
    fn lossless_quality_is_bit_identical_to_base() {
        let (topo, src) = deploy::SyntheticDeployment::paper(120).sample(3);
        let q = LinkQuality::uniform(&topo, 1.0);
        let out = solve_anytime_reliable(
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &q,
            0.01,
            &quick_cfg(),
        );
        assert!(out.schedule.repeats.is_empty());
        assert_eq!(out.schedule.entries, out.base.schedule.entries);
        assert_eq!(out.schedule.start, out.base.schedule.start);
        assert!(out.meets_target);
        assert_eq!(out.report.min_delivery, 1.0);
    }

    #[test]
    fn lossy_plan_reaches_target_and_verifies() {
        let (topo, src) = deploy::SyntheticDeployment::paper(150).sample(7);
        let q = LinkQuality::synthetic(&topo, &LinkQualityParams::default(), 42);
        let eps = 0.01;
        let out = solve_anytime_reliable(
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &q,
            eps,
            &quick_cfg(),
        );
        assert!(out.meets_target, "min {}", out.report.min_delivery);
        out.schedule
            .verify_reliability(&topo, &AlwaysAwake, &ProtocolModel, &q, eps)
            .unwrap();
        assert!(
            out.schedule.slot_budget()
                <= u64::from(MAX_REPEAT) * out.base.schedule.entries.len() as u64
        );

        // Under a mild-loss regime (every link ≥ 97% delivery) the per-hop
        // demand stays ≤ 2 and the planned budget fits in 2× the lossless
        // slot count — the bar the reliability bench pins.
        let mild = LinkQualityParams {
            loss_near: 0.005,
            loss_far: 0.03,
            gamma: 1.0,
            flaky_fraction: 0.0,
            flaky_extra_loss: 0.0,
        };
        let q = LinkQuality::synthetic(&topo, &mild, 42);
        let out = solve_anytime_reliable(
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &q,
            eps,
            &quick_cfg(),
        );
        assert!(out.meets_target, "min {}", out.report.min_delivery);
        assert!(
            out.schedule.slot_budget() <= 2 * out.base.schedule.entries.len() as u64,
            "budget {} vs {} entries",
            out.schedule.slot_budget(),
            out.base.schedule.entries.len()
        );
    }

    #[test]
    fn trim_removes_overprovisioned_repeats() {
        let (topo, src) = deploy::SyntheticDeployment::paper(150).sample(9);
        let q = LinkQuality::synthetic(&topo, &LinkQualityParams::default(), 11);
        let out = solve_anytime_reliable(
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &q,
            0.01,
            &quick_cfg(),
        );
        // The uniform per-hop target overprovisions shallow subtrees on
        // any multi-depth network; the ledger must claw some of it back.
        assert!(out.trimmed_slots > 0, "expected trim on a lossy network");
        // And trimming must not break the target.
        assert!(out.meets_target);
    }

    #[test]
    fn composes_with_sinr_and_multichannel() {
        let (topo, src) = deploy::SyntheticDeployment::paper(100).sample(5);
        let q = LinkQuality::synthetic(&topo, &LinkQualityParams::default(), 5);
        let eps = 0.02;
        let sinr = SinrModel::new(SinrParams::degenerate(&topo, 3.0), &topo);
        let out = solve_anytime_reliable(&topo, src, &AlwaysAwake, &sinr, &q, eps, &quick_cfg());
        out.schedule
            .verify_reliability(&topo, &AlwaysAwake, &sinr, &q, eps)
            .unwrap();
        let multi = MultiChannel::new(ProtocolModel, 2);
        let out = solve_anytime_reliable(&topo, src, &AlwaysAwake, &multi, &q, eps, &quick_cfg());
        out.schedule
            .verify_reliability(&topo, &AlwaysAwake, &multi, &q, eps)
            .unwrap();
    }

    #[test]
    fn plan_repeats_is_identity_without_demand() {
        let (topo, src) = deploy::SyntheticDeployment::paper(80).sample(1);
        let base = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &quick_cfg());
        let q = LinkQuality::uniform(&topo, 1.0);
        let planned = plan_repeats(
            &base.schedule,
            &topo,
            &AlwaysAwake,
            &ProtocolModel,
            &q,
            0.01,
        );
        assert!(planned.repeats.is_empty());
        assert_eq!(planned.entries, base.schedule.entries);
    }
}
