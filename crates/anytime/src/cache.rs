//! Warm-start schedule cache: remember the best schedule per
//! `(topology token, model fingerprint, source)` and feed it back to the
//! legalizer as hints on the next solve of the same instance.
//!
//! The anytime driver's cold start pays a full greedy construction plus
//! the whole climb back to the incumbent; a churn re-run or a repeated
//! sweep point pays it again for an answer it already had. A cache hit
//! skips the climb: the previous incumbent goes in as the *first*
//! legalization's hints, so the chain starts at (not near) the old
//! incumbent for the price of one legalizer replay — well under 10 % of a
//! cold run's wall time on the bench scales.
//!
//! Keying on [`Topology::token`] (process-unique per construction) makes
//! hits conservative by design: a freshly sampled topology can never
//! collide with a cached one, only a *held* topology re-solved under the
//! same model and source hits. The wake schedule is deliberately absent
//! from the key — the legalizer silently skips hinted senders that are
//! asleep or stale, so a hint recorded under a different duty-cycle
//! regime degrades gracefully instead of corrupting anything.

use mlbs_core::Schedule;
use std::collections::HashMap;
use wsn_dutycycle::WakeSchedule;
use wsn_phy::ConflictModel;
use wsn_topology::{NodeId, Topology};

use crate::driver::{run_chain, AnytimeConfig, AnytimeOutcome, ChainCtx};

/// Best-so-far schedules keyed on `(topology token, model fingerprint,
/// source)`. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct ScheduleCache {
    map: HashMap<(u64, u64, u32), Schedule>,
    hits: u64,
    misses: u64,
}

impl ScheduleCache {
    /// An empty cache.
    pub fn new() -> ScheduleCache {
        ScheduleCache::default()
    }

    /// The cached incumbent for `(topo, model, source)`, if any. Counts a
    /// hit or a miss.
    pub fn lookup<M: ConflictModel>(
        &mut self,
        topo: &Topology,
        model: &M,
        source: NodeId,
    ) -> Option<Schedule> {
        let key = (topo.token(), model.fingerprint(), source.0);
        match self.map.get(&key) {
            Some(s) => {
                self.hits += 1;
                wsn_obs::counter_add("cache.hits", 1);
                // Warm-start depth: the latency the chain gets to start
                // from instead of a cold greedy seed.
                wsn_obs::observe_us("cache.warm_start_depth_slots", s.latency());
                Some(s.clone())
            }
            None => {
                self.misses += 1;
                wsn_obs::counter_add("cache.misses", 1);
                None
            }
        }
    }

    /// Records `schedule` for `(topo, model, source)`, keeping whichever
    /// of the stored and offered schedules has the lower latency.
    pub fn observe<M: ConflictModel>(
        &mut self,
        topo: &Topology,
        model: &M,
        source: NodeId,
        schedule: &Schedule,
    ) {
        let key = (topo.token(), model.fingerprint(), source.0);
        match self.map.get_mut(&key) {
            Some(held) => {
                if schedule.latency() < held.latency() {
                    *held = schedule.clone();
                }
            }
            None => {
                self.map.insert(key, schedule.clone());
            }
        }
        wsn_obs::gauge_set("cache.entries", self.map.len() as i64);
    }

    /// Number of cached schedules.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups that found a schedule.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every cached schedule and resets the counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

/// [`solve_anytime`](crate::solve_anytime) with a warm-start cache: a hit
/// seeds the chain's first legalization with the cached incumbent, and the
/// run's best schedule is folded back into the cache either way.
pub fn solve_anytime_cached<S: WakeSchedule, M: ConflictModel>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    model: &M,
    config: &AnytimeConfig,
    cache: &mut ScheduleCache,
) -> AnytimeOutcome {
    let warm = cache.lookup(topo, model, source);
    let out = run_chain(
        topo,
        source,
        wake,
        model,
        config,
        ChainCtx {
            shared: None,
            warm: warm.as_ref(),
            dead: None,
        },
    );
    cache.observe(topo, model, source, &out.schedule);
    out
}
