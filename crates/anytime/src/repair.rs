//! Incremental schedule repair under node churn: [`reschedule`] takes a
//! working schedule plus a churn delta and produces a valid schedule for
//! the surviving network, warm-started from everything the churn did not
//! touch.
//!
//! One dead relay strands its whole serving subtree — but the rest of the
//! schedule is still a perfectly good plan, and at 10k–100k nodes a cold
//! re-solve throws away seconds of search the churn never invalidated.
//! Repair therefore reuses the machinery the anytime tier already has:
//!
//! 1. the dead mask (plus any alive nodes the deaths disconnected) is
//!    threaded through the legalizer and the chain driver — dead nodes
//!    never transmit, are owed no coverage, and stop witnessing conflicts;
//! 2. the old schedule, minus its dead senders, seeds the first
//!    legalization as hints: surviving placements are re-admitted in their
//!    old slots where still legal, and the greedy frontier fill re-serves
//!    exactly the stranded subtree — repair effort scales with the damage,
//!    not the network;
//! 3. the remaining budget runs the ordinary tabu/PARTIALCOL chain under
//!    the mask, so the improving-bound trace continues monotonically from
//!    the repaired seed.
//!
//! The result never loses to re-legalizing from scratch — [`reschedule`]
//! races the warm chain against one cold greedy construction and keeps the
//! better — and always verifies under
//! [`Schedule::verify_covering_with_model`] with the effective mask.
//! [`reschedule_cached`] pulls the pre-churn incumbent out of a
//! [`ScheduleCache`] (repaired schedules are deliberately *not* written
//! back: cache entries must verify on the full topology).

use mlbs_core::Schedule;
use wsn_bitset::NodeSet;
use wsn_dutycycle::WakeSchedule;
use wsn_phy::ConflictModel;
use wsn_topology::{metrics, NodeId, Topology};

use crate::cache::ScheduleCache;
use crate::driver::{run_chain, AnytimeConfig, AnytimeOutcome, Budget, ChainCtx};

/// A churn event batch: the nodes that died since the schedule was built,
/// plus any links whose estimated *quality* drifted.
///
/// Quality changes never invalidate a schedule's *conflict* structure —
/// only its reliability plan — so [`reschedule`] ignores
/// [`degraded_links`](ChurnDelta::degraded_links) when computing the dead
/// mask: a quality-only delta warm-starts from *every* surviving placement
/// (the whole old schedule), and the caller re-plans repeats against the
/// new quality afterwards ([`plan_repeats`](crate::plan_repeats), or
/// `wsn_sim`'s drift-replan driver which does both in one step). The field
/// exists so a drift-triggered repair can carry the estimator's findings
/// through the same delta type deaths already use, instead of forcing a
/// full re-plan.
#[derive(Clone, Debug, Default)]
pub struct ChurnDelta {
    /// Nodes that died (duplicates and already-dead entries are fine).
    pub dead: Vec<NodeId>,
    /// Links whose delivery estimate drifted: `(u, v, new delivery
    /// probability)`. Advisory for conflict repair (the schedule's
    /// structure stays valid); consumed by the reliability re-plan.
    pub degraded_links: Vec<(NodeId, NodeId, f64)>,
}

impl ChurnDelta {
    /// A delta killing exactly the given nodes.
    pub fn deaths(dead: impl IntoIterator<Item = NodeId>) -> ChurnDelta {
        ChurnDelta {
            dead: dead.into_iter().collect(),
            degraded_links: Vec::new(),
        }
    }

    /// A quality-only delta: no deaths, just links whose delivery estimate
    /// moved. [`reschedule`] under such a delta masks nothing and
    /// warm-starts from the complete old schedule — repair cost is one
    /// legalizer replay plus whatever budget the config grants.
    pub fn degradations(links: impl IntoIterator<Item = (NodeId, NodeId, f64)>) -> ChurnDelta {
        ChurnDelta {
            dead: Vec::new(),
            degraded_links: links.into_iter().collect(),
        }
    }

    /// `true` when the delta carries no deaths — only link-quality drift —
    /// so conflict structure is untouched and repair can reuse every
    /// surviving placement.
    pub fn is_quality_only(&self) -> bool {
        self.dead.is_empty() && !self.degraded_links.is_empty()
    }

    /// `true` when the delta carries nothing at all.
    pub fn is_empty(&self) -> bool {
        self.dead.is_empty() && self.degraded_links.is_empty()
    }
}

/// Result of an incremental repair.
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// The full anytime outcome of the repair chain (schedule, improving
    /// trace, move counts). The schedule verifies under
    /// [`Schedule::verify_covering_with_model`] with [`RepairOutcome::mask`].
    pub outcome: AnytimeOutcome,
    /// The effective exclusion mask: the delta's dead nodes plus every
    /// alive node they disconnected from the source.
    pub mask: NodeSet,
    /// Alive nodes no schedule can reach anymore (disconnected by the
    /// deaths); they are in `mask` and excluded from the coverage
    /// obligation — the graceful-degradation part of the contract.
    pub uncovered: Vec<NodeId>,
    /// Nodes the old schedule no longer reaches once its dead senders go
    /// silent (the stranded subtree, including any now-unreachable part).
    pub stranded: usize,
    /// Sender placements of the old schedule that survived the churn and
    /// seeded the repair.
    pub reused: usize,
}

/// Replays `old` with `mask` applied and counts the alive nodes it no
/// longer informs (dead senders skipped, receptions re-resolved by the
/// model — exactly the subtree the repair must re-serve).
fn stranded_under<M: ConflictModel>(
    old: &Schedule,
    topo: &Topology,
    model: &M,
    mask: &NodeSet,
) -> usize {
    let n = topo.len();
    let mut informed = NodeSet::new(n);
    informed.insert(old.source.idx());
    informed.union_with(mask);
    for entry in &old.entries {
        let uninformed = informed.complement();
        let mut channels: Vec<u8> = Vec::new();
        for i in 0..entry.senders.len() {
            let c = entry.channel_of(i);
            if !channels.contains(&c) {
                channels.push(c);
            }
        }
        for &c in &channels {
            let mut senders = NodeSet::new(n);
            for (i, &u) in entry.senders.iter().enumerate() {
                if entry.channel_of(i) == c && !mask.contains(u.idx()) && informed.contains(u.idx())
                {
                    senders.insert(u.idx());
                }
            }
            if senders.is_empty() {
                continue;
            }
            let outcome = model.resolve_receptions(topo, &senders, &uninformed);
            for w in outcome.received.iter() {
                informed.insert(w);
            }
        }
    }
    n - informed.len()
}

/// `old` minus every masked sender (entries emptied by the filter are
/// dropped). Not necessarily a valid schedule — it is only ever used as
/// legalizer hints, which re-check every admission.
fn filter_schedule(old: &Schedule, mask: &NodeSet) -> (Schedule, usize) {
    let mut filtered = Schedule {
        source: old.source,
        start: old.start,
        entries: Vec::new(),
        receive_slot: old.receive_slot.clone(),
        repeats: Vec::new(),
    };
    let mut reused = 0;
    for entry in &old.entries {
        let mut senders = Vec::new();
        let mut channels = Vec::new();
        for (i, &u) in entry.senders.iter().enumerate() {
            if !mask.contains(u.idx()) {
                senders.push(u);
                if !entry.channels.is_empty() {
                    channels.push(entry.channel_of(i));
                }
            }
        }
        if senders.is_empty() {
            continue;
        }
        reused += senders.len();
        filtered.entries.push(mlbs_core::ScheduleEntry {
            slot: entry.slot,
            senders,
            channels,
        });
    }
    (filtered, reused)
}

/// Incremental repair: rebuilds a valid schedule for the network that
/// survives `delta`, warm-started from everything `old` still gets right.
/// See the module docs for the mechanism.
///
/// Degrades gracefully: alive nodes the deaths disconnected are reported
/// in [`RepairOutcome::uncovered`] and dropped from the coverage
/// obligation rather than panicking, and the result never has higher
/// latency than a cold greedy re-legalization under the same mask.
///
/// # Panics
///
/// Panics when the source itself is in the delta — there is nothing to
/// repair *to*; pick a new source and re-solve instead.
pub fn reschedule<S: WakeSchedule, M: ConflictModel>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    model: &M,
    old: &Schedule,
    delta: &ChurnDelta,
    config: &AnytimeConfig,
) -> RepairOutcome {
    let mut repair_span = wsn_obs::span("repair.reschedule");
    let repair_started = wsn_obs::enabled().then(std::time::Instant::now);
    let n = topo.len();
    let mut mask = NodeSet::new(n);
    for &d in &delta.dead {
        assert!(d != source, "the broadcast source died; re-solve instead");
        mask.insert(d.idx());
    }

    // Damage report against the deaths alone: the nodes the old schedule
    // no longer informs once its dead senders go silent.
    let stranded = stranded_under(old, topo, model, &mask);

    // Alive nodes disconnected by the deaths are unreachable by *any*
    // schedule: fold them into the mask and report them.
    let hops = metrics::bfs_hops_masked(topo, source, &mask);
    let mut uncovered = Vec::new();
    for (u, &h) in hops.iter().enumerate() {
        if h == metrics::UNREACHABLE && !mask.contains(u) {
            uncovered.push(NodeId(u as u32));
            mask.insert(u);
        }
    }
    let (filtered, reused) = filter_schedule(old, &mask);

    let warm_started = repair_started.map(|_| std::time::Instant::now());
    let mut outcome = run_chain(
        topo,
        source,
        wake,
        model,
        config,
        ChainCtx {
            shared: None,
            warm: Some(&filtered),
            dead: Some(&mask),
        },
    );
    if let Some(t0) = warm_started {
        wsn_obs::observe_us("repair.warm_us", t0.elapsed().as_micros() as u64);
    }
    // Guarantee "never worse than re-legalizing from scratch": race one
    // cold greedy construction under the same mask.
    let cold_cfg = AnytimeConfig {
        budget: Budget::Iterations(0),
        ..config.clone()
    };
    let cold_started = repair_started.map(|_| std::time::Instant::now());
    let cold = run_chain(
        topo,
        source,
        wake,
        model,
        &cold_cfg,
        ChainCtx {
            shared: None,
            warm: None,
            dead: Some(&mask),
        },
    );
    if let Some(t0) = cold_started {
        wsn_obs::observe_us("repair.cold_us", t0.elapsed().as_micros() as u64);
    }
    let cold_won = cold.latency < outcome.latency;
    if cold_won {
        outcome = cold;
    }
    debug_assert!(outcome
        .schedule
        .verify_covering_with_model(topo, wake, model, Some(&mask))
        .is_ok());
    if let Some(t0) = repair_started {
        // Race outcome: which arm produced the kept schedule. Ties go to
        // the warm chain (it already embeds the cold construction's
        // quality floor via the `<` comparison above).
        wsn_obs::counter_add(
            if cold_won {
                "repair.cold_wins"
            } else {
                "repair.warm_wins"
            },
            1,
        );
        wsn_obs::counter_add("repair.reschedules", 1);
        if delta.is_quality_only() {
            wsn_obs::counter_add("repair.quality_only", 1);
        }
        wsn_obs::counter_add("repair.reused_placements", reused as u64);
        wsn_obs::counter_add("repair.stranded_nodes", stranded as u64);
        wsn_obs::counter_add("repair.uncovered_nodes", uncovered.len() as u64);
        wsn_obs::observe_us("repair.wall_us", t0.elapsed().as_micros() as u64);
        repair_span.set_value(outcome.latency as i64);
    }

    RepairOutcome {
        outcome,
        mask,
        uncovered,
        stranded,
        reused,
    }
}

/// As [`reschedule`], warm-starting from the pre-churn incumbent a
/// [`ScheduleCache`] holds for `(topo, model, source)`. On a cache miss
/// the repair falls back to a cold masked solve (the delta still applies).
/// Repaired schedules are *not* written back — cache entries must verify
/// on the full topology, which a masked schedule deliberately does not.
pub fn reschedule_cached<S: WakeSchedule, M: ConflictModel>(
    cache: &mut ScheduleCache,
    topo: &Topology,
    source: NodeId,
    wake: &S,
    model: &M,
    delta: &ChurnDelta,
    config: &AnytimeConfig,
) -> RepairOutcome {
    match cache.lookup(topo, model, source) {
        Some(old) => reschedule(topo, source, wake, model, &old, delta, config),
        None => {
            // No incumbent to repair: a masked cold solve, reported with an
            // empty reuse footprint.
            let empty = Schedule {
                source,
                start: config.start_from,
                entries: Vec::new(),
                receive_slot: Vec::new(),
                repeats: Vec::new(),
            };
            reschedule(topo, source, wake, model, &empty, delta, config)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::solve_anytime;
    use wsn_dutycycle::AlwaysAwake;
    use wsn_geom::Point;
    use wsn_phy::ProtocolModel;
    use wsn_topology::deploy;

    fn cfg(iters: u64) -> AnytimeConfig {
        AnytimeConfig {
            budget: Budget::Iterations(iters),
            ..AnytimeConfig::default()
        }
    }

    #[test]
    fn repair_after_leaf_death_is_valid_and_reuses_placements() {
        let (topo, src) = deploy::SyntheticDeployment::paper(150).sample(3);
        let base = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg(5_000));
        // Kill a relay that is not the source.
        let victim = base
            .schedule
            .entries
            .last()
            .unwrap()
            .senders
            .iter()
            .copied()
            .find(|&u| u != src)
            .unwrap_or(NodeId(if src.0 == 0 { 1 } else { 0 }));
        let delta = ChurnDelta::deaths([victim]);
        let rep = reschedule(
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &base.schedule,
            &delta,
            &cfg(1_000),
        );
        rep.outcome
            .schedule
            .verify_covering_with_model(&topo, &AlwaysAwake, &ProtocolModel, Some(&rep.mask))
            .unwrap();
        assert!(rep.reused > 0);
        assert!(rep.mask.contains(victim.idx()));
        for pair in rep.outcome.trace.windows(2) {
            assert!(pair[1].latency < pair[0].latency);
        }
    }

    #[test]
    fn disconnection_degrades_gracefully() {
        // Path 0-1-2-3-4: killing 2 strands 3 and 4.
        let topo = Topology::unit_disk((0..5).map(|i| Point::new(i as f64, 0.0)).collect(), 1.0);
        let src = NodeId(0);
        let base = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg(0));
        let rep = reschedule(
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &base.schedule,
            &ChurnDelta::deaths([NodeId(2)]),
            &cfg(0),
        );
        assert_eq!(rep.uncovered, vec![NodeId(3), NodeId(4)]);
        assert_eq!(rep.stranded, 2);
        rep.outcome
            .schedule
            .verify_covering_with_model(&topo, &AlwaysAwake, &ProtocolModel, Some(&rep.mask))
            .unwrap();
        // Only 0→1 is left to schedule.
        assert_eq!(rep.outcome.schedule.entries.len(), 1);
    }

    #[test]
    fn cached_repair_uses_the_incumbent() {
        use crate::cache::solve_anytime_cached;
        let (topo, src) = deploy::SyntheticDeployment::paper(120).sample(8);
        let mut cache = ScheduleCache::new();
        solve_anytime_cached(
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &cfg(2_000),
            &mut cache,
        );
        let victim = NodeId(if src.0 == 0 { 1 } else { 0 });
        let rep = reschedule_cached(
            &mut cache,
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &ChurnDelta::deaths([victim]),
            &cfg(500),
        );
        assert!(rep.reused > 0, "cache hit must seed the repair");
        rep.outcome
            .schedule
            .verify_covering_with_model(&topo, &AlwaysAwake, &ProtocolModel, Some(&rep.mask))
            .unwrap();
    }

    #[test]
    fn quality_only_delta_reuses_every_surviving_placement() {
        let (topo, src) = deploy::SyntheticDeployment::paper(150).sample(6);
        let base = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg(5_000));
        let u = base.schedule.entries[0].senders[0];
        let v = topo.neighbors(u)[0];
        let delta = ChurnDelta::degradations([(u, v, 0.4)]);
        assert!(delta.is_quality_only());
        assert!(!delta.is_empty());
        let rep = reschedule(
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &base.schedule,
            &delta,
            &cfg(0),
        );
        // Nothing died: the mask is empty, nobody is stranded, and every
        // old placement seeds the warm chain.
        assert!(rep.mask.is_empty());
        assert!(rep.uncovered.is_empty());
        assert_eq!(rep.stranded, 0);
        let old_placements: usize = base.schedule.entries.iter().map(|e| e.senders.len()).sum();
        assert_eq!(rep.reused, old_placements);
        // With an Iterations(0) budget the warm chain replays the old
        // schedule; it must not end worse than the incumbent it started
        // from.
        assert!(rep.outcome.latency <= base.latency);
        rep.outcome
            .schedule
            .verify_covering_with_model(&topo, &AlwaysAwake, &ProtocolModel, None)
            .unwrap();
    }

    #[test]
    fn death_constructor_is_unchanged_by_the_quality_field() {
        let delta = ChurnDelta::deaths([NodeId(3), NodeId(5)]);
        assert_eq!(delta.dead, vec![NodeId(3), NodeId(5)]);
        assert!(delta.degraded_links.is_empty());
        assert!(!delta.is_quality_only());
        assert!(ChurnDelta::default().is_empty());
    }

    #[test]
    fn repair_never_loses_to_cold_relegalization() {
        for seed in 0..4u64 {
            let (topo, src) = deploy::SyntheticDeployment::paper(150).sample(seed);
            let base = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg(5_000));
            let victim = NodeId(if src.0 == 0 { 1 } else { 0 });
            let delta = ChurnDelta::deaths([victim]);
            let rep = reschedule(
                &topo,
                src,
                &AlwaysAwake,
                &ProtocolModel,
                &base.schedule,
                &delta,
                &cfg(0),
            );
            let cold = reschedule(
                &topo,
                src,
                &AlwaysAwake,
                &ProtocolModel,
                &Schedule {
                    source: src,
                    start: 1,
                    entries: Vec::new(),
                    receive_slot: Vec::new(),
                    repeats: Vec::new(),
                },
                &delta,
                &cfg(0),
            );
            assert!(rep.outcome.latency <= cold.outcome.latency);
        }
    }
}
