//! The anytime driver: seed greedily, then alternate PARTIALCOL
//! compression passes, TabuCol squash-repair kicks and randomized greedy
//! restarts until the budget runs out, keeping the best verified schedule
//! and an improving-bound trace.
//!
//! [`solve_anytime`] runs one search chain. The same chain body
//! ([`run_chain`]) also powers the parallel [`Portfolio`](crate::Portfolio)
//! — a chain can start from a warm schedule (cache hits) and, under
//! wall-clock budgets, exchange incumbents with sibling chains through a
//! [`SharedBest`](crate::portfolio::SharedBest).

use mlbs_core::Schedule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use wsn_bitset::NodeSet;
use wsn_dutycycle::{Slot, WakeSchedule};
use wsn_interference::ConflictGraphBuilder;
use wsn_phy::ConflictModel;
use wsn_topology::{metrics, NodeId, Topology};

use crate::legalize::{Hints, Legalizer};
use crate::partial::{PartialSchedule, StepOutcome};
use crate::portfolio::SharedBest;

/// When the anytime search stops.
///
/// Wall-clock budgets are what the 10k–100k benchmarks use; iteration
/// budgets make runs bit-reproducible (time never influences a decision),
/// which is what the sweep harness needs for its thread-count-independence
/// guarantee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Budget {
    /// Stop after this many milliseconds of wall-clock time.
    WallClockMs(u64),
    /// Stop after this many deterministic work units (local-search moves
    /// plus a per-pass setup charge proportional to the relay count).
    Iterations(u64),
}

/// Anytime-search parameters.
#[derive(Clone, Debug)]
pub struct AnytimeConfig {
    /// Stop condition.
    pub budget: Budget,
    /// RNG seed; two runs with the same seed and an iteration budget are
    /// bit-identical.
    pub seed: u64,
    /// Slot from which the source may first transmit.
    pub start_from: Slot,
    /// Base tabu tenure (moves); the engines add dynamic terms.
    pub tabu_tenure: u64,
    /// Local-search moves a single pass may spend before giving up.
    pub pass_move_cap: u64,
    /// Failed passes before a diversification kick.
    pub stalls_before_kick: u32,
    /// Priority noise for randomized restart legalizations.
    pub jitter: u32,
}

impl Default for AnytimeConfig {
    fn default() -> Self {
        AnytimeConfig {
            budget: Budget::Iterations(50_000),
            seed: 0x1CC5_2012,
            start_from: 1,
            tabu_tenure: 7,
            pass_move_cap: 4_000,
            stalls_before_kick: 3,
            jitter: 3,
        }
    }
}

/// One point of the improving-bound trace: the incumbent latency as of
/// `elapsed_ms` since the search started. Strictly improving by
/// construction (one point per accepted incumbent).
///
/// Each point carries both the monotonic wall-clock offset *and* the
/// deterministic move count at acceptance, so time-to-quality curves are
/// plottable straight from sweep exports (moves for reproducible x-axes
/// under iteration budgets, milliseconds for real-time curves).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TracePoint {
    /// Milliseconds since `solve_anytime` was entered (monotonic clock).
    pub elapsed_ms: u64,
    /// Deterministic work units spent when this incumbent was accepted.
    pub moves: u64,
    /// Incumbent latency at that moment.
    pub latency: Slot,
}

/// What produced a [`DetailPoint`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A candidate was accepted as the new incumbent.
    Incumbent,
    /// A compression/repair pass closed with this candidate latency
    /// (accepted or not).
    PassBest,
    /// A randomized restart salvaged this candidate latency (accepted or
    /// not).
    RestartSalvage,
}

/// One point of the *detail* trace: every candidate the search produced,
/// not only the accepted incumbents. At 100k nodes the incumbent trace can
/// be a single entry while the search grinds through hundreds of passes —
/// the detail trace is what makes that effort visible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetailPoint {
    /// Milliseconds since the search started.
    pub elapsed_ms: u64,
    /// The candidate's latency.
    pub latency: Slot,
    /// What produced it.
    pub kind: TraceKind,
}

/// Hard cap on detail-trace length so multi-hour runs cannot balloon the
/// outcome; the incumbent trace is never truncated.
const DETAIL_TRACE_CAP: usize = 16_384;

/// Result of an anytime search.
#[derive(Clone, Debug)]
pub struct AnytimeOutcome {
    /// Best schedule found (always verifies under the model it was
    /// searched with).
    pub schedule: Schedule,
    /// Its latency.
    pub latency: Slot,
    /// Improving-bound trace, one point per incumbent (monotone
    /// non-increasing latency, starting with the greedy seed).
    pub trace: Vec<TracePoint>,
    /// Every candidate produced (per-pass bests and restart salvages as
    /// well as incumbents), capped at an internal length bound.
    pub detail: Vec<DetailPoint>,
    /// Local-search moves spent.
    pub moves: u64,
    /// Compression/repair passes attempted.
    pub passes: u64,
    /// Diversification kicks (squash or randomized restart).
    pub restarts: u64,
    /// `true` when the incumbent hit the BFS-depth lower bound, proving
    /// optimality (the budget is then left unspent).
    pub proved_optimal: bool,
}

/// Budget bookkeeping shared by the driver and its passes.
struct Clock {
    budget: Budget,
    started: Instant,
    moves: u64,
}

impl Clock {
    fn exhausted(&self) -> bool {
        match self.budget {
            Budget::WallClockMs(ms) => self.started.elapsed().as_millis() as u64 >= ms,
            Budget::Iterations(k) => self.moves >= k,
        }
    }

    /// Deadline check inside a pass's move loop. Wall-clock budgets poll
    /// every 16 moves — often enough that a pass cannot bill past the
    /// deadline by more than a handful of cheap moves (the 100k scale used
    /// to overshoot a 10 s budget by 25 ms on the old 64-move cadence).
    /// Iteration budgets keep the historical 64-move cadence: their
    /// exhaustion test is exact arithmetic, and changing the cadence would
    /// change which move ends a pass — breaking bit-reproducibility
    /// against recorded baselines.
    fn mid_pass_exhausted(&self, pass_moves: u64) -> bool {
        let cadence = match self.budget {
            Budget::WallClockMs(_) => 16,
            Budget::Iterations(_) => 64,
        };
        pass_moves.is_multiple_of(cadence) && self.exhausted()
    }

    fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

/// Per-chain wiring for [`run_chain`]: how one search chain plugs into a
/// portfolio (or doesn't).
pub(crate) struct ChainCtx<'a> {
    /// Shared incumbent exchange; `None` runs the chain standalone.
    pub(crate) shared: Option<&'a SharedBest>,
    /// Warm-start schedule fed to the first legalization as hints.
    pub(crate) warm: Option<&'a Schedule>,
    /// Dead-node mask (churn repair): masked nodes never transmit, are
    /// owed no coverage, and don't witness conflicts. The alive set must
    /// stay connected through the source.
    pub(crate) dead: Option<&'a NodeSet>,
}

impl ChainCtx<'_> {
    /// A standalone chain: no sharing, cold start.
    pub(crate) fn standalone() -> ChainCtx<'static> {
        ChainCtx {
            shared: None,
            warm: None,
            dead: None,
        }
    }
}

/// Priority demotion applied to elite-signature nodes during biased
/// restarts (portfolio diversity).
const ELITE_BIAS_PENALTY: u32 = 2;

/// Slot-keyed legalizer hints reproducing `schedule`'s sender placement.
fn hints_of(schedule: &Schedule) -> Hints {
    let mut hints = Hints::new();
    for entry in &schedule.entries {
        hints.insert(entry.slot, entry.senders.clone());
    }
    hints
}

fn push_detail(detail: &mut Vec<DetailPoint>, clock: &Clock, latency: Slot, kind: TraceKind) {
    if detail.len() < DETAIL_TRACE_CAP {
        detail.push(DetailPoint {
            elapsed_ms: clock.elapsed_ms(),
            latency,
            kind,
        });
    }
}

/// Anytime minimum-latency broadcast scheduling: greedy seed, then
/// tabu/PARTIALCOL local search on the schedule-length objective until the
/// budget expires. Returns the best schedule found so far plus the
/// improving-bound trace — interrupt-anytime semantics on networks far
/// beyond the exact tier's reach (10k–100k nodes).
///
/// Generic over the conflict model and wake schedule; every incumbent is
/// re-verified with [`Schedule::verify_with_model`] before acceptance, so
/// the result is valid under exactly the semantics the exact tier uses.
///
/// # Panics
///
/// Panics when the topology is disconnected.
pub fn solve_anytime<S: WakeSchedule, M: ConflictModel>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    model: &M,
    config: &AnytimeConfig,
) -> AnytimeOutcome {
    run_chain(topo, source, wake, model, config, ChainCtx::standalone())
}

/// One search chain — the body behind [`solve_anytime`] and every
/// [`Portfolio`](crate::Portfolio) worker. With `ctx.shared == None` and
/// `ctx.warm == None` this is bit-identical to the historical serial
/// driver under iteration budgets (the sharing hooks and the warm seed are
/// the only additions, and both are inert when absent).
pub(crate) fn run_chain<S: WakeSchedule, M: ConflictModel>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    model: &M,
    config: &AnytimeConfig,
    ctx: ChainCtx<'_>,
) -> AnytimeOutcome {
    let hops = match ctx.dead {
        None => metrics::bfs_hops(topo, source),
        Some(dead) => metrics::bfs_hops_masked(topo, source, dead),
    };
    assert!(
        hops.iter()
            .enumerate()
            .all(|(u, &h)| h != metrics::UNREACHABLE
                || ctx.dead.is_some_and(|dead| dead.contains(u))),
        "broadcast cannot complete: disconnected topology"
    );
    let depth = Slot::from(
        hops.iter()
            .filter(|&&h| h != metrics::UNREACHABLE)
            .copied()
            .max()
            .unwrap_or(0),
    );

    // One span per chain; under a portfolio each worker thread gets its
    // own tid, so the Chrome export shows the workers side by side.
    let mut chain_span = wsn_obs::span("anytime.chain");
    let mut clock = Clock {
        budget: config.budget,
        started: Instant::now(),
        moves: 0,
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut legalizer = Legalizer::new(topo.len());
    let mut builder = ConflictGraphBuilder::new();
    let no_hints = Hints::new();

    let warm_hints = ctx.warm.map(hints_of);
    let seed_hints = warm_hints.as_ref().unwrap_or(&no_hints);
    let mut best = legalizer.legalize(
        topo,
        source,
        wake,
        model,
        seed_hints,
        config.start_from,
        0,
        None,
        ctx.dead,
        &mut rng,
    );
    debug_assert!(best
        .verify_covering_with_model(topo, wake, model, ctx.dead)
        .is_ok());
    let mut trace = vec![TracePoint {
        elapsed_ms: clock.elapsed_ms(),
        moves: clock.moves,
        latency: best.latency(),
    }];
    let mut detail = Vec::new();
    push_detail(&mut detail, &clock, best.latency(), TraceKind::Incumbent);
    wsn_obs::event_value("anytime.incumbent", best.latency() as i64);
    if let Some(shared) = ctx.shared {
        shared.offer(&best, topo.len());
    }
    let mut passes = 0u64;
    let mut restarts = 0u64;
    let mut stalls = 0u32;
    // Wall-clock budgets only: smoothed per-pass cost, so the loop can
    // decline to start a pass the remaining budget clearly cannot fit
    // (pass setup — frozen-structure builds, legalizations — is billed in
    // deterministic moves but paid in real time the move cadence cannot
    // see).
    let mut pass_cost_ewma = 0.0f64;

    while best.latency() > depth && !clock.exhausted() {
        if let Budget::WallClockMs(ms) = config.budget {
            let remaining = ms.saturating_sub(clock.elapsed_ms()) as f64;
            if pass_cost_ewma > 0.0 && remaining < pass_cost_ewma * 0.5 {
                break;
            }
        }
        let pass_started_ms = clock.elapsed_ms();

        // Adopt a better incumbent published by a sibling chain.
        if let Some(shared) = ctx.shared {
            if let Some(elite) = shared.adopt_if_better(best.latency()) {
                best = elite;
                trace.push(TracePoint {
                    elapsed_ms: clock.elapsed_ms(),
                    moves: clock.moves,
                    latency: best.latency(),
                });
                push_detail(&mut detail, &clock, best.latency(), TraceKind::Incumbent);
                wsn_obs::event_value("anytime.adopt", best.latency() as i64);
                stalls = 0;
            }
        }

        passes += 1;
        let _pass_span = wsn_obs::span("anytime.pass");
        let kick = stalls >= config.stalls_before_kick;
        let restarted = kick && passes.is_multiple_of(2);
        let candidate = if restarted {
            // Kick A: randomized greedy restart (fresh construction with
            // jittered priorities), steered away from the shared elite's
            // early-sender signature when running in a portfolio.
            restarts += 1;
            wsn_obs::event("anytime.restart");
            clock.moves += topo.len() as u64 / 64 + 1;
            let bias_sig = ctx.shared.and_then(SharedBest::elite_signature);
            Some(legalizer.legalize(
                topo,
                source,
                wake,
                model,
                &no_hints,
                config.start_from,
                config.jitter,
                bias_sig.as_ref().map(|sig| (sig, ELITE_BIAS_PENALTY)),
                ctx.dead,
                &mut rng,
            ))
        } else {
            // Compression pass (PARTIALCOL), or squash-repair (TabuCol)
            // when kicked: both search the frozen conflict structure for
            // an assignment one slot shorter, which the legalizer then
            // re-simulates.
            let mut partial =
                PartialSchedule::from_schedule_masked(&best, topo, model, &mut builder, ctx.dead);
            clock.moves += partial.relays().len() as u64 / 8 + 1;
            let started = if kick {
                restarts += 1;
                wsn_obs::event("anytime.squash_kick");
                partial.begin_squash(wake, &mut rng)
            } else {
                partial.begin_compress()
            };
            let mut solved = false;
            if started {
                let mut pass_moves = 0u64;
                loop {
                    let step = if kick {
                        partial.repair_step(wake, config.tabu_tenure, &mut rng)
                    } else {
                        partial.compress_step(wake, config.tabu_tenure, &mut rng)
                    };
                    clock.moves += 1;
                    pass_moves += 1;
                    match step {
                        StepOutcome::Done => {
                            solved = true;
                            break;
                        }
                        StepOutcome::Stuck => break,
                        StepOutcome::Progress => {}
                    }
                    if pass_moves >= config.pass_move_cap || clock.mid_pass_exhausted(pass_moves) {
                        break;
                    }
                }
            }
            solved.then(|| {
                let hints = partial.hints();
                legalizer.legalize(
                    topo,
                    source,
                    wake,
                    model,
                    &hints,
                    config.start_from,
                    0,
                    None,
                    ctx.dead,
                    &mut rng,
                )
            })
        };

        match candidate {
            Some(cand) => {
                let kind = if restarted {
                    TraceKind::RestartSalvage
                } else {
                    TraceKind::PassBest
                };
                push_detail(&mut detail, &clock, cand.latency(), kind);
                if cand.latency() < best.latency()
                    && cand
                        .verify_covering_with_model(topo, wake, model, ctx.dead)
                        .is_ok()
                {
                    best = cand;
                    trace.push(TracePoint {
                        elapsed_ms: clock.elapsed_ms(),
                        moves: clock.moves,
                        latency: best.latency(),
                    });
                    push_detail(&mut detail, &clock, best.latency(), TraceKind::Incumbent);
                    wsn_obs::event_value("anytime.incumbent", best.latency() as i64);
                    if let Some(shared) = ctx.shared {
                        shared.offer(&best, topo.len());
                    }
                    stalls = 0;
                } else {
                    stalls += 1;
                    if kick {
                        stalls = 0; // a kick resets the stall counter either way
                    }
                }
            }
            None => {
                stalls += 1;
                if kick {
                    stalls = 0;
                }
            }
        }

        if matches!(config.budget, Budget::WallClockMs(_)) {
            let took = (clock.elapsed_ms() - pass_started_ms) as f64;
            pass_cost_ewma = if pass_cost_ewma == 0.0 {
                took
            } else {
                0.7 * pass_cost_ewma + 0.3 * took
            };
        }
    }

    let proved_optimal = best.latency() <= depth;
    let latency = best.latency();
    if wsn_obs::enabled() {
        chain_span.set_value(latency as i64);
        drop(chain_span);
        wsn_obs::counter_add("anytime.solves", 1);
        wsn_obs::counter_add("anytime.moves", clock.moves);
        wsn_obs::counter_add("anytime.passes", passes);
        wsn_obs::counter_add("anytime.restarts", restarts);
        if proved_optimal {
            wsn_obs::counter_add("anytime.proved_optimal", 1);
        }
        wsn_obs::observe_us(
            "anytime.wall_us",
            clock.started.elapsed().as_micros() as u64,
        );
        wsn_obs::observe_us("anytime.latency_slots", latency as u64);
    }
    AnytimeOutcome {
        schedule: best,
        latency,
        trace,
        detail,
        moves: clock.moves,
        passes,
        restarts,
        proved_optimal,
    }
}
