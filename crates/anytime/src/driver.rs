//! The anytime driver: seed greedily, then alternate PARTIALCOL
//! compression passes, TabuCol squash-repair kicks and randomized greedy
//! restarts until the budget runs out, keeping the best verified schedule
//! and an improving-bound trace.

use mlbs_core::Schedule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use wsn_dutycycle::{Slot, WakeSchedule};
use wsn_interference::ConflictGraphBuilder;
use wsn_phy::ConflictModel;
use wsn_topology::{metrics, NodeId, Topology};

use crate::legalize::{Hints, Legalizer};
use crate::partial::{PartialSchedule, StepOutcome};

/// When the anytime search stops.
///
/// Wall-clock budgets are what the 10k–100k benchmarks use; iteration
/// budgets make runs bit-reproducible (time never influences a decision),
/// which is what the sweep harness needs for its thread-count-independence
/// guarantee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Budget {
    /// Stop after this many milliseconds of wall-clock time.
    WallClockMs(u64),
    /// Stop after this many deterministic work units (local-search moves
    /// plus a per-pass setup charge proportional to the relay count).
    Iterations(u64),
}

/// Anytime-search parameters.
#[derive(Clone, Debug)]
pub struct AnytimeConfig {
    /// Stop condition.
    pub budget: Budget,
    /// RNG seed; two runs with the same seed and an iteration budget are
    /// bit-identical.
    pub seed: u64,
    /// Slot from which the source may first transmit.
    pub start_from: Slot,
    /// Base tabu tenure (moves); the engines add dynamic terms.
    pub tabu_tenure: u64,
    /// Local-search moves a single pass may spend before giving up.
    pub pass_move_cap: u64,
    /// Failed passes before a diversification kick.
    pub stalls_before_kick: u32,
    /// Priority noise for randomized restart legalizations.
    pub jitter: u32,
}

impl Default for AnytimeConfig {
    fn default() -> Self {
        AnytimeConfig {
            budget: Budget::Iterations(50_000),
            seed: 0x1CC5_2012,
            start_from: 1,
            tabu_tenure: 7,
            pass_move_cap: 4_000,
            stalls_before_kick: 3,
            jitter: 3,
        }
    }
}

/// One point of the improving-bound trace: the incumbent latency as of
/// `elapsed_ms` since the search started. Strictly improving by
/// construction (one point per accepted incumbent).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TracePoint {
    /// Milliseconds since `solve_anytime` was entered.
    pub elapsed_ms: u64,
    /// Incumbent latency at that moment.
    pub latency: Slot,
}

/// Result of an anytime search.
#[derive(Clone, Debug)]
pub struct AnytimeOutcome {
    /// Best schedule found (always verifies under the model it was
    /// searched with).
    pub schedule: Schedule,
    /// Its latency.
    pub latency: Slot,
    /// Improving-bound trace, one point per incumbent (monotone
    /// non-increasing latency, starting with the greedy seed).
    pub trace: Vec<TracePoint>,
    /// Local-search moves spent.
    pub moves: u64,
    /// Compression/repair passes attempted.
    pub passes: u64,
    /// Diversification kicks (squash or randomized restart).
    pub restarts: u64,
    /// `true` when the incumbent hit the BFS-depth lower bound, proving
    /// optimality (the budget is then left unspent).
    pub proved_optimal: bool,
}

/// Budget bookkeeping shared by the driver and its passes.
struct Clock {
    budget: Budget,
    started: Instant,
    moves: u64,
}

impl Clock {
    fn exhausted(&self) -> bool {
        match self.budget {
            Budget::WallClockMs(ms) => self.started.elapsed().as_millis() as u64 >= ms,
            Budget::Iterations(k) => self.moves >= k,
        }
    }

    fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

/// Anytime minimum-latency broadcast scheduling: greedy seed, then
/// tabu/PARTIALCOL local search on the schedule-length objective until the
/// budget expires. Returns the best schedule found so far plus the
/// improving-bound trace — interrupt-anytime semantics on networks far
/// beyond the exact tier's reach (10k–100k nodes).
///
/// Generic over the conflict model and wake schedule; every incumbent is
/// re-verified with [`Schedule::verify_with_model`] before acceptance, so
/// the result is valid under exactly the semantics the exact tier uses.
///
/// # Panics
///
/// Panics when the topology is disconnected.
pub fn solve_anytime<S: WakeSchedule, M: ConflictModel>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    model: &M,
    config: &AnytimeConfig,
) -> AnytimeOutcome {
    let hops = metrics::bfs_hops(topo, source);
    assert!(
        hops.iter().all(|&h| h != metrics::UNREACHABLE),
        "broadcast cannot complete: disconnected topology"
    );
    let depth = Slot::from(hops.iter().copied().max().unwrap_or(0));

    let mut clock = Clock {
        budget: config.budget,
        started: Instant::now(),
        moves: 0,
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut legalizer = Legalizer::new(topo.len());
    let mut builder = ConflictGraphBuilder::new();
    let no_hints = Hints::new();

    let mut best = legalizer.legalize(
        topo,
        source,
        wake,
        model,
        &no_hints,
        config.start_from,
        0,
        &mut rng,
    );
    debug_assert!(best.verify_with_model(topo, wake, model).is_ok());
    let mut trace = vec![TracePoint {
        elapsed_ms: clock.elapsed_ms(),
        latency: best.latency(),
    }];
    let mut passes = 0u64;
    let mut restarts = 0u64;
    let mut stalls = 0u32;

    while best.latency() > depth && !clock.exhausted() {
        passes += 1;
        let kick = stalls >= config.stalls_before_kick;
        let candidate = if kick && passes.is_multiple_of(2) {
            // Kick A: randomized greedy restart (fresh construction with
            // jittered priorities).
            restarts += 1;
            clock.moves += topo.len() as u64 / 64 + 1;
            Some(legalizer.legalize(
                topo,
                source,
                wake,
                model,
                &no_hints,
                config.start_from,
                config.jitter,
                &mut rng,
            ))
        } else {
            // Compression pass (PARTIALCOL), or squash-repair (TabuCol)
            // when kicked: both search the frozen conflict structure for
            // an assignment one slot shorter, which the legalizer then
            // re-simulates.
            let mut partial = PartialSchedule::from_schedule(&best, topo, model, &mut builder);
            clock.moves += partial.relays().len() as u64 / 8 + 1;
            let started = if kick {
                restarts += 1;
                partial.begin_squash(wake, &mut rng)
            } else {
                partial.begin_compress()
            };
            let mut solved = false;
            if started {
                let mut pass_moves = 0u64;
                loop {
                    let step = if kick {
                        partial.repair_step(wake, config.tabu_tenure, &mut rng)
                    } else {
                        partial.compress_step(wake, config.tabu_tenure, &mut rng)
                    };
                    clock.moves += 1;
                    pass_moves += 1;
                    match step {
                        StepOutcome::Done => {
                            solved = true;
                            break;
                        }
                        StepOutcome::Stuck => break,
                        StepOutcome::Progress => {}
                    }
                    if pass_moves >= config.pass_move_cap
                        || (pass_moves.is_multiple_of(64) && clock.exhausted())
                    {
                        break;
                    }
                }
            }
            solved.then(|| {
                let hints = partial.hints();
                legalizer.legalize(
                    topo,
                    source,
                    wake,
                    model,
                    &hints,
                    config.start_from,
                    0,
                    &mut rng,
                )
            })
        };

        match candidate {
            Some(cand)
                if cand.latency() < best.latency()
                    && cand.verify_with_model(topo, wake, model).is_ok() =>
            {
                best = cand;
                trace.push(TracePoint {
                    elapsed_ms: clock.elapsed_ms(),
                    latency: best.latency(),
                });
                stalls = 0;
            }
            _ => {
                stalls += 1;
                if kick {
                    stalls = 0; // a kick resets the stall counter either way
                }
            }
        }
    }

    let proved_optimal = best.latency() <= depth;
    let latency = best.latency();
    AnytimeOutcome {
        schedule: best,
        latency,
        trace,
        moves: clock.moves,
        passes,
        restarts,
        proved_optimal,
    }
}
