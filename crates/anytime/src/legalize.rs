//! The legalizer: turns per-node slot *hints* into a valid, complete
//! broadcast schedule by slot-by-slot replay.
//!
//! Every schedule the anytime tier emits comes out of this function, so
//! correctness lives in exactly one place: at each slot the hinted senders
//! are admitted first (each checked against the already-accepted set under
//! the real conflict model), then the frontier greedily fills the remaining
//! capacity, and receptions are resolved by [`ConflictModel::resolve_receptions`]
//! — the same oracle [`Schedule::verify_with_model`] replays. The local
//! search upstream may therefore speculate on *frozen* conflict structure;
//! whatever it proposes is re-simulated here before it can become a result.
//!
//! Scale notes (10k–100k nodes): all per-slot state is degree-local —
//! frontier counters instead of bitset subtractions, a slot-stamped claim
//! array for the protocol-model admission test — so one legalization costs
//! `O(E)` plus the per-slot frontier sorts.

use mlbs_core::{Schedule, ScheduleEntry};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;
use wsn_bitset::NodeSet;
use wsn_dutycycle::{Slot, WakeSchedule};
use wsn_phy::{ConflictModel, ProtocolModel};
use wsn_topology::{NodeId, Topology};

/// Per-slot sender hints, keyed by absolute slot.
pub(crate) type Hints = BTreeMap<Slot, Vec<NodeId>>;

/// Reusable scratch for repeated legalizations of one topology.
pub(crate) struct Legalizer {
    informed: NodeSet,
    uninformed: NodeSet,
    /// Number of *uninformed* neighbors per node, maintained by counter.
    useful: Vec<u32>,
    /// Informed, not-yet-transmitted nodes (lazily pruned).
    frontier: Vec<NodeId>,
    /// Nodes that already transmitted (at most one transmission each).
    sent: Vec<bool>,
    /// Protocol fast path: `claimed[w] == stamp` ⇔ an accepted sender of
    /// the current slot covers uninformed `w`.
    claimed: Vec<u64>,
    stamp: u64,
    /// Scratch sender set handed to `resolve_receptions`.
    senders: NodeSet,
    /// Per-slot candidate ordering buffer: `(priority, node)`.
    order: Vec<(u32, NodeId)>,
    accepted: Vec<NodeId>,
}

impl Legalizer {
    pub(crate) fn new(n: usize) -> Legalizer {
        Legalizer {
            informed: NodeSet::new(n),
            uninformed: NodeSet::new(n),
            useful: vec![0; n],
            frontier: Vec::new(),
            sent: vec![false; n],
            claimed: vec![0; n],
            stamp: 0,
            senders: NodeSet::new(n),
            order: Vec::new(),
            accepted: Vec::new(),
        }
    }

    /// Builds a complete schedule. `hints` senders are admitted first in
    /// their hinted slots (silently skipped when stale — not yet informed,
    /// asleep, already transmitted, or conflicting); the frontier fills the
    /// rest greedily by descending uninformed-degree, plus `jitter` random
    /// priority noise when diversifying. `bias`, when given, demotes the
    /// priority of nodes in the set by the penalty — the portfolio uses it
    /// to steer restarts away from the shared elite's early-sender
    /// signature so parallel chains explore different basins.
    ///
    /// `dead`, when given, removes those nodes from the broadcast: they
    /// never transmit, are owed no coverage, and don't witness conflicts —
    /// the repair tier's churn mask. Every node the mask leaves alive must
    /// be reachable from the source through alive nodes.
    ///
    /// # Panics
    ///
    /// Panics when the topology (restricted to alive nodes) is
    /// disconnected (broadcast cannot complete), or when the source is in
    /// `dead`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn legalize<S: WakeSchedule, M: ConflictModel>(
        &mut self,
        topo: &Topology,
        source: NodeId,
        wake: &S,
        model: &M,
        hints: &Hints,
        start_from: Slot,
        jitter: u32,
        bias: Option<(&NodeSet, u32)>,
        dead: Option<&NodeSet>,
        rng: &mut StdRng,
    ) -> Schedule {
        let n = topo.len();
        self.reset(topo, source, dead);
        let protocol = model.fingerprint() == ProtocolModel.fingerprint();
        let witness_range = model.witness_range(topo);

        let t_s = wake.next_send(source.idx(), start_from);
        let mut receive_slot = vec![t_s; n];
        let mut entries: Vec<ScheduleEntry> = Vec::new();
        let mut t = t_s;

        while !self.uninformed.is_empty() {
            self.accepted.clear();
            self.stamp += 1;

            // 1. Hinted senders first, in hint order.
            if let Some(list) = hints.get(&t) {
                for &u in list {
                    self.try_accept(topo, model, wake, u, t, protocol, witness_range);
                }
            }

            // 2. Greedy frontier fill by descending uninformed-degree.
            self.frontier
                .retain(|&u| !self.sent[u.idx()] && self.useful[u.idx()] > 0);
            assert!(
                !self.frontier.is_empty(),
                "broadcast cannot complete: disconnected topology"
            );
            self.order.clear();
            for i in 0..self.frontier.len() {
                let u = self.frontier[i];
                if wake.can_send(u.idx(), t) {
                    let noise = if jitter > 0 {
                        rng.random_range(0..=jitter)
                    } else {
                        0
                    };
                    let mut priority = self.useful[u.idx()] + noise;
                    if let Some((sig, penalty)) = bias {
                        if sig.contains(u.idx()) {
                            priority = priority.saturating_sub(penalty);
                        }
                    }
                    self.order.push((priority, u));
                }
            }
            self.order
                .sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let mut order = std::mem::take(&mut self.order);
            for &(_, u) in &order {
                self.try_accept(topo, model, wake, u, t, protocol, witness_range);
            }
            order.clear();
            self.order = order;

            if self.accepted.is_empty() {
                // Nobody both awake and admissible: jump to the next slot
                // in which some frontier relay wakes (the back-off wait).
                t = self
                    .frontier
                    .iter()
                    .map(|u| wake.next_send(u.idx(), t + 1))
                    .min()
                    .expect("frontier non-empty");
                continue;
            }

            // 3. Resolve receptions under the real model. The admission
            // test guarantees pairwise conflict freedom; for models whose
            // group resolution is strictly stronger (additive-interference
            // corner cases), drop late acceptances until the slot is clean
            // — a lone sender always delivers, so this terminates.
            self.senders.clear();
            for &u in &self.accepted {
                self.senders.insert(u.idx());
            }
            let outcome = loop {
                let outcome = model.resolve_receptions(topo, &self.senders, &self.uninformed);
                if outcome.collided.is_empty() {
                    break outcome;
                }
                debug_assert!(!protocol, "protocol admissions are collision-free");
                let dropped = self.accepted.pop().expect("accepted non-empty");
                self.senders.remove(dropped.idx());
                assert!(
                    !self.accepted.is_empty(),
                    "a lone sender cannot collide under a sane model"
                );
            };

            for &u in &self.accepted {
                self.sent[u.idx()] = true;
            }
            for w in outcome.received.iter() {
                self.informed.insert(w);
                self.uninformed.remove(w);
                receive_slot[w] = t;
                for &v in topo.neighbors(NodeId(w as u32)) {
                    // Dead neighbors had their counter forced to zero.
                    if self.useful[v.idx()] > 0 {
                        self.useful[v.idx()] -= 1;
                    }
                }
            }
            // Push freshly informed nodes that still have someone to serve.
            for w in outcome.received.iter() {
                if self.useful[w] > 0 {
                    self.frontier.push(NodeId(w as u32));
                }
            }
            let mut senders = std::mem::take(&mut self.accepted);
            senders.sort_unstable();
            entries.push(ScheduleEntry::new(t, senders));
            self.accepted = Vec::new();
            t += 1;
        }

        Schedule {
            source,
            start: t_s,
            entries,
            receive_slot,
            repeats: Vec::new(),
        }
    }

    /// Admits `u` into the current slot's sender set when it is informed,
    /// awake, useful, has not yet transmitted, and conflicts with no
    /// already-accepted sender under `model`.
    #[allow(clippy::too_many_arguments)]
    fn try_accept<S: WakeSchedule, M: ConflictModel>(
        &mut self,
        topo: &Topology,
        model: &M,
        wake: &S,
        u: NodeId,
        t: Slot,
        protocol: bool,
        witness_range: Option<f64>,
    ) {
        if self.sent[u.idx()]
            || !self.informed.contains(u.idx())
            || self.useful[u.idx()] == 0
            || !wake.can_send(u.idx(), t)
        {
            return;
        }
        if protocol {
            // Protocol conflicts are exactly "shared uninformed neighbor":
            // the stamped claim array decides in O(deg) and doubles as the
            // update, so admission over a whole slot is linear in the
            // accepted senders' degrees.
            for &w in topo.neighbors(u) {
                if self.uninformed.contains(w.idx()) && self.claimed[w.idx()] == self.stamp {
                    return;
                }
            }
            for &w in topo.neighbors(u) {
                if self.uninformed.contains(w.idx()) {
                    self.claimed[w.idx()] = self.stamp;
                }
            }
        } else {
            let positions = topo.positions();
            for &s in &self.accepted {
                if let Some(range) = witness_range {
                    if positions[u.idx()].dist(&positions[s.idx()]) > range {
                        continue; // provably witness-free pair
                    }
                }
                if model.conflicts(topo, u, s, &self.uninformed) {
                    return;
                }
            }
        }
        self.accepted.push(u);
    }

    fn reset(&mut self, topo: &Topology, source: NodeId, dead: Option<&NodeSet>) {
        let n = topo.len();
        self.informed.clear();
        self.informed.insert(source.idx());
        if let Some(dead) = dead {
            assert!(!dead.contains(source.idx()), "the broadcast source died");
            // Dead nodes are treated as already informed and already done
            // transmitting: they never enter the frontier, are owed no
            // coverage, and stop counting as uninformed witnesses.
            self.informed.union_with(dead);
        }
        self.uninformed = self.informed.complement();
        for u in 0..n {
            self.useful[u] = topo.degree(NodeId(u as u32)) as u32;
            self.sent[u] = false;
        }
        for &v in topo.neighbors(source) {
            self.useful[v.idx()] -= 1;
        }
        if let Some(dead) = dead {
            for u in dead.iter() {
                self.sent[u] = true;
                self.useful[u] = 0;
                if u != source.idx() {
                    for &v in topo.neighbors(NodeId(u as u32)) {
                        // Each neighbor loses `u` as an uninformed neighbor
                        // (the source's neighborhood was already settled).
                        if self.useful[v.idx()] > 0 {
                            self.useful[v.idx()] -= 1;
                        }
                    }
                }
            }
        }
        self.frontier.clear();
        self.frontier.push(source);
    }
}
