//! Hand-written wake schedules for worked examples and tests.

use crate::{Slot, WakeSchedule};

/// An explicit periodic schedule: each node's sending slots within one
/// period are listed outright.
///
/// Used to reproduce Table IV, where the paper fixes specific wake-up
/// times (node 1 at slot 2, nodes 2 and 3 at slot 4, node 2 again at
/// `r + 3`, …) rather than drawing them pseudo-randomly.
#[derive(Clone, Debug)]
pub struct ExplicitSchedule {
    /// Sorted sending slots of each node within `[0, period)`.
    slots: Vec<Vec<Slot>>,
    period: Slot,
    rate: f64,
}

impl ExplicitSchedule {
    /// Builds a schedule with the given per-node slot lists and period.
    ///
    /// # Panics
    ///
    /// Panics when the period is zero, a slot is outside `[0, period)`, or
    /// a node has no sending slot (it could never relay).
    pub fn new(mut slots: Vec<Vec<Slot>>, period: Slot) -> Self {
        assert!(period > 0, "period must be positive");
        for (u, s) in slots.iter_mut().enumerate() {
            assert!(!s.is_empty(), "node {u} has no sending slot");
            s.sort_unstable();
            s.dedup();
            assert!(
                *s.last().unwrap() < period,
                "node {u} has a slot beyond the period"
            );
        }
        let total: usize = slots.iter().map(Vec::len).sum();
        let rate = (period as f64 * slots.len() as f64) / total as f64;
        ExplicitSchedule {
            slots,
            period,
            rate,
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no nodes are covered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl WakeSchedule for ExplicitSchedule {
    fn can_send(&self, u: usize, slot: Slot) -> bool {
        self.slots[u].binary_search(&(slot % self.period)).is_ok()
    }

    fn next_send(&self, u: usize, from: Slot) -> Slot {
        let base = (from / self.period) * self.period;
        let rem = from % self.period;
        match self.slots[u].iter().find(|&&s| s >= rem) {
            Some(&s) => base + s,
            // Wrap into the next period.
            None => base + self.period + self.slots[u][0],
        }
    }

    fn period(&self) -> Slot {
        self.period
    }

    fn cycle_rate(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_and_next() {
        let s = ExplicitSchedule::new(vec![vec![2, 7], vec![0]], 10);
        assert!(s.can_send(0, 2));
        assert!(s.can_send(0, 7));
        assert!(!s.can_send(0, 3));
        assert_eq!(s.next_send(0, 0), 2);
        assert_eq!(s.next_send(0, 3), 7);
        assert_eq!(s.next_send(0, 8), 12, "wraps into next period");
        assert_eq!(s.next_send(1, 1), 10);
    }

    #[test]
    fn periodicity() {
        let s = ExplicitSchedule::new(vec![vec![4]], 10);
        assert!(s.can_send(0, 4));
        assert!(s.can_send(0, 14));
        assert!(s.can_send(0, 104));
        assert_eq!(s.next_send(0, 15), 24);
    }

    #[test]
    fn cycle_rate_reflects_slot_counts() {
        // Two nodes, period 10: one slot + four slots → 20 / 5 = 4.
        let s = ExplicitSchedule::new(vec![vec![0], vec![1, 3, 5, 7]], 10);
        assert_eq!(s.cycle_rate(), 4.0);
    }

    #[test]
    fn cwt_after_respects_strict_future() {
        let s = ExplicitSchedule::new(vec![vec![2], vec![2]], 10);
        // Node 1 receives in slot 2 → it cannot relay until slot 12.
        assert_eq!(s.cwt_after(1, 2), 10);
    }

    #[test]
    #[should_panic(expected = "no sending slot")]
    fn empty_slot_list_rejected() {
        ExplicitSchedule::new(vec![vec![]], 10);
    }

    #[test]
    #[should_panic(expected = "beyond the period")]
    fn out_of_period_slot_rejected() {
        ExplicitSchedule::new(vec![vec![10]], 10);
    }
}
