//! Duty-cycle wake-up schedules and cycle-waiting-time (CWT) computation.
//!
//! §III of the paper: each node periodically turns its *sending* channel on
//! according to "a pseudo-random sequence in the uniform distribution with a
//! preset seed"; receiving channels are always on. With `T(u)` the set of
//! sending slots of `u` and cycle rate `r = |T| / |T(u)|`, a node is on
//! average active once every `r` slots but not at a fixed interval. Because
//! seeds are exchanged during beaconing, every node can *predict* its
//! neighbors' wake-ups; the wait until a neighbor's next sending slot is
//! the cycle waiting time (CWT) `t(u, v)`.
//!
//! The [`WakeSchedule`] trait abstracts the timing regime so the schedulers
//! in `mlbs-core` have a single code path:
//!
//! * [`AlwaysAwake`] — the round-based synchronous system (`r = 1`);
//! * [`WindowedRandom`] — the paper's duty-cycle model: one uniformly
//!   pseudo-random sending slot per length-`r` window, periodic over a
//!   configurable number of windows so searches can memoize on
//!   `slot mod period`;
//! * [`ExplicitSchedule`] — hand-written wake lists for the paper's worked
//!   examples (Table IV).
//!
//! [`WakePatternTable`] renders any schedule's period to per-node bit rows
//! so the phase-folded search memoization in `mlbs-core` can compare wake
//! windows across phases word-parallel.
//!
//! Node identity is a plain `usize` index here; this crate is independent
//! of topology.

mod explicit;
mod pattern;
mod windowed;

pub use explicit::ExplicitSchedule;
pub use pattern::WakePatternTable;
pub use windowed::WindowedRandom;

/// A time slot. Slot 0 is the first slot of the system lifetime; the paper
/// starts its examples at `t_s = 1` or `2`, which callers express directly.
pub type Slot = u64;

/// A node's sending-channel schedule, shared by all timing regimes.
pub trait WakeSchedule {
    /// `true` when node `u`'s sending channel is on in `slot`
    /// (`slot ∈ T(u)`).
    fn can_send(&self, u: usize, slot: Slot) -> bool;

    /// The first slot `≥ from` in which `u` can send.
    ///
    /// Must satisfy `can_send(u, next_send(u, from))` and return a value
    /// within `from + period()` (every period contains at least one sending
    /// slot per node).
    fn next_send(&self, u: usize, from: Slot) -> Slot;

    /// Period after which the whole schedule repeats. Search memoization
    /// keys on `slot mod period`.
    fn period(&self) -> Slot;

    /// Average cycle rate `r = |T| / |T(u)|` (1 for the synchronous system).
    fn cycle_rate(&self) -> f64;

    /// CWT after a reception: if a message is delivered to `v` in `slot`,
    /// the number of slots until `v` can relay it (`next_send(v, slot+1) −
    /// slot`). Always ≥ 1: a node cannot receive and forward in one slot.
    fn cwt_after(&self, v: usize, slot: Slot) -> Slot {
        self.next_send(v, slot + 1) - slot
    }

    /// Expected CWT across an edge `u → v`: the mean over one period of the
    /// wait `v` imposes when `u` hands it a message at each of `u`'s sending
    /// slots. This is the scalar edge weight the proactive E-model
    /// construction uses for Eq. (11).
    fn expected_cwt(&self, u: usize, v: usize) -> f64 {
        let period = self.period();
        let mut total = 0u64;
        let mut count = 0u64;
        let mut t = self.next_send(u, 0);
        while t < period {
            total += self.cwt_after(v, t);
            count += 1;
            t = self.next_send(u, t + 1);
        }
        if count == 0 {
            // Defensive: a WakeSchedule must give every node a slot per
            // period, so this indicates a broken implementation.
            panic!("node {u} has no sending slot within one period");
        }
        total as f64 / count as f64
    }

    /// Worst-case CWT across an edge `u → v` over one period — the `k` of
    /// the 17-approximation bound `17·k·d` ("maximum wait slots required
    /// between any pair of neighboring nodes").
    fn max_cwt(&self, u: usize, v: usize) -> Slot {
        let period = self.period();
        let mut worst = 0;
        let mut t = self.next_send(u, 0);
        while t < period {
            worst = worst.max(self.cwt_after(v, t));
            t = self.next_send(u, t + 1);
        }
        worst
    }
}

/// The round-based synchronous system: every node can send in every round.
#[derive(Clone, Debug, Default)]
pub struct AlwaysAwake;

impl WakeSchedule for AlwaysAwake {
    #[inline]
    fn can_send(&self, _u: usize, _slot: Slot) -> bool {
        true
    }

    #[inline]
    fn next_send(&self, _u: usize, from: Slot) -> Slot {
        from
    }

    #[inline]
    fn period(&self) -> Slot {
        1
    }

    #[inline]
    fn cycle_rate(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_awake_basics() {
        let s = AlwaysAwake;
        assert!(s.can_send(0, 0));
        assert!(s.can_send(7, 123_456));
        assert_eq!(s.next_send(3, 42), 42);
        assert_eq!(s.period(), 1);
        assert_eq!(s.cycle_rate(), 1.0);
    }

    #[test]
    fn always_awake_cwt_is_one() {
        // Synchronous relaying costs exactly one round per hop, which makes
        // Eq. (11) degenerate to Eq. (9).
        let s = AlwaysAwake;
        assert_eq!(s.cwt_after(0, 10), 1);
        assert_eq!(s.expected_cwt(1, 2), 1.0);
        assert_eq!(s.max_cwt(1, 2), 1);
    }
}
