//! The paper's pseudo-random duty-cycle schedule.

use crate::{Slot, WakeSchedule};

/// One uniformly pseudo-random sending slot per length-`r` window.
///
/// This realizes §III's model: the schedule has exactly one active sending
/// slot in every window of `r` consecutive slots, drawn uniformly per
/// window from a per-node seed, so the average gap is `r` but consecutive
/// wake-ups are not equally spaced (worst-case gap just under `2r`).
/// The pattern repeats after `windows` windows (`period = r × windows`),
/// which keeps solver memo keys finite; `windows` defaults to 64 so the
/// repetition is far longer than any broadcast the evaluation runs.
#[derive(Clone, Debug)]
pub struct WindowedRandom {
    /// Cycle rate `r` in slots.
    rate: u32,
    /// Number of windows before the pattern repeats.
    windows: u32,
    /// `offsets[u][w]` = active slot offset of node `u` in window `w`.
    offsets: Vec<Vec<u32>>,
}

/// SplitMix64 — the tiny deterministic PRNG used to derive per-window
/// offsets from a seed; chosen for reproducibility across platforms rather
/// than statistical sophistication.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl WindowedRandom {
    /// Default number of windows per period.
    pub const DEFAULT_WINDOWS: u32 = 64;

    /// Builds a schedule for `n` nodes with cycle rate `rate`, deriving all
    /// per-node sequences from `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is zero.
    pub fn new(n: usize, rate: u32, seed: u64) -> Self {
        Self::with_windows(n, rate, seed, Self::DEFAULT_WINDOWS)
    }

    /// As [`WindowedRandom::new`] with an explicit period length in windows.
    ///
    /// # Panics
    ///
    /// Panics when `rate` or `windows` is zero.
    pub fn with_windows(n: usize, rate: u32, seed: u64, windows: u32) -> Self {
        assert!(rate > 0, "cycle rate must be positive");
        assert!(windows > 0, "need at least one window");
        let offsets = (0..n)
            .map(|u| {
                // Per-node stream: mix the node index into the seed once,
                // then derive each window's offset independently so that
                // consecutive windows are uncorrelated.
                let node_seed = splitmix64(seed ^ (u as u64).wrapping_mul(0xa24b_aed4_963e_e407));
                (0..windows)
                    .map(|w| (splitmix64(node_seed ^ (w as u64)) % rate as u64) as u32)
                    .collect()
            })
            .collect();
        WindowedRandom {
            rate,
            windows,
            offsets,
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// `true` when the schedule covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Cycle rate `r`.
    pub fn rate(&self) -> u32 {
        self.rate
    }

    /// The active slot of node `u` within window `w` (absolute slot).
    fn active_slot_in_window(&self, u: usize, w: u64) -> Slot {
        let widx = (w % self.windows as u64) as usize;
        w * self.rate as u64 + self.offsets[u][widx] as u64
    }
}

impl WakeSchedule for WindowedRandom {
    fn can_send(&self, u: usize, slot: Slot) -> bool {
        let w = slot / self.rate as u64;
        self.active_slot_in_window(u, w) == slot
    }

    fn next_send(&self, u: usize, from: Slot) -> Slot {
        let mut w = from / self.rate as u64;
        loop {
            let t = self.active_slot_in_window(u, w);
            if t >= from {
                return t;
            }
            w += 1;
        }
    }

    fn period(&self) -> Slot {
        self.rate as u64 * self.windows as u64
    }

    fn cycle_rate(&self) -> f64 {
        self.rate as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_active_slot_per_window() {
        let s = WindowedRandom::new(5, 10, 99);
        for u in 0..5 {
            for w in 0..20u64 {
                let active: Vec<Slot> = (w * 10..(w + 1) * 10)
                    .filter(|&t| s.can_send(u, t))
                    .collect();
                assert_eq!(active.len(), 1, "node {u} window {w}");
            }
        }
    }

    #[test]
    fn next_send_is_consistent_with_can_send() {
        let s = WindowedRandom::new(4, 7, 3);
        for u in 0..4 {
            for from in 0..200u64 {
                let t = s.next_send(u, from);
                assert!(t >= from);
                assert!(s.can_send(u, t));
                // No earlier sending slot in [from, t).
                for q in from..t {
                    assert!(!s.can_send(u, q));
                }
            }
        }
    }

    #[test]
    fn schedule_is_periodic() {
        let s = WindowedRandom::with_windows(3, 5, 11, 8);
        let p = s.period();
        assert_eq!(p, 40);
        for u in 0..3 {
            for t in 0..p {
                assert_eq!(s.can_send(u, t), s.can_send(u, t + p));
                assert_eq!(s.can_send(u, t), s.can_send(u, t + 3 * p));
            }
        }
    }

    #[test]
    fn worst_case_gap_below_two_rates() {
        let s = WindowedRandom::new(10, 10, 1234);
        for u in 0..10 {
            let mut prev = s.next_send(u, 0);
            loop {
                let next = s.next_send(u, prev + 1);
                if next >= s.period() + prev {
                    break;
                }
                assert!(next - prev < 2 * 10, "gap {} too large", next - prev);
                if next > 2 * s.period() {
                    break;
                }
                prev = next;
            }
        }
    }

    #[test]
    fn deterministic_in_seed_and_distinct_across_nodes() {
        let a = WindowedRandom::new(6, 10, 5);
        let b = WindowedRandom::new(6, 10, 5);
        let c = WindowedRandom::new(6, 10, 6);
        for u in 0..6 {
            assert_eq!(a.next_send(u, 0), b.next_send(u, 0));
        }
        // Different seeds should disagree somewhere within two windows.
        assert!(
            (0..6).any(|u| a.next_send(u, 0) != c.next_send(u, 0)
                || a.next_send(u, 10) != c.next_send(u, 10)),
            "seeds 5 and 6 produced identical schedules"
        );
        // Nodes have independent streams: not all identical.
        assert!(
            (1..6).any(|u| a.next_send(u, 0) != a.next_send(0, 0)
                || a.next_send(u, 10) != a.next_send(0, 10)),
            "all nodes share one schedule"
        );
    }

    #[test]
    fn cwt_bounds() {
        let s = WindowedRandom::new(8, 10, 77);
        for u in 0..8 {
            for v in 0..8 {
                if u == v {
                    continue;
                }
                let e = s.expected_cwt(u, v);
                assert!(e >= 1.0, "expected CWT {e} below 1");
                assert!(e < 20.0, "expected CWT {e} ≥ 2r");
                let m = s.max_cwt(u, v);
                assert!((1..20).contains(&m));
                assert!(e <= m as f64);
            }
        }
    }

    #[test]
    fn offsets_are_roughly_uniform() {
        // Sanity-check the PRNG: over many windows, each offset 0..r−1
        // appears with frequency not wildly off 1/r.
        let s = WindowedRandom::with_windows(1, 10, 42, 2000);
        let mut counts = [0u32; 10];
        for w in 0..2000u64 {
            let t = s.active_slot_in_window(0, w);
            counts[(t % 10) as usize] += 1;
        }
        for (o, &c) in counts.iter().enumerate() {
            assert!(
                (100..=400).contains(&c),
                "offset {o} frequency {c} far from uniform (expected ~200)"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cycle rate must be positive")]
    fn zero_rate_rejected() {
        WindowedRandom::new(1, 0, 0);
    }
}
