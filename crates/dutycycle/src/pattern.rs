//! Per-phase wake-pattern signatures for phase-folded search memoization.
//!
//! The duty-cycle searches memoize on `(W, t mod P)`; with `WindowedRandom`
//! the period `P = r × windows` multiplies the state space by thousands at
//! high cycle rates. But the remaining broadcast from a state only depends
//! on *which relevant nodes wake in the slots it can still use* — two
//! phases whose wake patterns agree over those nodes and that horizon are
//! interchangeable. [`WakePatternTable`] materializes any
//! [`WakeSchedule`]'s full period as per-node bit rows (doubled so windows
//! never wrap) and serves the window extraction that the folding tables of
//! `mlbs-core::search` are built from.

use crate::{Slot, WakeSchedule};

/// A wake schedule rendered to per-node bit rows over two periods.
///
/// Row `u` holds bit `t` set iff `can_send(u, t)` for `t ∈ [0, 2P)`; the
/// doubling lets [`WakePatternTable::window`] extract any
/// `[phase, phase + horizon)` window with `phase < P` and `horizon ≤ P` as
/// straight word shifts, no wraparound.
///
/// # Examples
///
/// ```
/// use wsn_dutycycle::{WakePatternTable, WakeSchedule, WindowedRandom};
///
/// let wake = WindowedRandom::with_windows(4, 5, 9, 8);
/// let table = WakePatternTable::build(&wake, 4);
/// assert_eq!(table.period(), 40);
/// let mut w = Vec::new();
/// table.window(2, 7, 10, &mut w);
/// for h in 0..10u64 {
///     assert_eq!(w[0] >> h & 1 == 1, wake.can_send(2, 7 + h));
/// }
/// ```
#[derive(Clone, Debug)]
pub struct WakePatternTable {
    period: Slot,
    /// Words per node row (`⌈2P / 64⌉`).
    stride: usize,
    /// Node-major doubled wake bits.
    bits: Vec<u64>,
}

impl WakePatternTable {
    /// Renders `wake` for nodes `0..n`.
    ///
    /// Walks each node's sending slots via [`WakeSchedule::next_send`], so
    /// the cost is `O(n · slots-per-two-periods)`, not `O(n · P)`.
    pub fn build<S: WakeSchedule>(wake: &S, n: usize) -> Self {
        let period = wake.period();
        assert!(period > 0, "wake schedule must have a positive period");
        let doubled = 2 * period as usize;
        let stride = doubled.div_ceil(64);
        let mut bits = vec![0u64; stride * n];
        for (u, row) in bits.chunks_mut(stride).enumerate() {
            let mut t = wake.next_send(u, 0);
            while t < 2 * period {
                row[(t / 64) as usize] |= 1u64 << (t % 64);
                t = wake.next_send(u, t + 1);
            }
        }
        WakePatternTable {
            period,
            stride,
            bits,
        }
    }

    /// The schedule's period `P`.
    #[inline]
    pub fn period(&self) -> Slot {
        self.period
    }

    /// Number of node rows.
    pub fn len(&self) -> usize {
        self.bits.len() / self.stride.max(1)
    }

    /// `true` when the table covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Appends `⌈horizon / 64⌉` words holding node `u`'s wake bits for the
    /// slots `[phase, phase + horizon)` to `out` (bit `h` of the packed
    /// result = wake at `phase + h`; unused high bits of the last word are
    /// zero, so equal windows compare equal word-for-word).
    ///
    /// # Panics
    ///
    /// Panics when `phase ≥ P` or `horizon > P` (debug builds).
    pub fn window(&self, u: usize, phase: Slot, horizon: u32, out: &mut Vec<u64>) {
        debug_assert!(
            phase < self.period,
            "phase {phase} ≥ period {}",
            self.period
        );
        debug_assert!(
            horizon as u64 <= self.period,
            "horizon {horizon} exceeds period {}",
            self.period
        );
        let row = &self.bits[u * self.stride..(u + 1) * self.stride];
        let (base_word, off) = ((phase / 64) as usize, (phase % 64) as u32);
        let n_words = (horizon as usize).div_ceil(64);
        for k in 0..n_words {
            let lo = row[base_word + k] >> off;
            let hi = if off == 0 {
                0
            } else {
                row.get(base_word + k + 1).copied().unwrap_or(0) << (64 - off)
            };
            let mut w = lo | hi;
            let used = (horizon as usize - k * 64).min(64);
            if used < 64 {
                w &= (1u64 << used) - 1;
            }
            out.push(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlwaysAwake, ExplicitSchedule, WindowedRandom};

    fn assert_window_matches<S: WakeSchedule>(wake: &S, table: &WakePatternTable, n: usize) {
        let p = table.period();
        let mut buf = Vec::new();
        for u in 0..n {
            for phase in [0, 1, p / 3, p - 1] {
                for horizon in [1u32, 7, 64, 65, p.min(130) as u32] {
                    if horizon as u64 > p {
                        continue;
                    }
                    buf.clear();
                    table.window(u, phase, horizon, &mut buf);
                    assert_eq!(buf.len(), (horizon as usize).div_ceil(64));
                    for h in 0..horizon as u64 {
                        let bit = buf[(h / 64) as usize] >> (h % 64) & 1 == 1;
                        assert_eq!(
                            bit,
                            wake.can_send(u, phase + h),
                            "node {u} phase {phase} offset {h}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn windows_match_windowed_random() {
        let wake = WindowedRandom::with_windows(6, 7, 123, 10);
        let table = WakePatternTable::build(&wake, 6);
        assert_eq!(table.period(), 70);
        assert_eq!(table.len(), 6);
        assert_window_matches(&wake, &table, 6);
    }

    #[test]
    fn windows_match_explicit_schedule() {
        let wake = ExplicitSchedule::new(vec![vec![2], vec![4, 13], vec![4], vec![9], vec![9]], 20);
        let table = WakePatternTable::build(&wake, 5);
        assert_eq!(table.period(), 20);
        assert_window_matches(&wake, &table, 5);
    }

    #[test]
    fn always_awake_is_all_ones() {
        let table = WakePatternTable::build(&AlwaysAwake, 3);
        assert_eq!(table.period(), 1);
        let mut buf = Vec::new();
        table.window(1, 0, 1, &mut buf);
        assert_eq!(buf, vec![1]);
    }

    #[test]
    fn equal_windows_compare_equal_across_phases() {
        // Two phases within the same silent stretch of a sparse schedule
        // must produce identical (zero) windows — the folding premise.
        let wake = ExplicitSchedule::new(vec![vec![0], vec![18]], 20);
        let table = WakePatternTable::build(&wake, 2);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        table.window(0, 3, 8, &mut a);
        table.window(0, 5, 8, &mut b);
        assert_eq!(a, b, "both windows silent");
        a.clear();
        b.clear();
        table.window(1, 10, 10, &mut a);
        table.window(1, 12, 10, &mut b);
        assert_ne!(a, b, "the slot-18 wake sits at different offsets");
    }
}
