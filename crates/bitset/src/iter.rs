//! Iteration over set members by trailing-zero scanning.

/// Iterator over the indices of set bits, in increasing order.
///
/// Produced by [`NodeSet::iter`](crate::NodeSet::iter). Scans one word at a
/// time and strips the lowest set bit per step, so iteration cost is
/// proportional to the number of members plus the number of words.
pub struct OnesIter<'a> {
    words: &'a [u64],
    /// Index of the word currently being drained.
    word_idx: usize,
    /// Remaining bits of the current word.
    current: u64,
}

impl<'a> OnesIter<'a> {
    pub(crate) fn new(words: &'a [u64]) -> Self {
        OnesIter {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // strip lowest set bit
        Some(self.word_idx * 64 + bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.current.count_ones() as usize
            + self.words[(self.word_idx + 1).min(self.words.len())..]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>();
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for OnesIter<'_> {}

impl std::iter::FusedIterator for OnesIter<'_> {}

#[cfg(test)]
mod tests {
    use crate::NodeSet;

    #[test]
    fn size_hint_is_exact() {
        let s = NodeSet::from_indices(300, [0, 63, 64, 128, 299]);
        let mut it = s.iter();
        assert_eq!(it.size_hint(), (5, Some(5)));
        it.next();
        assert_eq!(it.size_hint(), (4, Some(4)));
        assert_eq!(it.len(), 4);
    }

    #[test]
    fn fused_after_exhaustion() {
        let s = NodeSet::from_indices(10, [2]);
        let mut it = s.iter();
        assert_eq!(it.next(), Some(2));
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None);
    }

    #[test]
    fn crosses_word_boundaries() {
        let s = NodeSet::from_indices(130, [63, 64, 127, 128]);
        assert_eq!(s.to_vec(), vec![63, 64, 127, 128]);
    }
}
