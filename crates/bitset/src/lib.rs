//! Dense dynamic bitsets for node sets in WSN broadcast scheduling.
//!
//! Broadcast-scheduling state is dominated by set algebra over node
//! identifiers: the informed set `W`, its complement `W̄`, per-node neighbor
//! masks `N(u)`, receiver sets `N(u) ∩ W̄`, and interference tests
//! `N(u) ∩ N(v) ∩ W̄ ≠ ∅`. All of these are hot paths inside the recursive
//! solvers of `mlbs-core`, so this crate provides a compact, allocation-light
//! bitset ([`NodeSet`]) tuned for those operations:
//!
//! * word-at-a-time union / intersection / difference,
//! * short-circuiting emptiness tests for triple intersections,
//! * fast iteration via trailing-zero scanning,
//! * a stable 64-bit fingerprint ([`NodeSet::fingerprint`]) used as a
//!   memoization key by the OPT / G-OPT searches.
//!
//! The universe size is fixed at construction; all sets participating in an
//! operation must share it (checked with debug assertions, as the guide's
//! HPC idiom recommends keeping release-path branches minimal).

mod intern;
mod iter;
mod ops;

pub use intern::{SetInterner, StateId, WordSeqInterner};
pub use iter::OnesIter;

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// A fixed-universe set of node indices backed by `u64` words.
///
/// `NodeSet` is the workhorse set representation of the workspace. It is
/// deliberately *not* growable: a set is created for a topology of `n` nodes
/// and stays that size, which keeps every binary operation a straight word
/// loop with no bounds reconciliation.
///
/// # Examples
///
/// ```
/// use wsn_bitset::NodeSet;
///
/// let mut w = NodeSet::new(10);
/// w.insert(3);
/// w.insert(7);
/// assert!(w.contains(3));
/// assert_eq!(w.len(), 2);
///
/// let complement = w.complement();
/// assert_eq!(complement.len(), 8);
/// assert!(!complement.contains(3));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct NodeSet {
    /// Bit storage; the final word may be partially used.
    words: Vec<u64>,
    /// Size of the universe (number of addressable bits).
    universe: usize,
}

impl NodeSet {
    /// Creates an empty set over a universe of `universe` elements.
    pub fn new(universe: usize) -> Self {
        let n_words = universe.div_ceil(WORD_BITS);
        NodeSet {
            words: vec![0; n_words],
            universe,
        }
    }

    /// Creates a set containing every element of the universe.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::new(universe);
        for w in &mut s.words {
            *w = !0;
        }
        s.trim_last_word();
        s
    }

    /// Creates a set from an iterator of indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of the universe.
    pub fn from_indices<I: IntoIterator<Item = usize>>(universe: usize, indices: I) -> Self {
        let mut s = Self::new(universe);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Number of addressable elements (not the number of members).
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Raw word storage, exposed for fingerprinting and word-level fusions.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Clears bits beyond the universe in the final partial word.
    #[inline]
    fn trim_last_word(&mut self) {
        let used = self.universe % WORD_BITS;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
    }

    /// Inserts `idx`; returns `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the universe.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        assert!(
            idx < self.universe,
            "index {idx} out of universe {}",
            self.universe
        );
        let (w, b) = (idx / WORD_BITS, idx % WORD_BITS);
        let mask = 1u64 << b;
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        fresh
    }

    /// Removes `idx`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, idx: usize) -> bool {
        assert!(
            idx < self.universe,
            "index {idx} out of universe {}",
            self.universe
        );
        let (w, b) = (idx / WORD_BITS, idx % WORD_BITS);
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        debug_assert!(idx < self.universe);
        let (w, b) = (idx / WORD_BITS, idx % WORD_BITS);
        self.words[w] & (1u64 << b) != 0
    }

    /// Number of members (popcount).
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no member is present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` when every universe element is present.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len() == self.universe
    }

    /// Removes all members, keeping the universe.
    #[inline]
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Re-sizes this set to a (possibly different) universe and empties it,
    /// reusing the word allocation. The scratch-arena primitive behind the
    /// reusable buffers of the broadcast-state substrate.
    pub fn reset(&mut self, universe: usize) {
        let n_words = universe.div_ceil(WORD_BITS);
        self.words.clear();
        self.words.resize(n_words, 0);
        self.universe = universe;
    }

    /// Overwrites this set with the contents of `other` without
    /// reallocating (both must share a universe).
    #[inline]
    pub fn copy_from(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.universe, other.universe);
        self.words.copy_from_slice(&other.words);
    }

    /// Iterates member indices in increasing order.
    #[inline]
    pub fn iter(&self) -> OnesIter<'_> {
        OnesIter::new(&self.words)
    }

    /// Smallest member, if any.
    #[inline]
    pub fn min(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Collects members into a `Vec<usize>`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// A stable 64-bit fingerprint suitable for hash-map memo keys.
    ///
    /// Uses an FNV-1a style fold over the words followed by a SplitMix64
    /// finalizer; collisions across distinct informed sets in one search are
    /// astronomically unlikely and the solvers additionally store the full
    /// set when exactness matters.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in &self.words {
            h ^= w;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // SplitMix64 finalizer for avalanche.
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }
}

impl Default for NodeSet {
    /// The empty set over the empty universe; re-size with
    /// [`NodeSet::reset`] before use.
    fn default() -> Self {
        NodeSet::new(0)
    }
}

impl std::fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{i}")?;
        }
        f.write_str("}")
    }
}

impl std::hash::Hash for NodeSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.words.hash(state);
    }
}

impl FromIterator<usize> for NodeSet {
    /// Builds a set whose universe is one past the maximum element.
    ///
    /// Mostly useful in tests; production code should prefer
    /// [`NodeSet::from_indices`] with the topology's node count.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let universe = items.iter().max().map_or(0, |m| m + 1);
        Self::from_indices(universe, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = NodeSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert!(!s.is_full());
    }

    #[test]
    fn zero_universe_is_both_empty_and_full() {
        let s = NodeSet::new(0);
        assert!(s.is_empty());
        assert!(s.is_full());
        assert_eq!(NodeSet::full(0), s);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = NodeSet::new(70);
        assert!(s.insert(0));
        assert!(s.insert(69));
        assert!(!s.insert(69), "second insert reports not-fresh");
        assert!(s.contains(0));
        assert!(s.contains(69));
        assert!(!s.contains(42));
        assert!(s.remove(69));
        assert!(!s.remove(69));
        assert!(!s.contains(69));
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_universe_panics() {
        NodeSet::new(10).insert(10);
    }

    #[test]
    fn full_set_trims_partial_word() {
        let s = NodeSet::full(65);
        assert_eq!(s.len(), 65);
        assert!(s.is_full());
        assert_eq!(s.words()[1], 1, "only bit 64 set in second word");
    }

    #[test]
    fn iteration_is_sorted() {
        let s = NodeSet::from_indices(200, [150, 3, 64, 65, 0, 199]);
        assert_eq!(s.to_vec(), vec![0, 3, 64, 65, 150, 199]);
        assert_eq!(s.min(), Some(0));
    }

    #[test]
    fn fingerprint_distinguishes_nearby_sets() {
        let a = NodeSet::from_indices(128, [1, 2, 3]);
        let b = NodeSet::from_indices(128, [1, 2, 4]);
        let c = NodeSet::from_indices(128, [1, 2, 3]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let s: NodeSet = [5usize, 9].into_iter().collect();
        assert_eq!(s.universe(), 10);
        assert!(s.contains(9));
    }

    #[test]
    fn debug_format_lists_members() {
        let s = NodeSet::from_indices(8, [1, 5]);
        assert_eq!(format!("{s:?}"), "{1, 5}");
    }

    #[test]
    fn clear_keeps_universe() {
        let mut s = NodeSet::full(90);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.universe(), 90);
    }
}
