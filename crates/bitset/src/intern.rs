//! Interning of informed sets into dense, collision-free state ids.
//!
//! The OPT / G-OPT searches memoize on the informed set `W`. A 64-bit
//! [`NodeSet::fingerprint`] makes a compact key but can silently collide,
//! corrupting exact memo entries with values that belong to a different
//! state. [`SetInterner`] removes the hazard: every distinct set is stored
//! once in a flat word arena and canonicalized to a dense [`StateId`], so
//! equal ids imply equal sets *by construction*. The fingerprint is demoted
//! to what it is good at — a bucket hash — and full word comparison settles
//! ties, so even adversarial collisions cannot merge two states.
//!
//! Dense ids double as a storage win: memo keys shrink from `(u64, u64)`
//! fingerprint pairs to `(u32, phase)`, and the arena stores each set's
//! words exactly once with no per-entry `Vec` header.

use crate::NodeSet;
use std::collections::HashMap;

/// Dense identifier of an interned set. Ids are handed out consecutively
/// from 0, so they also index side tables naturally.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// The id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An arena that canonicalizes [`NodeSet`]s over one fixed universe to
/// dense [`StateId`]s.
///
/// # Examples
///
/// ```
/// use wsn_bitset::{NodeSet, SetInterner};
///
/// let mut interner = SetInterner::new(100);
/// let a = NodeSet::from_indices(100, [1, 2, 3]);
/// let b = NodeSet::from_indices(100, [1, 2, 4]);
/// let ia = interner.intern(&a);
/// assert_eq!(interner.intern(&a), ia, "idempotent");
/// assert_ne!(interner.intern(&b), ia, "distinct sets, distinct ids");
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct SetInterner {
    universe: usize,
    /// Words per interned set (`⌈universe / 64⌉`).
    stride: usize,
    /// Flat storage: set `i` occupies `arena[i*stride .. (i+1)*stride]`.
    arena: Vec<u64>,
    /// Fingerprint → candidate ids. Collisions land in one bucket and are
    /// separated by full word comparison against the arena.
    buckets: HashMap<u64, Vec<u32>>,
}

impl SetInterner {
    /// Creates an empty interner for sets over `universe` elements.
    pub fn new(universe: usize) -> Self {
        SetInterner {
            universe,
            stride: universe.div_ceil(64),
            arena: Vec::new(),
            buckets: HashMap::new(),
        }
    }

    /// The universe every interned set must share.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of distinct sets interned so far.
    #[inline]
    pub fn len(&self) -> usize {
        // Zero-universe sets carry no words; count via the buckets.
        self.arena
            .len()
            .checked_div(self.stride)
            .unwrap_or_else(|| self.buckets.values().map(Vec::len).sum())
    }

    /// `true` when nothing has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The word storage of an interned set.
    #[inline]
    pub fn words(&self, id: StateId) -> &[u64] {
        &self.arena[id.idx() * self.stride..(id.idx() + 1) * self.stride]
    }

    /// Canonicalizes `set`, returning its dense id. Two calls return the
    /// same id **iff** the sets are equal word-for-word — fingerprint
    /// collisions are resolved, never merged.
    ///
    /// # Panics
    ///
    /// Panics if `set` is over a different universe.
    pub fn intern(&mut self, set: &NodeSet) -> StateId {
        assert_eq!(
            set.universe(),
            self.universe,
            "interned set universe mismatch"
        );
        let words = set.words();
        let bucket = self.buckets.entry(set.fingerprint()).or_default();
        for &id in bucket.iter() {
            let at = id as usize * self.stride;
            if &self.arena[at..at + self.stride] == words {
                return StateId(id);
            }
        }
        // For a zero-stride (empty-universe) interner every set is the
        // empty set, and the bucket loop above only misses it on the very
        // first intern — id 0 either way.
        let id = match self.arena.len().checked_div(self.stride) {
            Some(next) => u32::try_from(next).expect("more than u32::MAX states"),
            None => 0u32,
        };
        self.arena.extend_from_slice(words);
        bucket.push(id);
        StateId(id)
    }

    /// Drops every interned set, keeping the allocations for reuse (and
    /// optionally re-sizing to a new universe).
    pub fn reset(&mut self, universe: usize) {
        self.universe = universe;
        self.stride = universe.div_ceil(64);
        self.arena.clear();
        self.buckets.clear();
    }
}

/// An arena that canonicalizes arbitrary word sequences, tagged with a
/// caller-chosen `namespace`, to dense collision-free `u32` ids.
///
/// This is the [`SetInterner`] idea generalized for the phase-folding
/// tables of the duty-cycle search: wake-pattern windows are not
/// fixed-universe [`NodeSet`]s (their width depends on the fold horizon),
/// and per-node windows must not unify with per-level joint signatures, so
/// every sequence carries a namespace that is part of its identity. Equal
/// ids imply equal `(namespace, words)` pairs *by construction* — the hash
/// only picks the bucket, full comparison settles it.
///
/// # Examples
///
/// ```
/// use wsn_bitset::WordSeqInterner;
///
/// let mut it = WordSeqInterner::new();
/// let a = it.intern(1, &[0xfeed, 0xbeef]);
/// assert_eq!(it.intern(1, &[0xfeed, 0xbeef]), a, "idempotent");
/// assert_ne!(it.intern(2, &[0xfeed, 0xbeef]), a, "namespaces separate");
/// assert_eq!(it.get(1, &[0xfeed, 0xbeef]), Some(a));
/// assert_eq!(it.get(1, &[0xfeed]), None, "lookups never insert");
/// ```
#[derive(Clone, Debug, Default)]
pub struct WordSeqInterner {
    /// Flat storage: sequence `i` occupies `arena[spans[i].0 ..][..spans[i].1]`.
    arena: Vec<u64>,
    /// `(start, len)` of each interned sequence.
    spans: Vec<(u32, u32)>,
    /// Namespace tag of each interned sequence.
    namespaces: Vec<u64>,
    /// Hash → candidate ids; ties broken by full comparison.
    buckets: HashMap<u64, Vec<u32>>,
}

impl WordSeqInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct `(namespace, words)` sequences interned.
    #[inline]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when nothing has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The word storage of an interned sequence.
    #[inline]
    pub fn words(&self, id: u32) -> &[u64] {
        let (start, len) = self.spans[id as usize];
        &self.arena[start as usize..start as usize + len as usize]
    }

    /// FNV-1a-style fold over namespace + words with a SplitMix64
    /// finalizer — bucket selection only, never identity.
    fn hash(namespace: u64, words: &[u64]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ namespace.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for &w in words {
            h ^= w;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= words.len() as u64;
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^ (h >> 31)
    }

    #[inline]
    fn matches(&self, id: u32, namespace: u64, words: &[u64]) -> bool {
        self.namespaces[id as usize] == namespace && self.words(id) == words
    }

    /// The id of `(namespace, words)` if it was interned before. Never
    /// inserts — memo lookups probe with this so that misses cost nothing.
    pub fn get(&self, namespace: u64, words: &[u64]) -> Option<u32> {
        let bucket = self.buckets.get(&Self::hash(namespace, words))?;
        bucket
            .iter()
            .copied()
            .find(|&id| self.matches(id, namespace, words))
    }

    /// Canonicalizes `(namespace, words)`, returning its dense id.
    pub fn intern(&mut self, namespace: u64, words: &[u64]) -> u32 {
        let h = Self::hash(namespace, words);
        if let Some(bucket) = self.buckets.get(&h) {
            for &id in bucket {
                if self.matches(id, namespace, words) {
                    return id;
                }
            }
        }
        let id = u32::try_from(self.spans.len()).expect("more than u32::MAX sequences");
        let start = u32::try_from(self.arena.len()).expect("interner arena overflow");
        self.arena.extend_from_slice(words);
        self.spans.push((start, words.len() as u32));
        self.namespaces.push(namespace);
        self.buckets.entry(h).or_default().push(id);
        id
    }

    /// Drops every sequence, keeping allocations for reuse.
    pub fn reset(&mut self) {
        self.arena.clear();
        self.spans.clear();
        self.namespaces.clear();
        self.buckets.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut it = SetInterner::new(130);
        let ids: Vec<StateId> = (0..10)
            .map(|i| it.intern(&NodeSet::from_indices(130, [i, i + 64])))
            .collect();
        for (k, id) in ids.iter().enumerate() {
            assert_eq!(id.idx(), k, "ids are dense in first-seen order");
        }
        for (k, id) in ids.iter().enumerate() {
            assert_eq!(
                it.intern(&NodeSet::from_indices(130, [k, k + 64])),
                *id,
                "re-interning returns the original id"
            );
        }
        assert_eq!(it.len(), 10);
    }

    #[test]
    fn words_roundtrip() {
        let mut it = SetInterner::new(200);
        let s = NodeSet::from_indices(200, [0, 63, 64, 199]);
        let id = it.intern(&s);
        assert_eq!(it.words(id), s.words());
    }

    /// Two distinct sets engineered to share a fingerprint. The FNV-style
    /// fold is `h = (h ^ w) * p` per word followed by a bijective
    /// finalizer, so for two-word sets `(w0, w1)` and `(w0', w1')` the
    /// fingerprints agree iff `(s ^ w0)·p ^ w1 == (s ^ w0')·p ^ w1'`;
    /// solving for `w1'` forges a collision. (If the fingerprint algorithm
    /// ever changes, re-derive the construction here.)
    fn forged_collision() -> (NodeSet, NodeSet) {
        const SEED: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1000_0000_01b3;
        let (w0a, w1a) = (0b1u64, 0b1u64);
        let w0b = 0b11u64;
        let ca = (SEED ^ w0a).wrapping_mul(PRIME);
        let cb = (SEED ^ w0b).wrapping_mul(PRIME);
        let w1b = w1a ^ ca ^ cb;
        let from_words = |w0: u64, w1: u64| {
            NodeSet::from_indices(
                128,
                (0..64)
                    .filter(move |b| w0 >> b & 1 == 1)
                    .chain((0..64).filter(move |b| w1 >> b & 1 == 1).map(|b| b + 64)),
            )
        };
        (from_words(w0a, w1a), from_words(w0b, w1b))
    }

    #[test]
    fn forced_fingerprint_collision_gets_distinct_ids() {
        // Regression for the memo-correctness hazard: under fingerprint
        // keys these two informed sets would share a memo entry; interned
        // ids must keep them apart so `(StateId, phase)` memo keys cannot
        // collide.
        let (a, b) = forged_collision();
        assert_ne!(a, b, "the forgery produced distinct sets");
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "the forgery produced a genuine fingerprint collision"
        );
        let mut it = SetInterner::new(128);
        let ia = it.intern(&a);
        let ib = it.intern(&b);
        assert_ne!(ia, ib, "colliding fingerprints must not merge states");
        assert_eq!(it.intern(&a), ia);
        assert_eq!(it.intern(&b), ib);
        assert_eq!(it.words(ia), a.words());
        assert_eq!(it.words(ib), b.words());
    }

    #[test]
    fn reset_keeps_working_across_universes() {
        let mut it = SetInterner::new(64);
        it.intern(&NodeSet::from_indices(64, [3]));
        it.reset(128);
        assert!(it.is_empty());
        let id = it.intern(&NodeSet::from_indices(128, [100]));
        assert_eq!(id.idx(), 0);
        assert_eq!(it.universe(), 128);
    }

    #[test]
    fn zero_universe_interner() {
        let mut it = SetInterner::new(0);
        let e = NodeSet::new(0);
        let id = it.intern(&e);
        assert_eq!(it.intern(&e), id);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn word_seq_ids_are_dense_and_exact() {
        let mut it = WordSeqInterner::new();
        let a = it.intern(7, &[1, 2, 3]);
        let b = it.intern(7, &[1, 2, 4]);
        let c = it.intern(8, &[1, 2, 3]);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(c, 2);
        assert_eq!(it.intern(7, &[1, 2, 3]), a);
        assert_eq!(it.words(b), &[1, 2, 4]);
        assert_eq!(it.len(), 3);
        assert_eq!(it.get(7, &[1, 2, 3]), Some(a));
        assert_eq!(it.get(9, &[1, 2, 3]), None);
        // Prefixes and length variants stay distinct.
        assert_eq!(it.get(7, &[1, 2]), None);
        let d = it.intern(7, &[1, 2]);
        assert_ne!(d, a);
    }

    #[test]
    fn word_seq_empty_sequences_per_namespace() {
        let mut it = WordSeqInterner::new();
        let a = it.intern(0, &[]);
        let b = it.intern(1, &[]);
        assert_ne!(a, b);
        assert_eq!(it.intern(0, &[]), a);
        assert_eq!(it.words(a), &[] as &[u64]);
    }

    #[test]
    fn word_seq_reset_reuses() {
        let mut it = WordSeqInterner::new();
        it.intern(0, &[42]);
        it.reset();
        assert!(it.is_empty());
        assert_eq!(it.intern(0, &[43]), 0);
    }
}
