//! Set algebra: unions, intersections, differences, and the fused
//! short-circuit tests used by the interference model.

use crate::NodeSet;

impl NodeSet {
    /// In-place union: `self ∪= other`.
    ///
    /// # Panics
    ///
    /// Debug-panics when the universes differ.
    #[inline]
    pub fn union_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection: `self ∩= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: `self ∖= other`.
    #[inline]
    pub fn difference_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns `self ∪ other` as a new set.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns `self ∩ other` as a new set.
    pub fn intersection(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns `self ∖ other` as a new set.
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// In-place complement within the universe (`self = N ∖ self`).
    #[inline]
    pub fn invert(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.trim_last_word();
    }

    /// Returns the complement within the universe (`W̄ = N ∖ W`).
    pub fn complement(&self) -> NodeSet {
        let mut out = NodeSet {
            words: self.words.iter().map(|w| !w).collect(),
            universe: self.universe,
        };
        out.trim_last_word();
        out
    }

    /// `true` when the sets share at least one member.
    ///
    /// Short-circuits on the first overlapping word — the common case in the
    /// conflict tests where overlaps are found early or not at all.
    #[inline]
    pub fn intersects(&self, other: &NodeSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// `true` when `self ∩ a ∩ b` is non-empty, without allocating.
    ///
    /// This is the paper's interference predicate
    /// `N(u) ∩ N(v) ∩ W̄ ≠ ∅` (Eq. 1, constraint 3) fused into a single
    /// pass; it is the hottest operation in conflict-graph construction.
    #[inline]
    pub fn triple_intersects(&self, a: &NodeSet, b: &NodeSet) -> bool {
        debug_assert_eq!(self.universe, a.universe);
        debug_assert_eq!(self.universe, b.universe);
        self.words
            .iter()
            .zip(&a.words)
            .zip(&b.words)
            .any(|((x, y), z)| x & y & z != 0)
    }

    /// Popcount of `self ∩ other` without allocating.
    #[inline]
    pub fn intersection_len(&self, other: &NodeSet) -> usize {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Popcount of `self ∖ other` without allocating.
    #[inline]
    pub fn difference_len(&self, other: &NodeSet) -> usize {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// `true` when every member of `self` is in `other`.
    #[inline]
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// `true` when the sets have no common member.
    #[inline]
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        !self.intersects(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(xs: &[usize]) -> NodeSet {
        NodeSet::from_indices(150, xs.iter().copied())
    }

    #[test]
    fn union_intersection_difference() {
        let a = set(&[1, 2, 3, 100]);
        let b = set(&[3, 4, 100, 149]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 4, 100, 149]);
        assert_eq!(a.intersection(&b).to_vec(), vec![3, 100]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 2]);
        assert_eq!(b.difference(&a).to_vec(), vec![4, 149]);
    }

    #[test]
    fn complement_is_involutive() {
        let a = set(&[0, 64, 149]);
        assert_eq!(a.complement().complement(), a);
        assert_eq!(a.complement().len(), 150 - 3);
        assert!(a.complement().is_disjoint(&a));
    }

    #[test]
    fn intersects_matches_intersection_emptiness() {
        let a = set(&[10, 70]);
        let b = set(&[70]);
        let c = set(&[11]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.is_disjoint(&c));
    }

    #[test]
    fn triple_intersects_matches_naive() {
        let w = set(&[5, 6, 7, 130]);
        let a = set(&[6, 7, 130]);
        let b = set(&[7, 129]);
        assert!(w.triple_intersects(&a, &b)); // common member: 7
        let b2 = set(&[5, 130]);
        assert!(w.triple_intersects(&a, &b2)); // common member: 130
        let b3 = set(&[5, 99]);
        assert!(!w.triple_intersects(&a, &b3));
    }

    #[test]
    fn counting_helpers() {
        let a = set(&[1, 2, 3]);
        let b = set(&[2, 3, 4]);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.difference_len(&b), 1);
    }

    #[test]
    fn subset_relations() {
        let a = set(&[2, 3]);
        let b = set(&[1, 2, 3, 4]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(NodeSet::new(150).is_subset(&a));
    }
}
