//! Property tests: `NodeSet` algebra must agree with `std::collections::BTreeSet`.

use proptest::prelude::*;
use std::collections::BTreeSet;
use wsn_bitset::NodeSet;

const UNIVERSE: usize = 193; // deliberately not a multiple of 64

fn arb_indices() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..UNIVERSE, 0..80)
}

fn model(xs: &[usize]) -> BTreeSet<usize> {
    xs.iter().copied().collect()
}

fn build(xs: &[usize]) -> NodeSet {
    NodeSet::from_indices(UNIVERSE, xs.iter().copied())
}

proptest! {
    #[test]
    fn union_matches_model(a in arb_indices(), b in arb_indices()) {
        let got = build(&a).union(&build(&b)).to_vec();
        let want: Vec<usize> = model(&a).union(&model(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn intersection_matches_model(a in arb_indices(), b in arb_indices()) {
        let got = build(&a).intersection(&build(&b)).to_vec();
        let want: Vec<usize> = model(&a).intersection(&model(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn difference_matches_model(a in arb_indices(), b in arb_indices()) {
        let got = build(&a).difference(&build(&b)).to_vec();
        let want: Vec<usize> = model(&a).difference(&model(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn complement_partitions_universe(a in arb_indices()) {
        let s = build(&a);
        let c = s.complement();
        prop_assert!(s.is_disjoint(&c));
        prop_assert_eq!(s.len() + c.len(), UNIVERSE);
        prop_assert!(s.union(&c).is_full());
    }

    #[test]
    fn triple_intersects_matches_allocating(a in arb_indices(), b in arb_indices(), c in arb_indices()) {
        let (sa, sb, sc) = (build(&a), build(&b), build(&c));
        let naive = !sa.intersection(&sb).intersection(&sc).is_empty();
        prop_assert_eq!(sa.triple_intersects(&sb, &sc), naive);
    }

    #[test]
    fn counts_match_allocating(a in arb_indices(), b in arb_indices()) {
        let (sa, sb) = (build(&a), build(&b));
        prop_assert_eq!(sa.intersection_len(&sb), sa.intersection(&sb).len());
        prop_assert_eq!(sa.difference_len(&sb), sa.difference(&sb).len());
    }

    #[test]
    fn subset_iff_difference_empty(a in arb_indices(), b in arb_indices()) {
        let (sa, sb) = (build(&a), build(&b));
        prop_assert_eq!(sa.is_subset(&sb), sa.difference(&sb).is_empty());
    }

    #[test]
    fn iteration_sorted_and_deduplicated(a in arb_indices()) {
        let v = build(&a).to_vec();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(v, sorted);
    }

    #[test]
    fn fingerprint_equal_sets_agree(a in arb_indices()) {
        let mut shuffled = a.clone();
        shuffled.reverse();
        prop_assert_eq!(build(&a).fingerprint(), build(&shuffled).fingerprint());
    }
}
