//! Quadrant partition and angular-gap analysis.
//!
//! The E-model stores one delay estimate per quadrant `Q_1(u)..Q_4(u)`
//! around each node (Table I: "Q_i(u): i-th quadrant with u as the origin").
//! Boundary construction additionally needs the widest empty angular sector
//! among a node's neighbor bearings: a large gap means the node faces open
//! space and lies on the network edge (paper reference [6]).

use crate::Point;

/// One of the four axis-aligned quadrants around an origin node.
///
/// Boundary convention (so that every non-origin point belongs to exactly
/// one quadrant): `Q1 = x > 0, y ≥ 0`, `Q2 = x ≤ 0, y > 0`,
/// `Q3 = x < 0, y ≤ 0`, `Q4 = x ≥ 0, y < 0` — each axis half-line is
/// assigned to the quadrant it bounds counter-clockwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Quadrant {
    Q1,
    Q2,
    Q3,
    Q4,
}

impl Quadrant {
    /// All four quadrants in index order.
    pub const ALL: [Quadrant; 4] = [Quadrant::Q1, Quadrant::Q2, Quadrant::Q3, Quadrant::Q4];

    /// Zero-based index (`Q1 → 0` … `Q4 → 3`), used to address the 4-tuple.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Quadrant::Q1 => 0,
            Quadrant::Q2 => 1,
            Quadrant::Q3 => 2,
            Quadrant::Q4 => 3,
        }
    }

    /// Quadrant from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    #[inline]
    pub const fn from_index(i: usize) -> Quadrant {
        match i {
            0 => Quadrant::Q1,
            1 => Quadrant::Q2,
            2 => Quadrant::Q3,
            3 => Quadrant::Q4,
            _ => panic!("quadrant index out of range"),
        }
    }

    /// Classifies `p` relative to `origin`. Returns `None` when the points
    /// coincide (a node is in no quadrant of itself).
    #[inline]
    pub fn of(origin: &Point, p: &Point) -> Option<Quadrant> {
        let (dx, dy) = p.delta(origin);
        if dx == 0.0 && dy == 0.0 {
            return None;
        }
        Some(if dx > 0.0 && dy >= 0.0 {
            Quadrant::Q1
        } else if dx <= 0.0 && dy > 0.0 {
            Quadrant::Q2
        } else if dx < 0.0 && dy <= 0.0 {
            Quadrant::Q3
        } else {
            Quadrant::Q4
        })
    }
}

/// Largest empty angular sector (radians) among the bearings of `neighbors`
/// as seen from `origin`.
///
/// Returns `TAU` (the full circle) when there are no neighbors. A node whose
/// gap is at least the boundary threshold (the topology crate uses 120°)
/// is treated as facing open space.
pub fn max_angular_gap(origin: &Point, neighbors: &[Point]) -> f64 {
    let mut bearings: Vec<f64> = neighbors
        .iter()
        .filter(|p| **p != *origin)
        .map(|p| p.bearing_from(origin))
        .collect();
    if bearings.is_empty() {
        return std::f64::consts::TAU;
    }
    bearings.sort_by(f64::total_cmp);
    let mut max_gap = std::f64::consts::TAU - bearings[bearings.len() - 1] + bearings[0];
    for w in bearings.windows(2) {
        max_gap = max_gap.max(w[1] - w[0]);
    }
    max_gap
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    #[test]
    fn quadrant_classification_covers_plane() {
        let o = Point::new(10.0, 10.0);
        assert_eq!(
            Quadrant::of(&o, &Point::new(11.0, 11.0)),
            Some(Quadrant::Q1)
        );
        assert_eq!(Quadrant::of(&o, &Point::new(9.0, 11.0)), Some(Quadrant::Q2));
        assert_eq!(Quadrant::of(&o, &Point::new(9.0, 9.0)), Some(Quadrant::Q3));
        assert_eq!(Quadrant::of(&o, &Point::new(11.0, 9.0)), Some(Quadrant::Q4));
        assert_eq!(Quadrant::of(&o, &o), None);
    }

    #[test]
    fn axis_points_have_unique_quadrants() {
        let o = Point::new(0.0, 0.0);
        assert_eq!(Quadrant::of(&o, &Point::new(1.0, 0.0)), Some(Quadrant::Q1)); // +x
        assert_eq!(Quadrant::of(&o, &Point::new(0.0, 1.0)), Some(Quadrant::Q2)); // +y
        assert_eq!(Quadrant::of(&o, &Point::new(-1.0, 0.0)), Some(Quadrant::Q3)); // -x
        assert_eq!(Quadrant::of(&o, &Point::new(0.0, -1.0)), Some(Quadrant::Q4));
        // -y
    }

    #[test]
    fn index_roundtrip() {
        for q in Quadrant::ALL {
            assert_eq!(Quadrant::from_index(q.index()), q);
        }
    }

    #[test]
    fn angular_gap_no_neighbors_is_full_circle() {
        assert_eq!(max_angular_gap(&Point::new(0.0, 0.0), &[]), TAU);
    }

    #[test]
    fn angular_gap_single_neighbor_is_full_circle() {
        let gap = max_angular_gap(&Point::new(0.0, 0.0), &[Point::new(1.0, 0.0)]);
        assert!((gap - TAU).abs() < 1e-12);
    }

    #[test]
    fn angular_gap_orthogonal_cross() {
        // Neighbors at 0°, 90°, 180°, 270° → max gap 90°.
        let o = Point::new(0.0, 0.0);
        let ns = [
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(-1.0, 0.0),
            Point::new(0.0, -1.0),
        ];
        assert!((max_angular_gap(&o, &ns) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn angular_gap_half_plane() {
        // Neighbors only toward +x and +y → gap from 90° around to 360° = 270°.
        let o = Point::new(0.0, 0.0);
        let ns = [Point::new(1.0, 0.0), Point::new(0.0, 1.0)];
        assert!((max_angular_gap(&o, &ns) - 1.5 * PI).abs() < 1e-12);
    }

    #[test]
    fn coincident_neighbor_ignored() {
        let o = Point::new(2.0, 2.0);
        let gap = max_angular_gap(&o, &[o, Point::new(3.0, 2.0)]);
        assert!((gap - TAU).abs() < 1e-12);
    }
}
