//! Uniform spatial hash grid for radius-bounded neighbor queries.
//!
//! Unit-disk adjacency, SINR gain tables and the conflict-pair enumeration
//! of the anytime scheduler all ask the same question — *which points lie
//! within distance `r` of this one?* — and at 10k–100k nodes the all-pairs
//! answer is the dominant cost. [`CellGrid`] buckets points into square
//! cells of side `cell ≥ r` so a query only scans the 3×3 cell block
//! around the probe: with points spread over an area `A`, expected cost is
//! `O(9 · n · cell² / A)` per query instead of `O(n)`, making whole-graph
//! construction near-linear at constant density.
//!
//! The grid stores point *indices* into the caller's slice, so the same
//! grid serves a full deployment or an arbitrary subset (e.g. the current
//! candidate-sender list).

use crate::Point;
use std::collections::HashMap;

/// Point count below which [`CellGrid::build_parallel`] falls back to the
/// serial path: binning a point is a handful of float ops, so under ~16k
/// points the scoped-thread setup costs more than it saves.
const PARALLEL_BUILD_MIN_POINTS: usize = 16_384;

/// A spatial hash over a fixed point set, keyed on square cells.
#[derive(Clone, Debug)]
pub struct CellGrid {
    /// Cell side length (≥ the largest query radius this grid serves).
    cell: f64,
    /// Cell coordinates → indices of the points inside the cell.
    cells: HashMap<(i64, i64), Vec<u32>>,
}

impl CellGrid {
    /// Buckets `points` into cells of side `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive and finite.
    pub fn build(points: &[Point], cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "cell side must be positive and finite, got {cell}"
        );
        let mut cells: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            cells.entry(Self::key(p, cell)).or_default().push(i as u32);
        }
        CellGrid { cell, cells }
    }

    /// Builds a grid over a subset of `points`, keeping the *original*
    /// indices — queries return positions in `points`, not in `subset`.
    pub fn build_subset(points: &[Point], subset: &[u32], cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "cell side must be positive and finite, got {cell}"
        );
        let mut cells: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for &i in subset {
            let p = &points[i as usize];
            cells.entry(Self::key(p, cell)).or_default().push(i);
        }
        CellGrid { cell, cells }
    }

    /// Like [`CellGrid::build`] but bins contiguous index ranges on
    /// `threads` scoped threads and merges the per-thread maps in thread
    /// order, so every bucket holds the same ascending index sequence the
    /// serial build produces. Falls back to the serial path when
    /// `threads <= 1` or the point set is too small to amortize spawning.
    pub fn build_parallel(points: &[Point], cell: f64, threads: usize) -> Self {
        if threads <= 1 || points.len() < PARALLEL_BUILD_MIN_POINTS {
            return Self::build(points, cell);
        }
        assert!(
            cell.is_finite() && cell > 0.0,
            "cell side must be positive and finite, got {cell}"
        );
        let chunk = points.len().div_ceil(threads);
        let mut partials: Vec<HashMap<(i64, i64), Vec<u32>>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = (t * chunk).min(points.len());
                    let hi = ((t + 1) * chunk).min(points.len());
                    scope.spawn(move || {
                        let mut local: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
                        for (i, p) in points[lo..hi].iter().enumerate() {
                            local
                                .entry(Self::key(p, cell))
                                .or_default()
                                .push((lo + i) as u32);
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("grid build worker panicked"));
            }
        });
        CellGrid {
            cell,
            cells: Self::merge_partials(partials),
        }
    }

    /// Parallel counterpart of [`CellGrid::build_subset`]: partitions
    /// `subset` into contiguous ranges so bucket contents keep subset
    /// order, exactly as the serial build lays them out.
    pub fn build_subset_parallel(
        points: &[Point],
        subset: &[u32],
        cell: f64,
        threads: usize,
    ) -> Self {
        if threads <= 1 || subset.len() < PARALLEL_BUILD_MIN_POINTS {
            return Self::build_subset(points, subset, cell);
        }
        assert!(
            cell.is_finite() && cell > 0.0,
            "cell side must be positive and finite, got {cell}"
        );
        let chunk = subset.len().div_ceil(threads);
        let mut partials: Vec<HashMap<(i64, i64), Vec<u32>>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = subset
                .chunks(chunk)
                .map(|range| {
                    scope.spawn(move || {
                        let mut local: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
                        for &i in range {
                            let p = &points[i as usize];
                            local.entry(Self::key(p, cell)).or_default().push(i);
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("grid build worker panicked"));
            }
        });
        CellGrid {
            cell,
            cells: Self::merge_partials(partials),
        }
    }

    /// Merges per-thread bucket maps in thread order. Threads own
    /// contiguous, ascending input ranges, so appending their buckets in
    /// order reproduces the serial insertion sequence per cell.
    fn merge_partials(
        partials: Vec<HashMap<(i64, i64), Vec<u32>>>,
    ) -> HashMap<(i64, i64), Vec<u32>> {
        let mut iter = partials.into_iter();
        let mut cells = iter.next().unwrap_or_default();
        for partial in iter {
            for (k, mut v) in partial {
                cells.entry(k).or_default().append(&mut v);
            }
        }
        cells
    }

    #[inline]
    fn key(p: &Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// The cell side length the grid was built with.
    #[inline]
    pub fn cell(&self) -> f64 {
        self.cell
    }

    /// Calls `f` with the index of every stored point in the 3×3 cell
    /// block around `probe` — a superset of the points within distance
    /// `cell` of it. Callers apply their own exact distance test.
    #[inline]
    pub fn for_each_near<F: FnMut(u32)>(&self, probe: &Point, mut f: F) {
        let (cx, cy) = Self::key(probe, self.cell);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    for &i in bucket {
                        f(i);
                    }
                }
            }
        }
    }

    /// Indices of stored points within distance `radius` of `points[i]`,
    /// excluding `i` itself, in ascending index order. `radius` must be
    /// ≤ the grid's cell side for the scan to be exhaustive.
    ///
    /// A convenience wrapper over [`CellGrid::for_each_near`] for callers
    /// that want materialized, sorted neighbor lists.
    pub fn neighbors_within(&self, points: &[Point], i: u32, radius: f64) -> Vec<u32> {
        debug_assert!(radius <= self.cell + 1e-9);
        let p = points[i as usize];
        let r2 = radius * radius;
        let mut out = Vec::new();
        self.for_each_near(&p, |j| {
            if j != i && points[j as usize].dist2(&p) <= r2 {
                out.push(j);
            }
        });
        out.sort_unstable();
        out
    }

    /// Enumerates every unordered pair `(i, j)`, `i < j`, of stored points
    /// within distance `radius` of each other. `radius` must be ≤ the cell
    /// side. Each qualifying pair is reported exactly once.
    pub fn for_each_pair_within<F: FnMut(u32, u32)>(
        &self,
        points: &[Point],
        radius: f64,
        mut f: F,
    ) {
        debug_assert!(radius <= self.cell + 1e-9);
        let r2 = radius * radius;
        for (&(cx, cy), bucket) in &self.cells {
            // Within the home cell: strictly ordered index pairs.
            for (a, &i) in bucket.iter().enumerate() {
                let pi = points[i as usize];
                for &j in &bucket[a + 1..] {
                    if pi.dist2(&points[j as usize]) <= r2 {
                        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                        f(lo, hi);
                    }
                }
            }
            // Across cells: scan a forward half-plane of the 8 neighbors so
            // each cell pair is visited from exactly one side.
            for (dx, dy) in [(1, 0), (1, 1), (0, 1), (-1, 1)] {
                if let Some(other) = self.cells.get(&(cx + dx, cy + dy)) {
                    for &i in bucket {
                        let pi = points[i as usize];
                        for &j in other {
                            if pi.dist2(&points[j as usize]) <= r2 {
                                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                                f(lo, hi);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize, seed: u64) -> Vec<Point> {
        // Small LCG so the test needs no RNG dependency.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect()
    }

    fn brute_pairs(points: &[Point], r: f64) -> Vec<(u32, u32)> {
        let r2 = r * r;
        let mut out = Vec::new();
        for i in 0..points.len() {
            for j in i + 1..points.len() {
                if points[i].dist2(&points[j]) <= r2 {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    #[test]
    fn pairs_match_brute_force() {
        for seed in 0..4 {
            let pts = scatter(300, seed + 1);
            for r in [3.0, 10.0, 37.5] {
                let grid = CellGrid::build(&pts, r);
                let mut got = Vec::new();
                grid.for_each_pair_within(&pts, r, |i, j| got.push((i, j)));
                got.sort_unstable();
                assert_eq!(got, brute_pairs(&pts, r), "seed {seed} r {r}");
            }
        }
    }

    #[test]
    fn neighbors_match_brute_force() {
        let pts = scatter(200, 9);
        let r = 12.0;
        let grid = CellGrid::build(&pts, r);
        for i in 0..pts.len() as u32 {
            let got = grid.neighbors_within(&pts, i, r);
            let want: Vec<u32> = (0..pts.len() as u32)
                .filter(|&j| j != i && pts[j as usize].dist2(&pts[i as usize]) <= r * r)
                .collect();
            assert_eq!(got, want, "node {i}");
        }
    }

    #[test]
    fn subset_grid_keeps_original_indices() {
        let pts = scatter(100, 3);
        let subset: Vec<u32> = (0..100).filter(|i| i % 3 == 0).collect();
        let grid = CellGrid::build_subset(&pts, &subset, 15.0);
        let mut got = Vec::new();
        grid.for_each_pair_within(&pts, 15.0, |i, j| got.push((i, j)));
        got.sort_unstable();
        let want: Vec<(u32, u32)> = brute_pairs(&pts, 15.0)
            .into_iter()
            .filter(|&(i, j)| i % 3 == 0 && j % 3 == 0)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let pts = vec![
            Point::new(-0.5, -0.5),
            Point::new(0.5, 0.5),
            Point::new(-10.0, -10.0),
        ];
        let grid = CellGrid::build(&pts, 2.0);
        let mut got = Vec::new();
        grid.for_each_pair_within(&pts, 2.0, |i, j| got.push((i, j)));
        assert_eq!(got, vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_cell_panics() {
        CellGrid::build(&[], 0.0);
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        // Large enough to clear the PARALLEL_BUILD_MIN_POINTS gate so the
        // threaded path actually runs.
        let pts = scatter(PARALLEL_BUILD_MIN_POINTS + 500, 17);
        let serial = CellGrid::build(&pts, 4.0);
        for threads in [1, 2, 3, 4, 8] {
            let par = CellGrid::build_parallel(&pts, 4.0, threads);
            assert_eq!(par.cells, serial.cells, "threads {threads}");
        }
    }

    #[test]
    fn parallel_subset_build_is_bit_identical_to_serial() {
        let pts = scatter(40_000, 23);
        let subset: Vec<u32> = (0..pts.len() as u32).filter(|i| i % 2 == 0).collect();
        let serial = CellGrid::build_subset(&pts, &subset, 7.5);
        for threads in [2, 4, 7] {
            let par = CellGrid::build_subset_parallel(&pts, &subset, 7.5, threads);
            assert_eq!(par.cells, serial.cells, "threads {threads}");
        }
    }

    #[test]
    fn small_inputs_take_the_serial_path() {
        let pts = scatter(64, 5);
        let serial = CellGrid::build(&pts, 10.0);
        let par = CellGrid::build_parallel(&pts, 10.0, 8);
        assert_eq!(par.cells, serial.cells);
    }
}
