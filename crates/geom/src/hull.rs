//! Convex hull via Andrew's monotone chain (paper reference [3]).
//!
//! Hull vertices seed the network-edge detection of Algorithm 2: the
//! boundary construction walks inward from nodes "located on the hull of the
//! entire network" (§IV-E).

use crate::Point;

/// Computes the convex hull of `points`, returning **indices** into the
/// input slice in counter-clockwise order starting from the lexicographically
/// smallest point. Collinear points on hull edges are excluded.
///
/// Degenerate inputs: fewer than three distinct points return all distinct
/// point indices (0, 1, or 2 of them).
///
/// # Examples
///
/// ```
/// use wsn_geom::{convex_hull, Point};
/// let pts = [
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 0.0),
///     Point::new(1.0, 1.0), // interior
///     Point::new(2.0, 2.0),
///     Point::new(0.0, 2.0),
/// ];
/// let hull = convex_hull(&pts);
/// assert_eq!(hull, vec![0, 1, 3, 4]);
/// ```
pub fn convex_hull(points: &[Point]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .x
            .total_cmp(&points[b].x)
            .then(points[a].y.total_cmp(&points[b].y))
    });
    // Drop exact duplicates so they cannot create zero-length hull edges.
    order.dedup_by(|&mut a, &mut b| points[a] == points[b]);

    let n = order.len();
    if n <= 2 {
        return order;
    }

    let mut hull: Vec<usize> = Vec::with_capacity(2 * n);
    // Lower chain.
    for &i in &order {
        while hull.len() >= 2
            && Point::cross(
                &points[hull[hull.len() - 2]],
                &points[hull[hull.len() - 1]],
                &points[i],
            ) <= 0.0
        {
            hull.pop();
        }
        hull.push(i);
    }
    // Upper chain.
    let lower_len = hull.len() + 1;
    for &i in order.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && Point::cross(
                &points[hull[hull.len() - 2]],
                &points[hull[hull.len() - 1]],
                &points[i],
            ) <= 0.0
        {
            hull.pop();
        }
        hull.push(i);
    }
    hull.pop(); // final point repeats the first
    hull
}

/// Signed area of the polygon given by `vertices` (indices into `points`),
/// positive when counter-clockwise. Used to sanity-check hull orientation
/// and to estimate covered area in deployment diagnostics.
pub fn polygon_area(points: &[Point], vertices: &[usize]) -> f64 {
    if vertices.len() < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for k in 0..vertices.len() {
        let p = &points[vertices[k]];
        let q = &points[vertices[(k + 1) % vertices.len()]];
        acc += p.x * q.y - q.x * p.y;
    }
    acc / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_hull() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
            Point::new(0.5, 0.5),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull, vec![0, 1, 2, 3]);
        assert!((polygon_area(&pts, &hull) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn collinear_points_on_edges_excluded() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0), // on bottom edge
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull, vec![0, 2, 3, 4]);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::new(1.0, 2.0)]), vec![0]);
        let two = [Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        assert_eq!(convex_hull(&two), vec![0, 1]);
        // All-duplicate points collapse to one representative.
        let dup = [Point::new(3.0, 3.0); 4];
        assert_eq!(convex_hull(&dup).len(), 1);
    }

    #[test]
    fn all_collinear_returns_extremes_without_panic() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64, i as f64)).collect();
        let hull = convex_hull(&pts);
        // A fully collinear set has no 2-D hull; the chain keeps the two
        // extreme points.
        assert!(hull.contains(&0) && hull.contains(&4));
        assert!(hull.len() >= 2);
        assert_eq!(polygon_area(&pts, &hull), 0.0);
    }

    #[test]
    fn hull_is_counter_clockwise() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(5.0, 5.0),
            Point::new(1.0, 4.0),
            Point::new(2.0, 2.0),
        ];
        let hull = convex_hull(&pts);
        assert!(polygon_area(&pts, &hull) > 0.0);
    }
}
