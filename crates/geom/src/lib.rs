//! 2-D geometry substrate for WSN topologies.
//!
//! The paper's deployment model places nodes in a plane and derives both the
//! unit-disk graph (`wsn-topology`) and the E-model's directional structure
//! from plane geometry:
//!
//! * [`Point`] — node positions, distances;
//! * [`convex_hull`] — Andrew's monotone chain, used to seed network-edge
//!   detection (the paper's reference \[3\]);
//! * [`Quadrant`] — the quadrant partition `Q_1(u)..Q_4(u)` around a node,
//!   which indexes the E-model 4-tuple (§IV-E);
//! * [`max_angular_gap`] — the largest empty angular sector among a node's
//!   neighbor bearings, used by the boundary-construction step (the paper's
//!   reference \[6\]): a node whose neighbors leave a wide empty sector
//!   faces open space and lies on the network edge;
//! * [`CellGrid`] — a uniform spatial hash for radius-bounded neighbor and
//!   pair queries, the near-linear substitute for all-pairs scans in
//!   topology construction, gain tables and conflict-pair enumeration at
//!   10k–100k nodes.

mod grid;
mod hull;
mod point;
mod quadrant;

pub use grid::CellGrid;
pub use hull::{convex_hull, polygon_area};
pub use point::{Point, Rect};
pub use quadrant::{max_angular_gap, Quadrant};
