//! Points and axis-aligned rectangles.

/// A point in the deployment plane (units: feet, matching §V-A).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance — preferred in radius tests to avoid the
    /// square root on the hot UDG-construction path.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Component-wise subtraction as a vector `(dx, dy)`.
    #[inline]
    pub fn delta(&self, origin: &Point) -> (f64, f64) {
        (self.x - origin.x, self.y - origin.y)
    }

    /// Cross product of `(b - a) × (c - a)`; positive for a counter-clockwise
    /// turn. The primitive behind hull construction.
    #[inline]
    pub fn cross(a: &Point, b: &Point, c: &Point) -> f64 {
        (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    }

    /// Bearing of `self` as seen from `origin`, in radians within `[0, 2π)`.
    #[inline]
    pub fn bearing_from(&self, origin: &Point) -> f64 {
        let (dx, dy) = self.delta(origin);
        let a = dy.atan2(dx);
        if a < 0.0 {
            a + std::f64::consts::TAU
        } else {
            a
        }
    }
}

/// An axis-aligned rectangle, used as the deployment region.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    pub min: Point,
    pub max: Point,
}

impl Rect {
    /// Rectangle spanning `[0,0]` to `(w, h)`.
    pub const fn with_size(w: f64, h: f64) -> Self {
        Rect {
            min: Point::new(0.0, 0.0),
            max: Point::new(w, h),
        }
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area, for density computations (nodes per sq ft in §V-A).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// `true` when the point lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn cross_sign_encodes_turn() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let ccw = Point::new(1.0, 1.0);
        let cw = Point::new(1.0, -1.0);
        let collinear = Point::new(2.0, 0.0);
        assert!(Point::cross(&a, &b, &ccw) > 0.0);
        assert!(Point::cross(&a, &b, &cw) < 0.0);
        assert_eq!(Point::cross(&a, &b, &collinear), 0.0);
    }

    #[test]
    fn bearings_quadrants() {
        let o = Point::new(0.0, 0.0);
        assert!((Point::new(1.0, 0.0).bearing_from(&o) - 0.0).abs() < 1e-12);
        assert!(
            (Point::new(0.0, 1.0).bearing_from(&o) - std::f64::consts::FRAC_PI_2).abs() < 1e-12
        );
        let b = Point::new(0.0, -1.0).bearing_from(&o);
        assert!((b - 3.0 * std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((0.0..std::f64::consts::TAU).contains(&b));
    }

    #[test]
    fn rect_basics() {
        let r = Rect::with_size(50.0, 50.0);
        assert_eq!(r.area(), 2500.0);
        assert!(r.contains(&Point::new(0.0, 0.0)));
        assert!(r.contains(&Point::new(50.0, 50.0)));
        assert!(!r.contains(&Point::new(50.1, 0.0)));
        assert_eq!(r.center(), Point::new(25.0, 25.0));
    }
}
