//! Property tests for hull and quadrant invariants, plus bit-identity of
//! the parallel spatial-grid builds against the serial paths.

use proptest::prelude::*;
use wsn_geom::{convex_hull, max_angular_gap, polygon_area, CellGrid, Point, Quadrant};

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0f64..50.0, 0.0f64..50.0).prop_map(|(x, y)| Point::new(x, y)),
        3..60,
    )
}

/// `true` when `p` lies inside or on the convex polygon `hull` (CCW order).
fn inside_hull(points: &[Point], hull: &[usize], p: &Point) -> bool {
    if hull.len() < 3 {
        return true; // degenerate hulls impose no constraint here
    }
    (0..hull.len()).all(|k| {
        let a = &points[hull[k]];
        let b = &points[hull[(k + 1) % hull.len()]];
        Point::cross(a, b, p) >= -1e-9
    })
}

proptest! {
    #[test]
    fn hull_contains_all_points(pts in arb_points()) {
        let hull = convex_hull(&pts);
        for p in &pts {
            prop_assert!(inside_hull(&pts, &hull, p), "point {p:?} outside hull");
        }
    }

    #[test]
    fn hull_is_convex_and_ccw(pts in arb_points()) {
        let hull = convex_hull(&pts);
        if hull.len() >= 3 {
            prop_assert!(polygon_area(&pts, &hull) > 0.0);
            for k in 0..hull.len() {
                let a = &pts[hull[k]];
                let b = &pts[hull[(k + 1) % hull.len()]];
                let c = &pts[hull[(k + 2) % hull.len()]];
                prop_assert!(Point::cross(a, b, c) > 0.0, "non-strict turn at hull vertex {k}");
            }
        }
    }

    #[test]
    fn hull_invariant_under_shuffle(pts in arb_points()) {
        let hull_a: std::collections::BTreeSet<_> =
            convex_hull(&pts).into_iter().map(|i| (pts[i].x.to_bits(), pts[i].y.to_bits())).collect();
        let mut rev = pts.clone();
        rev.reverse();
        let hull_b: std::collections::BTreeSet<_> =
            convex_hull(&rev).into_iter().map(|i| (rev[i].x.to_bits(), rev[i].y.to_bits())).collect();
        prop_assert_eq!(hull_a, hull_b);
    }

    #[test]
    fn every_distinct_point_in_exactly_one_quadrant(
        (ox, oy) in (0.0f64..50.0, 0.0f64..50.0),
        (px, py) in (0.0f64..50.0, 0.0f64..50.0),
    ) {
        let o = Point::new(ox, oy);
        let p = Point::new(px, py);
        let q = Quadrant::of(&o, &p);
        if p == o {
            prop_assert_eq!(q, None);
        } else {
            let memberships = Quadrant::ALL.iter().filter(|&&c| Some(c) == q).count();
            prop_assert_eq!(memberships, 1);
        }
    }

    #[test]
    fn gaps_sum_to_full_circle(pts in arb_points()) {
        // The max gap is at least TAU / k for k neighbors.
        let o = Point::new(25.0, 25.0);
        let neighbors: Vec<Point> = pts.into_iter().filter(|p| *p != o).collect();
        let gap = max_angular_gap(&o, &neighbors);
        prop_assert!(gap > 0.0);
        prop_assert!(gap <= std::f64::consts::TAU + 1e-12);
        if !neighbors.is_empty() {
            prop_assert!(gap >= std::f64::consts::TAU / neighbors.len() as f64 - 1e-9);
        }
    }
}

/// Deterministic xorshift scatter: the strategies only draw a seed and
/// shape parameters, so cases stay cheap to generate and shrink even
/// though the point sets must exceed the parallel-build gate (~16k).
fn scatter(n: usize, seed: u64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Point::new(next() * 200.0, next() * 200.0))
        .collect()
}

/// Order-sensitive probe of the grid around `points[i]`: the 3×3 block
/// scan reports bucket contents in storage order, so equal outputs on
/// every probe certify per-bucket bit-identity, not just set equality.
fn near_order(grid: &CellGrid, points: &[Point], i: u32) -> Vec<u32> {
    let mut out = Vec::new();
    grid.for_each_near(&points[i as usize], |j| out.push(j));
    out
}

proptest! {
    // Each case builds grids over ≥16k points to clear the parallel gate;
    // a handful of cases keeps the suite fast while still varying seed,
    // size, cell geometry and thread count.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The threaded full build must be bit-identical to the serial one
    /// for every thread count, including non-dividing ones.
    #[test]
    fn parallel_grid_build_is_bit_identical(
        seed in 0u64..1_000_000,
        extra in 0usize..2_000,
        threads in 2usize..9,
        cell in 1.5f64..25.0,
    ) {
        let pts = scatter(16_384 + extra, seed);
        let serial = CellGrid::build(&pts, cell);
        let par = CellGrid::build_parallel(&pts, cell, threads);
        for i in (0..pts.len() as u32).step_by(131) {
            prop_assert_eq!(
                near_order(&par, &pts, i),
                near_order(&serial, &pts, i),
                "probe {} threads {}", i, threads
            );
        }
    }

    /// Subset builds keep original indices and subset order under
    /// partitioning.
    #[test]
    fn parallel_subset_build_is_bit_identical(
        seed in 0u64..1_000_000,
        stride in 1usize..4,
        threads in 2usize..9,
        cell in 1.5f64..25.0,
    ) {
        // The subset itself must clear the gate, so scale the base set by
        // the keep-stride.
        let pts = scatter((16_384 + 512) * stride, seed);
        let subset: Vec<u32> = (0..pts.len() as u32)
            .filter(|i| (*i as usize).is_multiple_of(stride))
            .collect();
        let serial = CellGrid::build_subset(&pts, &subset, cell);
        let par = CellGrid::build_subset_parallel(&pts, &subset, cell, threads);
        for &i in subset.iter().step_by(97) {
            prop_assert_eq!(
                near_order(&par, &pts, i),
                near_order(&serial, &pts, i),
                "probe {} threads {}", i, threads
            );
        }
    }
}
