//! Property tests for hull and quadrant invariants.

use proptest::prelude::*;
use wsn_geom::{convex_hull, max_angular_gap, polygon_area, Point, Quadrant};

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0f64..50.0, 0.0f64..50.0).prop_map(|(x, y)| Point::new(x, y)),
        3..60,
    )
}

/// `true` when `p` lies inside or on the convex polygon `hull` (CCW order).
fn inside_hull(points: &[Point], hull: &[usize], p: &Point) -> bool {
    if hull.len() < 3 {
        return true; // degenerate hulls impose no constraint here
    }
    (0..hull.len()).all(|k| {
        let a = &points[hull[k]];
        let b = &points[hull[(k + 1) % hull.len()]];
        Point::cross(a, b, p) >= -1e-9
    })
}

proptest! {
    #[test]
    fn hull_contains_all_points(pts in arb_points()) {
        let hull = convex_hull(&pts);
        for p in &pts {
            prop_assert!(inside_hull(&pts, &hull, p), "point {p:?} outside hull");
        }
    }

    #[test]
    fn hull_is_convex_and_ccw(pts in arb_points()) {
        let hull = convex_hull(&pts);
        if hull.len() >= 3 {
            prop_assert!(polygon_area(&pts, &hull) > 0.0);
            for k in 0..hull.len() {
                let a = &pts[hull[k]];
                let b = &pts[hull[(k + 1) % hull.len()]];
                let c = &pts[hull[(k + 2) % hull.len()]];
                prop_assert!(Point::cross(a, b, c) > 0.0, "non-strict turn at hull vertex {k}");
            }
        }
    }

    #[test]
    fn hull_invariant_under_shuffle(pts in arb_points()) {
        let hull_a: std::collections::BTreeSet<_> =
            convex_hull(&pts).into_iter().map(|i| (pts[i].x.to_bits(), pts[i].y.to_bits())).collect();
        let mut rev = pts.clone();
        rev.reverse();
        let hull_b: std::collections::BTreeSet<_> =
            convex_hull(&rev).into_iter().map(|i| (rev[i].x.to_bits(), rev[i].y.to_bits())).collect();
        prop_assert_eq!(hull_a, hull_b);
    }

    #[test]
    fn every_distinct_point_in_exactly_one_quadrant(
        (ox, oy) in (0.0f64..50.0, 0.0f64..50.0),
        (px, py) in (0.0f64..50.0, 0.0f64..50.0),
    ) {
        let o = Point::new(ox, oy);
        let p = Point::new(px, py);
        let q = Quadrant::of(&o, &p);
        if p == o {
            prop_assert_eq!(q, None);
        } else {
            let memberships = Quadrant::ALL.iter().filter(|&&c| Some(c) == q).count();
            prop_assert_eq!(memberships, 1);
        }
    }

    #[test]
    fn gaps_sum_to_full_circle(pts in arb_points()) {
        // The max gap is at least TAU / k for k neighbors.
        let o = Point::new(25.0, 25.0);
        let neighbors: Vec<Point> = pts.into_iter().filter(|p| *p != o).collect();
        let gap = max_angular_gap(&o, &neighbors);
        prop_assert!(gap > 0.0);
        prop_assert!(gap <= std::f64::consts::TAU + 1e-12);
        if !neighbors.is_empty() {
            prop_assert!(gap >= std::f64::consts::TAU / neighbors.len() as f64 - 1e-9);
        }
    }
}
