//! Property tests: threaded conflict-row full builds are bit-identical to
//! the serial path — same rows, same pair-test accounting — across random
//! topologies, candidate subsets and thread counts.

use proptest::prelude::*;
use wsn_bitset::NodeSet;
use wsn_geom::Point;
use wsn_interference::ConflictGraphBuilder;
use wsn_phy::ProtocolModel;
use wsn_topology::{NodeId, Topology};

/// Deterministic xorshift scatter (strategies draw only a seed, so the
/// dense deployments needed to clear the parallel pair gate stay cheap).
fn scatter(n: usize, seed: u64, span: f64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Point::new(next() * span, next() * span))
        .collect()
}

proptest! {
    // Dense 600–900-node instances produce well over the 4k candidate
    // pairs that gate the threaded path; a handful of cases keeps the
    // suite fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_full_build_is_bit_identical(
        seed in 0u64..1_000_000,
        n in 600usize..900,
        threads in 2usize..9,
        stride in 1usize..3,
    ) {
        let topo = Topology::unit_disk(scatter(n, seed, 30.0), 2.0);
        // Candidates: all nodes or every other node — subset builds take
        // the same partitioned path over a shorter pair list.
        let ids: Vec<NodeId> = (0..topo.len() as u32)
            .filter(|i| (*i as usize).is_multiple_of(stride))
            .map(NodeId)
            .collect();
        let mut unf = NodeSet::full(topo.len());
        unf.remove(0);

        let mut serial = ConflictGraphBuilder::new();
        serial.update_with(&ProtocolModel, &topo, &ids, &unf);
        let mut par = ConflictGraphBuilder::new();
        par.set_build_threads(threads);
        let pg = par.update_with(&ProtocolModel, &topo, &ids, &unf);

        let sg = serial.graph();
        prop_assert_eq!(pg.len(), sg.len());
        prop_assert_eq!(pg.candidates(), sg.candidates());
        for i in 0..pg.len() {
            prop_assert_eq!(pg.row(i), sg.row(i), "row {} drifted at {} threads", i, threads);
        }
        prop_assert_eq!(
            par.stats().pair_tests,
            serial.stats().pair_tests,
            "pair-test accounting drifted at {} threads", threads
        );
    }
}
