//! The UDG protocol interference model.
//!
//! Two concurrent senders `u` and `v` conflict when some *uninformed* node
//! would hear both: `N(u) ∩ N(v) ∩ W̄ ≠ ∅` (Eq. 1, constraint 3 — informed
//! common neighbors don't matter because they discard duplicates). This
//! crate provides:
//!
//! * [`conflicts`] — the pairwise predicate;
//! * [`ConflictGraph`] — the conflict relation over a candidate sender set,
//!   stored as bitset adjacency so the coloring crate can enumerate
//!   conflict-free sets with word-parallel operations;
//! * [`ConflictGraphBuilder`] — incremental maintenance of a conflict
//!   graph across the small state deltas of a broadcast search (uninformed
//!   set shrinks, candidate list churns by a few nodes), with cached
//!   per-pair witness sets and reusable row buffers;
//! * [`resolve_receptions`] — receiver-side collision resolution for
//!   simulating *unscheduled* protocols (e.g. naive flooding, where the
//!   broadcast storm of reference \[17\] shows up as collisions).
//!
//! Since the `wsn-phy` crate landed, the conflict *semantics* are
//! pluggable: [`ConflictGraphBuilder::update_with`] and
//! [`ConflictGraph::build_with_model`] accept any
//! [`wsn_phy::ConflictModel`] (protocol, pairwise SINR, K-channel
//! wrappers), maintaining graphs incrementally through the model's
//! witness-set factorization. The free functions here remain the protocol
//! model's fast paths and the `update`/`build` entry points are pinned to
//! them bit for bit.

mod builder;

pub use builder::{ConflictGraphBuilder, ConflictStats, WITNESS_RETEST_MIN_UNIVERSE};
pub use wsn_phy::ReceptionOutcome;

use wsn_bitset::NodeSet;
use wsn_phy::ConflictModel;
use wsn_topology::{NodeId, Topology};

/// `true` when concurrent transmissions by `u` and `v` would collide at
/// some member of `uninformed` (the paper's signal-conflict predicate).
#[inline]
pub fn conflicts(topo: &Topology, u: NodeId, v: NodeId, uninformed: &NodeSet) -> bool {
    topo.neighbor_set(u)
        .triple_intersects(topo.neighbor_set(v), uninformed)
}

/// The conflict relation over an ordered candidate sender list.
///
/// Indexes are positions in `candidates`, not node ids; adjacency is one
/// bitset row per candidate. Rows are symmetric and irreflexive.
#[derive(Clone, Debug)]
pub struct ConflictGraph {
    candidates: Vec<NodeId>,
    rows: Vec<NodeSet>,
    /// `(node, index)` sorted by node id — the candidate→index map behind
    /// [`ConflictGraph::index_of`].
    by_id: Vec<(NodeId, u32)>,
}

impl ConflictGraph {
    /// Builds the conflict graph of `candidates` against the uninformed set.
    ///
    /// `O(k²)` pairwise tests, each a fused word-parallel triple
    /// intersection; `k` (simultaneous eligible senders) is small compared
    /// to `n` in every workload the paper evaluates. Hot loops that build
    /// graphs per search state should prefer a reused
    /// [`ConflictGraphBuilder`] instead.
    pub fn build(topo: &Topology, candidates: &[NodeId], uninformed: &NodeSet) -> Self {
        Self::build_with_model(&wsn_phy::ProtocolModel, topo, candidates, uninformed)
    }

    /// As [`ConflictGraph::build`], under an arbitrary conflict model.
    /// One-shot; hot loops should prefer
    /// [`ConflictGraphBuilder::update_with`].
    pub fn build_with_model<M: ConflictModel>(
        model: &M,
        topo: &Topology,
        candidates: &[NodeId],
        uninformed: &NodeSet,
    ) -> Self {
        let k = candidates.len();
        let mut rows = vec![NodeSet::new(k); k];
        for i in 0..k {
            for j in (i + 1)..k {
                if model.conflicts(topo, candidates[i], candidates[j], uninformed) {
                    rows[i].insert(j);
                    rows[j].insert(i);
                }
            }
        }
        let mut cg = ConflictGraph {
            candidates: candidates.to_vec(),
            rows,
            by_id: Vec::new(),
        };
        cg.rebuild_index();
        cg
    }

    /// Rebuilds the sorted candidate→index map after `candidates` changed.
    fn rebuild_index(&mut self) {
        self.by_id.clear();
        self.by_id.extend(
            self.candidates
                .iter()
                .enumerate()
                .map(|(i, &u)| (u, i as u32)),
        );
        self.by_id.sort_unstable();
    }

    /// Index of candidate `u` in this graph, if present (`O(log k)`).
    #[inline]
    pub fn index_of(&self, u: NodeId) -> Option<usize> {
        self.by_id
            .binary_search_by_key(&u, |&(v, _)| v)
            .ok()
            .map(|p| self.by_id[p].1 as usize)
    }

    /// Number of candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// `true` when there are no candidates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The candidate list this graph indexes into.
    #[inline]
    pub fn candidates(&self) -> &[NodeId] {
        &self.candidates
    }

    /// Node id of candidate `i`.
    #[inline]
    pub fn node(&self, i: usize) -> NodeId {
        self.candidates[i]
    }

    /// Conflict row of candidate `i` (bitset over candidate indices).
    #[inline]
    pub fn row(&self, i: usize) -> &NodeSet {
        &self.rows[i]
    }

    /// `true` when candidates `i` and `j` conflict.
    #[inline]
    pub fn conflict(&self, i: usize, j: usize) -> bool {
        self.rows[i].contains(j)
    }

    /// `true` when candidate `i` conflicts with any member of `set`
    /// (bitset over candidate indices).
    #[inline]
    pub fn conflicts_with_set(&self, i: usize, set: &NodeSet) -> bool {
        self.rows[i].intersects(set)
    }

    /// Number of conflict edges.
    pub fn edge_count(&self) -> usize {
        self.rows.iter().map(NodeSet::len).sum::<usize>() / 2
    }
}

/// Resolves which uninformed nodes receive when all of `senders` transmit
/// concurrently under the *protocol model*: a node receives iff exactly
/// one of its neighbors is sending; two or more produce a collision (the
/// broadcast-storm failure mode of \[17\]).
///
/// Scheduled protocols never produce collisions (their sender sets are
/// conflict-free by construction — the schedule verifier asserts it); this
/// function exists to *simulate* unscheduled protocols and to double-check
/// schedules independently of the predicate used to build them. Other
/// conflict regimes resolve through their model's
/// [`wsn_phy::ConflictModel::resolve_receptions`].
pub fn resolve_receptions(
    topo: &Topology,
    senders: &NodeSet,
    uninformed: &NodeSet,
) -> ReceptionOutcome {
    wsn_phy::ProtocolModel.resolve_receptions(topo, senders, uninformed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::Point;

    /// The Figure 2(a) shape: 0-1, 0-2, 1-3, 2-3, 1-4 (our ids), conflict
    /// between 1 and 2 at uninformed 3.
    fn diamond() -> Topology {
        Topology::unit_disk(
            vec![
                Point::new(0.0, 0.0),  // 0
                Point::new(0.9, 0.7),  // 1
                Point::new(0.9, -0.7), // 2
                Point::new(1.8, 0.0),  // 3
                Point::new(1.4, 1.5),  // 4
            ],
            1.2,
        )
    }

    #[test]
    fn conflict_requires_uninformed_common_neighbor() {
        let t = diamond();
        let mut uninformed = NodeSet::full(5);
        uninformed.remove(0);
        uninformed.remove(1);
        uninformed.remove(2);
        // 1 and 2 share uninformed neighbor 3 → conflict.
        assert!(conflicts(&t, NodeId(1), NodeId(2), &uninformed));
        // Once 3 is informed, the conflict disappears (only 0 in common,
        // and 0 is informed).
        uninformed.remove(3);
        assert!(!conflicts(&t, NodeId(1), NodeId(2), &uninformed));
    }

    #[test]
    fn conflict_graph_structure() {
        let t = diamond();
        let mut uninformed = NodeSet::full(5);
        for i in [0usize, 1, 2] {
            uninformed.remove(i);
        }
        let cg = ConflictGraph::build(&t, &[NodeId(1), NodeId(2)], &uninformed);
        assert_eq!(cg.len(), 2);
        assert!(cg.conflict(0, 1));
        assert!(cg.conflict(1, 0));
        assert!(!cg.conflict(0, 0));
        assert_eq!(cg.edge_count(), 1);
        let mut chosen = NodeSet::new(2);
        chosen.insert(0);
        assert!(cg.conflicts_with_set(1, &chosen));
    }

    #[test]
    fn single_sender_reaches_all_uninformed_neighbors() {
        let t = diamond();
        let senders = NodeSet::from_indices(5, [0]);
        let uninformed = NodeSet::from_indices(5, [1, 2, 3, 4]);
        let out = resolve_receptions(&t, &senders, &uninformed);
        assert_eq!(out.received.to_vec(), vec![1, 2]);
        assert!(out.collided.is_empty());
    }

    #[test]
    fn concurrent_conflicting_senders_collide_at_common_neighbor() {
        let t = diamond();
        let senders = NodeSet::from_indices(5, [1, 2]);
        let uninformed = NodeSet::from_indices(5, [3, 4]);
        let out = resolve_receptions(&t, &senders, &uninformed);
        // 3 hears both 1 and 2 → collision; 4 hears only 1 → receives.
        assert_eq!(out.collided.to_vec(), vec![3]);
        assert_eq!(out.received.to_vec(), vec![4]);
    }

    #[test]
    fn informed_nodes_are_ignored() {
        let t = diamond();
        let senders = NodeSet::from_indices(5, [1, 2]);
        // 3 already informed → no collision recorded anywhere.
        let uninformed = NodeSet::from_indices(5, [4]);
        let out = resolve_receptions(&t, &senders, &uninformed);
        assert_eq!(out.received.to_vec(), vec![4]);
        assert!(out.collided.is_empty());
    }

    #[test]
    fn empty_sender_set_reaches_nobody() {
        let t = diamond();
        let out = resolve_receptions(&t, &NodeSet::new(5), &NodeSet::full(5));
        assert!(out.received.is_empty());
        assert!(out.collided.is_empty());
    }
}
