//! Incremental conflict-graph maintenance.
//!
//! The searches of `mlbs-core` build a conflict graph at *every* state, and
//! consecutive states are near-identical: an advance shrinks the uninformed
//! set by one coverage step and churns the candidate list by a few nodes.
//! Rebuilding from scratch repeats `O(k²)` pairwise tests that almost all
//! produce the answer they produced one state earlier.
//!
//! [`ConflictGraphBuilder`] exploits the witness-set factorization every
//! [`ConflictModel`] guarantees — `conflict(u, v, W̄) ⇔ wit(u, v) ∩ W̄ ≠ ∅`
//! for a fixed, `W̄`-independent witness set `wit(u, v)` (see the DESIGN
//! note in `wsn-phy`):
//!
//! * a node `d` *entering* `W̄` can only create edges on pairs whose
//!   witness set may contain `d` — for the protocol model
//!   ([`WitnessLocality::CommonNeighbors`]) every pair of candidates
//!   inside `N(d)` gains an edge directly, no test needed; for
//!   witness-checked models ([`WitnessLocality::EitherNeighborhood`],
//!   e.g. SINR) the affected pairs have ≥ 1 endpoint in `N(d)` and `d`'s
//!   membership in the cached witness set decides;
//! * a node `d` *leaving* `W̄` can only break edges on the same affected
//!   pairs — only those few pairs are retested;
//! * pairs untouched by the delta keep their edge state verbatim, and
//!   candidates present on both sides of a churn keep their rows (carried
//!   over under the new indexing).
//!
//! Retested pairs get their witness set computed once and cached for the
//! lifetime of an instance, so a retest scans a handful of witness nodes
//! instead of re-evaluating the predicate (for the protocol model below
//! [`WITNESS_RETEST_MIN_UNIVERSE`] the fused word-parallel triple
//! intersection is faster and the cache stays cold; SINR-style models,
//! whose predicate costs gain arithmetic, always prefer the cache). The
//! witness lists themselves live in one grow-only arena (`Vec<u32>`) with
//! the map holding `(offset, len)` handles — cold population appends to a
//! single allocation instead of boxing a slice per pair. Row storage,
//! index maps, the witness map and arena are scratch owned by the builder;
//! steady-state updates allocate next to nothing.
//!
//! Caches are keyed on both [`wsn_topology::Topology::token`] and
//! [`ConflictModel::fingerprint`]: handing the builder a different
//! topology *or* a different conflict regime resets it instead of mixing
//! graphs across semantics.

use crate::ConflictGraph;
use std::collections::HashMap;
use wsn_bitset::NodeSet;
use wsn_geom::CellGrid;
use wsn_phy::{ConflictModel, ProtocolModel, WitnessLocality};
use wsn_topology::{NodeId, Topology};

/// Work accounting for incremental conflict-graph maintenance.
///
/// `rows_built + rows_reused` is exactly the number of rows a
/// rebuild-per-update strategy would have computed, so the reduction the
/// builder achieves is `(rows_built + rows_reused) / rows_built`
/// (consumers that previously built *several* graphs per state, like the
/// OPT search, multiply that by their sharing factor).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConflictStats {
    /// Updates served by a from-scratch build.
    pub full_builds: usize,
    /// Updates served by the delta path.
    pub delta_updates: usize,
    /// Rows computed from scratch (fresh pairwise tests).
    pub rows_built: usize,
    /// Rows carried across an update and patched by delta.
    pub rows_reused: usize,
    /// Pairwise conflict evaluations performed (fused predicate calls for
    /// fresh pairs, witness scans for retests and membership checks).
    pub pair_tests: usize,
}

impl ConflictStats {
    /// Component-wise `self − earlier`, for windowed accounting.
    pub fn since(&self, earlier: &ConflictStats) -> ConflictStats {
        ConflictStats {
            full_builds: self.full_builds - earlier.full_builds,
            delta_updates: self.delta_updates - earlier.delta_updates,
            rows_built: self.rows_built - earlier.rows_built,
            rows_reused: self.rows_reused - earlier.rows_reused,
            pair_tests: self.pair_tests - earlier.pair_tests,
        }
    }
}

/// Sentinel for "node is not a candidate" in the slot maps.
const NO_SLOT: u32 = u32::MAX;

/// Default universe size (in nodes) above which retests go through the
/// cached witness sets. Below it a `NodeSet` spans only a few words and the
/// fused triple intersection is faster than any cache (measured on the
/// paper grid); above it witness scans avoid touching ever-wider word rows
/// — up to the point where the predicate's own degree-local path takes
/// over (universe > 64·(deg u + deg v), re-measured at 10k nodes in
/// `BENCH_anytime.json`), past which retests go fresh again.
/// Tunable per builder via
/// [`ConflictGraphBuilder::set_witness_retest_min_universe`]; the
/// `witness_threshold` group in the `substrates` bench measures both sides
/// of the crossover so this constant can be re-derived instead of trusted.
/// Models with [`ConflictModel::prefers_witness_cache`] (SINR) bypass the
/// threshold: their predicate is always costlier than a witness scan.
pub const WITNESS_RETEST_MIN_UNIVERSE: usize = 1024;

/// Candidate count above which a from-scratch build enumerates pairs
/// through a spatial grid (when the model certifies a
/// [`ConflictModel::witness_range`]) instead of testing all `O(k²)` pairs.
/// Below this the grid's construction overhead dwarfs the saved tests.
const SPATIAL_BUILD_MIN_CANDIDATES: usize = 64;

/// Geometric pair count above which a multi-threaded full build fans the
/// conflict-predicate evaluations out across worker threads. One pair test
/// is a short bitset intersection, so fewer pairs than this finish before
/// the threads are up.
const PARALLEL_FULL_BUILD_MIN_PAIRS: usize = 4_096;

/// Reusable, incrementally-updated [`ConflictGraph`] factory.
///
/// One builder serves one `(topology, model)` pair between
/// [`ConflictGraphBuilder::reset`] calls; [`ConflictGraphBuilder::update`]
/// (protocol model) and [`ConflictGraphBuilder::update_with`] (any model)
/// produce graphs bit-identical to from-scratch builds on the same inputs
/// (the workspace proptests assert this under random delta sequences).
#[derive(Clone, Debug)]
pub struct ConflictGraphBuilder {
    graph: ConflictGraph,
    /// `true` once `graph` reflects a previous `update` for this universe.
    valid: bool,
    /// Uninformed set of the previous update.
    uninformed: NodeSet,
    /// node → slot in the *current* candidate list.
    slot_of: Vec<u32>,
    /// Back buffer for `slot_of` during re-indexing.
    slot_next: Vec<u32>,
    /// Back buffer for rows during re-indexing.
    prev_rows: Vec<NodeSet>,
    /// Back buffer for the candidate list during re-indexing.
    prev_candidates: Vec<NodeId>,
    /// Cached witness sets, keyed by packed node-id pair; values are
    /// `(offset, len)` handles into the arena.
    witness: HashMap<u64, (u32, u32)>,
    /// Arena backing every cached witness list — one grow-only allocation
    /// instead of a boxed slice per pair.
    warena: Vec<u32>,
    /// Scratch: witness collection buffer.
    wbuf: Vec<u32>,
    /// Scratch: candidate slots adjacent to one changed node.
    adj_slots: Vec<u32>,
    /// Scratch marker over candidate slots (pair dedup in the
    /// either-neighborhood delta paths).
    adj_mark: NodeSet,
    /// Scratch: new-indexing slots of kept candidates (either-neighborhood
    /// reindex).
    kept_slots: Vec<u32>,
    /// Scratch: nodes that left W̄ since the previous update.
    removed_buf: Vec<u32>,
    /// Scratch: nodes that entered W̄ since the previous update.
    added_buf: Vec<u32>,
    /// [`Topology::token`] of the topology the cached state belongs to
    /// (0 = none). A different token forces a reset even at equal size.
    topo_token: u64,
    /// [`ConflictModel::fingerprint`] of the model the cached state
    /// belongs to (0 = none). A different model forces a reset, so graphs
    /// and witness caches never mix conflict regimes.
    model_fp: u64,
    universe: usize,
    /// Universe size at which retests switch to cached witness scans.
    witness_min_universe: usize,
    /// Worker threads a full build may fan pair tests out to (1 = serial).
    build_threads: usize,
    stats: ConflictStats,
}

impl Default for ConflictGraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ConflictGraphBuilder {
    /// Creates an empty builder; it sizes itself on first use.
    pub fn new() -> Self {
        ConflictGraphBuilder {
            graph: ConflictGraph {
                candidates: Vec::new(),
                rows: Vec::new(),
                by_id: Vec::new(),
            },
            valid: false,
            uninformed: NodeSet::new(0),
            slot_of: Vec::new(),
            slot_next: Vec::new(),
            prev_rows: Vec::new(),
            prev_candidates: Vec::new(),
            witness: HashMap::new(),
            warena: Vec::new(),
            wbuf: Vec::new(),
            adj_slots: Vec::new(),
            adj_mark: NodeSet::new(0),
            kept_slots: Vec::new(),
            removed_buf: Vec::new(),
            added_buf: Vec::new(),
            topo_token: 0,
            model_fp: 0,
            universe: 0,
            witness_min_universe: WITNESS_RETEST_MIN_UNIVERSE,
            build_threads: 1,
            stats: ConflictStats::default(),
        }
    }

    /// Worker threads full builds may use (1 = serial, the default).
    #[inline]
    pub fn build_threads(&self) -> usize {
        self.build_threads
    }

    /// Lets from-scratch builds fan conflict-pair tests out across
    /// `threads` scoped workers. Only large spatial builds under models
    /// whose predicate is pure (no witness-cache preference) actually
    /// parallelize — everything else, and every delta path, keeps the
    /// serial code — and the produced graphs and stats are bit-identical
    /// either way (row inserts commute; the flags are computed in pair
    /// order). Like the witness knob, the setting survives
    /// [`ConflictGraphBuilder::reset`]: it is configuration, not cache.
    pub fn set_build_threads(&mut self, threads: usize) {
        self.build_threads = threads.max(1);
    }

    /// The universe size at which retests switch from fused predicate
    /// calls to cached witness scans
    /// ([`WITNESS_RETEST_MIN_UNIVERSE`] by default).
    #[inline]
    pub fn witness_retest_min_universe(&self) -> usize {
        self.witness_min_universe
    }

    /// Overrides the witness-retest crossover for this builder (`0` =
    /// always use the witness cache, `usize::MAX` = never). The setting
    /// survives [`ConflictGraphBuilder::reset`] — it is a tuning knob, not
    /// cached state — so benchmarks can re-measure the default crossover on
    /// their own hardware.
    pub fn set_witness_retest_min_universe(&mut self, min_universe: usize) {
        self.witness_min_universe = min_universe;
    }

    /// Invalidates all cached state and re-sizes for a universe of `n`
    /// nodes, keeping allocations. [`ConflictGraphBuilder::update_with`]
    /// calls this automatically whenever it sees a different
    /// [`Topology::token`] or model fingerprint, so switching topologies or
    /// regimes is safe without manual resets; call it yourself to drop
    /// caches early.
    pub fn reset(&mut self, n: usize) {
        self.valid = false;
        self.topo_token = 0;
        self.model_fp = 0;
        self.universe = n;
        self.uninformed.reset(n);
        self.slot_of.clear();
        self.slot_of.resize(n, NO_SLOT);
        self.slot_next.clear();
        self.slot_next.resize(n, NO_SLOT);
        self.witness.clear();
        self.warena.clear();
        self.graph.candidates.clear();
        self.graph.rows.clear();
        self.graph.by_id.clear();
        self.stats = ConflictStats::default();
    }

    /// Work accounting since the last [`ConflictGraphBuilder::reset`].
    #[inline]
    pub fn stats(&self) -> &ConflictStats {
        &self.stats
    }

    /// The most recently produced graph.
    #[inline]
    pub fn graph(&self) -> &ConflictGraph {
        &self.graph
    }

    /// The pair's witness set (sorted ascending), computed on first touch
    /// and cached in the builder's arena for the lifetime of the
    /// `(topology, model)` binding — the same cache retests read, exposed
    /// so schedulers layered on the builder (e.g. the anytime local-search
    /// tier) can derive per-pair conflict deadlines without recollecting.
    ///
    /// Must be called under the same `(topology, model)` the last update
    /// ran with; a mismatch would silently mix witness semantics, so it
    /// panics instead.
    pub fn witnesses<M: ConflictModel>(
        &mut self,
        model: &M,
        topo: &Topology,
        u: NodeId,
        v: NodeId,
    ) -> &[u32] {
        assert_eq!(
            (topo.token(), model.fingerprint()),
            (self.topo_token, self.model_fp),
            "witnesses() requires the (topology, model) pair of the last update"
        );
        let (off, len) = self.witness_range(model, topo, u, v);
        &self.warena[off..off + len]
    }

    /// Produces the protocol-model conflict graph of `candidates` against
    /// `uninformed`, reusing as much of the previous graph as the delta
    /// allows. Row indices match `candidates` order exactly, as with
    /// [`ConflictGraph::build`].
    pub fn update(
        &mut self,
        topo: &Topology,
        candidates: &[NodeId],
        uninformed: &NodeSet,
    ) -> &ConflictGraph {
        self.update_with(&ProtocolModel, topo, candidates, uninformed)
    }

    /// As [`ConflictGraphBuilder::update`], under an arbitrary
    /// [`ConflictModel`]. The default protocol model takes exactly the
    /// pre-model code paths (pinned by the substrate regression tests).
    pub fn update_with<M: ConflictModel>(
        &mut self,
        model: &M,
        topo: &Topology,
        candidates: &[NodeId],
        uninformed: &NodeSet,
    ) -> &ConflictGraph {
        let n = topo.len();
        debug_assert_eq!(uninformed.universe(), n);
        let fp = model.fingerprint();
        if n != self.universe || topo.token() != self.topo_token || fp != self.model_fp {
            self.reset(n);
            self.topo_token = topo.token();
            self.model_fp = fp;
        }
        // Cost model: patching visits the candidate-neighborhood of every
        // changed node (`avg_deg` slot lookups each) and then retests the
        // affected pairs — for common-neighbor witnesses that is quadratic
        // in the expected number of candidates adjacent to a changed node
        // (`deg · k/n` under uniform density); for either-neighborhood
        // witnesses each adjacent candidate pairs with the whole list. A
        // full build runs `k(k−1)/2` pair tests. Prefer the delta exactly
        // when it is the cheaper side: sibling states and late-broadcast
        // advances (small `changed`, large `k`) patch; early wide advances
        // rebuild. This is the fallback-to-full-re-sum rule of the
        // `wsn-phy` DESIGN note.
        let k = candidates.len();
        let n_f = n.max(1) as f64;
        let changed = self.changed_count(uninformed) as f64;
        let avg_deg = topo.average_degree();
        let est_c = avg_deg * (k as f64 / n_f).min(1.0);
        let per_changed = match model.locality() {
            WitnessLocality::CommonNeighbors => 1.0 + avg_deg + est_c * est_c / 2.0,
            WitnessLocality::EitherNeighborhood => 1.0 + avg_deg + est_c * k as f64,
        };
        let delta_cost = changed * per_changed;
        let full_cost = (k + k * k.saturating_sub(1) / 2) as f64;
        if !self.valid || delta_cost > full_cost {
            self.full_build(model, topo, candidates, uninformed);
        } else if candidates == self.graph.candidates.as_slice() {
            self.patch_in_place(model, topo, uninformed);
        } else {
            self.reindex(model, topo, candidates, uninformed);
        }
        self.uninformed.copy_from(uninformed);
        self.valid = true;
        &self.graph
    }

    /// `|old W̄ △ new W̄|`, cheap popcount guard for the delta heuristics.
    fn changed_count(&self, uninformed: &NodeSet) -> usize {
        self.uninformed
            .words()
            .iter()
            .zip(uninformed.words())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Evaluates the conflict predicate for one *fresh* pair (full builds,
    /// newcomer rows). Models that prefer the witness cache evaluate
    /// through it — the expensive predicate arithmetic runs once per pair
    /// per instance — everyone else calls the fused predicate directly.
    fn pair_conflicts_fresh<M: ConflictModel>(
        &mut self,
        model: &M,
        topo: &Topology,
        u: NodeId,
        v: NodeId,
        unf: &NodeSet,
    ) -> bool {
        self.stats.pair_tests += 1;
        if model.prefers_witness_cache() {
            let (off, len) = self.witness_range(model, topo, u, v);
            self.warena[off..off + len]
                .iter()
                .any(|&x| unf.contains(x as usize))
        } else {
            model.conflicts(topo, u, v, unf)
        }
    }

    /// Retests a pair whose edge state may have changed. On wide universes
    /// (or always, for cache-preferring models) the cached witness set
    /// pays: the same pairs are retested over and over as witnesses drain
    /// out of `W̄`, and scanning a handful of cached witness nodes beats
    /// re-evaluating the predicate. Below the threshold the fused
    /// predicate is a few words long and wins outright (measured on the
    /// paper grid), so the cache stays cold there.
    fn pair_retest<M: ConflictModel>(
        &mut self,
        model: &M,
        topo: &Topology,
        u: NodeId,
        v: NodeId,
        unf: &NodeSet,
    ) -> bool {
        if !model.prefers_witness_cache() && self.witness_min_universe > 0 {
            // The fresh predicate wins on both sides of the cache band:
            // below `witness_min_universe` the fused bitset intersection
            // spans only a few words, and above 64·(deg u + deg v) the
            // protocol predicate switches to its degree-local sorted-merge
            // path — O(du+dv) regardless of universe width — which the 10k
            // crossover re-measurement (BENCH_anytime.json) shows beating
            // cached witness scans. Forcing via the knob still works:
            // 0 = always cache, `usize::MAX` = never.
            let degree_local = self.universe > 64 * (topo.degree(u) + topo.degree(v));
            if self.universe < self.witness_min_universe || degree_local {
                return self.pair_conflicts_fresh(model, topo, u, v, unf);
            }
        }
        let (off, len) = self.witness_range(model, topo, u, v);
        self.stats.pair_tests += 1;
        self.warena[off..off + len]
            .iter()
            .any(|&x| unf.contains(x as usize))
    }

    /// The arena span of the pair's cached witness set, computing and
    /// appending it on first touch.
    fn witness_range<M: ConflictModel>(
        &mut self,
        model: &M,
        topo: &Topology,
        u: NodeId,
        v: NodeId,
    ) -> (usize, usize) {
        let key = pack_pair(u, v);
        if let Some(&(off, len)) = self.witness.get(&key) {
            return (off as usize, len as usize);
        }
        let mut wbuf = std::mem::take(&mut self.wbuf);
        model.collect_witnesses(topo, u, v, &mut wbuf);
        let off = self.warena.len();
        let len = wbuf.len();
        self.warena.extend_from_slice(&wbuf);
        self.witness.insert(key, (off as u32, len as u32));
        self.wbuf = wbuf;
        (off, len)
    }

    /// `true` when node `d` belongs to the pair's witness set (witness
    /// lists are sorted ascending by contract).
    fn witness_contains<M: ConflictModel>(
        &mut self,
        model: &M,
        topo: &Topology,
        u: NodeId,
        v: NodeId,
        d: u32,
    ) -> bool {
        self.stats.pair_tests += 1;
        let (off, len) = self.witness_range(model, topo, u, v);
        self.warena[off..off + len].binary_search(&d).is_ok()
    }

    /// From-scratch build into the reused row arena.
    ///
    /// When the model certifies a geometric witness bound
    /// ([`ConflictModel::witness_range`]) and the candidate list is large,
    /// candidate pairs are enumerated through a [`CellGrid`] instead of
    /// all-pairs: pairs farther apart than the bound provably have empty
    /// witness sets, so skipping them leaves the graph bit-identical while
    /// the pair-test count drops from `O(k²)` to the geometric pair count —
    /// the difference that makes 10k–100k-candidate builds near-linear.
    fn full_build<M: ConflictModel>(
        &mut self,
        model: &M,
        topo: &Topology,
        candidates: &[NodeId],
        unf: &NodeSet,
    ) {
        let k = candidates.len();
        self.clear_slots();
        self.graph.candidates.clear();
        self.graph.candidates.extend_from_slice(candidates);
        for (i, &u) in candidates.iter().enumerate() {
            self.slot_of[u.idx()] = i as u32;
        }
        prepare_rows(&mut self.graph.rows, k);
        let spatial = if k >= SPATIAL_BUILD_MIN_CANDIDATES {
            model.witness_range(topo)
        } else {
            None
        };
        if let Some(range) = spatial {
            let ids: Vec<u32> = candidates.iter().map(|c| c.0).collect();
            let grid =
                CellGrid::build_subset_parallel(topo.positions(), &ids, range, self.build_threads);
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            grid.for_each_pair_within(topo.positions(), range, |a, b| pairs.push((a, b)));
            if self.build_threads > 1
                && !model.prefers_witness_cache()
                && pairs.len() >= PARALLEL_FULL_BUILD_MIN_PAIRS
            {
                // Fan the pure predicate out over row blocks; fill rows
                // serially afterwards in the same pair order, so the graph
                // is bit-identical to the serial build.
                let flags = parallel_pair_flags(model, topo, unf, &pairs, self.build_threads);
                self.stats.pair_tests += pairs.len();
                for (&(a, b), &hit) in pairs.iter().zip(&flags) {
                    if hit {
                        let i = self.slot_of[a as usize] as usize;
                        let j = self.slot_of[b as usize] as usize;
                        self.graph.rows[i].insert(j);
                        self.graph.rows[j].insert(i);
                    }
                }
            } else {
                for (a, b) in pairs {
                    let i = self.slot_of[a as usize] as usize;
                    let j = self.slot_of[b as usize] as usize;
                    if self.pair_conflicts_fresh(model, topo, NodeId(a), NodeId(b), unf) {
                        self.graph.rows[i].insert(j);
                        self.graph.rows[j].insert(i);
                    }
                }
            }
        } else {
            for i in 0..k {
                for j in (i + 1)..k {
                    if self.pair_conflicts_fresh(model, topo, candidates[i], candidates[j], unf) {
                        self.graph.rows[i].insert(j);
                        self.graph.rows[j].insert(i);
                    }
                }
            }
        }
        self.graph.rebuild_index();
        self.stats.full_builds += 1;
        self.stats.rows_built += k;
    }

    /// Splits `old W̄ △ new W̄` into the removed / added scratch buffers.
    fn split_delta(&mut self, unf: &NodeSet) {
        self.removed_buf.clear();
        self.added_buf.clear();
        for (wi, (&old, &new)) in self.uninformed.words().iter().zip(unf.words()).enumerate() {
            let mut gone = old & !new;
            while gone != 0 {
                self.removed_buf
                    .push((wi * 64) as u32 + gone.trailing_zeros());
                gone &= gone - 1;
            }
            let mut fresh = new & !old;
            while fresh != 0 {
                self.added_buf
                    .push((wi * 64) as u32 + fresh.trailing_zeros());
                fresh &= fresh - 1;
            }
        }
    }

    /// Same candidates, different uninformed set: patch rows in place.
    fn patch_in_place<M: ConflictModel>(&mut self, model: &M, topo: &Topology, unf: &NodeSet) {
        let k = self.graph.candidates.len();
        self.split_delta(unf);
        match model.locality() {
            WitnessLocality::CommonNeighbors => {
                // Nodes that left W̄ can only break edges among their
                // neighbors.
                for di in 0..self.removed_buf.len() {
                    let d = self.removed_buf[di] as usize;
                    self.collect_adjacent_slots(topo, d);
                    for a_pos in 0..self.adj_slots.len() {
                        let a = self.adj_slots[a_pos] as usize;
                        for b_pos in (a_pos + 1)..self.adj_slots.len() {
                            let b = self.adj_slots[b_pos] as usize;
                            if self.graph.rows[a].contains(b) {
                                let (u, v) = (self.graph.candidates[a], self.graph.candidates[b]);
                                if !self.pair_retest(model, topo, u, v, unf) {
                                    self.graph.rows[a].remove(b);
                                    self.graph.rows[b].remove(a);
                                }
                            }
                        }
                    }
                }
                // Nodes that entered W̄ are themselves fresh witnesses:
                // every candidate pair hearing them now conflicts, no test
                // needed.
                for di in 0..self.added_buf.len() {
                    let d = self.added_buf[di] as usize;
                    self.collect_adjacent_slots(topo, d);
                    for a_pos in 0..self.adj_slots.len() {
                        let a = self.adj_slots[a_pos] as usize;
                        for b_pos in (a_pos + 1)..self.adj_slots.len() {
                            let b = self.adj_slots[b_pos] as usize;
                            self.graph.rows[a].insert(b);
                            self.graph.rows[b].insert(a);
                        }
                    }
                }
            }
            WitnessLocality::EitherNeighborhood => {
                // Affected pairs have ≥ 1 endpoint adjacent to the changed
                // node; a changed node's witness-ness is decided per pair
                // from the cached witness set.
                for di in 0..self.removed_buf.len() {
                    let d = self.removed_buf[di];
                    self.collect_adjacent_slots(topo, d as usize);
                    self.patch_either_pairs(model, topo, unf, k, d, false, false);
                }
                for di in 0..self.added_buf.len() {
                    let d = self.added_buf[di];
                    self.collect_adjacent_slots(topo, d as usize);
                    self.patch_either_pairs(model, topo, unf, k, d, true, false);
                }
            }
        }
        self.stats.delta_updates += 1;
        self.stats.rows_reused += k;
    }

    /// Either-neighborhood delta step for one changed node `d`: walk every
    /// pair with ≥ 1 endpoint in `adj_slots` (deduplicated when both
    /// endpoints are adjacent). The inner endpoint ranges over all `k`
    /// current slots, or — mid-reindex, with `kept_only` — over
    /// `kept_slots` (newcomer pairs are tested fresh separately). `adding`
    /// decides the direction: an entering witness can only create edges
    /// (cached membership check), a leaving one can only break them
    /// (retest against the new `W̄`).
    #[allow(clippy::too_many_arguments)]
    fn patch_either_pairs<M: ConflictModel>(
        &mut self,
        model: &M,
        topo: &Topology,
        unf: &NodeSet,
        k: usize,
        d: u32,
        adding: bool,
        kept_only: bool,
    ) {
        self.adj_mark.reset(k);
        for pos in 0..self.adj_slots.len() {
            self.adj_mark.insert(self.adj_slots[pos] as usize);
        }
        let inner_len = if kept_only { self.kept_slots.len() } else { k };
        for pos in 0..self.adj_slots.len() {
            let a = self.adj_slots[pos] as usize;
            for bi in 0..inner_len {
                let b = if kept_only {
                    self.kept_slots[bi] as usize
                } else {
                    bi
                };
                if b == a || (self.adj_mark.contains(b) && b < a) {
                    continue;
                }
                let has_edge = self.graph.rows[a].contains(b);
                let (u, v) = (self.graph.candidates[a], self.graph.candidates[b]);
                if adding {
                    if !has_edge && self.witness_contains(model, topo, u, v, d) {
                        self.graph.rows[a].insert(b);
                        self.graph.rows[b].insert(a);
                    }
                } else if has_edge && !self.pair_retest(model, topo, u, v, unf) {
                    self.graph.rows[a].remove(b);
                    self.graph.rows[b].remove(a);
                }
            }
        }
    }

    /// Candidate list changed: carry rows of kept candidates into the new
    /// indexing, patch them for the uninformed delta, and build fresh rows
    /// only for newcomers.
    fn reindex<M: ConflictModel>(
        &mut self,
        model: &M,
        topo: &Topology,
        candidates: &[NodeId],
        unf: &NodeSet,
    ) {
        let k = candidates.len();
        for (i, &u) in candidates.iter().enumerate() {
            self.slot_next[u.idx()] = i as u32;
        }
        let kept = candidates
            .iter()
            .filter(|u| self.slot_of[u.idx()] != NO_SLOT)
            .count();
        if kept * 2 < k {
            // Too much churn for the carry to pay off.
            for &u in candidates {
                self.slot_next[u.idx()] = NO_SLOT;
            }
            self.full_build(model, topo, candidates, unf);
            return;
        }

        std::mem::swap(&mut self.graph.rows, &mut self.prev_rows);
        std::mem::swap(&mut self.graph.candidates, &mut self.prev_candidates);
        self.graph.candidates.clear();
        self.graph.candidates.extend_from_slice(candidates);
        prepare_rows(&mut self.graph.rows, k);

        // Carry: every old edge whose endpoints both survived.
        for (i_old, &u) in self.prev_candidates.iter().enumerate() {
            let ni = self.slot_next[u.idx()];
            if ni == NO_SLOT {
                continue;
            }
            for j_old in self.prev_rows[i_old].iter() {
                if j_old <= i_old {
                    continue;
                }
                let nj = self.slot_next[self.prev_candidates[j_old].idx()];
                if nj != NO_SLOT {
                    self.graph.rows[ni as usize].insert(nj as usize);
                    self.graph.rows[nj as usize].insert(ni as usize);
                }
            }
        }

        // Patch kept-kept pairs for the uninformed delta (newcomer pairs
        // are tested fresh below, against the new set directly).
        self.split_delta(unf);
        match model.locality() {
            WitnessLocality::CommonNeighbors => {
                for di in 0..self.removed_buf.len() {
                    let d = self.removed_buf[di] as usize;
                    self.collect_adjacent_kept_slots(topo, d);
                    for a_pos in 0..self.adj_slots.len() {
                        let a = self.adj_slots[a_pos] as usize;
                        for b_pos in (a_pos + 1)..self.adj_slots.len() {
                            let b = self.adj_slots[b_pos] as usize;
                            if self.graph.rows[a].contains(b) {
                                let (u, v) = (self.graph.candidates[a], self.graph.candidates[b]);
                                if !self.pair_retest(model, topo, u, v, unf) {
                                    self.graph.rows[a].remove(b);
                                    self.graph.rows[b].remove(a);
                                }
                            }
                        }
                    }
                }
                for di in 0..self.added_buf.len() {
                    let d = self.added_buf[di] as usize;
                    self.collect_adjacent_kept_slots(topo, d);
                    for a_pos in 0..self.adj_slots.len() {
                        let a = self.adj_slots[a_pos] as usize;
                        for b_pos in (a_pos + 1)..self.adj_slots.len() {
                            let b = self.adj_slots[b_pos] as usize;
                            self.graph.rows[a].insert(b);
                            self.graph.rows[b].insert(a);
                        }
                    }
                }
            }
            WitnessLocality::EitherNeighborhood => {
                self.kept_slots.clear();
                for (i, &u) in candidates.iter().enumerate() {
                    if self.slot_of[u.idx()] != NO_SLOT {
                        self.kept_slots.push(i as u32);
                    }
                }
                for di in 0..self.removed_buf.len() {
                    let d = self.removed_buf[di];
                    self.collect_adjacent_kept_slots(topo, d as usize);
                    self.patch_either_pairs(model, topo, unf, k, d, false, true);
                }
                for di in 0..self.added_buf.len() {
                    let d = self.added_buf[di];
                    self.collect_adjacent_kept_slots(topo, d as usize);
                    self.patch_either_pairs(model, topo, unf, k, d, true, true);
                }
            }
        }

        // Fresh rows for newcomers, against everyone.
        for a in 0..k {
            let u = candidates[a];
            if self.slot_of[u.idx()] != NO_SLOT {
                continue; // kept, handled above
            }
            for (b, &v) in candidates.iter().enumerate() {
                if b == a || (self.slot_of[v.idx()] == NO_SLOT && b < a) {
                    continue; // self, or newcomer pair already tested
                }
                if self.pair_conflicts_fresh(model, topo, u, v, unf) {
                    self.graph.rows[a].insert(b);
                    self.graph.rows[b].insert(a);
                }
            }
        }

        // Promote the new slot map and clean the old one for reuse.
        std::mem::swap(&mut self.slot_of, &mut self.slot_next);
        for &u in &self.prev_candidates {
            self.slot_next[u.idx()] = NO_SLOT;
        }
        self.graph.rebuild_index();
        self.stats.delta_updates += 1;
        self.stats.rows_reused += kept;
        self.stats.rows_built += k - kept;
    }

    /// Clears `slot_of` entries of the current candidate list.
    fn clear_slots(&mut self) {
        for i in 0..self.graph.candidates.len() {
            let u = self.graph.candidates[i];
            self.slot_of[u.idx()] = NO_SLOT;
        }
    }

    /// Fills `adj_slots` with current-graph slots of candidates adjacent
    /// to node `d`.
    fn collect_adjacent_slots(&mut self, topo: &Topology, d: usize) {
        self.adj_slots.clear();
        for &v in topo.neighbors(NodeId(d as u32)) {
            let s = self.slot_of[v.idx()];
            if s != NO_SLOT {
                self.adj_slots.push(s);
            }
        }
    }

    /// As [`Self::collect_adjacent_slots`], mid-reindex: resolves through
    /// the *next* slot map but keeps only candidates that also held a slot
    /// in the previous graph (kept candidates).
    fn collect_adjacent_kept_slots(&mut self, topo: &Topology, d: usize) {
        self.adj_slots.clear();
        for &v in topo.neighbors(NodeId(d as u32)) {
            let s = self.slot_next[v.idx()];
            if s != NO_SLOT && self.slot_of[v.idx()] != NO_SLOT {
                self.adj_slots.push(s);
            }
        }
    }
}

/// Evaluates the conflict predicate over `pairs` on `threads` scoped
/// workers, one contiguous chunk each, writing into a positional flag
/// array. Requires a *pure* predicate (no witness-cache mutation); the
/// caller keeps cache-preferring models on the serial path.
fn parallel_pair_flags<M: ConflictModel>(
    model: &M,
    topo: &Topology,
    unf: &NodeSet,
    pairs: &[(u32, u32)],
    threads: usize,
) -> Vec<bool> {
    let mut flags = vec![false; pairs.len()];
    let chunk = pairs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (ps, fs) in pairs.chunks(chunk).zip(flags.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (&(a, b), f) in ps.iter().zip(fs.iter_mut()) {
                    *f = model.conflicts(topo, NodeId(a), NodeId(b), unf);
                }
            });
        }
    });
    flags
}

/// Packs an unordered node pair into a symmetric cache key.
#[inline]
fn pack_pair(u: NodeId, v: NodeId) -> u64 {
    let (lo, hi) = if u.0 <= v.0 { (u.0, v.0) } else { (v.0, u.0) };
    (u64::from(hi) << 32) | u64::from(lo)
}

/// Re-sizes the row arena to `k` empty rows over a `k`-slot universe,
/// reusing every allocation it can.
fn prepare_rows(rows: &mut Vec<NodeSet>, k: usize) {
    rows.truncate(k);
    for r in rows.iter_mut() {
        r.reset(k);
    }
    while rows.len() < k {
        rows.push(NodeSet::new(k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::Point;
    use wsn_phy::{SinrModel, SinrParams};
    use wsn_topology::Topology;

    fn line(n: usize) -> Topology {
        Topology::unit_disk(
            (0..n).map(|i| Point::new(i as f64 * 0.8, 0.0)).collect(),
            1.0,
        )
    }

    fn assert_graphs_equal(a: &ConflictGraph, b: &ConflictGraph) {
        assert_eq!(a.candidates(), b.candidates());
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.row(i), b.row(i), "row {i} differs");
        }
    }

    #[test]
    fn matches_scratch_build_on_shrinking_uninformed() {
        let t = line(12);
        let cands: Vec<NodeId> = (0..6).map(|i| NodeId(i as u32 * 2)).collect();
        let mut b = ConflictGraphBuilder::new();
        let mut unf = NodeSet::full(12);
        for informed in 0..12usize {
            unf.remove(informed);
            let scratch = ConflictGraph::build(&t, &cands, &unf);
            assert_graphs_equal(b.update(&t, &cands, &unf), &scratch);
        }
        assert!(b.stats().delta_updates > 0, "delta path exercised");
    }

    #[test]
    fn matches_scratch_build_on_candidate_churn() {
        let t = line(16);
        let mut b = ConflictGraphBuilder::new();
        let mut unf = NodeSet::full(16);
        unf.remove(0);
        unf.remove(1);
        let lists: Vec<Vec<NodeId>> = vec![
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(0), NodeId(2), NodeId(3), NodeId(4)], // drop 1, add 4
            vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5), NodeId(6)],
            vec![NodeId(9), NodeId(11), NodeId(13)], // total churn → full build
        ];
        for (step, cands) in lists.iter().enumerate() {
            unf.remove(step + 2); // shrink alongside the churn
            let scratch = ConflictGraph::build(&t, cands, &unf);
            assert_graphs_equal(b.update(&t, cands, &unf), &scratch);
        }
    }

    #[test]
    fn matches_scratch_build_when_uninformed_grows_back() {
        // DFS backtracking makes W̄ grow between consecutive updates.
        let t = line(10);
        let cands: Vec<NodeId> = (0..5).map(|i| NodeId(i as u32)).collect();
        let mut b = ConflictGraphBuilder::new();
        let mut unf = NodeSet::full(10);
        for i in 0..6 {
            unf.remove(i);
        }
        b.update(&t, &cands, &unf);
        for i in 3..6 {
            unf.insert(i); // backtrack: three nodes return to W̄
        }
        let scratch = ConflictGraph::build(&t, &cands, &unf);
        assert_graphs_equal(b.update(&t, &cands, &unf), &scratch);
    }

    #[test]
    fn reset_isolates_topologies() {
        let t1 = line(8);
        let t2 = Topology::unit_disk(
            (0..8).map(|i| Point::new(0.0, i as f64 * 0.5)).collect(),
            2.0,
        );
        let cands: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mut b = ConflictGraphBuilder::new();
        let unf = NodeSet::full(8);
        b.update(&t1, &cands, &unf);
        b.reset(t2.len());
        assert_graphs_equal(
            b.update(&t2, &cands, &unf),
            &ConflictGraph::build(&t2, &cands, &unf),
        );
    }

    #[test]
    fn same_size_topology_swap_auto_resets() {
        // Two different 8-node topologies: the size check alone cannot
        // tell them apart, the identity token must. No manual reset.
        let t1 = line(8);
        let t2 = Topology::unit_disk(
            (0..8).map(|i| Point::new(0.0, i as f64 * 0.5)).collect(),
            2.0,
        );
        let cands: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mut b = ConflictGraphBuilder::new();
        let unf = NodeSet::full(8);
        b.update(&t1, &cands, &unf);
        assert_graphs_equal(
            b.update(&t2, &cands, &unf),
            &ConflictGraph::build(&t2, &cands, &unf),
        );
        // And back again — the cache never leaks across swaps.
        assert_graphs_equal(
            b.update(&t1, &cands, &unf),
            &ConflictGraph::build(&t1, &cands, &unf),
        );
    }

    #[test]
    fn model_swap_auto_resets() {
        // Same topology, different conflict regime: the model fingerprint
        // must invalidate the cached graph and witness sets.
        let t = line(10);
        let cands: Vec<NodeId> = (2..8).map(|i| NodeId(i as u32)).collect();
        let sinr = SinrModel::new(SinrParams::calibrated(t.radius(), 3.0, 1.5), &t);
        let mut b = ConflictGraphBuilder::new();
        let mut unf = NodeSet::full(10);
        unf.remove(3);
        b.update(&t, &cands, &unf);
        assert_graphs_equal(
            b.update_with(&sinr, &t, &cands, &unf),
            &ConflictGraph::build_with_model(&sinr, &t, &cands, &unf),
        );
        // And back to the protocol model.
        assert_graphs_equal(
            b.update(&t, &cands, &unf),
            &ConflictGraph::build(&t, &cands, &unf),
        );
    }

    #[test]
    fn sinr_delta_matches_scratch_on_shrink_and_growback() {
        let t = line(14);
        let cands: Vec<NodeId> = (0..7).map(|i| NodeId(i as u32 * 2)).collect();
        let m = SinrModel::new(SinrParams::calibrated(t.radius(), 3.0, 1.5), &t);
        let mut b = ConflictGraphBuilder::new();
        let mut unf = NodeSet::full(14);
        for informed in 0..10usize {
            unf.remove(informed);
            let scratch = ConflictGraph::build_with_model(&m, &t, &cands, &unf);
            assert_graphs_equal(b.update_with(&m, &t, &cands, &unf), &scratch);
        }
        for i in 5..10usize {
            unf.insert(i); // backtrack
        }
        let scratch = ConflictGraph::build_with_model(&m, &t, &cands, &unf);
        assert_graphs_equal(b.update_with(&m, &t, &cands, &unf), &scratch);
        assert!(b.stats().delta_updates > 0, "SINR delta path exercised");
    }

    #[test]
    fn sinr_delta_matches_scratch_on_candidate_churn() {
        let t = line(16);
        let m = SinrModel::new(SinrParams::calibrated(t.radius(), 3.0, 1.5), &t);
        let mut b = ConflictGraphBuilder::new();
        let mut unf = NodeSet::full(16);
        unf.remove(0);
        unf.remove(1);
        let lists: Vec<Vec<NodeId>> = vec![
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(0), NodeId(2), NodeId(3), NodeId(4)],
            vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5), NodeId(6)],
        ];
        for (step, cands) in lists.iter().enumerate() {
            unf.remove(step + 2);
            let scratch = ConflictGraph::build_with_model(&m, &t, cands, &unf);
            assert_graphs_equal(b.update_with(&m, &t, cands, &unf), &scratch);
        }
    }

    #[test]
    fn witness_retest_path_matches_scratch_on_wide_universe() {
        // Above WITNESS_RETEST_MIN_UNIVERSE retests run through the cached
        // witness sets; walk a shrink sequence on a 1100-node line and
        // check bit-identity against from-scratch builds.
        let t = line(1100);
        let cands: Vec<NodeId> = (500..540).map(|i| NodeId(i as u32)).collect();
        let mut b = ConflictGraphBuilder::new();
        let mut unf = NodeSet::full(1100);
        b.update(&t, &cands, &unf);
        for step in 0..6usize {
            // Inform a clump near the candidates so edges lose witnesses.
            for d in (498 + step * 8)..(498 + step * 8 + 8) {
                unf.remove(d);
            }
            let scratch = ConflictGraph::build(&t, &cands, &unf);
            assert_graphs_equal(b.update(&t, &cands, &unf), &scratch);
        }
        assert!(b.stats().delta_updates > 0);
    }

    #[test]
    fn witness_threshold_is_tunable_without_changing_results() {
        // Force the witness-cache path on a narrow universe (and the fused
        // path on a wide one): graphs must stay bit-identical to scratch
        // builds either way — the threshold is a speed knob, not semantics.
        for forced in [0usize, usize::MAX] {
            let t = line(40);
            let cands: Vec<NodeId> = (10..30).map(|i| NodeId(i as u32)).collect();
            let mut b = ConflictGraphBuilder::new();
            b.set_witness_retest_min_universe(forced);
            assert_eq!(b.witness_retest_min_universe(), forced);
            let mut unf = NodeSet::full(40);
            b.update(&t, &cands, &unf);
            for step in 0..8usize {
                unf.remove(step + 11);
                let scratch = ConflictGraph::build(&t, &cands, &unf);
                assert_graphs_equal(b.update(&t, &cands, &unf), &scratch);
            }
            // The knob survives a reset (it is configuration, not cache).
            b.reset(40);
            assert_eq!(b.witness_retest_min_universe(), forced);
        }
        assert_eq!(
            ConflictGraphBuilder::new().witness_retest_min_universe(),
            WITNESS_RETEST_MIN_UNIVERSE
        );
    }

    #[test]
    fn row_accounting_adds_up() {
        let t = line(12);
        let cands: Vec<NodeId> = (0..6).map(|i| NodeId(i as u32)).collect();
        let mut b = ConflictGraphBuilder::new();
        let mut unf = NodeSet::full(12);
        b.update(&t, &cands, &unf);
        unf.remove(7);
        b.update(&t, &cands, &unf);
        let s = *b.stats();
        assert_eq!(s.full_builds, 1);
        assert_eq!(s.delta_updates, 1);
        assert_eq!(s.rows_built, 6);
        assert_eq!(s.rows_reused, 6);
    }

    #[test]
    fn witness_arena_grows_once_per_pair() {
        // The arena-backed cache: retesting the same pairs over and over
        // must not grow the arena after first touch.
        let t = line(40);
        let cands: Vec<NodeId> = (10..30).map(|i| NodeId(i as u32)).collect();
        let mut b = ConflictGraphBuilder::new();
        b.set_witness_retest_min_universe(0); // force the cache on
        let mut unf = NodeSet::full(40);
        b.update(&t, &cands, &unf);
        unf.remove(15);
        b.update(&t, &cands, &unf);
        let (pairs, arena) = (b.witness.len(), b.warena.len());
        assert!(pairs > 0, "cache populated");
        for step in 0..6usize {
            unf.remove(16 + step);
            unf.insert(15 + step); // churn back and forth over the same pairs
            b.update(&t, &cands, &unf);
        }
        assert!(b.witness.len() >= pairs);
        // Every arena entry is owned by exactly one map handle.
        let spanned: usize = b.witness.values().map(|&(_, l)| l as usize).sum();
        assert_eq!(spanned, b.warena.len());
        assert!(b.warena.len() >= arena);
    }

    #[test]
    fn spatial_full_build_matches_all_pairs() {
        // Enough candidates to trigger the CellGrid pair enumeration for
        // models that certify a witness range; graphs must be bit-identical
        // to the all-pairs scratch build (skipped pairs provably have empty
        // witness sets).
        let t = line(300);
        let cands: Vec<NodeId> = (0..150).map(|i| NodeId(i as u32 * 2)).collect();
        assert!(cands.len() >= SPATIAL_BUILD_MIN_CANDIDATES);
        let mut unf = NodeSet::full(300);
        for informed in [0usize, 17, 33, 120] {
            unf.remove(informed);
        }
        let mut b = ConflictGraphBuilder::new();
        assert_graphs_equal(
            b.update(&t, &cands, &unf),
            &ConflictGraph::build(&t, &cands, &unf),
        );
        let sinr = SinrModel::new(SinrParams::calibrated(t.radius(), 3.0, 1.5), &t);
        let mut bs = ConflictGraphBuilder::new();
        assert_graphs_equal(
            bs.update_with(&sinr, &t, &cands, &unf),
            &ConflictGraph::build_with_model(&sinr, &t, &cands, &unf),
        );
    }

    #[test]
    fn parallel_full_build_matches_serial_bit_for_bit() {
        // Dense 2-D grid so the geometric pair count clears
        // PARALLEL_FULL_BUILD_MIN_PAIRS and the threaded path actually runs.
        let pts: Vec<Point> = (0..2500)
            .map(|i| Point::new((i % 50) as f64, (i / 50) as f64))
            .collect();
        let t = Topology::unit_disk(pts, 2.0);
        let cands: Vec<NodeId> = (0..2500).map(NodeId).collect();
        let mut unf = NodeSet::full(2500);
        for informed in [0usize, 777, 1234, 2400] {
            unf.remove(informed);
        }
        let mut serial = ConflictGraphBuilder::new();
        serial.update(&t, &cands, &unf);
        for threads in [2usize, 4] {
            let mut par = ConflictGraphBuilder::new();
            par.set_build_threads(threads);
            assert_eq!(par.build_threads(), threads);
            assert_graphs_equal(par.update(&t, &cands, &unf), serial.graph());
            assert_eq!(
                par.stats().pair_tests,
                serial.stats().pair_tests,
                "threads {threads}: accounting must not drift"
            );
        }
    }

    #[test]
    fn build_threads_knob_survives_reset_and_sinr_stays_serial() {
        let mut b = ConflictGraphBuilder::new();
        b.set_build_threads(4);
        b.reset(100);
        assert_eq!(b.build_threads(), 4);
        b.set_build_threads(0); // clamps to serial
        assert_eq!(b.build_threads(), 1);

        // Cache-preferring models keep the serial path and stay correct.
        let t = line(300);
        let cands: Vec<NodeId> = (0..150).map(|i| NodeId(i as u32 * 2)).collect();
        let sinr = SinrModel::new(SinrParams::calibrated(t.radius(), 3.0, 1.5), &t);
        let unf = NodeSet::full(300);
        let mut par = ConflictGraphBuilder::new();
        par.set_build_threads(4);
        assert_graphs_equal(
            par.update_with(&sinr, &t, &cands, &unf),
            &ConflictGraph::build_with_model(&sinr, &t, &cands, &unf),
        );
    }

    #[test]
    fn public_witness_accessor_matches_model() {
        let t = line(20);
        let cands: Vec<NodeId> = (0..10).map(|i| NodeId(i as u32)).collect();
        let unf = NodeSet::full(20);
        let mut b = ConflictGraphBuilder::new();
        b.update(&t, &cands, &unf);
        let mut expect = Vec::new();
        for (i, &u) in cands.iter().enumerate() {
            for &v in &cands[i + 1..] {
                ProtocolModel.collect_witnesses(&t, u, v, &mut expect);
                assert_eq!(b.witnesses(&ProtocolModel, &t, u, v), expect.as_slice());
            }
        }
    }

    #[test]
    #[should_panic(expected = "requires the (topology, model)")]
    fn public_witness_accessor_rejects_stale_binding() {
        let t = line(20);
        let other = line(20);
        let cands: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mut b = ConflictGraphBuilder::new();
        b.update(&t, &cands, &NodeSet::full(20));
        b.witnesses(&ProtocolModel, &other, NodeId(0), NodeId(1));
    }
}
