//! Incremental conflict-graph maintenance.
//!
//! The searches of `mlbs-core` build a conflict graph at *every* state, and
//! consecutive states are near-identical: an advance shrinks the uninformed
//! set by one coverage step and churns the candidate list by a few nodes.
//! Rebuilding from scratch repeats `O(k²)` pairwise triple-intersections
//! that almost all produce the answer they produced one state earlier.
//!
//! [`ConflictGraphBuilder`] exploits the structure of the predicate
//! `conflict(u, v) ⇔ N(u) ∩ N(v) ∩ W̄ ≠ ∅`:
//!
//! * a node `d` *entering* `W̄` makes every candidate pair inside `N(d)`
//!   conflict — edges are added directly, no test needed;
//! * a node `d` *leaving* `W̄` can only break edges between candidates in
//!   `N(d)` — only those few pairs are retested;
//! * pairs untouched by the delta keep their edge state verbatim, and
//!   candidates present on both sides of a churn keep their rows (carried
//!   over under the new indexing).
//!
//! On wide universes, retested pairs get their witness set `N(u) ∩ N(v)`
//! computed once and cached for the lifetime of an instance, so a retest
//! scans a handful of witness nodes instead of re-intersecting whole
//! neighborhoods (below [`WITNESS_RETEST_MIN_UNIVERSE`] the fused
//! word-parallel triple intersection is faster and the cache stays cold).
//! Row storage, index maps and the cache are arena-style scratch owned by
//! the builder — steady-state updates allocate little beyond first-touch
//! witness entries.

use crate::ConflictGraph;
use std::collections::HashMap;
use wsn_bitset::NodeSet;
use wsn_topology::{NodeId, Topology};

/// Work accounting for incremental conflict-graph maintenance.
///
/// `rows_built + rows_reused` is exactly the number of rows a
/// rebuild-per-update strategy would have computed, so the reduction the
/// builder achieves is `(rows_built + rows_reused) / rows_built`
/// (consumers that previously built *several* graphs per state, like the
/// OPT search, multiply that by their sharing factor).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConflictStats {
    /// Updates served by a from-scratch build.
    pub full_builds: usize,
    /// Updates served by the delta path.
    pub delta_updates: usize,
    /// Rows computed from scratch (fresh pairwise tests).
    pub rows_built: usize,
    /// Rows carried across an update and patched by delta.
    pub rows_reused: usize,
    /// Pairwise conflict evaluations performed (fused triple
    /// intersections for fresh pairs, witness scans for retests).
    pub pair_tests: usize,
}

impl ConflictStats {
    /// Component-wise `self − earlier`, for windowed accounting.
    pub fn since(&self, earlier: &ConflictStats) -> ConflictStats {
        ConflictStats {
            full_builds: self.full_builds - earlier.full_builds,
            delta_updates: self.delta_updates - earlier.delta_updates,
            rows_built: self.rows_built - earlier.rows_built,
            rows_reused: self.rows_reused - earlier.rows_reused,
            pair_tests: self.pair_tests - earlier.pair_tests,
        }
    }
}

/// Sentinel for "node is not a candidate" in the slot maps.
const NO_SLOT: u32 = u32::MAX;

/// Default universe size (in nodes) above which retests go through the
/// cached witness sets. Below it a `NodeSet` spans only a few words and the
/// fused triple intersection is faster than any cache (measured on the
/// paper grid); above it witness scans avoid touching ever-wider word rows.
/// Tunable per builder via
/// [`ConflictGraphBuilder::set_witness_retest_min_universe`]; the
/// `witness_threshold` group in the `substrates` bench measures both sides
/// of the crossover so this constant can be re-derived instead of trusted.
pub const WITNESS_RETEST_MIN_UNIVERSE: usize = 1024;

/// Reusable, incrementally-updated [`ConflictGraph`] factory.
///
/// One builder serves one topology between [`ConflictGraphBuilder::reset`]
/// calls; [`ConflictGraphBuilder::update`] produces a graph that is
/// bit-identical to [`ConflictGraph::build`] on the same inputs (the
/// workspace proptests assert this under random delta sequences).
#[derive(Clone, Debug)]
pub struct ConflictGraphBuilder {
    graph: ConflictGraph,
    /// `true` once `graph` reflects a previous `update` for this universe.
    valid: bool,
    /// Uninformed set of the previous update.
    uninformed: NodeSet,
    /// node → slot in the *current* candidate list.
    slot_of: Vec<u32>,
    /// Back buffer for `slot_of` during re-indexing.
    slot_next: Vec<u32>,
    /// Back buffer for rows during re-indexing.
    prev_rows: Vec<NodeSet>,
    /// Back buffer for the candidate list during re-indexing.
    prev_candidates: Vec<NodeId>,
    /// Cached witness sets `N(u) ∩ N(v)`, keyed by packed node-id pair.
    witness: HashMap<u64, Box<[u32]>>,
    /// Scratch: candidate slots adjacent to one changed node.
    adj_slots: Vec<u32>,
    /// Scratch: nodes that left W̄ since the previous update.
    removed_buf: Vec<u32>,
    /// Scratch: nodes that entered W̄ since the previous update.
    added_buf: Vec<u32>,
    /// [`Topology::token`] of the topology the cached state belongs to
    /// (0 = none). A different token forces a reset even at equal size.
    topo_token: u64,
    universe: usize,
    /// Universe size at which retests switch to cached witness scans.
    witness_min_universe: usize,
    stats: ConflictStats,
}

impl Default for ConflictGraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ConflictGraphBuilder {
    /// Creates an empty builder; it sizes itself on first use.
    pub fn new() -> Self {
        ConflictGraphBuilder {
            graph: ConflictGraph {
                candidates: Vec::new(),
                rows: Vec::new(),
                by_id: Vec::new(),
            },
            valid: false,
            uninformed: NodeSet::new(0),
            slot_of: Vec::new(),
            slot_next: Vec::new(),
            prev_rows: Vec::new(),
            prev_candidates: Vec::new(),
            witness: HashMap::new(),
            adj_slots: Vec::new(),
            removed_buf: Vec::new(),
            added_buf: Vec::new(),
            topo_token: 0,
            universe: 0,
            witness_min_universe: WITNESS_RETEST_MIN_UNIVERSE,
            stats: ConflictStats::default(),
        }
    }

    /// The universe size at which retests switch from fused triple
    /// intersections to cached witness scans
    /// ([`WITNESS_RETEST_MIN_UNIVERSE`] by default).
    #[inline]
    pub fn witness_retest_min_universe(&self) -> usize {
        self.witness_min_universe
    }

    /// Overrides the witness-retest crossover for this builder (`0` =
    /// always use the witness cache, `usize::MAX` = never). The setting
    /// survives [`ConflictGraphBuilder::reset`] — it is a tuning knob, not
    /// cached state — so benchmarks can re-measure the default crossover on
    /// their own hardware.
    pub fn set_witness_retest_min_universe(&mut self, min_universe: usize) {
        self.witness_min_universe = min_universe;
    }

    /// Invalidates all cached state and re-sizes for a universe of `n`
    /// nodes, keeping allocations. [`ConflictGraphBuilder::update`] calls
    /// this automatically whenever it sees a different [`Topology::token`],
    /// so switching topologies is safe without manual resets; call it
    /// yourself to drop caches early.
    pub fn reset(&mut self, n: usize) {
        self.valid = false;
        self.topo_token = 0;
        self.universe = n;
        self.uninformed.reset(n);
        self.slot_of.clear();
        self.slot_of.resize(n, NO_SLOT);
        self.slot_next.clear();
        self.slot_next.resize(n, NO_SLOT);
        self.witness.clear();
        self.graph.candidates.clear();
        self.graph.rows.clear();
        self.graph.by_id.clear();
        self.stats = ConflictStats::default();
    }

    /// Work accounting since the last [`ConflictGraphBuilder::reset`].
    #[inline]
    pub fn stats(&self) -> &ConflictStats {
        &self.stats
    }

    /// The most recently produced graph.
    #[inline]
    pub fn graph(&self) -> &ConflictGraph {
        &self.graph
    }

    /// Produces the conflict graph of `candidates` against `uninformed`,
    /// reusing as much of the previous graph as the delta allows.
    ///
    /// Row indices match `candidates` order exactly, as with
    /// [`ConflictGraph::build`].
    pub fn update(
        &mut self,
        topo: &Topology,
        candidates: &[NodeId],
        uninformed: &NodeSet,
    ) -> &ConflictGraph {
        let n = topo.len();
        debug_assert_eq!(uninformed.universe(), n);
        if n != self.universe || topo.token() != self.topo_token {
            self.reset(n);
            self.topo_token = topo.token();
        }
        // Cost model: patching visits the candidate-neighborhood of every
        // changed node (`avg_deg` slot lookups each) and then retests the
        // pairs inside it — quadratic in the expected number of candidates
        // adjacent to a changed node (`deg · k/n` under uniform density).
        // A full build runs `k(k−1)/2` fused pair tests. Prefer the delta
        // exactly when it is the cheaper side: sibling states and
        // late-broadcast advances (small `changed`, large `k`) patch;
        // early wide advances rebuild.
        let k = candidates.len();
        let n_f = n.max(1) as f64;
        let changed = self.changed_count(uninformed) as f64;
        let avg_deg = topo.average_degree();
        let est_c = avg_deg * (k as f64 / n_f).min(1.0);
        let delta_cost = changed * (1.0 + avg_deg + est_c * est_c / 2.0);
        let full_cost = (k + k * k.saturating_sub(1) / 2) as f64;
        if !self.valid || delta_cost > full_cost {
            self.full_build(topo, candidates, uninformed);
        } else if candidates == self.graph.candidates.as_slice() {
            self.patch_in_place(topo, uninformed);
        } else {
            self.reindex(topo, candidates, uninformed);
        }
        self.uninformed.copy_from(uninformed);
        self.valid = true;
        &self.graph
    }

    /// `|old W̄ △ new W̄|`, cheap popcount guard for the delta heuristics.
    fn changed_count(&self, uninformed: &NodeSet) -> usize {
        self.uninformed
            .words()
            .iter()
            .zip(uninformed.words())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Evaluates the conflict predicate for one pair directly — one fused
    /// word-parallel triple intersection, the right tool for *fresh* pairs
    /// (full builds, newcomer rows) where no delta knowledge exists.
    fn pair_conflicts_fresh(
        &mut self,
        topo: &Topology,
        u: NodeId,
        v: NodeId,
        unf: &NodeSet,
    ) -> bool {
        self.stats.pair_tests += 1;
        crate::conflicts(topo, u, v, unf)
    }

    /// Retests a pair whose edge state may have changed. On wide universes
    /// the cached witness set `N(u) ∩ N(v)` pays: the same pairs are
    /// retested over and over as witnesses drain out of `W̄`, and scanning
    /// a handful of cached witness nodes beats re-intersecting full-width
    /// word rows. Below the threshold the fused triple intersection is a
    /// few words long and wins outright (measured on the paper grid), so
    /// the cache stays cold there.
    fn pair_retest(&mut self, topo: &Topology, u: NodeId, v: NodeId, unf: &NodeSet) -> bool {
        if self.universe < self.witness_min_universe {
            return self.pair_conflicts_fresh(topo, u, v, unf);
        }
        let key = pack_pair(u, v);
        let w = self.witness.entry(key).or_insert_with(|| {
            let nu = topo.neighbor_set(u);
            let nv = topo.neighbor_set(v);
            if !nu.intersects(nv) {
                Box::default()
            } else {
                nu.intersection(nv)
                    .iter()
                    .map(|x| x as u32)
                    .collect::<Vec<u32>>()
                    .into_boxed_slice()
            }
        });
        let hit = w.iter().any(|&x| unf.contains(x as usize));
        self.stats.pair_tests += 1;
        hit
    }

    /// From-scratch build into the reused row arena.
    fn full_build(&mut self, topo: &Topology, candidates: &[NodeId], unf: &NodeSet) {
        let k = candidates.len();
        self.clear_slots();
        self.graph.candidates.clear();
        self.graph.candidates.extend_from_slice(candidates);
        for (i, &u) in candidates.iter().enumerate() {
            self.slot_of[u.idx()] = i as u32;
        }
        prepare_rows(&mut self.graph.rows, k);
        for i in 0..k {
            for j in (i + 1)..k {
                if self.pair_conflicts_fresh(topo, candidates[i], candidates[j], unf) {
                    self.graph.rows[i].insert(j);
                    self.graph.rows[j].insert(i);
                }
            }
        }
        self.graph.rebuild_index();
        self.stats.full_builds += 1;
        self.stats.rows_built += k;
    }

    /// Splits `old W̄ △ new W̄` into the removed / added scratch buffers.
    fn split_delta(&mut self, unf: &NodeSet) {
        self.removed_buf.clear();
        self.added_buf.clear();
        for (wi, (&old, &new)) in self.uninformed.words().iter().zip(unf.words()).enumerate() {
            let mut gone = old & !new;
            while gone != 0 {
                self.removed_buf
                    .push((wi * 64) as u32 + gone.trailing_zeros());
                gone &= gone - 1;
            }
            let mut fresh = new & !old;
            while fresh != 0 {
                self.added_buf
                    .push((wi * 64) as u32 + fresh.trailing_zeros());
                fresh &= fresh - 1;
            }
        }
    }

    /// Same candidates, different uninformed set: patch rows in place.
    fn patch_in_place(&mut self, topo: &Topology, unf: &NodeSet) {
        let k = self.graph.candidates.len();
        self.split_delta(unf);
        // Nodes that left W̄ can only break edges among their neighbors.
        for di in 0..self.removed_buf.len() {
            let d = self.removed_buf[di] as usize;
            self.collect_adjacent_slots(topo, d);
            for a_pos in 0..self.adj_slots.len() {
                let a = self.adj_slots[a_pos] as usize;
                for b_pos in (a_pos + 1)..self.adj_slots.len() {
                    let b = self.adj_slots[b_pos] as usize;
                    if self.graph.rows[a].contains(b) {
                        let (u, v) = (self.graph.candidates[a], self.graph.candidates[b]);
                        if !self.pair_retest(topo, u, v, unf) {
                            self.graph.rows[a].remove(b);
                            self.graph.rows[b].remove(a);
                        }
                    }
                }
            }
        }
        // Nodes that entered W̄ are themselves fresh witnesses: every
        // candidate pair hearing them now conflicts, no test needed.
        for di in 0..self.added_buf.len() {
            let d = self.added_buf[di] as usize;
            self.collect_adjacent_slots(topo, d);
            for a_pos in 0..self.adj_slots.len() {
                let a = self.adj_slots[a_pos] as usize;
                for b_pos in (a_pos + 1)..self.adj_slots.len() {
                    let b = self.adj_slots[b_pos] as usize;
                    self.graph.rows[a].insert(b);
                    self.graph.rows[b].insert(a);
                }
            }
        }
        self.stats.delta_updates += 1;
        self.stats.rows_reused += k;
    }

    /// Candidate list changed: carry rows of kept candidates into the new
    /// indexing, patch them for the uninformed delta, and build fresh rows
    /// only for newcomers.
    fn reindex(&mut self, topo: &Topology, candidates: &[NodeId], unf: &NodeSet) {
        let k = candidates.len();
        for (i, &u) in candidates.iter().enumerate() {
            self.slot_next[u.idx()] = i as u32;
        }
        let kept = candidates
            .iter()
            .filter(|u| self.slot_of[u.idx()] != NO_SLOT)
            .count();
        if kept * 2 < k {
            // Too much churn for the carry to pay off.
            for &u in candidates {
                self.slot_next[u.idx()] = NO_SLOT;
            }
            self.full_build(topo, candidates, unf);
            return;
        }

        std::mem::swap(&mut self.graph.rows, &mut self.prev_rows);
        std::mem::swap(&mut self.graph.candidates, &mut self.prev_candidates);
        self.graph.candidates.clear();
        self.graph.candidates.extend_from_slice(candidates);
        prepare_rows(&mut self.graph.rows, k);

        // Carry: every old edge whose endpoints both survived.
        for (i_old, &u) in self.prev_candidates.iter().enumerate() {
            let ni = self.slot_next[u.idx()];
            if ni == NO_SLOT {
                continue;
            }
            for j_old in self.prev_rows[i_old].iter() {
                if j_old <= i_old {
                    continue;
                }
                let nj = self.slot_next[self.prev_candidates[j_old].idx()];
                if nj != NO_SLOT {
                    self.graph.rows[ni as usize].insert(nj as usize);
                    self.graph.rows[nj as usize].insert(ni as usize);
                }
            }
        }

        // Patch kept-kept pairs for the uninformed delta (newcomer pairs
        // are tested fresh below, against the new set directly).
        self.split_delta(unf);
        for di in 0..self.removed_buf.len() {
            let d = self.removed_buf[di] as usize;
            self.collect_adjacent_kept_slots(topo, d);
            for a_pos in 0..self.adj_slots.len() {
                let a = self.adj_slots[a_pos] as usize;
                for b_pos in (a_pos + 1)..self.adj_slots.len() {
                    let b = self.adj_slots[b_pos] as usize;
                    if self.graph.rows[a].contains(b) {
                        let (u, v) = (self.graph.candidates[a], self.graph.candidates[b]);
                        if !self.pair_retest(topo, u, v, unf) {
                            self.graph.rows[a].remove(b);
                            self.graph.rows[b].remove(a);
                        }
                    }
                }
            }
        }
        for di in 0..self.added_buf.len() {
            let d = self.added_buf[di] as usize;
            self.collect_adjacent_kept_slots(topo, d);
            for a_pos in 0..self.adj_slots.len() {
                let a = self.adj_slots[a_pos] as usize;
                for b_pos in (a_pos + 1)..self.adj_slots.len() {
                    let b = self.adj_slots[b_pos] as usize;
                    self.graph.rows[a].insert(b);
                    self.graph.rows[b].insert(a);
                }
            }
        }

        // Fresh rows for newcomers, against everyone.
        for a in 0..k {
            let u = candidates[a];
            if self.slot_of[u.idx()] != NO_SLOT {
                continue; // kept, handled above
            }
            for (b, &v) in candidates.iter().enumerate() {
                if b == a || (self.slot_of[v.idx()] == NO_SLOT && b < a) {
                    continue; // self, or newcomer pair already tested
                }
                if self.pair_conflicts_fresh(topo, u, v, unf) {
                    self.graph.rows[a].insert(b);
                    self.graph.rows[b].insert(a);
                }
            }
        }

        // Promote the new slot map and clean the old one for reuse.
        std::mem::swap(&mut self.slot_of, &mut self.slot_next);
        for &u in &self.prev_candidates {
            self.slot_next[u.idx()] = NO_SLOT;
        }
        self.graph.rebuild_index();
        self.stats.delta_updates += 1;
        self.stats.rows_reused += kept;
        self.stats.rows_built += k - kept;
    }

    /// Clears `slot_of` entries of the current candidate list.
    fn clear_slots(&mut self) {
        for i in 0..self.graph.candidates.len() {
            let u = self.graph.candidates[i];
            self.slot_of[u.idx()] = NO_SLOT;
        }
    }

    /// Fills `adj_slots` with current-graph slots of candidates adjacent
    /// to node `d`.
    fn collect_adjacent_slots(&mut self, topo: &Topology, d: usize) {
        self.adj_slots.clear();
        for &v in topo.neighbors(NodeId(d as u32)) {
            let s = self.slot_of[v.idx()];
            if s != NO_SLOT {
                self.adj_slots.push(s);
            }
        }
    }

    /// As [`Self::collect_adjacent_slots`], mid-reindex: resolves through
    /// the *next* slot map but keeps only candidates that also held a slot
    /// in the previous graph (kept candidates).
    fn collect_adjacent_kept_slots(&mut self, topo: &Topology, d: usize) {
        self.adj_slots.clear();
        for &v in topo.neighbors(NodeId(d as u32)) {
            let s = self.slot_next[v.idx()];
            if s != NO_SLOT && self.slot_of[v.idx()] != NO_SLOT {
                self.adj_slots.push(s);
            }
        }
    }
}

/// Packs an unordered node pair into a symmetric cache key.
#[inline]
fn pack_pair(u: NodeId, v: NodeId) -> u64 {
    let (lo, hi) = if u.0 <= v.0 { (u.0, v.0) } else { (v.0, u.0) };
    (u64::from(hi) << 32) | u64::from(lo)
}

/// Re-sizes the row arena to `k` empty rows over a `k`-slot universe,
/// reusing every allocation it can.
fn prepare_rows(rows: &mut Vec<NodeSet>, k: usize) {
    rows.truncate(k);
    for r in rows.iter_mut() {
        r.reset(k);
    }
    while rows.len() < k {
        rows.push(NodeSet::new(k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::Point;
    use wsn_topology::Topology;

    fn line(n: usize) -> Topology {
        Topology::unit_disk(
            (0..n).map(|i| Point::new(i as f64 * 0.8, 0.0)).collect(),
            1.0,
        )
    }

    fn assert_graphs_equal(a: &ConflictGraph, b: &ConflictGraph) {
        assert_eq!(a.candidates(), b.candidates());
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.row(i), b.row(i), "row {i} differs");
        }
    }

    #[test]
    fn matches_scratch_build_on_shrinking_uninformed() {
        let t = line(12);
        let cands: Vec<NodeId> = (0..6).map(|i| NodeId(i as u32 * 2)).collect();
        let mut b = ConflictGraphBuilder::new();
        let mut unf = NodeSet::full(12);
        for informed in 0..12usize {
            unf.remove(informed);
            let scratch = ConflictGraph::build(&t, &cands, &unf);
            assert_graphs_equal(b.update(&t, &cands, &unf), &scratch);
        }
        assert!(b.stats().delta_updates > 0, "delta path exercised");
    }

    #[test]
    fn matches_scratch_build_on_candidate_churn() {
        let t = line(16);
        let mut b = ConflictGraphBuilder::new();
        let mut unf = NodeSet::full(16);
        unf.remove(0);
        unf.remove(1);
        let lists: Vec<Vec<NodeId>> = vec![
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(0), NodeId(2), NodeId(3), NodeId(4)], // drop 1, add 4
            vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5), NodeId(6)],
            vec![NodeId(9), NodeId(11), NodeId(13)], // total churn → full build
        ];
        for (step, cands) in lists.iter().enumerate() {
            unf.remove(step + 2); // shrink alongside the churn
            let scratch = ConflictGraph::build(&t, cands, &unf);
            assert_graphs_equal(b.update(&t, cands, &unf), &scratch);
        }
    }

    #[test]
    fn matches_scratch_build_when_uninformed_grows_back() {
        // DFS backtracking makes W̄ grow between consecutive updates.
        let t = line(10);
        let cands: Vec<NodeId> = (0..5).map(|i| NodeId(i as u32)).collect();
        let mut b = ConflictGraphBuilder::new();
        let mut unf = NodeSet::full(10);
        for i in 0..6 {
            unf.remove(i);
        }
        b.update(&t, &cands, &unf);
        for i in 3..6 {
            unf.insert(i); // backtrack: three nodes return to W̄
        }
        let scratch = ConflictGraph::build(&t, &cands, &unf);
        assert_graphs_equal(b.update(&t, &cands, &unf), &scratch);
    }

    #[test]
    fn reset_isolates_topologies() {
        let t1 = line(8);
        let t2 = Topology::unit_disk(
            (0..8).map(|i| Point::new(0.0, i as f64 * 0.5)).collect(),
            2.0,
        );
        let cands: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mut b = ConflictGraphBuilder::new();
        let unf = NodeSet::full(8);
        b.update(&t1, &cands, &unf);
        b.reset(t2.len());
        assert_graphs_equal(
            b.update(&t2, &cands, &unf),
            &ConflictGraph::build(&t2, &cands, &unf),
        );
    }

    #[test]
    fn same_size_topology_swap_auto_resets() {
        // Two different 8-node topologies: the size check alone cannot
        // tell them apart, the identity token must. No manual reset.
        let t1 = line(8);
        let t2 = Topology::unit_disk(
            (0..8).map(|i| Point::new(0.0, i as f64 * 0.5)).collect(),
            2.0,
        );
        let cands: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mut b = ConflictGraphBuilder::new();
        let unf = NodeSet::full(8);
        b.update(&t1, &cands, &unf);
        assert_graphs_equal(
            b.update(&t2, &cands, &unf),
            &ConflictGraph::build(&t2, &cands, &unf),
        );
        // And back again — the cache never leaks across swaps.
        assert_graphs_equal(
            b.update(&t1, &cands, &unf),
            &ConflictGraph::build(&t1, &cands, &unf),
        );
    }

    #[test]
    fn witness_retest_path_matches_scratch_on_wide_universe() {
        // Above WITNESS_RETEST_MIN_UNIVERSE retests run through the cached
        // witness sets; walk a shrink sequence on a 1100-node line and
        // check bit-identity against from-scratch builds.
        let t = line(1100);
        let cands: Vec<NodeId> = (500..540).map(|i| NodeId(i as u32)).collect();
        let mut b = ConflictGraphBuilder::new();
        let mut unf = NodeSet::full(1100);
        b.update(&t, &cands, &unf);
        for step in 0..6usize {
            // Inform a clump near the candidates so edges lose witnesses.
            for d in (498 + step * 8)..(498 + step * 8 + 8) {
                unf.remove(d);
            }
            let scratch = ConflictGraph::build(&t, &cands, &unf);
            assert_graphs_equal(b.update(&t, &cands, &unf), &scratch);
        }
        assert!(b.stats().delta_updates > 0);
    }

    #[test]
    fn witness_threshold_is_tunable_without_changing_results() {
        // Force the witness-cache path on a narrow universe (and the fused
        // path on a wide one): graphs must stay bit-identical to scratch
        // builds either way — the threshold is a speed knob, not semantics.
        for forced in [0usize, usize::MAX] {
            let t = line(40);
            let cands: Vec<NodeId> = (10..30).map(|i| NodeId(i as u32)).collect();
            let mut b = ConflictGraphBuilder::new();
            b.set_witness_retest_min_universe(forced);
            assert_eq!(b.witness_retest_min_universe(), forced);
            let mut unf = NodeSet::full(40);
            b.update(&t, &cands, &unf);
            for step in 0..8usize {
                unf.remove(step + 11);
                let scratch = ConflictGraph::build(&t, &cands, &unf);
                assert_graphs_equal(b.update(&t, &cands, &unf), &scratch);
            }
            // The knob survives a reset (it is configuration, not cache).
            b.reset(40);
            assert_eq!(b.witness_retest_min_universe(), forced);
        }
        assert_eq!(
            ConflictGraphBuilder::new().witness_retest_min_universe(),
            WITNESS_RETEST_MIN_UNIVERSE
        );
    }

    #[test]
    fn row_accounting_adds_up() {
        let t = line(12);
        let cands: Vec<NodeId> = (0..6).map(|i| NodeId(i as u32)).collect();
        let mut b = ConflictGraphBuilder::new();
        let mut unf = NodeSet::full(12);
        b.update(&t, &cands, &unf);
        unf.remove(7);
        b.update(&t, &cands, &unf);
        let s = *b.stats();
        assert_eq!(s.full_builds, 1);
        assert_eq!(s.delta_updates, 1);
        assert_eq!(s.rows_built, 6);
        assert_eq!(s.rows_reused, 6);
    }
}
