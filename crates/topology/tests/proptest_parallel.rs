//! Property tests: the partitioned unit-disk construction is bit-identical
//! to the serial build across random deployments and thread counts.

use proptest::prelude::*;
use wsn_geom::Point;
use wsn_topology::{NodeId, Topology};

/// Deterministic xorshift scatter: the strategies draw only a seed and
/// shape parameters, so cases stay cheap even though the deployments must
/// exceed the parallel-build gate (~4k nodes).
fn scatter(n: usize, seed: u64, span: f64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Point::new(next() * span, next() * span))
        .collect()
}

proptest! {
    // Each case builds two ≥4k-node unit-disk graphs; a handful of cases
    // keeps the suite fast while varying seed, size, radius and threads.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_unit_disk_is_bit_identical(
        seed in 0u64..1_000_000,
        extra in 0usize..400,
        threads in 2usize..9,
        radius in 1.0f64..3.0,
    ) {
        let pts = scatter(4_096 + extra, seed, 100.0);
        let serial = Topology::unit_disk(pts.clone(), radius);
        let par = Topology::unit_disk_parallel(pts, radius, threads);
        prop_assert_eq!(par.len(), serial.len());
        prop_assert_eq!(par.csr(), serial.csr(), "CSR drifted at {} threads", threads);
        for u in (0..serial.len()).step_by(61) {
            let u = NodeId(u as u32);
            prop_assert_eq!(par.neighbor_set(u), serial.neighbor_set(u));
            prop_assert_eq!(par.closed_neighbor_set(u), serial.closed_neighbor_set(u));
        }
    }
}
