//! Compressed sparse row adjacency storage.

use crate::NodeId;

/// Undirected adjacency in CSR form: one contiguous neighbor array plus
/// per-node offsets. Neighbor lists are sorted by id, which gives
/// deterministic iteration order everywhere downstream (greedy coloring
/// tie-breaks depend on it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    neighbors: Vec<NodeId>,
}

impl Csr {
    /// Builds from an edge list over `n` nodes. Each undirected edge appears
    /// once in `edges`; self-loops and duplicates are rejected.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range endpoints, or duplicate edges.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut degree = vec![0u32; n];
        for &(u, v) in edges {
            assert!(u != v, "self-loop at node {u}");
            assert!(u.idx() < n && v.idx() < n, "edge ({u}, {v}) out of range");
            degree[u.idx()] += 1;
            degree[v.idx()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![NodeId(0); acc as usize];
        for &(u, v) in edges {
            neighbors[cursor[u.idx()] as usize] = v;
            cursor[u.idx()] += 1;
            neighbors[cursor[v.idx()] as usize] = u;
            cursor[v.idx()] += 1;
        }
        let mut csr = Csr { offsets, neighbors };
        for u in 0..n {
            let range = csr.range(u);
            csr.neighbors[range].sort_unstable();
        }
        for u in 0..n {
            let ns = csr.neighbors_of(NodeId(u as u32));
            for w in ns.windows(2) {
                assert!(w[0] != w[1], "duplicate edge at node {u}");
            }
        }
        csr
    }

    /// Builds from per-node sorted neighbor lists — the layout the parallel
    /// unit-disk construction produces directly. `lists[u]` must hold the
    /// full neighbor set of `u`, sorted ascending, mirroring `u ∈ lists[v]`
    /// for every listed `v`; the result is then bit-identical to
    /// [`Csr::from_edges`] over the same graph.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range ids, or unsorted/duplicated
    /// entries within a list.
    pub fn from_neighbor_lists(lists: &[Vec<NodeId>]) -> Self {
        let n = lists.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for list in lists {
            acc += list.len() as u32;
            offsets.push(acc);
        }
        let mut neighbors = Vec::with_capacity(acc as usize);
        for (u, list) in lists.iter().enumerate() {
            for w in list.windows(2) {
                assert!(w[0] < w[1], "unsorted or duplicate neighbor at node {u}");
            }
            for &v in list {
                assert!(v.idx() != u, "self-loop at node {u}");
                assert!(v.idx() < n, "neighbor {v} of node {u} out of range");
                neighbors.push(v);
            }
        }
        Csr { offsets, neighbors }
    }

    #[inline]
    fn range(&self, u: usize) -> std::ops::Range<usize> {
        self.offsets[u] as usize..self.offsets[u + 1] as usize
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Sorted neighbor list of `u`.
    #[inline]
    pub fn neighbors_of(&self, u: NodeId) -> &[NodeId] {
        &self.neighbors[self.range(u.idx())]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.range(u.idx()).len()
    }

    /// `true` when `u` and `v` are adjacent (binary search on the sorted
    /// neighbor list).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors_of(u).binary_search(&v).is_ok()
    }

    /// Iterates all undirected edges once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.len()).flat_map(move |u| {
            let u = NodeId(u as u32);
            self.neighbors_of(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn builds_sorted_adjacency() {
        let csr = Csr::from_edges(4, &[(id(2), id(0)), (id(0), id(1)), (id(3), id(0))]);
        assert_eq!(csr.neighbors_of(id(0)), &[id(1), id(2), id(3)]);
        assert_eq!(csr.degree(id(0)), 3);
        assert_eq!(csr.degree(id(1)), 1);
        assert_eq!(csr.edge_count(), 3);
        assert!(csr.has_edge(id(0), id(3)));
        assert!(csr.has_edge(id(3), id(0)));
        assert!(!csr.has_edge(id(1), id(2)));
    }

    #[test]
    fn isolated_nodes_have_empty_lists() {
        let csr = Csr::from_edges(3, &[(id(0), id(1))]);
        assert!(csr.neighbors_of(id(2)).is_empty());
        assert_eq!(csr.degree(id(2)), 0);
    }

    #[test]
    fn edges_iterates_each_once() {
        let csr = Csr::from_edges(4, &[(id(0), id(1)), (id(1), id(2)), (id(2), id(3))]);
        let edges: Vec<_> = csr.edges().collect();
        assert_eq!(edges, vec![(id(0), id(1)), (id(1), id(2)), (id(2), id(3))]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        Csr::from_edges(2, &[(id(1), id(1))]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edges() {
        Csr::from_edges(2, &[(id(0), id(1)), (id(1), id(0))]);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        assert!(csr.is_empty());
        assert_eq!(csr.edge_count(), 0);
    }

    #[test]
    fn neighbor_lists_match_edge_build() {
        let edges = [
            (id(2), id(0)),
            (id(0), id(1)),
            (id(3), id(0)),
            (id(1), id(3)),
        ];
        let from_edges = Csr::from_edges(4, &edges);
        let lists: Vec<Vec<NodeId>> = (0..4)
            .map(|u| from_edges.neighbors_of(id(u)).to_vec())
            .collect();
        assert_eq!(Csr::from_neighbor_lists(&lists), from_edges);
    }

    #[test]
    #[should_panic(expected = "unsorted or duplicate")]
    fn neighbor_lists_reject_unsorted() {
        Csr::from_neighbor_lists(&[vec![id(2), id(1)], vec![id(2)], vec![id(0), id(1)]]);
    }
}
