//! Connectivity via union-find.
//!
//! Deployment generation (§V-A) resamples until the instance is connected —
//! a broadcast can only complete on a connected graph — so the check runs
//! on every candidate deployment and should be near-linear.

use crate::Topology;

/// Weighted quick-union with path halving.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }
}

/// `true` when every node can reach every other node.
pub fn is_connected(topo: &Topology) -> bool {
    if topo.len() <= 1 {
        return true;
    }
    let mut uf = UnionFind::new(topo.len());
    for (u, v) in topo.csr().edges() {
        uf.union(u.0, v.0);
    }
    let root = uf.find(0);
    (1..topo.len() as u32).all(|i| uf.find(i) == root)
}

/// Component label per node (labels are the smallest node id in the
/// component), plus the number of components.
pub fn components(topo: &Topology) -> (Vec<u32>, usize) {
    let n = topo.len();
    let mut uf = UnionFind::new(n);
    for (u, v) in topo.csr().edges() {
        uf.union(u.0, v.0);
    }
    let mut label = vec![u32::MAX; n];
    let mut count = 0;
    for i in 0..n as u32 {
        let r = uf.find(i) as usize;
        if label[r] == u32::MAX {
            label[r] = i; // first-seen id in the component is the smallest
            count += 1;
        }
        label[i as usize] = label[r];
    }
    (label, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;
    use wsn_geom::Point;

    #[test]
    fn connected_path() {
        let t = Topology::unit_disk((0..4).map(|i| Point::new(i as f64, 0.0)).collect(), 1.0);
        assert!(is_connected(&t));
        let (labels, count) = components(&t);
        assert_eq!(count, 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn two_clusters() {
        let t = Topology::unit_disk(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(11.0, 0.0),
            ],
            1.0,
        );
        assert!(!is_connected(&t));
        let (labels, count) = components(&t);
        assert_eq!(count, 2);
        assert_eq!(labels, vec![0, 0, 2, 2]);
    }

    #[test]
    fn singleton_and_empty_are_connected() {
        let t1 = Topology::unit_disk(vec![Point::new(0.0, 0.0)], 1.0);
        assert!(is_connected(&t1));
        let t0 = Topology::unit_disk(vec![], 1.0);
        assert!(is_connected(&t0));
    }

    #[test]
    fn isolated_node_detected() {
        let t = Topology::unit_disk(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.5, 0.0),
                Point::new(30.0, 30.0),
            ],
            1.0,
        );
        assert!(!is_connected(&t));
        let (_, count) = components(&t);
        assert_eq!(count, 2);
    }
}
