//! The paper's example networks, reconstructed as UDG topologies.
//!
//! The paper never prints coordinates, but Tables II–IV trace the greedy
//! color scheme and the time counter `M` on the Figure 1 and Figure 2
//! networks in enough detail to pin the adjacency exactly (every receiver
//! set and every conflict in the traces constrains `N(u)` — see the module
//! tests). The coordinates below realize those adjacencies under the UDG
//! rule *and* the quadrant relations of the §IV-E E-model worked example
//! (`E_2(7) = E_2(8) = E_2(9) = 0`, `E_2(0) = E_2(4) = E_2(5) = E_2(6) =
//! E_2(10) = 1`, `E_2(1) = 2`).
//!
//! Two receiver sets in Table III are inconsistent with the rest of the
//! trace as printed; we follow the majority reading and document both
//! deviations (they look like digit-level typos) in EXPERIMENTS.md:
//! `{s,0−4,6,9−10}` is read as `{s,0−4,6,8−10}`, and the round indices of
//! the last three task groups are off by one.

use crate::{NodeId, Topology};
use wsn_geom::Point;

/// A fixture: a topology, its broadcast source, and a labeling that maps
/// node ids back to the paper's names (`s`, `0`…`10` for Figure 1;
/// `1`…`5` for Figure 2).
pub struct Fixture {
    /// The topology.
    pub topo: Topology,
    /// Broadcast source.
    pub source: NodeId,
    /// Paper label per node id.
    pub labels: Vec<&'static str>,
}

impl Fixture {
    /// Paper label of `u`.
    pub fn label(&self, u: NodeId) -> &'static str {
        self.labels[u.idx()]
    }

    /// Node id for a paper label.
    ///
    /// # Panics
    ///
    /// Panics if the label does not exist.
    pub fn id(&self, label: &str) -> NodeId {
        NodeId(
            self.labels
                .iter()
                .position(|&l| l == label)
                .unwrap_or_else(|| panic!("no node labeled {label}")) as u32,
        )
    }
}

/// Figure 1: the 12-node motivating example (`s` plus nodes 0–10).
///
/// Node ids 0–10 are the paper's nodes 0–10; id 11 is the source `s`.
/// Intended adjacency (paper labels):
///
/// ```text
/// s: 0 1 2            4: 1 3 8 9 10      8: 3 4 9 10
/// 0: s 1 2 3 5 6 7    5: 0 6 7           9: 3 4 6 8
/// 1: s 0 2 3 4 10     6: 0 3 5 7 9      10: 1 4 8
/// 2: s 0 1 3          7: 0 5 6
/// 3: 0 1 2 4 6 8 9
/// ```
///
/// Edges among `{0,1,2}` and `5–7` are not constrained by any trace row
/// (those nodes are always informed simultaneously) and arise naturally
/// from the geometry.
pub fn fig1() -> Fixture {
    // Positions in feet; radius 10 ft as in §V-A (coordinates are the
    // hand-verified unit layout scaled by 10).
    let positions = vec![
        Point::new(39.0, 5.5),  // 0
        Point::new(46.0, 12.0), // 1
        Point::new(43.0, 7.5),  // 2
        Point::new(38.0, 13.5), // 3
        Point::new(42.5, 18.0), // 4
        Point::new(30.0, 4.5),  // 5
        Point::new(32.0, 7.0),  // 6
        Point::new(29.5, 8.0),  // 7
        Point::new(40.0, 21.0), // 8
        Point::new(36.2, 15.8), // 9
        Point::new(49.0, 17.5), // 10
        Point::new(47.0, 3.0),  // s
    ];
    let topo = Topology::unit_disk(positions, 10.0);
    Fixture {
        topo,
        source: NodeId(11),
        labels: vec!["0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "s"],
    }
}

/// Figure 2(a): the 5-node example (nodes 1–5, source node 1) used by
/// Tables II and IV.
///
/// Adjacency (paper labels): `1–2, 1–3, 2–4, 3–4, 2–5`; the conflict is at
/// node 4 (common uninformed neighbor of 2 and 3). Node ids are the paper
/// labels minus one.
pub fn fig2a() -> Fixture {
    // Unit layout scaled so the radius is 10 (distances 1.140 → 9.5).
    let positions = vec![
        Point::new(0.0, 10.0),    // 1 (source)
        Point::new(7.5, 15.833),  // 2
        Point::new(7.5, 4.167),   // 3
        Point::new(15.0, 10.0),   // 4
        Point::new(11.667, 22.5), // 5
    ];
    let topo = Topology::unit_disk(positions, 10.0);
    Fixture {
        topo,
        source: NodeId(0),
        labels: vec!["1", "2", "3", "4", "5"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_adjacency(f: &Fixture, expected: &[(&str, &[&str])]) {
        for &(u, nbrs) in expected {
            let uid = f.id(u);
            let mut got: Vec<&str> = f.topo.neighbors(uid).iter().map(|&v| f.label(v)).collect();
            got.sort_by_key(|l| l.parse::<i32>().unwrap_or(-1));
            let mut want: Vec<&str> = nbrs.to_vec();
            want.sort_by_key(|l| l.parse::<i32>().unwrap_or(-1));
            assert_eq!(got, want, "neighborhood of paper node {u}");
        }
    }

    #[test]
    fn fig1_adjacency_matches_table_iii() {
        let f = fig1();
        assert_eq!(f.topo.len(), 12);
        assert_adjacency(
            &f,
            &[
                ("s", &["0", "1", "2"]),
                ("0", &["s", "1", "2", "3", "5", "6", "7"]),
                ("1", &["s", "0", "2", "3", "4", "10"]),
                ("2", &["s", "0", "1", "3"]),
                ("3", &["0", "1", "2", "4", "6", "8", "9"]),
                ("4", &["1", "3", "8", "9", "10"]),
                ("5", &["0", "6", "7"]),
                ("6", &["0", "3", "5", "7", "9"]),
                ("7", &["0", "5", "6"]),
                ("8", &["3", "4", "9", "10"]),
                ("9", &["3", "4", "6", "8"]),
                ("10", &["1", "4", "8"]),
            ],
        );
    }

    #[test]
    fn fig1_nodes_8_9_are_farthest_at_three_hops() {
        // §II: "this approach assumes that the last relay will reach {8, 9}
        // only because they are the farthest (3-hop distance) away from s".
        let f = fig1();
        let hops = crate::metrics::bfs_hops(&f.topo, f.source);
        assert_eq!(hops[f.id("8").idx()], 3);
        assert_eq!(hops[f.id("9").idx()], 3);
        let ecc = crate::metrics::eccentricity(&f.topo, f.source).unwrap();
        assert_eq!(ecc, 3);
        // And only 8, 9 are at 3 hops.
        let at3: Vec<&str> = f
            .topo
            .nodes()
            .filter(|&u| hops[u.idx()] == 3)
            .map(|u| f.label(u))
            .collect();
        assert_eq!(at3, vec!["8", "9"]);
    }

    #[test]
    fn fig1_conflict_structure_at_first_hop() {
        // Nodes 0, 1, 2 pairwise share the uninformed neighbor 3, which is
        // why they need three distinct colors (§II, Figure 1).
        let f = fig1();
        let three = f.id("3");
        for (a, b) in [("0", "1"), ("0", "2"), ("1", "2")] {
            let (ia, ib) = (f.id(a), f.id(b));
            assert!(
                f.topo.neighbor_set(ia).contains(three.idx())
                    && f.topo.neighbor_set(ib).contains(three.idx()),
                "3 must be a common neighbor of {a} and {b}"
            );
        }
    }

    #[test]
    fn fig2a_adjacency_matches_table_ii() {
        let f = fig2a();
        assert_eq!(f.topo.len(), 5);
        assert_adjacency(
            &f,
            &[
                ("1", &["2", "3"]),
                ("2", &["1", "4", "5"]),
                ("3", &["1", "4"]),
                ("4", &["2", "3"]),
                ("5", &["2"]),
            ],
        );
    }

    #[test]
    fn fig2a_conflict_at_node_4() {
        // Nodes 2 and 3 share the uninformed neighbor 4 (the "conflict at
        // u4" of Figure 2 (a)).
        let f = fig2a();
        let common = f
            .topo
            .neighbor_set(f.id("2"))
            .intersection(f.topo.neighbor_set(f.id("3")));
        assert_eq!(common.to_vec(), vec![f.id("1").idx(), f.id("4").idx()]);
    }

    #[test]
    fn label_roundtrip() {
        let f = fig1();
        for u in f.topo.nodes() {
            assert_eq!(f.id(f.label(u)), u);
        }
    }

    #[test]
    #[should_panic(expected = "no node labeled")]
    fn unknown_label_panics() {
        fig2a().id("99");
    }
}
