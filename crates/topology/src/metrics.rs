//! Hop-distance metrics: BFS levels, eccentricity, diameter.
//!
//! Hop distance is the yardstick of every bound in the paper: Theorem 1
//! bounds the optimal latency by `d + 2` where `d` is the source
//! eccentricity, and §V-A constrains deployments so the source is 5–8 hops
//! from the farthest node.

use crate::{NodeId, Topology};
use std::collections::VecDeque;
use wsn_bitset::NodeSet;

/// Hop distance marker for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS hop distances from `source`. Unreachable nodes get [`UNREACHABLE`].
pub fn bfs_hops(topo: &Topology, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; topo.len()];
    let mut queue = VecDeque::new();
    dist[source.idx()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.idx()];
        for &v in topo.neighbors(u) {
            if dist[v.idx()] == UNREACHABLE {
                dist[v.idx()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS hop distances from `source` over the subgraph induced by excluding
/// `excluded` (dead nodes under churn). Excluded and unreachable nodes get
/// [`UNREACHABLE`] — the repair tier treats both the same way.
pub fn bfs_hops_masked(topo: &Topology, source: NodeId, excluded: &NodeSet) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; topo.len()];
    if excluded.contains(source.idx()) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.idx()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.idx()];
        for &v in topo.neighbors(u) {
            if dist[v.idx()] == UNREACHABLE && !excluded.contains(v.idx()) {
                dist[v.idx()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Multi-source BFS: hop distance from the nearest member of `sources`.
///
/// This is the branch-and-bound lower bound of the OPT/G-OPT searches: an
/// uninformed node at `h` hops from the informed set needs at least `h`
/// more advances to be reached.
pub fn bfs_hops_from_set(topo: &Topology, sources: &NodeSet) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; topo.len()];
    let mut queue = VecDeque::new();
    for s in sources.iter() {
        dist[s] = 0;
        queue.push_back(NodeId(s as u32));
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u.idx()];
        for &v in topo.neighbors(u) {
            if dist[v.idx()] == UNREACHABLE {
                dist[v.idx()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Eccentricity of `source`: the hop distance to the farthest reachable
/// node. Returns `None` when some node is unreachable (disconnected graph),
/// because broadcast completion is then impossible.
pub fn eccentricity(topo: &Topology, source: NodeId) -> Option<u32> {
    let dist = bfs_hops(topo, source);
    let mut max = 0;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        max = max.max(d);
    }
    Some(max)
}

/// Graph diameter (max eccentricity over all nodes); `None` if disconnected.
/// `O(n · m)` — fine at evaluation scale, used only in diagnostics.
pub fn diameter(topo: &Topology) -> Option<u32> {
    let mut best = 0;
    for u in topo.nodes() {
        best = best.max(eccentricity(topo, u)?);
    }
    Some(best)
}

/// Nodes at exactly hop distance `h` from `source` (a BFS layer, the unit
/// the 26-/17-approximation baselines synchronize on).
pub fn bfs_layer(topo: &Topology, source: NodeId, h: u32) -> Vec<NodeId> {
    bfs_hops(topo, source)
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == h)
        .map(|(i, _)| NodeId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::Point;

    /// Path 0-1-2-3-4 (spacing 1, radius 1).
    fn path5() -> Topology {
        Topology::unit_disk((0..5).map(|i| Point::new(i as f64, 0.0)).collect(), 1.0)
    }

    #[test]
    fn path_distances() {
        let t = path5();
        assert_eq!(bfs_hops(&t, NodeId(0)), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_hops(&t, NodeId(2)), vec![2, 1, 0, 1, 2]);
        assert_eq!(eccentricity(&t, NodeId(0)), Some(4));
        assert_eq!(eccentricity(&t, NodeId(2)), Some(2));
        assert_eq!(diameter(&t), Some(4));
    }

    #[test]
    fn disconnected_reports_none() {
        let t = Topology::unit_disk(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)], 1.0);
        assert_eq!(eccentricity(&t, NodeId(0)), None);
        assert_eq!(diameter(&t), None);
        assert_eq!(bfs_hops(&t, NodeId(0))[1], UNREACHABLE);
    }

    #[test]
    fn masked_bfs_skips_dead_nodes() {
        let t = path5();
        let dead = NodeSet::from_indices(5, [2]);
        let d = bfs_hops_masked(&t, NodeId(0), &dead);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        // Node 2 is dead; 3 and 4 are stranded behind it.
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
        assert_eq!(d[4], UNREACHABLE);
        // A dead source reaches nothing.
        assert!(bfs_hops_masked(&t, NodeId(2), &dead)
            .iter()
            .all(|&x| x == UNREACHABLE));
    }

    #[test]
    fn multi_source_takes_nearest() {
        let t = path5();
        let w = NodeSet::from_indices(5, [0, 4]);
        assert_eq!(bfs_hops_from_set(&t, &w), vec![0, 1, 2, 1, 0]);
    }

    #[test]
    fn layers_partition_reachable_nodes() {
        let t = path5();
        assert_eq!(bfs_layer(&t, NodeId(0), 0), vec![NodeId(0)]);
        assert_eq!(bfs_layer(&t, NodeId(0), 2), vec![NodeId(2)]);
        assert!(bfs_layer(&t, NodeId(0), 9).is_empty());
    }

    #[test]
    fn empty_source_set_reaches_nothing() {
        let t = path5();
        let dist = bfs_hops_from_set(&t, &NodeSet::new(5));
        assert!(dist.iter().all(|&d| d == UNREACHABLE));
    }
}
