//! Deployment generation matching §V-A, plus extension scenarios.
//!
//! The paper deploys 50–300 nodes uniformly on a 50×50 sq-ft area with a
//! 10 ft communication radius and picks a source 5–8 hops from the farthest
//! node. [`SyntheticDeployment::sample`] reproduces exactly that protocol:
//! resample until the topology is connected and a qualifying source exists.

use crate::{connectivity, metrics, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsn_geom::{Point, Rect};

/// Paper defaults: 50×50 sq-ft area (§V-A).
pub const PAPER_AREA: Rect = Rect::with_size(50.0, 50.0);
/// Paper default communication radius: 10 ft (§V-A).
pub const PAPER_RADIUS: f64 = 10.0;
/// Paper default source-eccentricity window: 5–8 hops (§V-A).
pub const PAPER_ECC_RANGE: (u32, u32) = (5, 8);

/// A deployment recipe; `sample` draws concrete connected instances.
#[derive(Clone, Debug)]
pub struct SyntheticDeployment {
    /// Deployment region.
    pub area: Rect,
    /// Number of nodes.
    pub nodes: usize,
    /// Communication radius.
    pub radius: f64,
    /// Required source eccentricity (inclusive); `None` = any source.
    pub ecc_range: Option<(u32, u32)>,
    /// Maximum resampling attempts before giving up.
    pub max_attempts: usize,
    /// Optional circular hole: no node is placed inside it.
    pub hole: Option<(Point, f64)>,
}

impl SyntheticDeployment {
    /// The paper's §V-A recipe for a given node count (50–300).
    pub fn paper(nodes: usize) -> Self {
        SyntheticDeployment {
            area: PAPER_AREA,
            nodes,
            radius: PAPER_RADIUS,
            ecc_range: Some(PAPER_ECC_RANGE),
            max_attempts: 10_000,
            hole: None,
        }
    }

    /// A constant-density recipe for large-scale workloads (1k–100k nodes):
    /// the paper's radius on an area grown so density stays in the paper
    /// grid's midrange (0.05 nodes/sq-ft, mean degree ≈ 16 — comfortably
    /// above the RGG connectivity threshold `ln n` even at 100k), with no
    /// source-eccentricity demand — at these diameters every node has
    /// eccentricity far beyond the paper's 5–8 window, so the source is
    /// drawn uniformly instead.
    ///
    /// This is the deployment the anytime-scheduler tier benchmarks on;
    /// the paper recipe is infeasible past a few hundred nodes (its fixed
    /// 50×50 area would demand ever-denser packings and the eccentricity
    /// window empties).
    pub fn scaled(nodes: usize) -> Self {
        let side = (nodes as f64 / 0.05).sqrt();
        SyntheticDeployment {
            area: Rect::with_size(side, side),
            nodes,
            radius: PAPER_RADIUS,
            ecc_range: None,
            max_attempts: 200,
            hole: None,
        }
    }

    /// Node density in nodes per square foot (the x-axis of Figures 3–7).
    pub fn density(&self) -> f64 {
        self.nodes as f64 / self.area.area()
    }

    /// Draws one connected instance with a qualifying source.
    ///
    /// Returns `(topology, source)`. Instances are fully determined by
    /// `seed`, which the experiment harness derives from a master seed so
    /// every figure is reproducible.
    ///
    /// # Panics
    ///
    /// Panics when `max_attempts` resamples cannot produce a connected
    /// topology with a qualifying source — a sign the recipe is infeasible
    /// (e.g. 50 nodes with a 5-hop eccentricity demand on a tiny area).
    pub fn sample(&self, seed: u64) -> (Topology, NodeId) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..self.max_attempts {
            let topo = self.sample_positions(&mut rng);
            if !connectivity::is_connected(&topo) {
                continue;
            }
            if let Some(src) = self.pick_source(&topo, &mut rng) {
                return (topo, src);
            }
        }
        panic!(
            "no connected deployment with a qualifying source after {} attempts \
             (nodes={}, radius={}, ecc={:?})",
            self.max_attempts, self.nodes, self.radius, self.ecc_range
        );
    }

    /// Draws positions only (may be disconnected).
    fn sample_positions(&self, rng: &mut StdRng) -> Topology {
        let mut pts = Vec::with_capacity(self.nodes);
        while pts.len() < self.nodes {
            let p = Point::new(
                rng.random_range(self.area.min.x..=self.area.max.x),
                rng.random_range(self.area.min.y..=self.area.max.y),
            );
            if let Some((c, r)) = self.hole {
                if p.dist(&c) < r {
                    continue;
                }
            }
            pts.push(p);
        }
        Topology::unit_disk(pts, self.radius)
    }

    /// Picks a random source meeting the eccentricity constraint, if any.
    fn pick_source(&self, topo: &Topology, rng: &mut StdRng) -> Option<NodeId> {
        match self.ecc_range {
            None => Some(NodeId(rng.random_range(0..topo.len() as u32))),
            Some((lo, hi)) => {
                let qualifying: Vec<NodeId> = topo
                    .nodes()
                    .filter(|&u| {
                        metrics::eccentricity(topo, u)
                            .map(|e| e >= lo && e <= hi)
                            .unwrap_or(false)
                    })
                    .collect();
                if qualifying.is_empty() {
                    None
                } else {
                    Some(qualifying[rng.random_range(0..qualifying.len())])
                }
            }
        }
    }
}

/// A regular `cols × rows` grid with the given spacing — the degenerate
/// deterministic deployment used by tests and the quickstart example.
pub fn grid(cols: usize, rows: usize, spacing: f64, radius: f64) -> Topology {
    let mut pts = Vec::with_capacity(cols * rows);
    for y in 0..rows {
        for x in 0..cols {
            pts.push(Point::new(x as f64 * spacing, y as f64 * spacing));
        }
    }
    Topology::unit_disk(pts, radius)
}

/// Gaussian-clustered deployment: `clusters` cluster centers uniform in the
/// area, nodes split evenly and scattered around their center with the given
/// standard deviation. Models the "dense pockets" regime discussed in §V-C.
pub fn clustered(
    area: Rect,
    nodes: usize,
    clusters: usize,
    sigma: f64,
    radius: f64,
    seed: u64,
) -> Topology {
    assert!(clusters > 0, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..clusters)
        .map(|_| {
            Point::new(
                rng.random_range(area.min.x..=area.max.x),
                rng.random_range(area.min.y..=area.max.y),
            )
        })
        .collect();
    let mut pts = Vec::with_capacity(nodes);
    let mut k = 0;
    while pts.len() < nodes {
        let c = centers[k % clusters];
        k += 1;
        // Box-Muller from two uniforms.
        let (u1, u2): (f64, f64) = (rng.random_range(1e-12..1.0), rng.random_range(0.0..1.0));
        let mag = sigma * (-2.0 * u1.ln()).sqrt();
        let p = Point::new(
            (c.x + mag * (std::f64::consts::TAU * u2).cos()).clamp(area.min.x, area.max.x),
            (c.y + mag * (std::f64::consts::TAU * u2).sin()).clamp(area.min.y, area.max.y),
        );
        pts.push(p);
    }
    Topology::unit_disk(pts, radius)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_recipe_density_range() {
        assert!((SyntheticDeployment::paper(50).density() - 0.02).abs() < 1e-12);
        assert!((SyntheticDeployment::paper(300).density() - 0.12).abs() < 1e-12);
    }

    #[test]
    fn sample_is_connected_with_qualifying_source() {
        let d = SyntheticDeployment::paper(120);
        let (topo, src) = d.sample(42);
        assert_eq!(topo.len(), 120);
        assert!(connectivity::is_connected(&topo));
        let ecc = metrics::eccentricity(&topo, src).unwrap();
        assert!((5..=8).contains(&ecc), "eccentricity {ecc} outside 5..=8");
    }

    #[test]
    fn sample_is_deterministic_in_seed() {
        let d = SyntheticDeployment::paper(60);
        let (t1, s1) = d.sample(7);
        let (t2, s2) = d.sample(7);
        assert_eq!(s1, s2);
        assert_eq!(t1.positions().len(), t2.positions().len());
        for (a, b) in t1.positions().iter().zip(t2.positions()) {
            assert_eq!(a, b);
        }
        let (t3, _) = d.sample(8);
        assert!(
            t1.positions()
                .iter()
                .zip(t3.positions())
                .any(|(a, b)| a != b),
            "different seeds should differ"
        );
    }

    #[test]
    fn scaled_recipe_holds_density_constant() {
        let a = SyntheticDeployment::scaled(1_000);
        let b = SyntheticDeployment::scaled(4_000);
        assert!((a.density() - 0.05).abs() < 1e-12);
        assert!((b.density() - 0.05).abs() < 1e-12);
        assert!(b.area.area() > a.area.area());
        let (topo, src) = a.sample(1);
        assert_eq!(topo.len(), 1_000);
        assert!(connectivity::is_connected(&topo));
        assert!(src.idx() < 1_000);
    }

    #[test]
    fn hole_is_respected() {
        let mut d = SyntheticDeployment::paper(150);
        let hole_center = Point::new(25.0, 25.0);
        d.hole = Some((hole_center, 8.0));
        let (topo, _) = d.sample(3);
        for p in topo.positions() {
            assert!(p.dist(&hole_center) >= 8.0);
        }
    }

    #[test]
    fn grid_shape() {
        let t = grid(4, 3, 1.0, 1.1);
        assert_eq!(t.len(), 12);
        assert!(connectivity::is_connected(&t));
        // 4-neighborhood: horizontal edges 3*3, vertical 4*2.
        assert_eq!(t.csr().edge_count(), 9 + 8);
    }

    #[test]
    fn clustered_respects_area() {
        let area = Rect::with_size(50.0, 50.0);
        let t = clustered(area, 100, 4, 3.0, 10.0, 9);
        assert_eq!(t.len(), 100);
        for p in t.positions() {
            assert!(area.contains(p));
        }
    }
}
