//! Plain-text topology (de)serialization.
//!
//! A tiny line-oriented format so experiment instances can be archived and
//! replayed without a serialization framework:
//!
//! ```text
//! wsn-topology v1
//! radius 10
//! nodes 3
//! 0.5 1.25
//! 10 20
//! 30.5 40
//! ```
//!
//! Adjacency is *not* stored — it is rederived from positions under the UDG
//! rule, which guarantees a loaded topology can never disagree with its
//! geometry.

use crate::Topology;
use std::fmt::Write as _;
use wsn_geom::Point;

/// Serializes a topology to the text format.
pub fn to_string(topo: &Topology) -> String {
    let mut out = String::new();
    out.push_str("wsn-topology v1\n");
    let _ = writeln!(out, "radius {}", topo.radius());
    let _ = writeln!(out, "nodes {}", topo.len());
    for p in topo.positions() {
        let _ = writeln!(out, "{} {}", p.x, p.y);
    }
    out
}

/// Parse failure description.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "topology parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parses the text format produced by [`to_string`].
pub fn from_str(s: &str) -> Result<Topology, ParseError> {
    let mut lines = s.lines();
    let header = lines
        .next()
        .ok_or_else(|| ParseError("empty input".into()))?;
    if header.trim() != "wsn-topology v1" {
        return Err(ParseError(format!("unknown header {header:?}")));
    }
    let radius_line = lines
        .next()
        .ok_or_else(|| ParseError("missing radius line".into()))?;
    let radius: f64 = radius_line
        .strip_prefix("radius ")
        .ok_or_else(|| ParseError(format!("expected 'radius <r>', got {radius_line:?}")))?
        .trim()
        .parse()
        .map_err(|e| ParseError(format!("bad radius: {e}")))?;
    let nodes_line = lines
        .next()
        .ok_or_else(|| ParseError("missing nodes line".into()))?;
    let n: usize = nodes_line
        .strip_prefix("nodes ")
        .ok_or_else(|| ParseError(format!("expected 'nodes <n>', got {nodes_line:?}")))?
        .trim()
        .parse()
        .map_err(|e| ParseError(format!("bad node count: {e}")))?;
    let mut pts = Vec::with_capacity(n);
    for i in 0..n {
        let line = lines
            .next()
            .ok_or_else(|| ParseError(format!("missing position line {i}")))?;
        let mut parts = line.split_whitespace();
        let x: f64 = parts
            .next()
            .ok_or_else(|| ParseError(format!("line {i}: missing x")))?
            .parse()
            .map_err(|e| ParseError(format!("line {i}: bad x: {e}")))?;
        let y: f64 = parts
            .next()
            .ok_or_else(|| ParseError(format!("line {i}: missing y")))?
            .parse()
            .map_err(|e| ParseError(format!("line {i}: bad y: {e}")))?;
        if parts.next().is_some() {
            return Err(ParseError(format!("line {i}: trailing tokens")));
        }
        pts.push(Point::new(x, y));
    }
    Ok(Topology::unit_disk(pts, radius))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy;

    #[test]
    fn roundtrip_preserves_everything() {
        let t = deploy::grid(4, 4, 7.0, 10.0);
        let s = to_string(&t);
        let t2 = from_str(&s).unwrap();
        assert_eq!(t.len(), t2.len());
        assert_eq!(t.radius(), t2.radius());
        assert_eq!(t.positions(), t2.positions());
        assert_eq!(t.csr(), t2.csr());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("wsn-topology v2\nradius 1\nnodes 0\n").is_err());
        assert!(from_str("wsn-topology v1\nradius x\nnodes 0\n").is_err());
        assert!(from_str("wsn-topology v1\nradius 1\nnodes 2\n0 0\n").is_err());
        assert!(from_str("wsn-topology v1\nradius 1\nnodes 1\n0 0 0\n").is_err());
    }

    #[test]
    fn error_messages_name_the_line() {
        let err = from_str("wsn-topology v1\nradius 1\nnodes 1\n0 oops\n").unwrap_err();
        assert!(err.0.contains("line 0"), "got: {}", err.0);
    }
}
