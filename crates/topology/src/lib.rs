//! WSN topologies: deployments, unit-disk-graph adjacency, hop metrics,
//! and network-edge detection.
//!
//! The paper models a WSN as a graph `G = (N, E)` induced by node positions
//! under the unit-disk-graph (UDG) model: `u` and `v` are neighbors exactly
//! when their distance is at most the communication radius (§III). This
//! crate owns everything derived from positions:
//!
//! * [`Topology`] — positions + radius + CSR adjacency + per-node neighbor
//!   bitsets (the representation every scheduler operates on);
//! * [`deploy`] — §V-A deployments: uniform random nodes in a 50×50 sq-ft
//!   area with radius 10 ft, plus grid / clustered / punched-hole variants
//!   and eccentricity-constrained source selection (5–8 hops);
//! * [`metrics`] — BFS hop distances, eccentricity, diameter;
//! * [`LinkQuality`] — per-link delivery probabilities layered over the
//!   UDG edges (uniform or synthetic distance-correlated loss with
//!   flap-prone edges), the substrate of every loss-aware path;
//! * [`boundary`] — the network-edge detection used to seed the E-model
//!   (convex hull + angular-gap boundary construction; paper refs [3], [6]);
//! * [`fixtures`] — the paper's Figure 1 and Figure 2 example networks,
//!   reconstructed so the UDG reproduces Table II/III/IV exactly.

mod csr;
mod quality;
mod topo;

pub mod boundary;
pub mod connectivity;
pub mod deploy;
pub mod fixtures;
pub mod io;
pub mod metrics;

pub use csr::Csr;
pub use quality::{LinkQuality, LinkQualityParams};
pub use topo::Topology;

/// Index of a node in a topology. Kept as a bare `u32` newtype: node counts
/// in the paper's evaluation are ≤ 300, and compact ids keep the hot bitset
/// and CSR paths cache-friendly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(i: usize) -> Self {
        NodeId(i as u32)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
