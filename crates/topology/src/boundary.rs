//! Network-edge detection: convex hull seeds plus angular-gap boundary
//! construction (the paper's references [3] and [6]).
//!
//! Algorithm 2 step 1 "constitutes the edge of the networks" by combining
//! the convex hull with a boundary-construction walk. Reference [6]
//! (Goldenberg et al.) is a mobility-control paper, so the construction is
//! under-specified; we substitute the standard angular-gap criterion used
//! throughout the WSN hole-detection literature (documented in DESIGN.md):
//!
//! * every convex-hull vertex is an edge node;
//! * any node whose neighbor bearings leave an empty angular sector of at
//!   least [`DEFAULT_GAP_THRESHOLD`] faces open space and is an edge node.
//!
//! The distinction between *network-edge* nodes (pass 1 seeds of the
//! E-model) and *hole-boundary* local minima (seeded in pass 2) follows the
//! paper exactly: pass 2 only promotes nodes that are still `∞` after the
//! first relaxation.

use crate::{NodeId, Topology};
use wsn_geom::{convex_hull, max_angular_gap};

/// Default angular-gap threshold (120°) above which a node is considered to
/// face open space. 120° is the classical value: an interior node of a
/// reasonably dense UDG deployment has neighbors in every 120° sector.
pub const DEFAULT_GAP_THRESHOLD: f64 = 2.0 * std::f64::consts::FRAC_PI_3;

/// Edge nodes of the network: convex-hull vertices plus angular-gap nodes.
///
/// Returns a sorted, deduplicated list. Uses [`DEFAULT_GAP_THRESHOLD`]; see
/// [`edge_nodes_with_threshold`] to tune.
pub fn edge_nodes(topo: &Topology) -> Vec<NodeId> {
    edge_nodes_with_threshold(topo, DEFAULT_GAP_THRESHOLD)
}

/// Edge nodes with an explicit angular-gap threshold in radians.
pub fn edge_nodes_with_threshold(topo: &Topology, gap_threshold: f64) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = convex_hull(topo.positions())
        .into_iter()
        .map(|i| NodeId(i as u32))
        .collect();
    for u in topo.nodes() {
        let pu = topo.position(u);
        let neighbor_pts: Vec<_> = topo
            .neighbors(u)
            .iter()
            .map(|&v| topo.position(v))
            .collect();
        if max_angular_gap(&pu, &neighbor_pts) >= gap_threshold {
            out.push(u);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// `true` when `u` is an edge node under the default threshold.
pub fn is_edge_node(topo: &Topology, u: NodeId) -> bool {
    edge_nodes(topo).contains(&u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::Point;

    /// 5×5 unit grid with radius 1.1 (4-connectivity plus nothing else).
    fn grid5() -> Topology {
        let mut pts = Vec::new();
        for y in 0..5 {
            for x in 0..5 {
                pts.push(Point::new(x as f64, y as f64));
            }
        }
        Topology::unit_disk(pts, 1.1)
    }

    #[test]
    fn grid_perimeter_is_edge_interior_is_not() {
        let t = grid5();
        let edges = edge_nodes(&t);
        // Corner (0,0) = id 0 is a hull vertex.
        assert!(edges.contains(&NodeId(0)));
        // Side midpoint (2,0) = id 2: neighbors at W/E/N only → gap 180°.
        assert!(edges.contains(&NodeId(2)));
        // Interior center (2,2) = id 12: neighbors in all four directions →
        // max gap 90° < 120°.
        assert!(!edges.contains(&NodeId(12)));
    }

    #[test]
    fn all_perimeter_nodes_detected() {
        let t = grid5();
        let edges = edge_nodes(&t);
        for y in 0..5usize {
            for x in 0..5usize {
                let id = NodeId((y * 5 + x) as u32);
                let on_perimeter = x == 0 || x == 4 || y == 0 || y == 4;
                assert_eq!(
                    edges.contains(&id),
                    on_perimeter,
                    "node ({x},{y}) edge classification"
                );
            }
        }
    }

    #[test]
    fn isolated_node_is_edge() {
        let t = Topology::unit_disk(vec![Point::new(0.0, 0.0)], 1.0);
        assert!(is_edge_node(&t, NodeId(0)));
    }

    #[test]
    fn threshold_monotonicity() {
        let t = grid5();
        let strict = edge_nodes_with_threshold(&t, std::f64::consts::PI);
        let loose = edge_nodes_with_threshold(&t, std::f64::consts::FRAC_PI_2);
        // A lower threshold can only add edge nodes.
        for u in &strict {
            assert!(loose.contains(u));
        }
    }
}
