//! The [`Topology`] type: positions + radius + derived adjacency.

use crate::{Csr, NodeId};
use wsn_bitset::NodeSet;
use wsn_geom::{CellGrid, Point, Quadrant};

/// A WSN topology under the unit-disk-graph model.
///
/// Owns the node positions, the communication radius, the CSR adjacency and
/// one [`NodeSet`] neighbor mask per node. The neighbor masks are what the
/// schedulers consume: every interference predicate in the paper is a set
/// expression over `N(u)` masks and the informed set `W`.
#[derive(Clone, Debug)]
pub struct Topology {
    positions: Vec<Point>,
    radius: f64,
    csr: Csr,
    /// `neighbor_sets[u]` = `N(u)` as a bitset (excludes `u` itself).
    neighbor_sets: Vec<NodeSet>,
    /// `closed_sets[u]` = `N[u] = N(u) ∪ {u}`, used by coverage checks.
    closed_sets: Vec<NodeSet>,
    /// Process-unique identity token (clones share it — their adjacency is
    /// identical). Lets per-topology caches detect a swap to a *different*
    /// topology that happens to have the same node count.
    token: u64,
}

/// Source of [`Topology::token`] values; 0 is reserved for "no topology".
static NEXT_TOKEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Node count below which [`Topology::unit_disk_parallel`] takes the serial
/// path: deriving one node's neighbor list costs a 3×3 grid-cell scan, so a
/// few thousand nodes finish faster than threads can be spawned.
const PARALLEL_BUILD_MIN_NODES: usize = 4_096;

impl Topology {
    /// Builds the UDG topology of `positions` with communication `radius`.
    ///
    /// Neighbor discovery uses a uniform grid of `radius`-sized cells, so
    /// construction is `O(n · expected-neighbors)` rather than `O(n²)` —
    /// this matters for the Monte-Carlo sweeps that build thousands of
    /// 300-node instances.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive or any coordinate is
    /// non-finite.
    pub fn unit_disk(positions: Vec<Point>, radius: f64) -> Self {
        assert!(radius > 0.0, "radius must be positive");
        assert!(
            positions.iter().all(|p| p.x.is_finite() && p.y.is_finite()),
            "positions must be finite"
        );
        let n = positions.len();

        // Spatial-hash candidate generation (shared with gain tables and
        // conflict-pair enumeration via `wsn_geom::CellGrid`).
        let grid = CellGrid::build(&positions, radius);
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        grid.for_each_pair_within(&positions, radius, |i, j| {
            edges.push((NodeId(i), NodeId(j)));
        });

        Self::from_parts(positions, radius, Csr::from_edges(n, &edges))
    }

    /// Parallel counterpart of [`Topology::unit_disk`]: grid binning and
    /// per-node neighbor discovery are partitioned over contiguous node
    /// ranges on `threads` scoped threads, and the per-range results are
    /// stitched back in node order, so the adjacency (CSR and neighbor
    /// masks) is bit-identical to the serial build. Only the identity
    /// token differs — tokens are construction-unique by design.
    ///
    /// Small instances (or `threads <= 1`) take the serial path untouched.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Topology::unit_disk`].
    pub fn unit_disk_parallel(positions: Vec<Point>, radius: f64, threads: usize) -> Self {
        let n = positions.len();
        if threads <= 1 || n < PARALLEL_BUILD_MIN_NODES {
            return Self::unit_disk(positions, radius);
        }
        assert!(radius > 0.0, "radius must be positive");
        assert!(
            positions.iter().all(|p| p.x.is_finite() && p.y.is_finite()),
            "positions must be finite"
        );

        let grid = CellGrid::build_parallel(&positions, radius, threads);
        let chunk = n.div_ceil(threads);
        type RangeBuild = (Vec<Vec<NodeId>>, Vec<(NodeSet, NodeSet)>);
        let mut per_range: Vec<RangeBuild> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = (t * chunk).min(n);
                    let hi = ((t + 1) * chunk).min(n);
                    let grid = &grid;
                    let positions = &positions;
                    scope.spawn(move || {
                        let mut lists = Vec::with_capacity(hi - lo);
                        let mut sets = Vec::with_capacity(hi - lo);
                        for u in lo..hi {
                            let ns = grid.neighbors_within(positions, u as u32, radius);
                            let mut s = NodeSet::new(n);
                            for &v in &ns {
                                s.insert(v as usize);
                            }
                            let mut c = s.clone();
                            c.insert(u);
                            lists.push(ns.into_iter().map(NodeId).collect::<Vec<NodeId>>());
                            sets.push((s, c));
                        }
                        (lists, sets)
                    })
                })
                .collect();
            for h in handles {
                per_range.push(h.join().expect("adjacency build worker panicked"));
            }
        });

        let mut lists = Vec::with_capacity(n);
        let mut neighbor_sets = Vec::with_capacity(n);
        let mut closed_sets = Vec::with_capacity(n);
        for (range_lists, range_sets) in per_range {
            lists.extend(range_lists);
            for (s, c) in range_sets {
                neighbor_sets.push(s);
                closed_sets.push(c);
            }
        }
        Topology {
            positions,
            radius,
            csr: Csr::from_neighbor_lists(&lists),
            neighbor_sets,
            closed_sets,
            token: NEXT_TOKEN.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Builds a topology from an explicit edge list, bypassing the UDG rule.
    ///
    /// Used by tests that need a specific graph regardless of geometry; the
    /// paper fixtures use [`Topology::unit_disk`] so geometry and adjacency
    /// stay consistent.
    pub fn from_edge_list(positions: Vec<Point>, radius: f64, edges: &[(NodeId, NodeId)]) -> Self {
        let n = positions.len();
        Self::from_parts(positions, radius, Csr::from_edges(n, edges))
    }

    fn from_parts(positions: Vec<Point>, radius: f64, csr: Csr) -> Self {
        let n = positions.len();
        let mut neighbor_sets = Vec::with_capacity(n);
        let mut closed_sets = Vec::with_capacity(n);
        for u in 0..n {
            let mut s = NodeSet::new(n);
            for &v in csr.neighbors_of(NodeId(u as u32)) {
                s.insert(v.idx());
            }
            let mut c = s.clone();
            c.insert(u);
            neighbor_sets.push(s);
            closed_sets.push(c);
        }
        Topology {
            positions,
            radius,
            csr,
            neighbor_sets,
            closed_sets,
            token: NEXT_TOKEN.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Process-unique identity of this topology (shared by clones, never 0).
    ///
    /// Caches that hold per-topology state (e.g. the incremental conflict
    /// builder's witness sets) key their validity on this instead of the
    /// node count, so handing them a different same-sized topology
    /// invalidates them instead of silently corrupting results.
    #[inline]
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when the topology has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Communication radius.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Position of `u`.
    #[inline]
    pub fn position(&self, u: NodeId) -> Point {
        self.positions[u.idx()]
    }

    /// All positions.
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The CSR adjacency.
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Sorted neighbor list `N(u)`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        self.csr.neighbors_of(u)
    }

    /// Neighbor mask `N(u)` as a bitset.
    #[inline]
    pub fn neighbor_set(&self, u: NodeId) -> &NodeSet {
        &self.neighbor_sets[u.idx()]
    }

    /// Closed neighbor mask `N[u] = N(u) ∪ {u}`.
    #[inline]
    pub fn closed_neighbor_set(&self, u: NodeId) -> &NodeSet {
        &self.closed_sets[u.idx()]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.csr.degree(u)
    }

    /// `true` when `u` and `v` are adjacent.
    #[inline]
    pub fn adjacent(&self, u: NodeId, v: NodeId) -> bool {
        self.csr.has_edge(u, v)
    }

    /// Iterates all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId)
    }

    /// Average degree, a key density diagnostic in §V (density × πr²).
    pub fn average_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        2.0 * self.csr.edge_count() as f64 / self.len() as f64
    }

    /// Neighbors of `u` lying in quadrant `q` of `u` (`N(u) ∩ Q_i(u)`),
    /// the adjacency view the E-model relaxation runs on.
    pub fn neighbors_in_quadrant(&self, u: NodeId, q: Quadrant) -> Vec<NodeId> {
        let pu = self.position(u);
        self.neighbors(u)
            .iter()
            .copied()
            .filter(|&v| Quadrant::of(&pu, &self.position(v)) == Some(q))
            .collect()
    }

    /// `true` when `u` has at least one neighbor in quadrant `q`
    /// (`N(u) ∩ Q_i(u) ≠ ∅`), the emptiness test of Algorithm 2.
    pub fn has_neighbor_in_quadrant(&self, u: NodeId, q: Quadrant) -> bool {
        let pu = self.position(u);
        self.neighbors(u)
            .iter()
            .any(|&v| Quadrant::of(&pu, &self.position(v)) == Some(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_topo() -> Topology {
        // Unit square corners plus center; radius 1.1 connects sides and
        // center-to-corners (corner distance √0.5 ≈ 0.707), but not diagonals
        // (√2 ≈ 1.414).
        Topology::unit_disk(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(0.0, 1.0),
                Point::new(0.5, 0.5),
            ],
            1.1,
        )
    }

    #[test]
    fn udg_edges_match_distances() {
        let t = square_topo();
        assert!(t.adjacent(NodeId(0), NodeId(1)));
        assert!(t.adjacent(NodeId(0), NodeId(3)));
        assert!(!t.adjacent(NodeId(0), NodeId(2)), "diagonal too far");
        assert!(t.adjacent(NodeId(4), NodeId(0)));
        assert_eq!(t.degree(NodeId(4)), 4);
        assert_eq!(t.csr().edge_count(), 8);
    }

    #[test]
    fn neighbor_sets_mirror_csr() {
        let t = square_topo();
        for u in t.nodes() {
            let from_csr: Vec<usize> = t.neighbors(u).iter().map(|v| v.idx()).collect();
            assert_eq!(t.neighbor_set(u).to_vec(), from_csr);
            assert!(t.closed_neighbor_set(u).contains(u.idx()));
            assert_eq!(t.closed_neighbor_set(u).len(), from_csr.len() + 1);
        }
    }

    #[test]
    fn radius_boundary_is_inclusive() {
        let t = Topology::unit_disk(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)], 1.0);
        assert!(t.adjacent(NodeId(0), NodeId(1)));
    }

    #[test]
    fn grid_bucket_matches_bruteforce() {
        // Deterministic pseudo-random scatter; compare against O(n²).
        let mut state = 0x12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let pts: Vec<Point> = (0..120)
            .map(|_| Point::new(next() * 50.0, next() * 50.0))
            .collect();
        let t = Topology::unit_disk(pts.clone(), 10.0);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let expect = pts[i].dist2(&pts[j]) <= 100.0;
                assert_eq!(
                    t.adjacent(NodeId(i as u32), NodeId(j as u32)),
                    expect,
                    "edge ({i},{j}) mismatch"
                );
            }
        }
    }

    #[test]
    fn quadrant_neighbors() {
        let t = square_topo();
        // From the center (0.5,0.5): corner 2 (1,1) is Q1, corner 3 (0,1) is
        // Q2, corner 0 (0,0) is Q3, corner 1 (1,0) is Q4.
        let c = NodeId(4);
        assert_eq!(t.neighbors_in_quadrant(c, Quadrant::Q1), vec![NodeId(2)]);
        assert_eq!(t.neighbors_in_quadrant(c, Quadrant::Q2), vec![NodeId(3)]);
        assert_eq!(t.neighbors_in_quadrant(c, Quadrant::Q3), vec![NodeId(0)]);
        assert_eq!(t.neighbors_in_quadrant(c, Quadrant::Q4), vec![NodeId(1)]);
        // Corner 0 has no Q3 neighbor: everything is up-right of it.
        assert!(!t.has_neighbor_in_quadrant(NodeId(0), Quadrant::Q3));
        assert!(t.has_neighbor_in_quadrant(NodeId(0), Quadrant::Q1));
    }

    #[test]
    fn average_degree() {
        let t = square_topo();
        assert!((t.average_degree() - 16.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_rejected() {
        Topology::unit_disk(vec![Point::new(0.0, 0.0)], 0.0);
    }

    #[test]
    fn parallel_unit_disk_is_bit_identical_to_serial() {
        // Enough nodes to clear the PARALLEL_BUILD_MIN_NODES gate.
        let mut state = 0xfeed_beefu64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let pts: Vec<Point> = (0..PARALLEL_BUILD_MIN_NODES + 200)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        let serial = Topology::unit_disk(pts.clone(), 2.5);
        for threads in [1, 2, 4] {
            let par = Topology::unit_disk_parallel(pts.clone(), 2.5, threads);
            assert_eq!(par.csr(), serial.csr(), "threads {threads}");
            assert_eq!(par.neighbor_sets, serial.neighbor_sets);
            assert_eq!(par.closed_sets, serial.closed_sets);
            assert_ne!(par.token(), serial.token(), "tokens are per-construction");
        }
    }

    #[test]
    fn negative_coordinates_supported() {
        let t = Topology::unit_disk(
            vec![
                Point::new(-5.0, -5.0),
                Point::new(-4.5, -5.0),
                Point::new(5.0, 5.0),
            ],
            1.0,
        );
        assert!(t.adjacent(NodeId(0), NodeId(1)));
        assert!(!t.adjacent(NodeId(0), NodeId(2)));
    }
}
