//! Per-link delivery probabilities: the [`LinkQuality`] layer.
//!
//! The paper's network model treats every link as lossless; §VI concedes
//! real deployments are not. This layer attaches a delivery probability to
//! every UDG edge — the probability that a single transmission over the
//! link is received — without touching the adjacency structure itself.
//! Everything loss-aware downstream (the ε-reliability objective in
//! `mlbs-core`, the per-link lossy replay and fault harness in `wsn-sim`,
//! the repeat-slot planner in `wsn-anytime`) reads link quality through
//! this one type.
//!
//! Storage is a probability array parallel to the topology's CSR neighbor
//! array, so `delivery(u, v)` is a binary search in `u`'s sorted neighbor
//! row and iteration is cache-friendly in the same order every replay
//! already walks. Quality is kept symmetric (`p(u,v) == p(v,u)`): the
//! synthetic generator draws once per undirected edge, and the setter
//! writes both directions.
//!
//! The synthetic generator is deterministic in `(topology, params, seed)`
//! and *order-free*: each edge's draws are a SplitMix64 hash of
//! `(seed, min(u,v), max(u,v))`, so the same edge gets the same quality no
//! matter how the topology was constructed or which thread asks first.

use crate::{NodeId, Topology};

/// SplitMix64 finalizer over a mixed word — the same order-free hashing
/// trick the sweep harness uses for seed derivation.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut x =
        seed ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A draw in `[0, 1)` from a mixed word.
fn unit(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// Parameters of the synthetic link-quality generator.
///
/// Per-attempt *loss* grows with normalized link distance:
/// `loss = loss_near + (loss_far − loss_near) · (d / radius)^gamma`, so
/// short links are nearly clean and edge-of-range links are marginal — the
/// standard empirical shape of the LQI-vs-distance transition region. On
/// top of the distance law, a `flaky_fraction` of edges (drawn per edge,
/// deterministically) carries `flaky_extra_loss` additional loss: these are
/// the burst/flap-prone links the fault harness targets.
#[derive(Clone, Copy, Debug)]
pub struct LinkQualityParams {
    /// Loss probability of a zero-length link.
    pub loss_near: f64,
    /// Loss probability at exactly the communication radius.
    pub loss_far: f64,
    /// Exponent of the distance law (higher = sharper transition region).
    pub gamma: f64,
    /// Fraction of edges that are flap-prone.
    pub flaky_fraction: f64,
    /// Additional loss carried by flap-prone edges.
    pub flaky_extra_loss: f64,
}

impl Default for LinkQualityParams {
    fn default() -> Self {
        LinkQualityParams {
            loss_near: 0.02,
            loss_far: 0.25,
            gamma: 2.0,
            flaky_fraction: 0.05,
            flaky_extra_loss: 0.35,
        }
    }
}

/// Per-link delivery probabilities over one topology's edges (see the
/// module docs). Constructed against a specific [`Topology`] and validated
/// against it by length; the topology itself is not retained.
#[derive(Clone, Debug)]
pub struct LinkQuality {
    /// Delivery probability per directed CSR slot (`u`'s k-th neighbor).
    deliver: Vec<f64>,
    /// CSR row offsets, copied so lookups need no topology reference.
    offsets: Vec<u32>,
    /// Flap-prone edges (synthetic generator only; empty = none marked).
    flaky: Vec<bool>,
}

impl LinkQuality {
    fn with_filler(topo: &Topology, mut fill: impl FnMut(NodeId, NodeId) -> (f64, bool)) -> Self {
        let n = topo.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut deliver = Vec::new();
        let mut flaky = Vec::new();
        for u in topo.nodes() {
            for &v in topo.neighbors(u) {
                let (p, f) = fill(u, v);
                assert!((0.0..=1.0).contains(&p), "delivery must be a probability");
                deliver.push(p);
                flaky.push(f);
            }
            offsets.push(deliver.len() as u32);
        }
        LinkQuality {
            deliver,
            offsets,
            flaky,
        }
    }

    /// Every link delivers with probability `p` — the uniform quality the
    /// legacy global-loss replay corresponds to.
    pub fn uniform(topo: &Topology, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "delivery must be a probability");
        LinkQuality::with_filler(topo, |_, _| (p, false))
    }

    /// Deterministic synthetic quality: distance-correlated loss plus a
    /// flap-prone edge subset (see [`LinkQualityParams`]). Order-free in
    /// construction and symmetric per undirected edge.
    pub fn synthetic(topo: &Topology, params: &LinkQualityParams, seed: u64) -> Self {
        let radius = topo.radius().max(f64::MIN_POSITIVE);
        let positions = topo.positions();
        LinkQuality::with_filler(topo, |u, v| {
            let (a, b) = (u.0.min(v.0), u.0.max(v.0));
            let d = positions[u.idx()].dist(&positions[v.idx()]);
            let frac = (d / radius).clamp(0.0, 1.0);
            let mut loss =
                params.loss_near + (params.loss_far - params.loss_near) * frac.powf(params.gamma);
            let flaky = unit(mix(seed, u64::from(a), u64::from(b))) < params.flaky_fraction;
            if flaky {
                loss += params.flaky_extra_loss;
            }
            ((1.0 - loss).clamp(0.0, 1.0), flaky)
        })
    }

    /// Delivery probability of the `k`-th neighbor link of `u` — the
    /// direct-indexed accessor replay loops use while walking
    /// `topo.neighbors(u)` in order.
    #[inline]
    pub fn delivery_at(&self, u: NodeId, k: usize) -> f64 {
        self.deliver[self.offsets[u.idx()] as usize + k]
    }

    /// Delivery probability of link `(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics when `u` and `v` are not adjacent in the topology this
    /// quality was built for.
    #[inline]
    pub fn delivery(&self, topo: &Topology, u: NodeId, v: NodeId) -> f64 {
        let k = topo
            .neighbors(u)
            .binary_search(&v)
            .expect("delivery() requires an existing link");
        self.delivery_at(u, k)
    }

    /// `true` when the synthetic generator marked `(u, v)` flap-prone.
    #[inline]
    pub fn is_flaky(&self, topo: &Topology, u: NodeId, v: NodeId) -> bool {
        let k = topo
            .neighbors(u)
            .binary_search(&v)
            .expect("is_flaky() requires an existing link");
        self.flaky[self.offsets[u.idx()] as usize + k]
    }

    /// Sets the delivery probability of `(u, v)` symmetrically (both
    /// directions) — how the online estimator writes back re-estimated
    /// probabilities.
    ///
    /// # Panics
    ///
    /// Panics when the link does not exist or `p` is not a probability.
    pub fn set_delivery(&mut self, topo: &Topology, u: NodeId, v: NodeId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "delivery must be a probability");
        for (a, b) in [(u, v), (v, u)] {
            let k = topo
                .neighbors(a)
                .binary_search(&b)
                .expect("set_delivery() requires an existing link");
            self.deliver[self.offsets[a.idx()] as usize + k] = p;
        }
    }

    /// Number of directed link slots (2 × undirected edges).
    #[inline]
    pub fn len(&self) -> usize {
        self.deliver.len()
    }

    /// `true` on an edgeless topology.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.deliver.is_empty()
    }

    /// Mean delivery probability across directed links (1.0 when edgeless).
    pub fn mean_delivery(&self) -> f64 {
        if self.deliver.is_empty() {
            return 1.0;
        }
        self.deliver.iter().sum::<f64>() / self.deliver.len() as f64
    }

    /// Worst link's delivery probability (1.0 when edgeless).
    pub fn min_delivery(&self) -> f64 {
        self.deliver.iter().copied().fold(1.0, f64::min)
    }

    /// `true` when every link has delivery probability exactly `p` — the
    /// test the uniform-quality convenience wrappers rely on.
    pub fn is_uniform(&self, p: f64) -> bool {
        self.deliver.iter().all(|&q| q == p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::SyntheticDeployment;

    fn topo() -> Topology {
        SyntheticDeployment::paper(120).sample(7).0
    }

    #[test]
    fn uniform_is_uniform_and_symmetric() {
        let t = topo();
        let q = LinkQuality::uniform(&t, 0.9);
        assert!(q.is_uniform(0.9));
        assert_eq!(q.len(), t.csr().edge_count() * 2);
        for u in t.nodes().take(20) {
            for &v in t.neighbors(u) {
                assert_eq!(q.delivery(&t, u, v), q.delivery(&t, v, u));
            }
        }
    }

    #[test]
    fn synthetic_is_deterministic_symmetric_and_distance_correlated() {
        let t = topo();
        let params = LinkQualityParams::default();
        let a = LinkQuality::synthetic(&t, &params, 42);
        let b = LinkQuality::synthetic(&t, &params, 42);
        let c = LinkQuality::synthetic(&t, &params, 43);
        let mut any_differs = false;
        let mut short_sum = (0.0, 0usize);
        let mut long_sum = (0.0, 0usize);
        for u in t.nodes() {
            for (k, &v) in t.neighbors(u).iter().enumerate() {
                let p = a.delivery_at(u, k);
                assert_eq!(p, b.delivery_at(u, k), "same seed must reproduce");
                assert_eq!(p, a.delivery(&t, v, u), "quality must be symmetric");
                any_differs |= p != c.delivery_at(u, k);
                let d = t.position(u).dist(&t.position(v)) / t.radius();
                if d < 0.4 {
                    short_sum = (short_sum.0 + p, short_sum.1 + 1);
                } else if d > 0.8 {
                    long_sum = (long_sum.0 + p, long_sum.1 + 1);
                }
            }
        }
        assert!(any_differs, "different seeds must differ somewhere");
        let (short_mean, long_mean) = (
            short_sum.0 / short_sum.1 as f64,
            long_sum.0 / long_sum.1 as f64,
        );
        assert!(
            short_mean > long_mean,
            "short links ({short_mean:.3}) must out-deliver long links ({long_mean:.3})"
        );
        assert!(a.min_delivery() >= 0.0 && a.mean_delivery() <= 1.0);
    }

    #[test]
    fn flaky_edges_exist_and_carry_extra_loss() {
        let t = topo();
        let params = LinkQualityParams {
            flaky_fraction: 0.2,
            ..LinkQualityParams::default()
        };
        let q = LinkQuality::synthetic(&t, &params, 9);
        let mut flaky = 0usize;
        let mut total = 0usize;
        for u in t.nodes() {
            for &v in t.neighbors(u) {
                total += 1;
                if q.is_flaky(&t, u, v) {
                    flaky += 1;
                    assert!(q.delivery(&t, u, v) <= 1.0 - params.flaky_extra_loss + 1e-12);
                }
            }
        }
        let frac = flaky as f64 / total as f64;
        assert!(
            (0.05..0.5).contains(&frac),
            "flaky fraction {frac:.3} far from requested 0.2"
        );
    }

    #[test]
    fn set_delivery_writes_both_directions() {
        let t = topo();
        let mut q = LinkQuality::uniform(&t, 1.0);
        let u = t.nodes().find(|&u| t.degree(u) > 0).unwrap();
        let v = t.neighbors(u)[0];
        q.set_delivery(&t, u, v, 0.5);
        assert_eq!(q.delivery(&t, u, v), 0.5);
        assert_eq!(q.delivery(&t, v, u), 0.5);
        assert!(!q.is_uniform(1.0));
    }
}
