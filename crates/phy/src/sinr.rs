//! The pairwise SINR (physical interference) model.

use crate::{ConflictModel, ReceptionOutcome, WitnessLocality};
use std::sync::Arc;
use wsn_bitset::NodeSet;
use wsn_geom::CellGrid;
use wsn_topology::{NodeId, Topology};

/// SINR model parameters. All senders share one transmit `power`; the gain
/// of a link of length `d` is `d^−α`; a transmission decodes at a receiver
/// when `power·g_signal ≥ β · (noise + power·g_interference)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SinrParams {
    /// Transmit power (identical for all nodes).
    pub power: f64,
    /// Path-loss exponent `α` (free space 2, urban 3–5).
    pub alpha: f64,
    /// Decoding SINR threshold `β`.
    pub beta: f64,
    /// Ambient noise floor.
    pub noise: f64,
    /// Interference range: gains of links longer than this are treated as
    /// zero (the bounded-interference truncation every grph-schedulable
    /// SINR treatment makes; must be ≥ the topology radius).
    pub cutoff: f64,
}

impl SinrParams {
    /// Parameters calibrated so the interference-free reception range is
    /// exactly `radius` (`power·radius^−α = β·noise`): every topology link
    /// decodes when no other sender interferes, so schedules can always
    /// complete. Interference is counted out to `2·radius`.
    pub fn calibrated(radius: f64, alpha: f64, beta: f64) -> SinrParams {
        assert!(radius > 0.0 && alpha > 0.0 && beta > 0.0);
        let power = 1.0;
        SinrParams {
            power,
            alpha,
            beta,
            noise: power * radius.powf(-alpha) / beta,
            cutoff: 2.0 * radius,
        }
    }

    /// Threshold-degenerate parameters reproducing the protocol model on
    /// `topo` *edge for edge*: the interference cutoff sits at the UDG
    /// radius (out-of-range senders do not interfere), `β` exceeds the
    /// worst in-range signal-to-interference ratio `(radius/d_min)^α`
    /// (capture can never save a receiver that hears two in-range senders),
    /// and `noise` is calibrated so the reception range equals the radius.
    /// The resulting witness sets are exactly the common neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `topo` has an edge of length 0 (coincident nodes have
    /// infinite gain, which no threshold can dominate).
    pub fn degenerate(topo: &Topology, alpha: f64) -> SinrParams {
        assert!(alpha > 0.0);
        let radius = topo.radius();
        let mut d2_min = f64::INFINITY;
        for u in topo.nodes() {
            let pu = topo.position(u);
            for &v in topo.neighbors(u) {
                if v > u {
                    d2_min = d2_min.min(topo.position(v).dist2(&pu));
                }
            }
        }
        if !d2_min.is_finite() {
            // Edgeless topology: any in-range pair bound works.
            d2_min = radius * radius;
        }
        assert!(d2_min > 0.0, "degenerate SINR needs distinct positions");
        let power = 1.0;
        let beta = 2.0 * (radius * radius / d2_min).powf(alpha / 2.0);
        SinrParams {
            power,
            alpha,
            beta,
            noise: power * radius.powf(-alpha) / beta,
            cutoff: radius,
        }
    }
}

/// The cached pairwise gain matrix of one topology: for every ordered pair
/// within the interference cutoff, `g(u, w) = d(u, w)^−α`, stored as sparse
/// per-node rows sorted by neighbor id.
#[derive(Clone, Debug)]
pub struct GainTable {
    /// [`Topology::token`] of the topology the gains belong to.
    token: u64,
    /// Row `u` spans `ids[starts[u]..starts[u+1]]`.
    starts: Vec<u32>,
    ids: Vec<u32>,
    gains: Vec<f64>,
}

impl GainTable {
    /// Computes all in-cutoff pairwise gains of `topo`, done once per
    /// topology; every later SINR evaluation is a lookup. Candidate pairs
    /// come from a [`CellGrid`] over the positions, so construction is
    /// near-linear at constant density instead of `O(n²)` distance tests.
    pub fn build(topo: &Topology, alpha: f64, cutoff: f64) -> GainTable {
        let n = topo.len();
        let c2 = cutoff * cutoff;
        let positions = topo.positions();
        let grid = CellGrid::build(positions, cutoff);
        let mut starts = Vec::with_capacity(n + 1);
        let mut ids = Vec::new();
        let mut gains = Vec::new();
        starts.push(0);
        for u in 0..n {
            let pu = positions[u];
            for w in grid.neighbors_within(positions, u as u32, cutoff) {
                let d2 = positions[w as usize].dist2(&pu);
                debug_assert!(d2 <= c2);
                ids.push(w);
                gains.push(d2.powf(-alpha / 2.0));
            }
            starts.push(ids.len() as u32);
        }
        GainTable {
            token: topo.token(),
            starts,
            ids,
            gains,
        }
    }

    /// The gain `g(u, w)`, or `None` when `w` is beyond the cutoff of `u`.
    #[inline]
    pub fn gain(&self, u: NodeId, w: usize) -> Option<f64> {
        let lo = self.starts[u.idx()] as usize;
        let hi = self.starts[u.idx() + 1] as usize;
        self.ids[lo..hi]
            .binary_search(&(w as u32))
            .ok()
            .map(|p| self.gains[lo + p])
    }

    /// Number of cached directed gains.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no pair is within the cutoff.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// The pairwise SINR conflict model over a cached [`GainTable`].
///
/// Conflict: some node in range of one sender cannot decode it against the
/// other sender's interference (`wit(u, v)` = the vulnerable receivers).
/// Reception: an uninformed node receives iff some in-range sender's
/// signal clears `β` against *each* other concurrent sender taken alone
/// (the pairwise restriction that makes conflict-free sets deliverable —
/// see the crate-level DESIGN note).
#[derive(Clone, Debug)]
pub struct SinrModel {
    /// The model parameters.
    pub params: SinrParams,
    gains: Arc<GainTable>,
}

impl SinrModel {
    /// Builds the model for `topo`, computing the gain table once.
    ///
    /// # Panics
    ///
    /// Panics when `params.cutoff` is below the topology radius (in-range
    /// senders must at least interfere with each other's receivers), or
    /// when `params.beta < 1` — `β ≥ 1` is what guarantees that a
    /// pairwise-conflict-free sender set delivers under the multi-sender
    /// reception rule (the strongest in-range sender then decodes against
    /// every interferer taken alone; see the crate DESIGN note).
    pub fn new(params: SinrParams, topo: &Topology) -> SinrModel {
        assert!(
            params.cutoff >= topo.radius(),
            "interference cutoff below the link radius"
        );
        assert!(
            params.beta >= 1.0,
            "pairwise SINR scheduling requires β ≥ 1"
        );
        SinrModel {
            params,
            gains: Arc::new(GainTable::build(topo, params.alpha, params.cutoff)),
        }
    }

    /// The cached gain table.
    #[inline]
    pub fn gain_table(&self) -> &GainTable {
        &self.gains
    }

    /// `true` when a signal of gain `g_sig` decodes against a single
    /// interferer of gain `g_int` (0 = no interferer in cutoff).
    #[inline]
    fn delivers(&self, g_sig: f64, g_int: f64) -> bool {
        self.params.power * g_sig
            >= self.params.beta * (self.params.noise + self.params.power * g_int)
    }

    /// `true` when receiver `w` (known in range of sender `s`) decodes `s`
    /// against interferer `i` transmitting concurrently.
    #[inline]
    fn decodes(&self, s: NodeId, i: NodeId, w: usize) -> bool {
        let g_sig = self
            .gains
            .gain(s, w)
            .expect("in-range receiver is within the cutoff");
        let g_int = self.gains.gain(i, w).unwrap_or(0.0);
        self.delivers(g_sig, g_int)
    }

    /// `true` when `w` is a witness of the pair `(u, v)`: in range of at
    /// least one of them, and able to decode *neither* copy of the
    /// broadcast with the other transmitting (`in_u`/`in_v` are the range
    /// memberships the caller already knows).
    #[inline]
    fn pair_witness(&self, u: NodeId, v: NodeId, w: usize, in_u: bool, in_v: bool) -> bool {
        !((in_u && self.decodes(u, v, w)) || (in_v && self.decodes(v, u, w)))
    }

    fn check_topo(&self, topo: &Topology) {
        assert_eq!(
            self.gains.token,
            topo.token(),
            "SinrModel used with a different topology than it was built for"
        );
    }
}

impl ConflictModel for SinrModel {
    fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0x53494e52; // "SINR"
        for bits in [
            self.params.power.to_bits(),
            self.params.alpha.to_bits(),
            self.params.beta.to_bits(),
            self.params.noise.to_bits(),
            self.params.cutoff.to_bits(),
            self.gains.token,
        ] {
            h = (h ^ bits).wrapping_mul(0x100000001b3);
        }
        h | 1 // never 0 (0 is the builders' "no model" sentinel)
    }

    #[inline]
    fn locality(&self) -> WitnessLocality {
        WitnessLocality::EitherNeighborhood
    }

    fn conflicts(&self, topo: &Topology, u: NodeId, v: NodeId, uninformed: &NodeSet) -> bool {
        self.check_topo(topo);
        let nu = topo.neighbor_set(u);
        let nv = topo.neighbor_set(v);
        for w in nu.union(nv).iter() {
            if w == u.idx() || w == v.idx() || !uninformed.contains(w) {
                continue;
            }
            if self.pair_witness(u, v, w, nu.contains(w), nv.contains(w)) {
                return true;
            }
        }
        false
    }

    fn collect_witnesses(&self, topo: &Topology, u: NodeId, v: NodeId, out: &mut Vec<u32>) {
        self.check_topo(topo);
        out.clear();
        let nu = topo.neighbor_set(u);
        let nv = topo.neighbor_set(v);
        for w in nu.union(nv).iter() {
            if w == u.idx() || w == v.idx() {
                continue;
            }
            if self.pair_witness(u, v, w, nu.contains(w), nv.contains(w)) {
                out.push(w as u32);
            }
        }
    }

    fn resolve_receptions(
        &self,
        topo: &Topology,
        senders: &NodeSet,
        uninformed: &NodeSet,
    ) -> ReceptionOutcome {
        self.check_topo(topo);
        let n = topo.len();
        let mut received = NodeSet::new(n);
        let mut collided = NodeSet::new(n);
        let sender_ids: Vec<NodeId> = senders.iter().map(|s| NodeId(s as u32)).collect();
        for w in uninformed.iter() {
            let nw = topo.neighbor_set(NodeId(w as u32));
            let mut in_range = false;
            let mut decoded = false;
            for &s in &sender_ids {
                if !nw.contains(s.idx()) {
                    continue;
                }
                in_range = true;
                if sender_ids.iter().all(|&i| i == s || self.decodes(s, i, w)) {
                    decoded = true;
                    break;
                }
            }
            if decoded {
                received.insert(w);
            } else if in_range {
                collided.insert(w);
            }
        }
        ReceptionOutcome { received, collided }
    }

    #[inline]
    fn prefers_witness_cache(&self) -> bool {
        true
    }

    fn witness_range(&self, topo: &Topology) -> Option<f64> {
        // Sound only when every in-range link decodes against noise alone
        // (worst in-range gain = radius^−α): then a witness must suffer
        // nonzero interference, which the gain table truncates at `cutoff`,
        // so the two senders sit within radius + cutoff of each other. If
        // noise alone can break an in-range link, that receiver witnesses
        // pairs at any distance and no geometric bound exists.
        self.delivers(topo.radius().powf(-self.params.alpha), 0.0)
            .then_some(topo.radius() + self.params.cutoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolModel;
    use wsn_geom::Point;

    /// A line where node 1 sits between senders 0 and 2.
    fn line5() -> Topology {
        Topology::unit_disk(
            (0..5).map(|i| Point::new(i as f64 * 0.8, 0.0)).collect(),
            1.0,
        )
    }

    #[test]
    fn gain_table_lookup_and_cutoff() {
        let t = line5();
        let g = GainTable::build(&t, 3.0, 1.0);
        // d(0,1) = 0.8 → gain 0.8^-3.
        let got = g.gain(NodeId(0), 1).unwrap();
        assert!((got - 0.8f64.powf(-3.0)).abs() < 1e-12);
        // d(0,2) = 1.6 > cutoff 1.0 → absent.
        assert!(g.gain(NodeId(0), 2).is_none());
        assert!(!g.is_empty());
    }

    #[test]
    fn witness_invariant_holds() {
        let t = line5();
        let m = SinrModel::new(SinrParams::calibrated(t.radius(), 3.0, 1.5), &t);
        let mut wit = Vec::new();
        for (u, v) in [(0u32, 2u32), (0, 1), (1, 3), (2, 4)] {
            m.collect_witnesses(&t, NodeId(u), NodeId(v), &mut wit);
            // Probe the invariant over a few uninformed sets.
            for unf_ids in [vec![], vec![1usize], vec![1, 3], vec![0, 2, 4], vec![3, 4]] {
                let unf = NodeSet::from_indices(5, unf_ids.iter().copied());
                let expect = wit
                    .iter()
                    .any(|&w| unf.contains(w as usize) && w != u && w != v);
                assert_eq!(
                    m.conflicts(&t, NodeId(u), NodeId(v), &unf),
                    expect,
                    "pair ({u},{v}) vs {unf_ids:?}"
                );
            }
        }
    }

    #[test]
    fn degenerate_params_reproduce_protocol_witnesses() {
        let t = line5();
        let m = SinrModel::new(SinrParams::degenerate(&t, 4.0), &t);
        let p = ProtocolModel;
        let mut ws = Vec::new();
        let mut wp = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                m.collect_witnesses(&t, NodeId(u), NodeId(v), &mut ws);
                p.collect_witnesses(&t, NodeId(u), NodeId(v), &mut wp);
                assert_eq!(ws, wp, "witness sets differ for pair ({u},{v})");
            }
        }
        let unf = NodeSet::full(5);
        let senders = NodeSet::from_indices(5, [0, 2]);
        assert_eq!(
            m.resolve_receptions(&t, &senders, &unf),
            p.resolve_receptions(&t, &senders, &unf)
        );
    }

    #[test]
    fn capture_relaxes_the_protocol_conflict() {
        // Receiver 1 is much closer to 0 (0.8) than 2 is (1.6 — but put 2
        // in range via a larger radius): with a modest β the capture
        // effect lets 1 decode 0 despite 2 transmitting, so the SINR model
        // drops conflicts the protocol model keeps.
        let t = Topology::unit_disk(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.4, 0.0),
                Point::new(2.0, 0.0),
                Point::new(2.4, 0.0),
            ],
            2.0,
        );
        let proto = ProtocolModel;
        let sinr = SinrModel::new(SinrParams::calibrated(t.radius(), 3.0, 1.2), &t);
        let unf = NodeSet::from_indices(4, [1, 2]);
        // Protocol: 0 and 3 share uninformed in-range receivers → conflict.
        assert!(proto.conflicts(&t, NodeId(0), NodeId(3), &unf));
        // SINR: 1 captures 0's signal (d 0.4 vs interferer at 2.0) and 2
        // captures 3's (d 0.4 vs 2.0) → no vulnerable receiver.
        assert!(!sinr.conflicts(&t, NodeId(0), NodeId(3), &unf));
        // And the reception rule agrees: both decode concurrently.
        let out = sinr.resolve_receptions(&t, &NodeSet::from_indices(4, [0, 3]), &unf);
        assert_eq!(out.received.to_vec(), vec![1, 2]);
        assert!(out.collided.is_empty());
    }

    #[test]
    #[should_panic(expected = "different topology")]
    fn topology_mismatch_is_rejected() {
        let t1 = line5();
        let t2 = line5();
        let m = SinrModel::new(SinrParams::calibrated(t1.radius(), 3.0, 1.5), &t1);
        m.conflicts(&t2, NodeId(0), NodeId(1), &NodeSet::full(5));
    }
}
