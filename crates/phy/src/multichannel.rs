//! The K-channel relaxation and the packaged model enum/spec.

use crate::{
    ConflictModel, ProtocolModel, ReceptionOutcome, SinrModel, SinrParams, WitnessLocality,
};
use wsn_bitset::NodeSet;
use wsn_topology::{NodeId, Topology};

/// A `K`-channel wrapper relaxing any inner conflict model: transmissions
/// on different channels never conflict, so a slot may launch up to `K`
/// sender groups, each conflict-free under the inner model on its own
/// channel (cf. multi-channel minimum-latency aggregation schedules).
///
/// The *pairwise* predicate and witness sets are the inner model's — they
/// describe same-channel coexistence, which is what the conflict graph and
/// the coloring consume; the channel relaxation happens at slot-assembly
/// time (`wsn-coloring::pack_channels`) and at verification time
/// (`Schedule::verify_with_model` resolves each channel group separately).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultiChannel<M> {
    /// The same-channel conflict model.
    pub inner: M,
    /// Number of orthogonal channels (`≥ 1`).
    pub k: u32,
}

impl<M: ConflictModel> MultiChannel<M> {
    /// Wraps `inner` with `k` orthogonal channels.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(inner: M, k: u32) -> MultiChannel<M> {
        assert!(k >= 1, "a radio needs at least one channel");
        MultiChannel { inner, k }
    }
}

impl<M: ConflictModel> ConflictModel for MultiChannel<M> {
    fn fingerprint(&self) -> u64 {
        self.inner
            .fingerprint()
            .rotate_left(17)
            .wrapping_mul(0x9e3779b97f4a7c15)
            ^ u64::from(self.k)
    }

    #[inline]
    fn channels(&self) -> u32 {
        self.k
    }

    #[inline]
    fn locality(&self) -> WitnessLocality {
        self.inner.locality()
    }

    #[inline]
    fn conflicts(&self, topo: &Topology, u: NodeId, v: NodeId, uninformed: &NodeSet) -> bool {
        self.inner.conflicts(topo, u, v, uninformed)
    }

    #[inline]
    fn collect_witnesses(&self, topo: &Topology, u: NodeId, v: NodeId, out: &mut Vec<u32>) {
        self.inner.collect_witnesses(topo, u, v, out)
    }

    #[inline]
    fn resolve_receptions(
        &self,
        topo: &Topology,
        senders: &NodeSet,
        uninformed: &NodeSet,
    ) -> ReceptionOutcome {
        self.inner.resolve_receptions(topo, senders, uninformed)
    }

    #[inline]
    fn prefers_witness_cache(&self) -> bool {
        self.inner.prefers_witness_cache()
    }

    #[inline]
    fn witness_range(&self, topo: &Topology) -> Option<f64> {
        self.inner.witness_range(topo)
    }
}

/// The concrete model combinations the workspace ships, behind one
/// non-generic type so schedulers, sweeps and benches can hold "a model"
/// without a type parameter.
#[derive(Clone, Debug)]
pub enum PhyModel {
    /// The paper's protocol model.
    Protocol(ProtocolModel),
    /// Pairwise SINR.
    Sinr(SinrModel),
    /// K channels over the protocol model.
    MultiProtocol(MultiChannel<ProtocolModel>),
    /// K channels over pairwise SINR.
    MultiSinr(MultiChannel<SinrModel>),
}

impl PhyModel {
    /// The single-channel protocol model (the default everywhere).
    pub fn protocol() -> PhyModel {
        PhyModel::Protocol(ProtocolModel)
    }

    /// `true` for the single-channel protocol model — the regime every
    /// pre-model code path is pinned to ([`PhyModelSpec::build`] only
    /// produces the `Protocol` variant for that spec).
    pub fn is_default_protocol(&self) -> bool {
        matches!(self, PhyModel::Protocol(_))
    }
}

macro_rules! dispatch {
    ($self:ident, $m:ident => $body:expr) => {
        match $self {
            PhyModel::Protocol($m) => $body,
            PhyModel::Sinr($m) => $body,
            PhyModel::MultiProtocol($m) => $body,
            PhyModel::MultiSinr($m) => $body,
        }
    };
}

impl ConflictModel for PhyModel {
    fn fingerprint(&self) -> u64 {
        dispatch!(self, m => m.fingerprint())
    }

    fn channels(&self) -> u32 {
        dispatch!(self, m => m.channels())
    }

    fn locality(&self) -> WitnessLocality {
        dispatch!(self, m => m.locality())
    }

    fn conflicts(&self, topo: &Topology, u: NodeId, v: NodeId, uninformed: &NodeSet) -> bool {
        dispatch!(self, m => m.conflicts(topo, u, v, uninformed))
    }

    fn collect_witnesses(&self, topo: &Topology, u: NodeId, v: NodeId, out: &mut Vec<u32>) {
        dispatch!(self, m => m.collect_witnesses(topo, u, v, out))
    }

    fn resolve_receptions(
        &self,
        topo: &Topology,
        senders: &NodeSet,
        uninformed: &NodeSet,
    ) -> ReceptionOutcome {
        dispatch!(self, m => m.resolve_receptions(topo, senders, uninformed))
    }

    fn prefers_witness_cache(&self) -> bool {
        dispatch!(self, m => m.prefers_witness_cache())
    }

    fn witness_range(&self, topo: &Topology) -> Option<f64> {
        dispatch!(self, m => m.witness_range(topo))
    }
}

/// The inner (same-channel) model of a [`PhyModelSpec`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BaseModel {
    /// The paper's protocol model.
    Protocol,
    /// Pairwise SINR with explicit parameters.
    Sinr(SinrParams),
    /// Pairwise SINR with [`SinrParams::degenerate`] parameters derived
    /// from the instance topology (protocol-equivalent by construction;
    /// the field is the path-loss exponent `α`).
    SinrDegenerate {
        /// Path-loss exponent.
        alpha: f64,
    },
}

/// A cheap, topology-independent model description — what sweeps and
/// benches put on their model/channel axes. [`PhyModelSpec::build`]
/// instantiates it per topology (SINR parameters may derive from instance
/// geometry, and the gain table is per-topology anyway).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhyModelSpec {
    /// The same-channel conflict model.
    pub base: BaseModel,
    /// Orthogonal channels (`1` = the single-channel system).
    pub channels: u32,
}

impl Default for PhyModelSpec {
    fn default() -> Self {
        PhyModelSpec::protocol()
    }
}

impl PhyModelSpec {
    /// The single-channel protocol model (the paper's system).
    pub fn protocol() -> PhyModelSpec {
        PhyModelSpec {
            base: BaseModel::Protocol,
            channels: 1,
        }
    }

    /// Single-channel pairwise SINR with explicit parameters.
    pub fn sinr(params: SinrParams) -> PhyModelSpec {
        PhyModelSpec {
            base: BaseModel::Sinr(params),
            channels: 1,
        }
    }

    /// Same base model over `k` orthogonal channels.
    pub fn with_channels(mut self, k: u32) -> PhyModelSpec {
        assert!(k >= 1);
        self.channels = k;
        self
    }

    /// `true` for the single-channel protocol spec — the configuration
    /// every pre-model code path is pinned to.
    pub fn is_default_protocol(&self) -> bool {
        self.base == BaseModel::Protocol && self.channels == 1
    }

    /// Instantiates the model for one topology.
    pub fn build(&self, topo: &Topology) -> PhyModel {
        let k = self.channels;
        match self.base {
            BaseModel::Protocol => {
                if k == 1 {
                    PhyModel::Protocol(ProtocolModel)
                } else {
                    PhyModel::MultiProtocol(MultiChannel::new(ProtocolModel, k))
                }
            }
            BaseModel::Sinr(params) => {
                let m = SinrModel::new(params, topo);
                if k == 1 {
                    PhyModel::Sinr(m)
                } else {
                    PhyModel::MultiSinr(MultiChannel::new(m, k))
                }
            }
            BaseModel::SinrDegenerate { alpha } => {
                let m = SinrModel::new(SinrParams::degenerate(topo, alpha), topo);
                if k == 1 {
                    PhyModel::Sinr(m)
                } else {
                    PhyModel::MultiSinr(MultiChannel::new(m, k))
                }
            }
        }
    }

    /// Short display label for result tables ("protocol", "sinr-k4", …).
    pub fn label(&self) -> String {
        let base = match self.base {
            BaseModel::Protocol => "protocol",
            BaseModel::Sinr(_) => "sinr",
            BaseModel::SinrDegenerate { .. } => "sinr-degen",
        };
        if self.channels == 1 {
            base.to_string()
        } else {
            format!("{base}-k{}", self.channels)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::Point;

    fn line(n: usize) -> Topology {
        Topology::unit_disk(
            (0..n).map(|i| Point::new(i as f64 * 0.8, 0.0)).collect(),
            1.0,
        )
    }

    #[test]
    fn multichannel_delegates_pairwise_semantics() {
        let t = line(6);
        let inner = ProtocolModel;
        let multi = MultiChannel::new(inner, 4);
        assert_eq!(multi.channels(), 4);
        assert_eq!(multi.locality(), inner.locality());
        let unf = NodeSet::from_indices(6, [2, 3, 4, 5]);
        for (u, v) in [(0u32, 2u32), (1, 3), (0, 5)] {
            assert_eq!(
                multi.conflicts(&t, NodeId(u), NodeId(v), &unf),
                inner.conflicts(&t, NodeId(u), NodeId(v), &unf)
            );
        }
    }

    #[test]
    fn spec_builds_and_labels() {
        let t = line(6);
        assert!(PhyModelSpec::protocol().is_default_protocol());
        assert!(!PhyModelSpec::protocol()
            .with_channels(2)
            .is_default_protocol());
        assert_eq!(PhyModelSpec::protocol().label(), "protocol");
        assert_eq!(
            PhyModelSpec::protocol().with_channels(4).label(),
            "protocol-k4"
        );
        let spec = PhyModelSpec {
            base: BaseModel::SinrDegenerate { alpha: 4.0 },
            channels: 2,
        };
        assert_eq!(spec.label(), "sinr-degen-k2");
        let m = spec.build(&t);
        assert_eq!(m.channels(), 2);
        assert_eq!(m.locality(), WitnessLocality::EitherNeighborhood);
        let p = PhyModelSpec::protocol().build(&t);
        assert_eq!(p.channels(), 1);
        assert_ne!(p.fingerprint(), m.fingerprint());
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        MultiChannel::new(ProtocolModel, 0);
    }
}
