//! Pluggable conflict models: which concurrent transmissions collide.
//!
//! The paper's contribution is *conflict awareness*, and everything above
//! this layer — coloring, enumeration, the OPT/G-OPT searches, the sweeps —
//! is agnostic to *which* notion of conflict is in force. This crate makes
//! that notion a first-class, swappable value:
//!
//! * [`ProtocolModel`] — the paper's UDG protocol model: `u` and `v`
//!   conflict iff some uninformed node hears both (`N(u) ∩ N(v) ∩ W̄ ≠ ∅`).
//! * [`SinrModel`] — the physical-interference (SINR) model in its pairwise
//!   form, with configurable path-loss exponent `α`, decoding threshold
//!   `β`, ambient `noise`, transmit `power` and an interference `cutoff`
//!   radius, over a cached pairwise gain table.
//! * [`MultiChannel`] — a `K`-channel wrapper relaxing *any* inner model:
//!   transmissions on different channels never conflict, so one slot can
//!   launch up to `K` inner-conflict-free sender sets at once.
//!
//! [`PhyModel`] packages the concrete combinations behind one enum, and
//! [`PhyModelSpec`] is the cheap, topology-independent description the
//! sweep/bench layers put on their model axes and build per instance.
//!
//! # DESIGN: the witness-set invariant and incremental maintenance
//!
//! `wsn-interference::ConflictGraphBuilder` maintains conflict graphs by
//! delta as the uninformed set `W̄` churns. What makes that possible for
//! *every* model here is one structural invariant:
//!
//! > For each candidate pair `(u, v)` there is a fixed, `W̄`-independent
//! > *witness set* `wit(u, v)` such that
//! > `conflicts(u, v, W̄) ⇔ wit(u, v) ∩ W̄ ≠ ∅`
//! > ([`ConflictModel::collect_witnesses`]).
//!
//! For the protocol model the witnesses are the common neighbors. For the
//! pairwise SINR model they are the *vulnerable receivers*: nodes `w` in
//! range of `u` (or `v`) whose SINR from that sender drops below `β` once
//! the other transmits. Vulnerability is decided by the interference sum
//! `noise + power·g(interferer, w)` against `β`, and the gains `g` depend
//! only on geometry — so the sum is evaluated **once per pair**, into the
//! cached witness set, instead of being re-summed at every search state.
//! After that, adding or removing a single witness node `d` from `W̄`
//! touches only the candidate pairs whose witness sets can contain `d` —
//! `O(candidates adjacent to d)` pairs bounded by
//! [`ConflictModel::locality`] — and each retest is a membership scan of a
//! cached list, never a gain re-computation. The builder falls back to a
//! full re-sum (a from-scratch build) only when its cost model says the
//! delta is the expensive side: large `|ΔW̄|` relative to the candidate
//! count, heavy candidate churn (less than half the list kept), or a
//! topology/model fingerprint change (caches are keyed on
//! [`ConflictModel::fingerprint`], so graphs from different regimes never
//! mix).
//!
//! The pairwise SINR reading (each interferer tested alone against the
//! signal) is the standard graph-schedulable restriction of the physical
//! model — cf. Halldórsson & Mitra on local broadcasting under SINR — and
//! it is *internally consistent*: a sender set that is pairwise
//! conflict-free delivers to every intended receiver under
//! [`ConflictModel::resolve_receptions`] of the same model, which is what
//! lets `Schedule::verify_with_model` re-validate schedules independently
//! of the scheduler that produced them. With threshold-degenerate
//! parameters ([`SinrParams::degenerate`]: interference cutoff at the UDG
//! radius, `β` above the worst in-range signal-to-interference ratio,
//! `noise` calibrated so the reception range equals the radius) the SINR
//! witness sets collapse to exactly the common neighbors and the model
//! reproduces the protocol conflict graph edge for edge — the workspace
//! proptests pin that equivalence.
//!
//! Multi-channel scheduling (cf. Nguyen et al. on multi-channel WSN
//! aggregation) assumes a receiver can tune to whichever channel carries a
//! clean transmission; each channel's sender group must be conflict-free
//! under the inner model, which `verify_with_model` checks group by group
//! through `resolve_receptions`.

mod multichannel;
mod sinr;

pub use multichannel::{BaseModel, MultiChannel, PhyModel, PhyModelSpec};
pub use sinr::{GainTable, SinrModel, SinrParams};

use wsn_bitset::NodeSet;
use wsn_topology::{NodeId, Topology};

/// Where a pair's witnesses can live, bounding which candidate pairs a
/// churned node can affect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WitnessLocality {
    /// `wit(u, v) = N(u) ∩ N(v)` exactly — every common neighbor is a
    /// witness, so a node entering `W̄` *forces* a conflict on every
    /// candidate pair it neighbors twice, no test needed (the protocol
    /// model's shape).
    CommonNeighbors,
    /// `wit(u, v) ⊆ N(u) ∪ N(v)` and membership must be checked per node
    /// (the SINR shape: capture can save a receiver that hears both).
    EitherNeighborhood,
}

/// Outcome of one slot of concurrent transmissions under receiver-side
/// collision resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReceptionOutcome {
    /// Uninformed nodes that successfully received the message.
    pub received: NodeSet,
    /// Uninformed nodes in range of a sender that could not decode any
    /// transmission (collision / interference loss).
    pub collided: NodeSet,
}

/// A conflict model: the pairwise conflict predicate, its witness-set
/// factorization, and the matching receiver-side reception rule.
///
/// # Contract
///
/// * `conflicts(u, v, W̄)` is symmetric and irreflexive, and equals
///   `collect_witnesses(u, v) ∩ W̄ ≠ ∅` (the invariant the incremental
///   builder leans on; witness lists are ascending and `W̄`-independent).
/// * Witness sets respect [`ConflictModel::locality`].
/// * A sender set that is pairwise conflict-free w.r.t. `W̄` delivers to
///   every in-range member of `W̄` under `resolve_receptions`.
/// * `fingerprint` is stable for a given model value and differs between
///   models that can disagree on any of the above (caches key on it).
pub trait ConflictModel: Clone + Send + Sync {
    /// Stable identity of this model's semantics + parameters, mixed into
    /// cache keys so conflict graphs and memo entries never cross regimes.
    fn fingerprint(&self) -> u64;

    /// Number of orthogonal channels a slot may use (1 = single-channel).
    fn channels(&self) -> u32 {
        1
    }

    /// Where this model's witnesses live.
    fn locality(&self) -> WitnessLocality;

    /// `true` when concurrent transmissions by `u` and `v` would deny some
    /// member of `uninformed` the message.
    fn conflicts(&self, topo: &Topology, u: NodeId, v: NodeId, uninformed: &NodeSet) -> bool;

    /// Writes the ascending witness set `wit(u, v)` into `out` (cleared
    /// first).
    fn collect_witnesses(&self, topo: &Topology, u: NodeId, v: NodeId, out: &mut Vec<u32>);

    /// Resolves which members of `uninformed` receive when all of
    /// `senders` transmit concurrently **on one channel**.
    fn resolve_receptions(
        &self,
        topo: &Topology,
        senders: &NodeSet,
        uninformed: &NodeSet,
    ) -> ReceptionOutcome;

    /// `true` when pair retests should always go through cached witness
    /// sets regardless of universe size (models whose predicate is costlier
    /// than a membership scan, e.g. SINR with its gain arithmetic).
    fn prefers_witness_cache(&self) -> bool {
        false
    }
}

/// The paper's protocol (UDG) interference model.
///
/// Conflict: `N(u) ∩ N(v) ∩ W̄ ≠ ∅` (Eq. 1, constraint 3). Reception: an
/// uninformed node receives iff *exactly one* of its neighbors transmits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolModel;

/// Nonzero fingerprint of the (parameterless) protocol model.
const PROTOCOL_FINGERPRINT: u64 = 0x70726f_746f636f; // "proto co"

impl ConflictModel for ProtocolModel {
    #[inline]
    fn fingerprint(&self) -> u64 {
        PROTOCOL_FINGERPRINT
    }

    #[inline]
    fn locality(&self) -> WitnessLocality {
        WitnessLocality::CommonNeighbors
    }

    #[inline]
    fn conflicts(&self, topo: &Topology, u: NodeId, v: NodeId, uninformed: &NodeSet) -> bool {
        topo.neighbor_set(u)
            .triple_intersects(topo.neighbor_set(v), uninformed)
    }

    fn collect_witnesses(&self, topo: &Topology, u: NodeId, v: NodeId, out: &mut Vec<u32>) {
        out.clear();
        let nu = topo.neighbor_set(u);
        let nv = topo.neighbor_set(v);
        if nu.intersects(nv) {
            out.extend(nu.intersection(nv).iter().map(|w| w as u32));
        }
    }

    fn resolve_receptions(
        &self,
        topo: &Topology,
        senders: &NodeSet,
        uninformed: &NodeSet,
    ) -> ReceptionOutcome {
        let n = topo.len();
        let mut received = NodeSet::new(n);
        let mut collided = NodeSet::new(n);
        for w in uninformed.iter() {
            let heard = topo
                .neighbor_set(NodeId(w as u32))
                .intersection_len(senders);
            match heard {
                0 => {}
                1 => {
                    received.insert(w);
                }
                _ => {
                    collided.insert(w);
                }
            }
        }
        ReceptionOutcome { received, collided }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::Point;

    fn diamond() -> Topology {
        Topology::unit_disk(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.9, 0.7),
                Point::new(0.9, -0.7),
                Point::new(1.8, 0.0),
                Point::new(1.4, 1.5),
            ],
            1.2,
        )
    }

    #[test]
    fn protocol_witnesses_are_common_neighbors() {
        let t = diamond();
        let m = ProtocolModel;
        let mut wit = Vec::new();
        m.collect_witnesses(&t, NodeId(1), NodeId(2), &mut wit);
        // 1 and 2 share neighbors 0 and 3.
        assert_eq!(wit, vec![0, 3]);
        // The invariant: conflict ⇔ a witness is uninformed.
        let mut unf = NodeSet::full(5);
        for i in [0usize, 1, 2] {
            unf.remove(i);
        }
        assert!(m.conflicts(&t, NodeId(1), NodeId(2), &unf));
        unf.remove(3);
        assert!(!m.conflicts(&t, NodeId(1), NodeId(2), &unf));
    }

    #[test]
    fn protocol_reception_is_exactly_one() {
        let t = diamond();
        let m = ProtocolModel;
        let senders = NodeSet::from_indices(5, [1, 2]);
        let unf = NodeSet::from_indices(5, [3, 4]);
        let out = m.resolve_receptions(&t, &senders, &unf);
        assert_eq!(out.collided.to_vec(), vec![3]);
        assert_eq!(out.received.to_vec(), vec![4]);
    }

    #[test]
    fn fingerprints_distinguish_models() {
        let t = diamond();
        let proto = ProtocolModel;
        let sinr = SinrModel::new(SinrParams::calibrated(t.radius(), 3.0, 1.5), &t);
        let multi = MultiChannel::new(ProtocolModel, 4);
        assert_ne!(proto.fingerprint(), 0);
        assert_ne!(proto.fingerprint(), sinr.fingerprint());
        assert_ne!(proto.fingerprint(), multi.fingerprint());
        assert_ne!(
            MultiChannel::new(ProtocolModel, 2).fingerprint(),
            multi.fingerprint()
        );
    }
}
