//! Pluggable conflict models: which concurrent transmissions collide.
//!
//! The paper's contribution is *conflict awareness*, and everything above
//! this layer — coloring, enumeration, the OPT/G-OPT searches, the sweeps —
//! is agnostic to *which* notion of conflict is in force. This crate makes
//! that notion a first-class, swappable value:
//!
//! * [`ProtocolModel`] — the paper's UDG protocol model: `u` and `v`
//!   conflict iff some uninformed node hears both (`N(u) ∩ N(v) ∩ W̄ ≠ ∅`).
//! * [`SinrModel`] — the physical-interference (SINR) model in its pairwise
//!   form, with configurable path-loss exponent `α`, decoding threshold
//!   `β`, ambient `noise`, transmit `power` and an interference `cutoff`
//!   radius, over a cached pairwise gain table.
//! * [`MultiChannel`] — a `K`-channel wrapper relaxing *any* inner model:
//!   transmissions on different channels never conflict, so one slot can
//!   launch up to `K` inner-conflict-free sender sets at once.
//!
//! [`PhyModel`] packages the concrete combinations behind one enum, and
//! [`PhyModelSpec`] is the cheap, topology-independent description the
//! sweep/bench layers put on their model axes and build per instance.
//!
//! # DESIGN: the witness-set invariant and incremental maintenance
//!
//! `wsn-interference::ConflictGraphBuilder` maintains conflict graphs by
//! delta as the uninformed set `W̄` churns. What makes that possible for
//! *every* model here is one structural invariant:
//!
//! > For each candidate pair `(u, v)` there is a fixed, `W̄`-independent
//! > *witness set* `wit(u, v)` such that
//! > `conflicts(u, v, W̄) ⇔ wit(u, v) ∩ W̄ ≠ ∅`
//! > ([`ConflictModel::collect_witnesses`]).
//!
//! For the protocol model the witnesses are the common neighbors. For the
//! pairwise SINR model they are the *vulnerable receivers*: nodes `w` in
//! range of `u` (or `v`) whose SINR from that sender drops below `β` once
//! the other transmits. Vulnerability is decided by the interference sum
//! `noise + power·g(interferer, w)` against `β`, and the gains `g` depend
//! only on geometry — so the sum is evaluated **once per pair**, into the
//! cached witness set, instead of being re-summed at every search state.
//! After that, adding or removing a single witness node `d` from `W̄`
//! touches only the candidate pairs whose witness sets can contain `d` —
//! `O(candidates adjacent to d)` pairs bounded by
//! [`ConflictModel::locality`] — and each retest is a membership scan of a
//! cached list, never a gain re-computation. The builder falls back to a
//! full re-sum (a from-scratch build) only when its cost model says the
//! delta is the expensive side: large `|ΔW̄|` relative to the candidate
//! count, heavy candidate churn (less than half the list kept), or a
//! topology/model fingerprint change (caches are keyed on
//! [`ConflictModel::fingerprint`], so graphs from different regimes never
//! mix).
//!
//! The pairwise SINR reading (each interferer tested alone against the
//! signal) is the standard graph-schedulable restriction of the physical
//! model — cf. Halldórsson & Mitra on local broadcasting under SINR — and
//! it is *internally consistent*: a sender set that is pairwise
//! conflict-free delivers to every intended receiver under
//! [`ConflictModel::resolve_receptions`] of the same model, which is what
//! lets `Schedule::verify_with_model` re-validate schedules independently
//! of the scheduler that produced them. With threshold-degenerate
//! parameters ([`SinrParams::degenerate`]: interference cutoff at the UDG
//! radius, `β` above the worst in-range signal-to-interference ratio,
//! `noise` calibrated so the reception range equals the radius) the SINR
//! witness sets collapse to exactly the common neighbors and the model
//! reproduces the protocol conflict graph edge for edge — the workspace
//! proptests pin that equivalence.
//!
//! Multi-channel scheduling (cf. Nguyen et al. on multi-channel WSN
//! aggregation) assumes a receiver can tune to whichever channel carries a
//! clean transmission; each channel's sender group must be conflict-free
//! under the inner model, which `verify_with_model` checks group by group
//! through `resolve_receptions`.

mod multichannel;
mod sinr;

pub use multichannel::{BaseModel, MultiChannel, PhyModel, PhyModelSpec};
pub use sinr::{GainTable, SinrModel, SinrParams};

use wsn_bitset::NodeSet;
use wsn_topology::{NodeId, Topology};

/// Where a pair's witnesses can live, bounding which candidate pairs a
/// churned node can affect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WitnessLocality {
    /// `wit(u, v) = N(u) ∩ N(v)` exactly — every common neighbor is a
    /// witness, so a node entering `W̄` *forces* a conflict on every
    /// candidate pair it neighbors twice, no test needed (the protocol
    /// model's shape).
    CommonNeighbors,
    /// `wit(u, v) ⊆ N(u) ∪ N(v)` and membership must be checked per node
    /// (the SINR shape: capture can save a receiver that hears both).
    EitherNeighborhood,
}

/// Outcome of one slot of concurrent transmissions under receiver-side
/// collision resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReceptionOutcome {
    /// Uninformed nodes that successfully received the message.
    pub received: NodeSet,
    /// Uninformed nodes in range of a sender that could not decode any
    /// transmission (collision / interference loss).
    pub collided: NodeSet,
}

/// A conflict model: the pairwise conflict predicate, its witness-set
/// factorization, and the matching receiver-side reception rule.
///
/// # Contract
///
/// * `conflicts(u, v, W̄)` is symmetric and irreflexive, and equals
///   `collect_witnesses(u, v) ∩ W̄ ≠ ∅` (the invariant the incremental
///   builder leans on; witness lists are ascending and `W̄`-independent).
/// * Witness sets respect [`ConflictModel::locality`].
/// * A sender set that is pairwise conflict-free w.r.t. `W̄` delivers to
///   every in-range member of `W̄` under `resolve_receptions`.
/// * `fingerprint` is stable for a given model value and differs between
///   models that can disagree on any of the above (caches key on it).
pub trait ConflictModel: Clone + Send + Sync {
    /// Stable identity of this model's semantics + parameters, mixed into
    /// cache keys so conflict graphs and memo entries never cross regimes.
    fn fingerprint(&self) -> u64;

    /// Number of orthogonal channels a slot may use (1 = single-channel).
    fn channels(&self) -> u32 {
        1
    }

    /// Where this model's witnesses live.
    fn locality(&self) -> WitnessLocality;

    /// `true` when concurrent transmissions by `u` and `v` would deny some
    /// member of `uninformed` the message.
    fn conflicts(&self, topo: &Topology, u: NodeId, v: NodeId, uninformed: &NodeSet) -> bool;

    /// Writes the ascending witness set `wit(u, v)` into `out` (cleared
    /// first).
    fn collect_witnesses(&self, topo: &Topology, u: NodeId, v: NodeId, out: &mut Vec<u32>);

    /// Resolves which members of `uninformed` receive when all of
    /// `senders` transmit concurrently **on one channel**.
    fn resolve_receptions(
        &self,
        topo: &Topology,
        senders: &NodeSet,
        uninformed: &NodeSet,
    ) -> ReceptionOutcome;

    /// `true` when pair retests should always go through cached witness
    /// sets regardless of universe size (models whose predicate is costlier
    /// than a membership scan, e.g. SINR with its gain arithmetic).
    fn prefers_witness_cache(&self) -> bool {
        false
    }

    /// An upper bound on the distance between two senders that can share a
    /// witness, or `None` when no sound geometric bound exists.
    ///
    /// When `Some(range)`, any candidate pair farther apart than `range`
    /// provably has an empty witness set and can never conflict — the
    /// license the conflict-graph builder uses to enumerate candidate
    /// pairs through a [`wsn_geom::CellGrid`] instead of all-pairs, which
    /// is what makes 10k–100k-candidate graph construction near-linear.
    ///
    /// Implementations must be conservative: returning `None` costs speed,
    /// returning a too-small range silently drops conflict edges.
    fn witness_range(&self, _topo: &Topology) -> Option<f64> {
        None
    }
}

/// The paper's protocol (UDG) interference model.
///
/// Conflict: `N(u) ∩ N(v) ∩ W̄ ≠ ∅` (Eq. 1, constraint 3). Reception: an
/// uninformed node receives iff *exactly one* of its neighbors transmits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolModel;

/// Nonzero fingerprint of the (parameterless) protocol model.
const PROTOCOL_FINGERPRINT: u64 = 0x70726f_746f636f; // "proto co"

impl ConflictModel for ProtocolModel {
    #[inline]
    fn fingerprint(&self) -> u64 {
        PROTOCOL_FINGERPRINT
    }

    #[inline]
    fn locality(&self) -> WitnessLocality {
        WitnessLocality::CommonNeighbors
    }

    #[inline]
    fn conflicts(&self, topo: &Topology, u: NodeId, v: NodeId, uninformed: &NodeSet) -> bool {
        // Two equivalent evaluations: a word-parallel triple intersection
        // (O(n/64), unbeatable on the paper-scale universes) and a sorted
        // merge of the two neighbor lists (O(deg u + deg v), the winner on
        // the 10k–100k-node universes where a bitset pass would touch
        // thousands of words per pair test).
        let (du, dv) = (topo.degree(u), topo.degree(v));
        if topo.len() > 64 * (du + dv) {
            let mut a = topo.neighbors(u).iter();
            let mut b = topo.neighbors(v).iter();
            let (mut x, mut y) = (a.next(), b.next());
            while let (Some(&i), Some(&j)) = (x, y) {
                match i.cmp(&j) {
                    std::cmp::Ordering::Less => x = a.next(),
                    std::cmp::Ordering::Greater => y = b.next(),
                    std::cmp::Ordering::Equal => {
                        if uninformed.contains(i.idx()) {
                            return true;
                        }
                        x = a.next();
                        y = b.next();
                    }
                }
            }
            false
        } else {
            topo.neighbor_set(u)
                .triple_intersects(topo.neighbor_set(v), uninformed)
        }
    }

    fn collect_witnesses(&self, topo: &Topology, u: NodeId, v: NodeId, out: &mut Vec<u32>) {
        out.clear();
        let (du, dv) = (topo.degree(u), topo.degree(v));
        if topo.len() > 64 * (du + dv) {
            // Sorted-merge common neighbors — same degree-local trade-off
            // as `conflicts` above; output stays ascending.
            let mut a = topo.neighbors(u).iter();
            let mut b = topo.neighbors(v).iter();
            let (mut x, mut y) = (a.next(), b.next());
            while let (Some(&i), Some(&j)) = (x, y) {
                match i.cmp(&j) {
                    std::cmp::Ordering::Less => x = a.next(),
                    std::cmp::Ordering::Greater => y = b.next(),
                    std::cmp::Ordering::Equal => {
                        out.push(i.0);
                        x = a.next();
                        y = b.next();
                    }
                }
            }
            return;
        }
        let nu = topo.neighbor_set(u);
        let nv = topo.neighbor_set(v);
        if nu.intersects(nv) {
            out.extend(nu.intersection(nv).iter().map(|w| w as u32));
        }
    }

    fn resolve_receptions(
        &self,
        topo: &Topology,
        senders: &NodeSet,
        uninformed: &NodeSet,
    ) -> ReceptionOutcome {
        let n = topo.len();
        let mut received = NodeSet::new(n);
        let mut collided = NodeSet::new(n);
        // Counter sweep over the senders' neighbor lists: O(Σ deg(sender))
        // plus the touched set, instead of O(|W̄| · n/64) — the difference
        // between milliseconds and minutes when verifying 100k-node
        // schedules slot by slot.
        let mut heard = vec![0u32; n];
        let mut touched = Vec::new();
        for s in senders.iter() {
            for &w in topo.neighbors(NodeId(s as u32)) {
                if uninformed.contains(w.idx()) {
                    if heard[w.idx()] == 0 {
                        touched.push(w.idx());
                    }
                    heard[w.idx()] += 1;
                }
            }
        }
        for w in touched {
            if heard[w] == 1 {
                received.insert(w);
            } else {
                collided.insert(w);
            }
        }
        ReceptionOutcome { received, collided }
    }

    #[inline]
    fn witness_range(&self, topo: &Topology) -> Option<f64> {
        // A protocol witness is a common neighbor, so conflicting senders
        // sit within two hops: 2 × the UDG radius.
        Some(2.0 * topo.radius())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::Point;

    fn diamond() -> Topology {
        Topology::unit_disk(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.9, 0.7),
                Point::new(0.9, -0.7),
                Point::new(1.8, 0.0),
                Point::new(1.4, 1.5),
            ],
            1.2,
        )
    }

    #[test]
    fn protocol_witnesses_are_common_neighbors() {
        let t = diamond();
        let m = ProtocolModel;
        let mut wit = Vec::new();
        m.collect_witnesses(&t, NodeId(1), NodeId(2), &mut wit);
        // 1 and 2 share neighbors 0 and 3.
        assert_eq!(wit, vec![0, 3]);
        // The invariant: conflict ⇔ a witness is uninformed.
        let mut unf = NodeSet::full(5);
        for i in [0usize, 1, 2] {
            unf.remove(i);
        }
        assert!(m.conflicts(&t, NodeId(1), NodeId(2), &unf));
        unf.remove(3);
        assert!(!m.conflicts(&t, NodeId(1), NodeId(2), &unf));
    }

    #[test]
    fn protocol_reception_is_exactly_one() {
        let t = diamond();
        let m = ProtocolModel;
        let senders = NodeSet::from_indices(5, [1, 2]);
        let unf = NodeSet::from_indices(5, [3, 4]);
        let out = m.resolve_receptions(&t, &senders, &unf);
        assert_eq!(out.collided.to_vec(), vec![3]);
        assert_eq!(out.received.to_vec(), vec![4]);
    }

    #[test]
    fn degree_local_paths_match_bitset_paths() {
        // A long sparse line puts the adaptive predicate on the sorted-merge
        // path (n ≫ 64·(deg u + deg v)); the bitset evaluation is the
        // ground truth it must reproduce, witnesses and booleans alike.
        let n = 2_000;
        let t = Topology::unit_disk(
            (0..n).map(|i| Point::new(i as f64 * 0.8, 0.0)).collect(),
            1.0,
        );
        let m = ProtocolModel;
        let unf = NodeSet::from_indices(n, (0..n).filter(|i| i % 3 != 0));
        let mut wit = Vec::new();
        for u in 0..40u32 {
            for v in (u + 1)..40 {
                let (nu, nv) = (t.neighbor_set(NodeId(u)), t.neighbor_set(NodeId(v)));
                assert_eq!(
                    m.conflicts(&t, NodeId(u), NodeId(v), &unf),
                    nu.triple_intersects(nv, &unf),
                    "pair ({u},{v})"
                );
                m.collect_witnesses(&t, NodeId(u), NodeId(v), &mut wit);
                let want: Vec<u32> = nu.intersection(nv).iter().map(|w| w as u32).collect();
                assert_eq!(wit, want, "pair ({u},{v})");
            }
        }
        // The counter-based reception sweep agrees with a per-receiver scan.
        let senders = NodeSet::from_indices(n, (0..n).filter(|i| i % 3 == 0));
        let out = m.resolve_receptions(&t, &senders, &unf);
        for w in 0..n {
            let heard = t.neighbor_set(NodeId(w as u32)).intersection_len(&senders);
            let expect_recv = unf.contains(w) && heard == 1;
            let expect_coll = unf.contains(w) && heard >= 2;
            assert_eq!(out.received.contains(w), expect_recv, "node {w}");
            assert_eq!(out.collided.contains(w), expect_coll, "node {w}");
        }
    }

    #[test]
    fn witness_ranges_are_sound() {
        let t = diamond();
        // Protocol: two hops.
        assert_eq!(ProtocolModel.witness_range(&t), Some(2.0 * t.radius()));
        // Calibrated SINR decodes every in-range link against noise alone,
        // so witnesses need interference: radius + cutoff.
        let sinr = SinrModel::new(SinrParams::calibrated(t.radius(), 3.0, 1.5), &t);
        assert_eq!(sinr.witness_range(&t), Some(3.0 * t.radius()));
        // A noise floor that can break in-range links alone admits
        // witnesses at any distance — no sound bound.
        let mut params = SinrParams::calibrated(t.radius(), 3.0, 1.5);
        params.noise *= 10.0;
        let noisy = SinrModel::new(params, &t);
        assert_eq!(noisy.witness_range(&t), None);
        // Multi-channel delegates to the inner model.
        assert_eq!(
            MultiChannel::new(ProtocolModel, 4).witness_range(&t),
            Some(2.0 * t.radius())
        );
    }

    #[test]
    fn fingerprints_distinguish_models() {
        let t = diamond();
        let proto = ProtocolModel;
        let sinr = SinrModel::new(SinrParams::calibrated(t.radius(), 3.0, 1.5), &t);
        let multi = MultiChannel::new(ProtocolModel, 4);
        assert_ne!(proto.fingerprint(), 0);
        assert_ne!(proto.fingerprint(), sinr.fingerprint());
        assert_ne!(proto.fingerprint(), multi.fingerprint());
        assert_ne!(
            MultiChannel::new(ProtocolModel, 2).fingerprint(),
            multi.fingerprint()
        );
    }
}
