//! The acceptance-gate chaos campaign: a seeded `FaultScript` (deaths,
//! flaps, bursts) plus injected worker panics and request storms, driven
//! through the daemon. The gate: zero invalid schedules served, zero
//! daemon crashes (every injected panic surfaces as a counted shard
//! restart), every deadline answered with a verified schedule or an
//! explicit `Overloaded`.

use wsn_serve::{run_campaign, ChaosParams, Daemon, DaemonConfig};

#[test]
fn full_campaign_serves_only_verified_schedules() {
    Daemon::install_recorder();
    let daemon = Daemon::new(DaemonConfig { queue_cap: 6 });
    let params = ChaosParams::default();
    let report = run_campaign(&daemon, &params);

    assert_eq!(report.invalid, 0, "invalid schedules served: {report:?}");
    assert_eq!(report.errors, 0, "non-contract refusals: {report:?}");
    assert_eq!(report.missing_backoff, 0, "sheds without hints: {report:?}");
    assert_eq!(
        report.restarts_reported, report.panics_injected,
        "panic isolation leaked: {report:?}"
    );
    assert!(report.clean());
    assert!(report.served > 0, "{report:?}");
    assert!(
        report.churns + report.observes > 0,
        "the script injected no faults: {report:?}"
    );

    // The daemon is still alive and serving after the whole campaign.
    let (resp, _) = daemon.handle_line(r#"{"op":"query","shard":"chaos"}"#);
    assert_eq!(
        resp.get("ok").and_then(wsn_serve::Json::as_bool),
        Some(true)
    );

    // Recorder cross-check: restarts were counted, and if anything shed,
    // the shed counter saw it too.
    let rec = wsn_obs::global().expect("recorder installed");
    assert_eq!(
        rec.counter_value("serve.shard_restarts"),
        report.panics_injected,
        "restart counter must match injected panics"
    );
    assert_eq!(rec.counter_value("serve.shed"), report.shed);
    daemon.shutdown();
}
