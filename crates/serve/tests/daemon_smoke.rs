//! Daemon smoke tests: the full serving loop end to end — spawn, solve,
//! churn, reschedule, estimator observe, metrics scrape, clean shutdown —
//! both in-process and against the real `wsn-serve` binary over
//! stdin-jsonl and TCP framing.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

use wsn_serve::{proto, Daemon, DaemonConfig, Json};

#[test]
fn in_process_lifecycle() {
    Daemon::install_recorder();
    let d = Daemon::new(DaemonConfig::default());
    let lines = [
        r#"{"op":"create","shard":"s","nodes":80,"seed":11,"epsilon":0.05}"#,
        r#"{"op":"solve","shard":"s","deadline_ms":60}"#,
        r#"{"op":"churn","shard":"s","dead":[2,9],"deadline_ms":30}"#,
        r#"{"op":"observe","shard":"s","truth":0.7,"rounds":30,"seed":5,"deadline_ms":30}"#,
        r#"{"op":"query","shard":"s"}"#,
        r#"{"op":"metrics"}"#,
    ];
    for line in lines {
        let (resp, stop) = d.handle_line(line);
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "{line} -> {resp}"
        );
        assert!(!stop);
    }
    // The churned schedule was incrementally repaired, reusing survivors.
    let (churned, _) = d.handle_line(r#"{"op":"churn","shard":"s","dead":[4],"deadline_ms":30}"#);
    assert!(churned.get("reused").unwrap().as_u64().unwrap() > 0);
    // The observe at 0.7 truth against a 1.0 assumption must have crossed
    // the drift trigger and replanned incrementally.
    let (obs, _) =
        d.handle_line(r#"{"op":"observe","shard":"s","truth":0.7,"rounds":30,"deadline_ms":30}"#);
    assert_eq!(obs.get("ok").and_then(Json::as_bool), Some(true));
    // Metrics flow through the existing prometheus exporter.
    let (m, _) = d.handle_line(r#"{"op":"metrics"}"#);
    let body = m.get("body").unwrap().as_str().unwrap();
    for family in ["serve_requests_total", "serve_request_us", "serve_shards"] {
        assert!(body.contains(family), "missing {family} in:\n{body}");
    }
    let (bye, stop) = d.handle_line(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
    assert!(stop);
}

fn spawn_daemon(args: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_wsn-serve"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn wsn-serve")
}

#[test]
fn binary_smoke_over_stdin_jsonl() {
    let mut child = spawn_daemon(&["--stdin", "--queue-cap", "8"]);
    let mut stdin = child.stdin.take().unwrap();
    let stdout = BufReader::new(child.stdout.take().unwrap());
    let script = [
        r#"{"op":"create","shard":"s","nodes":60,"seed":3}"#,
        r#"{"op":"solve","shard":"s","deadline_ms":40}"#,
        r#"{"op":"churn","shard":"s","dead":[5],"deadline_ms":20}"#,
        r#"{"op":"metrics"}"#,
        r#"{"op":"shutdown"}"#,
    ];
    for line in script {
        writeln!(stdin, "{line}").unwrap();
    }
    drop(stdin);
    let replies: Vec<Json> = stdout
        .lines()
        .map(|l| Json::parse(&l.unwrap()).expect("daemon must emit valid JSON"))
        .collect();
    assert_eq!(replies.len(), script.len(), "one reply per request");
    for (req, resp) in script.iter().zip(&replies) {
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "{req} -> {resp}"
        );
    }
    assert!(replies[1].get("latency").unwrap().as_u64().is_some());
    assert!(replies[2].get("reused").unwrap().as_u64().unwrap() > 0);
    assert!(replies[3]
        .get("body")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("serve_requests_total"));
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "clean shutdown, got {status:?}");
}

#[test]
fn binary_smoke_over_tcp_frames() {
    // Pick a free port first; skip gracefully if the sandbox forbids
    // binding (the stdin smoke above still covers the protocol).
    let Ok(probe) = std::net::TcpListener::bind("127.0.0.1:0") else {
        eprintln!("skipping: cannot bind loopback in this environment");
        return;
    };
    let addr = probe.local_addr().unwrap();
    drop(probe);
    let mut child = spawn_daemon(&["--tcp", &addr.to_string()]);
    // Wait for the listener: the binary prints "listening on ..." first.
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    assert!(banner.contains("listening"), "{banner}");

    let mut conn = std::net::TcpStream::connect(addr).expect("connect");
    let script = [
        r#"{"op":"create","shard":"t","nodes":50,"seed":1}"#,
        r#"{"op":"solve","shard":"t","deadline_ms":30}"#,
        r#"{"op":"shutdown"}"#,
    ];
    for req in script {
        proto::write_frame(&mut conn, req).unwrap();
        let resp = proto::read_frame(&mut conn).unwrap().expect("reply frame");
        let resp = Json::parse(&resp).unwrap();
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "{req} -> {resp}"
        );
    }
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "clean shutdown, got {status:?}");
}
