//! Degradation-ladder properties: for *any* deadline — including ~0 ms —
//! the daemon's answer is a schedule that passes `verify_with_model`,
//! and the quality tag is monotone in the deadline.

use proptest::prelude::*;
use wsn_dutycycle::AlwaysAwake;
use wsn_serve::{Json, Request, ShardSpec, ShardState, Tier};

fn rank(resp: &Json) -> u8 {
    match resp.get("tier").and_then(Json::as_str) {
        Some("greedy") => Tier::Greedy.rank(),
        Some("warm") => Tier::Warm.rank(),
        Some("serial") => Tier::Serial.rank(),
        Some("portfolio") => Tier::Portfolio.rank(),
        other => panic!("missing tier tag: {other:?}"),
    }
}

fn solve(state: &mut ShardState, deadline_ms: u64) -> Json {
    let resp = state.handle(
        &Request::Solve {
            shard: "p".into(),
            deadline_ms,
        },
        deadline_ms,
    );
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    resp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any deadline pair on any instance: both answers verify under the
    /// shard's conflict model (re-checked here, independently of the
    /// response flag) and the quality tag never decreases with a larger
    /// deadline.
    #[test]
    fn any_deadline_serves_verified_and_tags_are_monotone(
        seed in 0..32u64,
        n in 30usize..90,
        da in 0u64..260,
        db in 0u64..260,
    ) {
        let (lo, hi) = if da <= db { (da, db) } else { (db, da) };
        let spec = ShardSpec::from_create("p", n, seed, "paper", "protocol", 1, 0.0).unwrap();
        let mut state = ShardState::build(&spec);

        let r_lo = solve(&mut state, lo);
        let s_lo = state.current.clone().unwrap();
        prop_assert!(s_lo.verify_with_model(&state.topo, &AlwaysAwake, &state.model).is_ok());

        let r_hi = solve(&mut state, hi);
        let s_hi = state.current.clone().unwrap();
        prop_assert!(s_hi.verify_with_model(&state.topo, &AlwaysAwake, &state.model).is_ok());

        prop_assert!(
            rank(&r_lo) <= rank(&r_hi),
            "tag not monotone: {} ms -> {:?}, {} ms -> {:?}",
            lo, r_lo.get("tier"), hi, r_hi.get("tier")
        );
    }

    /// The ~0 ms floor: a zero deadline is still answered with a valid,
    /// verified schedule tagged greedy — never a timeout with nothing.
    #[test]
    fn zero_deadline_always_answers(seed in 0..16u64, n in 30usize..70) {
        let spec = ShardSpec::from_create("p", n, seed, "paper", "protocol", 1, 0.0).unwrap();
        let mut state = ShardState::build(&spec);
        let resp = solve(&mut state, 0);
        prop_assert_eq!(resp.get("tier").and_then(Json::as_str), Some("greedy"));
        prop_assert_eq!(resp.get("verified").and_then(Json::as_bool), Some(true));
        let s = state.current.clone().unwrap();
        prop_assert!(s.verify_with_model(&state.topo, &AlwaysAwake, &state.model).is_ok());
    }
}
