//! Resident shards: one owner thread per topology, a bounded
//! oldest-deadline-first queue in front of it, and panic isolation
//! around every request.
//!
//! A shard owns everything a topology needs to be served warm: the
//! interned [`Topology`], its built conflict model, the
//! [`ScheduleCache`], the current incumbent schedule, the assumed
//! [`LinkQuality`], and the [`LinkEstimator`] the closed loop feeds.
//! Requests are handled strictly on the owner thread, so none of that
//! state needs locking.
//!
//! Isolation contract: a panicking handler (a chaos-injected panic or a
//! genuine bug on one topology) is caught with `catch_unwind`, the
//! shard's state — including the possibly-poisoned cache — is
//! quarantined by rebuilding from the spec cold, the
//! `serve.shard_restarts` counter increments, and the caller gets
//! an explicit `"panic"` error. The daemon and its other shards never
//! notice.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use mlbs_core::Schedule;
use wsn_anytime::{plan_repeats, AnytimeConfig, ChurnDelta, ScheduleCache};
use wsn_dutycycle::AlwaysAwake;
use wsn_phy::{PhyModel, PhyModelSpec, SinrParams};
use wsn_sim::{simulate_acks, LinkEstimator};
use wsn_topology::deploy::SyntheticDeployment;
use wsn_topology::{LinkQuality, NodeId, Topology};

use crate::json::Json;
use crate::ladder::{reschedule_with_deadline, solve_with_deadline, Tier};
use crate::proto::{self, Request};

/// Everything needed to (re)build a shard cold — kept by the worker so a
/// panic can quarantine-and-restart without the daemon's help.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    pub name: String,
    pub nodes: usize,
    pub seed: u64,
    /// `"paper"` or `"scaled"` synthetic deployment.
    pub deployment: String,
    /// `"protocol"` or `"sinr"`.
    pub model: String,
    pub channels: u32,
    /// ε for repeat planning after a quality replan (0 disables).
    pub epsilon: f64,
    /// Drift that triggers the closed-loop replan.
    pub drift_threshold: f64,
    /// Estimator evidence floor per link.
    pub min_samples: u32,
    /// Estimator window (attempts per link).
    pub window: u32,
}

impl ShardSpec {
    /// Validates a `create` request into a spec.
    pub fn from_create(
        name: &str,
        nodes: usize,
        seed: u64,
        deployment: &str,
        model: &str,
        channels: u32,
        epsilon: f64,
    ) -> Result<ShardSpec, String> {
        if nodes < 2 {
            return Err("nodes must be >= 2".into());
        }
        if !matches!(deployment, "paper" | "scaled") {
            return Err(format!("unknown deployment {deployment:?}"));
        }
        if !matches!(model, "protocol" | "sinr") {
            return Err(format!("unknown model {model:?}"));
        }
        if channels == 0 || channels > 8 {
            return Err("channels must be in 1..=8".into());
        }
        if !(0.0..1.0).contains(&epsilon) {
            return Err("epsilon must be in [0, 1)".into());
        }
        Ok(ShardSpec {
            name: name.to_string(),
            nodes,
            seed,
            deployment: deployment.to_string(),
            model: model.to_string(),
            channels,
            epsilon,
            drift_threshold: 0.05,
            min_samples: 16,
            window: 64,
        })
    }
}

/// The per-topology state the owner thread mutates.
pub struct ShardState {
    pub topo: Topology,
    pub source: NodeId,
    pub model: PhyModel,
    pub cache: ScheduleCache,
    pub current: Option<Schedule>,
    pub tier: Option<Tier>,
    pub assumed: LinkQuality,
    pub est: LinkEstimator,
    /// Accumulated churn deaths (masks every later repair).
    pub dead: Vec<NodeId>,
    base: AnytimeConfig,
    spec: ShardSpec,
}

impl ShardState {
    /// Builds the shard cold: sample the deployment, build the model,
    /// start with an empty cache and a unit link-quality assumption.
    pub fn build(spec: &ShardSpec) -> ShardState {
        let dep = if spec.deployment == "scaled" {
            SyntheticDeployment::scaled(spec.nodes)
        } else {
            SyntheticDeployment::paper(spec.nodes)
        };
        let (topo, source) = dep.sample(spec.seed);
        let phy_spec = if spec.model == "sinr" {
            PhyModelSpec::sinr(SinrParams::calibrated(topo.radius(), 3.0, 1.5))
        } else {
            PhyModelSpec::protocol()
        }
        .with_channels(spec.channels);
        let model = phy_spec.build(&topo);
        let assumed = LinkQuality::uniform(&topo, 1.0);
        let est = LinkEstimator::new(&topo, spec.window);
        ShardState {
            source,
            model,
            cache: ScheduleCache::new(),
            current: None,
            tier: None,
            assumed,
            est,
            dead: Vec::new(),
            base: AnytimeConfig {
                seed: spec.seed,
                ..AnytimeConfig::default()
            },
            spec: spec.clone(),
            topo,
        }
    }

    fn schedule_reply(&self, extra: Vec<(&str, Json)>) -> Json {
        let s = self.current.as_ref().expect("reply requires a schedule");
        let mut pairs = vec![
            ("ok", Json::Bool(true)),
            ("shard", Json::str(self.spec.name.clone())),
            ("latency", Json::num(s.latency() as f64)),
            ("slots", Json::num(s.entries.len() as f64)),
            ("tier", Json::str(self.tier.map_or("greedy", Tier::label))),
            ("verified", Json::Bool(true)),
        ];
        pairs.extend(extra);
        Json::obj(pairs)
    }

    /// Solve (or re-solve) under the ladder. On a churned shard this is a
    /// repair against the accumulated dead set so the incumbent stays
    /// consistent with the surviving subgraph.
    fn handle_solve(&mut self, deadline_ms: u64, remaining_ms: u64) -> Json {
        if !self.dead.is_empty() {
            return self.repair(
                ChurnDelta::deaths(self.dead.clone()),
                deadline_ms,
                remaining_ms,
                Vec::new(),
            );
        }
        let (out, tier) = solve_with_deadline(
            &self.topo,
            self.source,
            &AlwaysAwake,
            &self.model,
            &mut self.cache,
            &self.base,
            deadline_ms,
            remaining_ms,
        );
        self.current = Some(out.schedule);
        self.tier = Some(tier);
        self.schedule_reply(vec![("proved_optimal", Json::Bool(out.proved_optimal))])
    }

    /// Ensures an incumbent exists (greedy-solves one when the very first
    /// request is a churn or observe).
    fn ensure_current(&mut self) {
        if self.current.is_none() {
            let (out, tier) = solve_with_deadline(
                &self.topo,
                self.source,
                &AlwaysAwake,
                &self.model,
                &mut self.cache,
                &self.base,
                0,
                0,
            );
            self.current = Some(out.schedule);
            self.tier = Some(tier);
        }
    }

    /// Shared repair path for churn deaths and quality replans: times the
    /// reschedule into `serve.reschedule_us`, updates the incumbent, and
    /// reports the reuse footprint.
    fn repair(
        &mut self,
        delta: ChurnDelta,
        deadline_ms: u64,
        remaining_ms: u64,
        mut extra: Vec<(&'static str, Json)>,
    ) -> Json {
        self.ensure_current();
        let old = self.current.clone().expect("ensured above");
        let started = Instant::now();
        let (rep, tier) = reschedule_with_deadline(
            &self.topo,
            self.source,
            &AlwaysAwake,
            &self.model,
            &old,
            &delta,
            &self.base,
            deadline_ms,
            remaining_ms,
        );
        wsn_obs::observe_us("serve.reschedule_us", started.elapsed().as_micros() as u64);
        extra.push(("reused", Json::num(rep.reused as f64)));
        extra.push(("stranded", Json::num(rep.stranded as f64)));
        extra.push(("uncovered", Json::num(rep.uncovered.len() as f64)));
        self.current = Some(rep.outcome.schedule);
        self.tier = Some(tier);
        self.schedule_reply(extra)
    }

    fn handle_churn(&mut self, dead: &[NodeId], deadline_ms: u64, remaining_ms: u64) -> Json {
        if dead.contains(&self.source) {
            return proto::err(
                "source_dead",
                "the broadcast source died; recreate the shard with a new source",
                vec![],
            );
        }
        if dead.iter().any(|d| d.idx() >= self.topo.len()) {
            return proto::err("bad_request", "dead node id out of range", vec![]);
        }
        for &d in dead {
            if !self.dead.contains(&d) {
                self.dead.push(d);
            }
        }
        self.repair(
            ChurnDelta::deaths(self.dead.clone()),
            deadline_ms,
            remaining_ms,
            vec![("dead_total", Json::num(self.dead.len() as f64))],
        )
    }

    /// The closed estimator loop: feed the simulated ACK stream, check
    /// drift, and on a trigger repair with the quality delta (plus any
    /// accumulated deaths) instead of re-planning from scratch.
    fn handle_observe(
        &mut self,
        truth_p: f64,
        links: &[(NodeId, NodeId, f64)],
        rounds: u32,
        seed: u64,
        deadline_ms: u64,
        remaining_ms: u64,
    ) -> Json {
        self.ensure_current();
        let mut truth = LinkQuality::uniform(&self.topo, truth_p.clamp(0.0, 1.0));
        for &(u, v, p) in links {
            if u.idx() < self.topo.len() && self.topo.neighbors(u).contains(&v) {
                truth.set_delivery(&self.topo, u, v, p.clamp(0.0, 1.0));
            }
        }
        let current = self.current.clone().expect("ensured above");
        simulate_acks(&self.topo, &current, &truth, &mut self.est, rounds, seed);
        let drift = self
            .est
            .drift(&self.topo, &self.assumed, self.spec.min_samples);
        if drift < self.spec.drift_threshold {
            return Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("shard", Json::str(self.spec.name.clone())),
                ("drift", Json::num(drift)),
                ("replanned", Json::Bool(false)),
            ]);
        }
        let quality = self
            .est
            .to_quality(&self.topo, &self.assumed, self.spec.min_samples);
        let mut degraded = Vec::new();
        for u in self.topo.nodes() {
            for (k, &v) in self.topo.neighbors(u).iter().enumerate() {
                if u >= v {
                    continue;
                }
                let newp = quality.delivery_at(u, k);
                if (newp - self.assumed.delivery_at(u, k)).abs() >= self.spec.drift_threshold {
                    degraded.push((u, v, newp));
                }
            }
        }
        let degraded_links = degraded.len();
        let delta = ChurnDelta {
            dead: self.dead.clone(),
            degraded_links: degraded,
        };
        wsn_obs::counter_add("serve.replans", 1);
        let reply = self.repair(
            delta,
            deadline_ms,
            remaining_ms,
            vec![
                ("drift", Json::num(drift)),
                ("replanned", Json::Bool(true)),
                ("degraded_links", Json::num(degraded_links as f64)),
            ],
        );
        // Re-plan repeat provisioning against the fused estimate (only on
        // an intact topology — repeat bounds assume full coverage).
        if self.spec.epsilon > 0.0 && self.dead.is_empty() {
            let s = self.current.take().expect("repair installed an incumbent");
            let planned = plan_repeats(
                &s,
                &self.topo,
                &AlwaysAwake,
                &self.model,
                &quality,
                self.spec.epsilon,
            );
            planned
                .verify_with_model(&self.topo, &AlwaysAwake, &self.model)
                .expect("repeat planning broke a verified schedule");
            self.current = Some(planned);
        }
        self.assumed = quality;
        reply
    }

    fn handle_query(&self) -> Json {
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("shard", Json::str(self.spec.name.clone())),
            ("nodes", Json::num(self.topo.len() as f64)),
            ("dead", Json::num(self.dead.len() as f64)),
            ("cache_len", Json::num(self.cache.len() as f64)),
            ("cache_hits", Json::num(self.cache.hits() as f64)),
            ("cache_misses", Json::num(self.cache.misses() as f64)),
            (
                "latency",
                self.current
                    .as_ref()
                    .map_or(Json::Null, |s| Json::num(s.latency() as f64)),
            ),
            (
                "tier",
                self.tier.map_or(Json::Null, |t| Json::str(t.label())),
            ),
        ])
    }

    /// Dispatches one request on the owner thread.
    pub fn handle(&mut self, req: &Request, remaining_ms: u64) -> Json {
        match req {
            Request::Solve { deadline_ms, .. } => self.handle_solve(*deadline_ms, remaining_ms),
            Request::Churn {
                dead, deadline_ms, ..
            } => self.handle_churn(dead, *deadline_ms, remaining_ms),
            Request::Observe {
                truth,
                links,
                rounds,
                seed,
                deadline_ms,
                ..
            } => self.handle_observe(*truth, links, *rounds, *seed, *deadline_ms, remaining_ms),
            Request::Query { .. } => self.handle_query(),
            Request::ChaosPanic { .. } => panic!("injected chaos panic"),
            _ => proto::err("bad_request", "request not routable to a shard", vec![]),
        }
    }
}

/// One queued request with its absolute deadline and reply channel.
pub struct Job {
    pub req: Request,
    pub deadline: Instant,
    pub reply: Sender<Json>,
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// Queue at capacity — shed, with a backoff hint in ms.
    Overloaded { retry_after_ms: u64 },
    /// Daemon shutting down.
    Closed,
}

struct QueueInner {
    jobs: Vec<Job>,
    closed: bool,
}

/// Bounded oldest-deadline-first queue with a service-time EWMA that
/// prices the retry-after hint.
pub struct DeadlineQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
    cap: usize,
    /// EWMA of request service time, microseconds (atomic so the
    /// admission path reads it without the lock).
    ewma_us: AtomicU64,
}

impl DeadlineQueue {
    pub fn new(cap: usize) -> Arc<DeadlineQueue> {
        Arc::new(DeadlineQueue {
            inner: Mutex::new(QueueInner {
                jobs: Vec::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
            ewma_us: AtomicU64::new(0),
        })
    }

    /// Admission control: refuses beyond `cap` with a backoff hint sized
    /// to the backlog (`(depth + 1) × service EWMA`).
    pub fn push(&self, job: Job) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.jobs.len() >= self.cap {
            let est_us = self.ewma_us.load(Ordering::Relaxed).max(1_000);
            let retry_after_ms =
                (est_us.saturating_mul(inner.jobs.len() as u64 + 1) / 1_000).max(1);
            return Err(PushError::Overloaded { retry_after_ms });
        }
        inner.jobs.push(job);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the job with the earliest deadline; `None` once closed
    /// and drained.
    pub fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(best) = (0..inner.jobs.len()).min_by_key(|&i| inner.jobs[i].deadline) {
                return Some(inner.jobs.swap_remove(best));
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn note_service_us(&self, us: u64) {
        let prev = self.ewma_us.load(Ordering::Relaxed);
        let next = if prev == 0 {
            us
        } else {
            prev - prev / 8 + us / 8
        };
        self.ewma_us.store(next, Ordering::Relaxed);
    }
}

/// A running shard: its admission queue and owner thread.
pub struct ShardHandle {
    pub queue: Arc<DeadlineQueue>,
    pub join: JoinHandle<()>,
}

/// Spawns the owner thread: build cold, then serve jobs oldest-deadline
/// first with panic isolation (see module docs).
pub fn spawn_shard(spec: ShardSpec, queue_cap: usize) -> ShardHandle {
    let queue = DeadlineQueue::new(queue_cap);
    let q = Arc::clone(&queue);
    let join = std::thread::Builder::new()
        .name(format!("shard-{}", spec.name))
        .spawn(move || {
            let mut state = ShardState::build(&spec);
            while let Some(job) = q.pop() {
                let started = Instant::now();
                wsn_obs::gauge_set("serve.queue_depth", q.len() as i64);
                let remaining_ms =
                    job.deadline.saturating_duration_since(started).as_millis() as u64;
                let outcome = {
                    let st = &mut state;
                    catch_unwind(AssertUnwindSafe(|| st.handle(&job.req, remaining_ms)))
                };
                let resp = match outcome {
                    Ok(resp) => resp,
                    Err(_) => {
                        wsn_obs::counter_add("serve.shard_restarts", 1);
                        // Quarantine: the old cache (and any half-mutated
                        // incumbent) is dropped wholesale; rebuild cold.
                        state = ShardState::build(&spec);
                        proto::err(
                            "panic",
                            "shard worker panicked; restarted cold",
                            vec![("restarted", Json::Bool(true))],
                        )
                    }
                };
                let us = started.elapsed().as_micros() as u64;
                q.note_service_us(us);
                wsn_obs::observe_us("serve.request_us", us);
                let _ = job.reply.send(resp);
            }
        })
        .expect("spawn shard thread");
    ShardHandle { queue, join }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    fn spec(n: usize) -> ShardSpec {
        ShardSpec::from_create("t", n, 7, "paper", "protocol", 1, 0.0).unwrap()
    }

    #[test]
    fn queue_orders_by_deadline_and_sheds_beyond_cap() {
        let q = DeadlineQueue::new(2);
        let now = Instant::now();
        let (tx, _rx) = mpsc::channel();
        let mk = |ms: u64| Job {
            req: Request::Query { shard: "t".into() },
            deadline: now + Duration::from_millis(ms),
            reply: tx.clone(),
        };
        q.push(mk(50)).unwrap();
        q.push(mk(10)).unwrap();
        match q.push(mk(5)) {
            Err(PushError::Overloaded { retry_after_ms }) => assert!(retry_after_ms >= 1),
            other => panic!("expected shed, got {other:?}"),
        }
        // Oldest deadline first, regardless of arrival order.
        assert_eq!(q.pop().unwrap().deadline, now + Duration::from_millis(10));
        assert_eq!(q.pop().unwrap().deadline, now + Duration::from_millis(50));
        q.close();
        assert!(q.pop().is_none());
        assert_eq!(
            q.push(mk(1)),
            Err(PushError::Closed),
            "closed queue admits nothing"
        );
    }

    #[test]
    fn shard_survives_an_injected_panic_and_serves_again() {
        let h = spawn_shard(spec(60), 8);
        let ask = |req: Request| {
            let (tx, rx) = mpsc::channel();
            h.queue
                .push(Job {
                    req,
                    deadline: Instant::now() + Duration::from_millis(200),
                    reply: tx,
                })
                .unwrap();
            rx.recv_timeout(Duration::from_secs(60)).unwrap()
        };
        let ok = ask(Request::Solve {
            shard: "t".into(),
            deadline_ms: 20,
        });
        assert_eq!(ok.get("ok").unwrap().as_bool(), Some(true));
        let boom = ask(Request::ChaosPanic { shard: "t".into() });
        assert_eq!(boom.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(boom.get("kind").unwrap().as_str(), Some("panic"));
        // Cold restart: the shard still answers, from a fresh cache.
        let again = ask(Request::Query { shard: "t".into() });
        assert_eq!(again.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(again.get("cache_len").unwrap().as_u64(), Some(0));
        h.queue.close();
        h.join.join().unwrap();
    }

    #[test]
    fn churn_then_solve_stays_masked() {
        let mut st = ShardState::build(&spec(80));
        let r = st.handle(
            &Request::Churn {
                shard: "t".into(),
                dead: vec![NodeId(3), NodeId(11)],
                deadline_ms: 20,
            },
            20,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("verified").unwrap().as_bool(), Some(true));
        // A later plain solve must keep honouring the accumulated deaths:
        // no dead node may appear as a sender.
        let r2 = st.handle(
            &Request::Solve {
                shard: "t".into(),
                deadline_ms: 15,
            },
            15,
        );
        assert_eq!(r2.get("ok").unwrap().as_bool(), Some(true));
        let s = st.current.as_ref().unwrap();
        for e in &s.entries {
            assert!(!e.senders.contains(&NodeId(3)));
            assert!(!e.senders.contains(&NodeId(11)));
        }
        // Killing the source is refused, not served.
        let refuse = st.handle(
            &Request::Churn {
                shard: "t".into(),
                dead: vec![st.source],
                deadline_ms: 20,
            },
            20,
        );
        assert_eq!(refuse.get("kind").unwrap().as_str(), Some("source_dead"));
    }
}
