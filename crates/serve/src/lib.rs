//! Broadcast scheduling as a service: a fault-tolerant daemon over the
//! anytime tier.
//!
//! PRs 5–8 built the parts — [`ScheduleCache`](wsn_anytime::ScheduleCache)
//! warm-starts, [`Portfolio`](wsn_anytime::Portfolio) races,
//! [`reschedule`](wsn_anytime::reschedule) incremental repair, the
//! TWCC-shaped [`LinkEstimator`](wsn_sim::LinkEstimator), and the
//! `wsn_obs` recorder — and this crate is the long-running process that
//! owns them while the network churns underneath:
//!
//! * **Shards** ([`shard`]): one owner thread per resident topology with
//!   its warm cache, incumbent schedule, assumed link quality, and
//!   estimator; a bounded oldest-deadline-first queue in front; panic
//!   isolation (`catch_unwind` → quarantine the cache → restart cold →
//!   `serve.shard_restarts`).
//! * **Deadline budgets and the degradation ladder** ([`ladder`]):
//!   portfolio → serial anytime → cached warm-start → greedy legalizer.
//!   Every deadline — including ~0 ms — is answered with a *valid,
//!   verified* schedule plus a quality tag ([`Tier`]); nothing ever
//!   times out with no answer.
//! * **Admission control** ([`shard::DeadlineQueue`]): bounded queues,
//!   explicit `Overloaded` responses with `retry_after_ms` backoff hints
//!   priced from a service-time EWMA.
//! * **The closed estimator loop** ([`shard::ShardState`]): `observe`
//!   requests feed ACK evidence; on drift the shard repairs with a
//!   *quality-only* [`ChurnDelta`](wsn_anytime::ChurnDelta) through the
//!   warm cache instead of re-planning from scratch.
//! * **Protocol** ([`proto`]): jsonl over stdin or 4-byte length-prefixed
//!   frames over TCP, one JSON object per request/response ([`json`]).
//! * **Chaos** ([`chaos`]): seeded `FaultScript` campaigns (deaths,
//!   flaps, bursts, storms, injected panics) asserting every served
//!   schedule verified and every refusal was explicit.
//!
//! Metrics ride the existing `wsn_obs` global recorder (installed at
//! daemon startup); the `metrics` verb answers with the
//! `wsn_obs::export::prometheus` text exposition.

pub mod chaos;
pub mod daemon;
pub mod json;
pub mod ladder;
pub mod proto;
pub mod shard;

pub use chaos::{run_campaign, ChaosParams, ChaosReport};
pub use daemon::{Daemon, DaemonConfig};
pub use json::Json;
pub use ladder::{tier_for_deadline, Tier};
pub use proto::{Request, DEFAULT_DEADLINE_MS};
pub use shard::{DeadlineQueue, ShardSpec, ShardState};
