//! Seeded chaos campaigns against a running [`Daemon`].
//!
//! The driver regenerates the shard's deployment locally (same
//! deterministic sampler), derives a [`FaultScript`] from it, and
//! replays the script as daemon traffic: node deaths become `churn`
//! requests, link flaps and interference bursts become `observe`
//! requests with a degraded truth quality (exercising the closed
//! estimator loop), and on top it injects worker panics and request
//! storms. Deadlines rotate through the whole degradation ladder,
//! including ~0 ms.
//!
//! The campaign's assertion surface is the [`ChaosReport`]: every
//! `ok:true` response must carry `verified:true` (the shard verified the
//! schedule under its conflict model before replying — `invalid` counts
//! violations), every refusal must be an *explicit* contract response
//! (`overloaded` with a backoff hint, or `panic` with a restart), and
//! the daemon itself must never die — injected panics surface as
//! counted shard restarts instead.

use wsn_sim::{Fault, FaultParams, FaultScript};
use wsn_topology::deploy::SyntheticDeployment;
use wsn_topology::{LinkQuality, LinkQualityParams, NodeId};

use crate::daemon::Daemon;
use crate::json::Json;
use crate::proto::Request;

/// Campaign shape (all deterministic in `seed`).
#[derive(Clone, Debug)]
pub struct ChaosParams {
    /// Scripted rounds to replay.
    pub rounds: u32,
    /// Shard size (synthetic paper deployment).
    pub nodes: usize,
    /// Concurrent solve requests per storm.
    pub storm_size: u32,
    /// A storm fires every this many rounds.
    pub storm_every: u32,
    /// A worker panic is injected every this many rounds.
    pub panic_every: u32,
    /// Master seed (topology, fault script, ACK draws).
    pub seed: u64,
}

impl Default for ChaosParams {
    fn default() -> Self {
        ChaosParams {
            rounds: 12,
            nodes: 120,
            storm_size: 24,
            storm_every: 4,
            panic_every: 5,
            seed: 0xC4A0,
        }
    }
}

/// What the campaign observed (see module docs for the contract).
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// `ok:true` responses carrying a schedule.
    pub served: u64,
    /// Explicit `overloaded` sheds (each had a `retry_after_ms` hint).
    pub shed: u64,
    /// Panics the campaign injected.
    pub panics_injected: u64,
    /// `panic` responses reporting a cold shard restart.
    pub restarts_reported: u64,
    /// `ok:true` responses *without* `verified:true` — must stay 0.
    pub invalid: u64,
    /// Refusals outside the contract (anything but overloaded/panic) —
    /// must stay 0.
    pub errors: u64,
    /// Churn (death) requests sent.
    pub churns: u64,
    /// Observe (estimator-loop) requests sent.
    pub observes: u64,
    /// Overloaded responses missing their backoff hint — must stay 0.
    pub missing_backoff: u64,
}

impl ChaosReport {
    fn absorb(&mut self, resp: &Json, schedule_bearing: bool) {
        match resp.get("ok").and_then(Json::as_bool) {
            Some(true) => {
                if schedule_bearing {
                    self.served += 1;
                    if resp.get("verified").and_then(Json::as_bool) != Some(true) {
                        self.invalid += 1;
                    }
                }
            }
            _ => match resp.get("kind").and_then(Json::as_str) {
                Some("overloaded") => {
                    self.shed += 1;
                    if resp.get("retry_after_ms").and_then(Json::as_u64).is_none() {
                        self.missing_backoff += 1;
                    }
                }
                Some("panic") => self.restarts_reported += 1,
                _ => self.errors += 1,
            },
        }
    }

    /// The campaign's hard acceptance gate.
    pub fn clean(&self) -> bool {
        self.invalid == 0
            && self.errors == 0
            && self.missing_backoff == 0
            && self.restarts_reported == self.panics_injected
    }
}

/// Deadlines the campaign rotates through — the full ladder, including
/// the ~0 ms floor.
const DEADLINES_MS: [u64; 6] = [0, 5, 20, 60, 120, 250];

/// Runs one scripted campaign against `daemon` (shard name `"chaos"`).
pub fn run_campaign(daemon: &Daemon, params: &ChaosParams) -> ChaosReport {
    let mut report = ChaosReport::default();
    let shard = "chaos".to_string();
    let created = daemon.handle(Request::Create {
        shard: shard.clone(),
        nodes: params.nodes,
        seed: params.seed,
        deployment: "paper".into(),
        model: "protocol".into(),
        channels: 1,
        epsilon: 0.0,
    });
    assert_eq!(
        created.get("ok").and_then(Json::as_bool),
        Some(true),
        "chaos shard must create: {created}"
    );

    // Local replica of the shard's instance, to derive the fault script
    // the same way the shard derived its topology.
    let (topo, source) = SyntheticDeployment::paper(params.nodes).sample(params.seed);
    let quality = LinkQuality::synthetic(&topo, &LinkQualityParams::default(), params.seed);
    let window = 8u64;
    let horizon = window * u64::from(params.rounds);
    let script = FaultScript::generate(
        &topo,
        &quality,
        source,
        0,
        horizon,
        &FaultParams {
            death_fraction: 0.08,
            ..FaultParams::default()
        },
        params.seed,
    );

    // Warm the shard with one generous solve.
    let first = daemon.handle(Request::Solve {
        shard: shard.clone(),
        deadline_ms: 250,
    });
    report.absorb(&first, true);

    let mut already_dead: Vec<NodeId> = Vec::new();
    for round in 0..params.rounds {
        let from = u64::from(round) * window;
        let until = from + window;
        let deadline_ms = DEADLINES_MS[round as usize % DEADLINES_MS.len()];

        // Deaths scripted into this window → one churn request.
        let dead_now: Vec<NodeId> = script
            .events
            .iter()
            .filter_map(|e| match e {
                Fault::NodeDeath { node, at } if *at >= from && *at < until => Some(*node),
                _ => None,
            })
            .filter(|n| !already_dead.contains(n))
            .collect();
        if !dead_now.is_empty() {
            already_dead.extend(dead_now.iter().copied());
            report.churns += 1;
            let resp = daemon.handle(Request::Churn {
                shard: shard.clone(),
                dead: dead_now,
                deadline_ms,
            });
            report.absorb(&resp, true);
        }

        // Flaps and bursts in this window → one observe request with a
        // degraded truth (flapped links near-dead, bursts raising the
        // uniform loss floor).
        let mut links = Vec::new();
        let mut burst_loss = 0.0f64;
        for e in &script.events {
            match e {
                Fault::LinkFlap { u, v, from: f, .. } if *f >= from && *f < until => {
                    links.push((*u, *v, 0.05));
                }
                Fault::Burst {
                    extra_loss,
                    from: f,
                    ..
                } if *f >= from && *f < until => burst_loss = burst_loss.max(*extra_loss),
                _ => {}
            }
        }
        if !links.is_empty() || burst_loss > 0.0 {
            report.observes += 1;
            let resp = daemon.handle(Request::Observe {
                shard: shard.clone(),
                truth: (0.98 - burst_loss).clamp(0.05, 1.0),
                links,
                rounds: 20,
                seed: params.seed ^ u64::from(round),
                deadline_ms,
            });
            report.absorb(&resp, true);
        }

        // Injected worker panic.
        if params.panic_every > 0 && round % params.panic_every == params.panic_every - 1 {
            report.panics_injected += 1;
            let resp = daemon.handle(Request::ChaosPanic {
                shard: shard.clone(),
            });
            report.absorb(&resp, false);
        }

        // Request storm: a burst of concurrent tight-deadline solves; the
        // bounded queue must shed the overflow explicitly, never hang.
        if params.storm_every > 0 && round % params.storm_every == params.storm_every - 1 {
            let receivers: Vec<_> = (0..params.storm_size)
                .map(|_| {
                    daemon.submit(Request::Solve {
                        shard: shard.clone(),
                        deadline_ms: 10,
                    })
                })
                .collect();
            for rx in receivers {
                match rx.recv() {
                    Ok(resp) => report.absorb(&resp, true),
                    Err(_) => report.errors += 1,
                }
            }
        }

        // Steady-state probe at the rotating deadline.
        let resp = daemon.handle(Request::Solve {
            shard: shard.clone(),
            deadline_ms,
        });
        report.absorb(&resp, true);
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::DaemonConfig;

    #[test]
    fn a_short_campaign_is_clean() {
        Daemon::install_recorder();
        let daemon = Daemon::new(DaemonConfig { queue_cap: 4 });
        let params = ChaosParams {
            rounds: 6,
            nodes: 60,
            storm_size: 12,
            storm_every: 3,
            panic_every: 3,
            seed: 7,
        };
        let report = run_campaign(&daemon, &params);
        assert!(report.clean(), "{report:?}");
        assert!(report.served > 0);
        assert!(report.panics_injected == 2);
        assert!(report.churns + report.observes > 0, "{report:?}");
        daemon.shutdown();
    }
}
