//! Minimal hand-rolled JSON value — the serving protocol's wire format.
//!
//! The workspace is registry-free (no serde), and the daemon only needs
//! flat request/response objects, so this is a small recursive-descent
//! parser plus a compact writer. Numbers are `f64` (every protocol field
//! fits in the 53-bit integer range); strings handle the full escape set
//! including `\uXXXX` surrogate pairs.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs (no dedup — last `get` wins is
    /// not needed; requests never repeat keys).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Non-negative integer view of a number (rejects fractional values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9e15 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(x: f64) -> Json {
        Json::Num(x)
    }

    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() <= 9e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(kv) => {
                f.write_str("{")?;
                for (i, (k, v)) in kv.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.i)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|x| x.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.i + 4 > self.b.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.i += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.i += 1;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| "bad codepoint".to_string())?,
                            );
                            continue;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are trustworthy).
                    let rest = std::str::from_utf8(&self.b[self.i..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut kv = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            kv.push((k, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(kv));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let src = r#"{"op":"churn","shard":"a","dead":[3,5],"deadline_ms":20,"f":0.25,"neg":-2,"ok":true,"x":null}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("churn"));
        assert_eq!(v.get("deadline_ms").unwrap().as_u64(), Some(20));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("neg").unwrap().as_f64(), Some(-2.0));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("x"), Some(&Json::Null));
        let dead: Vec<u64> = v
            .get("dead")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        assert_eq!(dead, vec![3, 5]);
        // Writer → parser closes the loop.
        let again = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#""a\"b\\c\ndé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndé😀"));
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, back);
        // Control characters must be escaped on output.
        assert_eq!(Json::str("a\u{1}b").to_string(), "\"a\\u0001b\"");
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"\\u12",
            "{\"a\":1}x",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::num(20.0).to_string(), "20");
        assert_eq!(Json::num(0.5).to_string(), "0.5");
    }
}
