//! The daemon: shard registry, request routing, admission control, and
//! the metrics/shutdown verbs.
//!
//! The daemon itself does no solving — every schedule-producing request
//! is enqueued to its shard's owner thread ([`crate::shard`]) and the
//! caller blocks on the reply channel. `create`, `metrics`, and
//! `shutdown` are handled inline. Observability rides the *existing*
//! `wsn_obs` layer: [`Daemon::install_recorder`] installs the global
//! [`Recorder`](wsn_obs::Recorder) at startup and the `metrics` verb
//! answers with `wsn_obs::export::prometheus` text — the daemon invents
//! no metrics machinery of its own.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::proto::{self, Request};
use crate::shard::{spawn_shard, Job, PushError, ShardHandle, ShardSpec};

/// Daemon-wide knobs.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Bounded per-shard queue depth; pushes beyond it shed with an
    /// explicit `Overloaded` response.
    pub queue_cap: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig { queue_cap: 16 }
    }
}

/// A running scheduler daemon (in-process; the `wsn-serve` binary wraps
/// it in stdin-jsonl or TCP framing).
pub struct Daemon {
    cfg: DaemonConfig,
    shards: Mutex<HashMap<String, ShardHandle>>,
}

impl Daemon {
    pub fn new(cfg: DaemonConfig) -> Daemon {
        let d = Daemon {
            cfg,
            shards: Mutex::new(HashMap::new()),
        };
        wsn_obs::gauge_set("serve.shards", 0);
        d
    }

    /// Installs the global `wsn_obs` recorder if none is active yet (the
    /// daemon's startup hook; idempotent).
    pub fn install_recorder() {
        if !wsn_obs::enabled() {
            wsn_obs::install(wsn_obs::Recorder::new());
        }
    }

    /// Non-blocking submit: routes to the shard queue and returns the
    /// reply channel. Admission failures (shed/closed/unknown shard) are
    /// delivered *through* the channel so storm drivers handle one shape.
    pub fn submit(&self, req: Request) -> Receiver<Json> {
        wsn_obs::counter_add("serve.requests", 1);
        let (tx, rx) = channel();
        let resp_inline = match &req {
            Request::Metrics => Some(self.metrics()),
            Request::Shutdown => {
                self.shutdown();
                Some(Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("shutdown", Json::Bool(true)),
                ]))
            }
            Request::Create {
                shard,
                nodes,
                seed,
                deployment,
                model,
                channels,
                epsilon,
            } => Some(self.create(shard, *nodes, *seed, deployment, model, *channels, *epsilon)),
            _ => None,
        };
        if let Some(resp) = resp_inline {
            let _ = tx.send(resp);
            return rx;
        }
        let name = req.shard().expect("shard ops carry a shard").to_string();
        let deadline = Instant::now() + Duration::from_millis(req.deadline_ms());
        let shards = self.shards.lock().unwrap();
        let Some(handle) = shards.get(&name) else {
            let _ = tx.send(proto::err(
                "no_such_shard",
                &format!("shard {name:?} does not exist; send create first"),
                vec![],
            ));
            return rx;
        };
        match handle.queue.push(Job {
            req,
            deadline,
            reply: tx.clone(),
        }) {
            Ok(()) => {}
            Err(PushError::Overloaded { retry_after_ms }) => {
                wsn_obs::counter_add("serve.shed", 1);
                let _ = tx.send(proto::overloaded(retry_after_ms));
            }
            Err(PushError::Closed) => {
                let _ = tx.send(proto::err("closed", "daemon is shutting down", vec![]));
            }
        }
        rx
    }

    /// Blocking request/reply.
    pub fn handle(&self, req: Request) -> Json {
        self.submit(req)
            .recv()
            .unwrap_or_else(|_| proto::err("internal", "reply channel dropped", vec![]))
    }

    /// One jsonl line in, one response out, plus whether this was a
    /// shutdown (the transport loop's exit signal).
    pub fn handle_line(&self, line: &str) -> (Json, bool) {
        match Request::parse(line) {
            Err(e) => (proto::err("bad_request", &e, vec![]), false),
            Ok(req) => {
                let stop = matches!(req, Request::Shutdown);
                (self.handle(req), stop)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn create(
        &self,
        name: &str,
        nodes: usize,
        seed: u64,
        deployment: &str,
        model: &str,
        channels: u32,
        epsilon: f64,
    ) -> Json {
        let spec =
            match ShardSpec::from_create(name, nodes, seed, deployment, model, channels, epsilon) {
                Ok(spec) => spec,
                Err(e) => return proto::err("bad_request", &e, vec![]),
            };
        let handle = spawn_shard(spec, self.cfg.queue_cap);
        let mut shards = self.shards.lock().unwrap();
        if let Some(old) = shards.insert(name.to_string(), handle) {
            // Replacing a shard retires the old worker cleanly.
            old.queue.close();
            drop(shards);
            let _ = old.join.join();
            self.note_shard_count();
        } else {
            drop(shards);
            self.note_shard_count();
        }
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("shard", Json::str(name)),
            ("nodes", Json::num(nodes as f64)),
        ])
    }

    fn metrics(&self) -> Json {
        match wsn_obs::global() {
            Some(rec) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("content_type", Json::str("text/plain; version=0.0.4")),
                ("body", Json::str(wsn_obs::export::prometheus(&rec))),
            ]),
            None => proto::err("no_recorder", "no global recorder installed", vec![]),
        }
    }

    fn note_shard_count(&self) {
        let n = self.shards.lock().unwrap().len();
        wsn_obs::gauge_set("serve.shards", n as i64);
    }

    /// Closes every shard queue and joins the workers. Idempotent; also
    /// runs on drop.
    pub fn shutdown(&self) {
        let drained: Vec<ShardHandle> = {
            let mut shards = self.shards.lock().unwrap();
            shards.drain().map(|(_, h)| h).collect()
        };
        for h in &drained {
            h.queue.close();
        }
        for h in drained {
            let _ = h.join.join();
        }
        self.note_shard_count();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn create_line(name: &str, nodes: usize) -> String {
        format!(r#"{{"op":"create","shard":"{name}","nodes":{nodes},"seed":3}}"#)
    }

    #[test]
    fn routes_and_reports_unknown_shards() {
        Daemon::install_recorder();
        let d = Daemon::new(DaemonConfig::default());
        let (resp, _) = d.handle_line(r#"{"op":"solve","shard":"ghost"}"#);
        assert_eq!(resp.get("kind").unwrap().as_str(), Some("no_such_shard"));
        let (resp, _) = d.handle_line(&create_line("a", 40));
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true));
        let (resp, _) = d.handle_line(r#"{"op":"solve","shard":"a","deadline_ms":15}"#);
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(resp.get("verified").unwrap().as_bool(), Some(true));
        let (resp, stop) = d.handle_line(r#"{"op":"shutdown"}"#);
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true));
        assert!(stop);
    }

    #[test]
    fn bad_lines_get_bad_request_not_a_crash() {
        let d = Daemon::new(DaemonConfig::default());
        for line in ["", "{", r#"{"op":"wat"}"#, r#"{"op":"create","shard":"x"}"#] {
            let (resp, stop) = d.handle_line(line);
            assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false), "{line:?}");
            assert!(!stop);
        }
    }

    #[test]
    fn metrics_verb_speaks_prometheus() {
        Daemon::install_recorder();
        let d = Daemon::new(DaemonConfig::default());
        let (_, _) = d.handle_line(&create_line("m", 30));
        let (_, _) = d.handle_line(r#"{"op":"solve","shard":"m","deadline_ms":5}"#);
        let (resp, _) = d.handle_line(r#"{"op":"metrics"}"#);
        let body = resp.get("body").unwrap().as_str().unwrap();
        assert!(body.contains("serve_requests_total"), "{body}");
    }
}
