//! The `wsn-serve` daemon binary.
//!
//! ```text
//! wsn-serve [--stdin] [--tcp ADDR] [--queue-cap N]
//! ```
//!
//! * `--stdin` (default): jsonl — one JSON request per stdin line, one
//!   JSON response per stdout line.
//! * `--tcp ADDR`: length-prefixed frames (4-byte big-endian length +
//!   UTF-8 JSON) on every accepted connection; connections are served
//!   concurrently against the same shard set.
//!
//! A `{"op":"shutdown"}` request drains the shards and exits cleanly.

use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use wsn_serve::{proto, Daemon, DaemonConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut tcp: Option<String> = None;
    let mut cfg = DaemonConfig::default();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--stdin" => tcp = None,
            "--tcp" => tcp = Some(args.next().unwrap_or_else(|| usage("--tcp needs ADDR"))),
            "--queue-cap" => {
                cfg.queue_cap = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--queue-cap needs a number"))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }

    Daemon::install_recorder();
    let daemon = Arc::new(Daemon::new(cfg));
    match tcp {
        None => serve_stdin(&daemon),
        Some(addr) => serve_tcp(&daemon, &addr),
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: wsn-serve [--stdin] [--tcp ADDR] [--queue-cap N]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn serve_stdin(daemon: &Daemon) {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (resp, stop) = daemon.handle_line(&line);
        let mut out = stdout.lock();
        let _ = writeln!(out, "{resp}");
        let _ = out.flush();
        if stop {
            break;
        }
    }
    daemon.shutdown();
}

fn serve_tcp(daemon: &Arc<Daemon>, addr: &str) {
    let listener = TcpListener::bind(addr).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    // The accept loop polls so a shutdown request on any connection can
    // stop it.
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    println!("listening on {}", listener.local_addr().unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let daemon = Arc::clone(daemon);
                let stop = Arc::clone(&stop);
                workers.push(std::thread::spawn(move || {
                    let mut reader = stream.try_clone().expect("clone stream");
                    let mut writer = stream;
                    while let Ok(Some(payload)) = proto::read_frame(&mut reader) {
                        let (resp, is_shutdown) = daemon.handle_line(&payload);
                        if proto::write_frame(&mut writer, &resp.to_string()).is_err() {
                            break;
                        }
                        if is_shutdown {
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => {
                eprintln!("accept error: {e}");
                break;
            }
        }
    }
    for w in workers {
        let _ = w.join();
    }
    daemon.shutdown();
}
