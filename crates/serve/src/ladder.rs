//! The graceful degradation ladder: deadline budget → solver tier.
//!
//! The daemon's serving contract is "always answer with a valid,
//! verified schedule" — a deadline never times out with nothing. What
//! shrinks with the deadline is *quality*, down four rungs:
//!
//! | rung | deadline | solver |
//! |---|---|---|
//! | `Portfolio` | ≥ 200 ms | [`Portfolio`] race, wall-clock half the budget |
//! | `Serial` | ≥ 50 ms | serial [`solve_anytime_cached`], wall-clock half the budget |
//! | `Warm` | ≥ 10 ms | cached warm-start, small fixed iteration budget |
//! | `Greedy` | < 10 ms | greedy legalizer only (`Budget::Iterations(0)`) |
//!
//! The rung is a function of the *requested* deadline alone, so the
//! quality tag is monotone in the deadline by construction (the ladder
//! proptest pins this); the wall-clock budget handed to the solver is
//! derived from the *remaining* deadline at dequeue time, so queueing
//! delay eats search time, not correctness. Every rung ends in the
//! legalizer and re-verifies before the incumbent moves, so even the
//! bottom rung serves a valid schedule.

use wsn_anytime::{
    reschedule, solve_anytime_cached, AnytimeConfig, AnytimeOutcome, Budget, ChurnDelta, Portfolio,
    RepairOutcome, ScheduleCache,
};
use wsn_dutycycle::WakeSchedule;
use wsn_phy::ConflictModel;
use wsn_topology::{NodeId, Topology};

/// Deadline thresholds of the ladder, in ms (see module docs).
pub const PORTFOLIO_MS: u64 = 200;
/// Serial-anytime rung threshold.
pub const SERIAL_MS: u64 = 50;
/// Cached warm-start rung threshold.
pub const WARM_MS: u64 = 10;

/// Iteration budget of the `Warm` rung (bounded work, warm-started).
const WARM_ITERS: u64 = 2_000;

/// Quality tag of a served schedule — which rung produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Greedy legalizer only.
    Greedy,
    /// Cached warm-start with a small iteration budget.
    Warm,
    /// Serial anytime search on a wall-clock budget.
    Serial,
    /// Multi-chain portfolio race on a wall-clock budget.
    Portfolio,
}

impl Tier {
    /// The protocol's string tag.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Greedy => "greedy",
            Tier::Warm => "warm",
            Tier::Serial => "serial",
            Tier::Portfolio => "portfolio",
        }
    }

    /// Monotone rank (higher = better quality).
    pub fn rank(self) -> u8 {
        match self {
            Tier::Greedy => 0,
            Tier::Warm => 1,
            Tier::Serial => 2,
            Tier::Portfolio => 3,
        }
    }

    fn counter(self) -> &'static str {
        match self {
            Tier::Greedy => "serve.tier.greedy",
            Tier::Warm => "serve.tier.warm",
            Tier::Serial => "serve.tier.serial",
            Tier::Portfolio => "serve.tier.portfolio",
        }
    }
}

/// The rung a requested deadline buys.
pub fn tier_for_deadline(deadline_ms: u64) -> Tier {
    if deadline_ms >= PORTFOLIO_MS {
        Tier::Portfolio
    } else if deadline_ms >= SERIAL_MS {
        Tier::Serial
    } else if deadline_ms >= WARM_MS {
        Tier::Warm
    } else {
        Tier::Greedy
    }
}

fn budget_for(tier: Tier, remaining_ms: u64) -> Budget {
    match tier {
        // Half the remaining budget for search; the other half is
        // headroom for legalization, verification, and reply framing.
        Tier::Portfolio | Tier::Serial => Budget::WallClockMs((remaining_ms / 2).max(1)),
        Tier::Warm => Budget::Iterations(WARM_ITERS),
        Tier::Greedy => Budget::Iterations(0),
    }
}

/// Full solve under the ladder: rung from the requested deadline, budget
/// from the remaining one. Always returns a schedule that verified under
/// `model` (verification failure panics — the shard's isolation layer
/// turns that into a cold restart, never a silently-invalid answer).
#[allow(clippy::too_many_arguments)]
pub fn solve_with_deadline<S, M>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    model: &M,
    cache: &mut ScheduleCache,
    base: &AnytimeConfig,
    deadline_ms: u64,
    remaining_ms: u64,
) -> (AnytimeOutcome, Tier)
where
    S: WakeSchedule + Sync,
    M: ConflictModel,
{
    let tier = tier_for_deadline(deadline_ms);
    let cfg = AnytimeConfig {
        budget: budget_for(tier, remaining_ms),
        ..base.clone()
    };
    let out = match tier {
        Tier::Portfolio => {
            Portfolio::with_config(cfg, 2).solve_cached(topo, source, wake, model, cache)
        }
        _ => solve_anytime_cached(topo, source, wake, model, &cfg, cache),
    };
    out.schedule
        .verify_with_model(topo, wake, model)
        .expect("ladder produced an invalid schedule");
    wsn_obs::counter_add(tier.counter(), 1);
    (out, tier)
}

/// Incremental reschedule under the ladder: repairs `old` against
/// `delta`, budgeted like [`solve_with_deadline`]. The repaired schedule
/// verified under `model` over the surviving subgraph
/// (`RepairOutcome::mask`) before return.
#[allow(clippy::too_many_arguments)]
pub fn reschedule_with_deadline<S, M>(
    topo: &Topology,
    source: NodeId,
    wake: &S,
    model: &M,
    old: &mlbs_core::Schedule,
    delta: &ChurnDelta,
    base: &AnytimeConfig,
    deadline_ms: u64,
    remaining_ms: u64,
) -> (RepairOutcome, Tier)
where
    S: WakeSchedule + Sync,
    M: ConflictModel,
{
    let tier = tier_for_deadline(deadline_ms);
    // Repair chains are serial (the warm replay dominates); the portfolio
    // rung maps onto a wall-clock repair budget instead of a chain race.
    let cfg = AnytimeConfig {
        budget: match tier {
            Tier::Portfolio | Tier::Serial => Budget::WallClockMs((remaining_ms / 2).max(1)),
            Tier::Warm => Budget::Iterations(WARM_ITERS),
            Tier::Greedy => Budget::Iterations(0),
        },
        ..base.clone()
    };
    let rep = reschedule(topo, source, wake, model, old, delta, &cfg);
    rep.outcome
        .schedule
        .verify_covering_with_model(topo, wake, model, Some(&rep.mask))
        .expect("ladder produced an invalid repair");
    wsn_obs::counter_add(tier.counter(), 1);
    (rep, tier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_dutycycle::AlwaysAwake;
    use wsn_phy::ProtocolModel;
    use wsn_topology::deploy::SyntheticDeployment;

    #[test]
    fn tier_is_monotone_in_the_deadline() {
        let mut last = Tier::Greedy;
        for d in 0..400 {
            let t = tier_for_deadline(d);
            assert!(t.rank() >= last.rank(), "rank dropped at {d} ms");
            last = t;
        }
        assert_eq!(tier_for_deadline(0), Tier::Greedy);
        assert_eq!(tier_for_deadline(PORTFOLIO_MS), Tier::Portfolio);
    }

    #[test]
    fn zero_deadline_still_serves_a_valid_schedule() {
        let (topo, src) = SyntheticDeployment::paper(120).sample(4);
        let mut cache = ScheduleCache::new();
        let base = AnytimeConfig::default();
        let (out, tier) = solve_with_deadline(
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &mut cache,
            &base,
            0,
            0,
        );
        assert_eq!(tier, Tier::Greedy);
        out.schedule.verify(&topo, &AlwaysAwake).unwrap();
    }

    #[test]
    fn warm_rung_never_loses_to_the_cached_incumbent() {
        let (topo, src) = SyntheticDeployment::paper(150).sample(9);
        let mut cache = ScheduleCache::new();
        let base = AnytimeConfig::default();
        // Seed the cache with a serial solve, then ask for a warm answer:
        // the warm-start contract says it cannot come back worse.
        let good = AnytimeConfig {
            budget: Budget::Iterations(20_000),
            ..base.clone()
        };
        let strong =
            solve_anytime_cached(&topo, src, &AlwaysAwake, &ProtocolModel, &good, &mut cache);
        let (warm, tier) = solve_with_deadline(
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &mut cache,
            &base,
            WARM_MS,
            WARM_MS,
        );
        assert_eq!(tier, Tier::Warm);
        assert!(warm.latency <= strong.latency);
    }
}
