//! Request/response protocol of the serving daemon.
//!
//! One request is one JSON object with an `"op"` field; one response is
//! one JSON object with an `"ok"` field. Over stdin the framing is
//! jsonl (one object per line); over TCP it is a 4-byte big-endian
//! length prefix followed by that many bytes of UTF-8 JSON, same payload
//! both ways.
//!
//! Failure responses carry a `"kind"` discriminator the client can act
//! on: `"overloaded"` (with `"retry_after_ms"` backoff hint), `"panic"`
//! (the shard restarted cold; retry is safe), `"no_such_shard"`,
//! `"bad_request"`, `"source_dead"`.

use crate::json::Json;
use wsn_topology::NodeId;

/// Default per-request deadline when the client sends none.
pub const DEFAULT_DEADLINE_MS: u64 = 100;

/// A parsed daemon request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Create (or replace) a resident shard.
    Create {
        shard: String,
        nodes: usize,
        seed: u64,
        /// `"paper"` or `"scaled"` synthetic deployment.
        deployment: String,
        /// `"protocol"` or `"sinr"`.
        model: String,
        channels: u32,
        /// Reliability target ε for repeat planning (0 disables).
        epsilon: f64,
    },
    /// Solve (or re-serve) the shard's schedule under a deadline.
    Solve { shard: String, deadline_ms: u64 },
    /// Incremental reschedule after node deaths.
    Churn {
        shard: String,
        dead: Vec<NodeId>,
        deadline_ms: u64,
    },
    /// Feed estimator observations (simulated ACK stream against a truth
    /// quality) and close the loop: on drift, incremental reschedule.
    Observe {
        shard: String,
        /// Uniform true delivery probability the ACK stream is drawn from.
        truth: f64,
        /// Per-link overrides of the truth: `(u, v, p)`.
        links: Vec<(NodeId, NodeId, f64)>,
        rounds: u32,
        seed: u64,
        deadline_ms: u64,
    },
    /// Shard statistics (no solving).
    Query { shard: String },
    /// Prometheus text exposition of the global recorder.
    Metrics,
    /// Chaos hook: make the shard worker panic (exercises isolation).
    ChaosPanic { shard: String },
    /// Drain and stop the daemon.
    Shutdown,
}

impl Request {
    /// The shard the request routes to, if any.
    pub fn shard(&self) -> Option<&str> {
        match self {
            Request::Create { shard, .. }
            | Request::Solve { shard, .. }
            | Request::Churn { shard, .. }
            | Request::Observe { shard, .. }
            | Request::Query { shard }
            | Request::ChaosPanic { shard } => Some(shard),
            Request::Metrics | Request::Shutdown => None,
        }
    }

    /// The request's deadline budget (ops without one get the default).
    pub fn deadline_ms(&self) -> u64 {
        match self {
            Request::Solve { deadline_ms, .. }
            | Request::Churn { deadline_ms, .. }
            | Request::Observe { deadline_ms, .. } => *deadline_ms,
            _ => DEFAULT_DEADLINE_MS,
        }
    }

    /// Parses one request object.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line)?;
        let op = v.get("op").and_then(Json::as_str).ok_or("missing \"op\"")?;
        let shard = || -> Result<String, String> {
            Ok(v.get("shard")
                .and_then(Json::as_str)
                .ok_or("missing \"shard\"")?
                .to_string())
        };
        let deadline = v
            .get("deadline_ms")
            .map(|d| d.as_u64().ok_or("bad \"deadline_ms\""))
            .transpose()?
            .unwrap_or(DEFAULT_DEADLINE_MS);
        match op {
            "create" => Ok(Request::Create {
                shard: shard()?,
                nodes: v
                    .get("nodes")
                    .and_then(Json::as_u64)
                    .ok_or("missing \"nodes\"")? as usize,
                seed: v.get("seed").and_then(Json::as_u64).unwrap_or(0),
                deployment: v
                    .get("deployment")
                    .and_then(Json::as_str)
                    .unwrap_or("paper")
                    .to_string(),
                model: v
                    .get("model")
                    .and_then(Json::as_str)
                    .unwrap_or("protocol")
                    .to_string(),
                channels: v.get("channels").and_then(Json::as_u64).unwrap_or(1) as u32,
                epsilon: v.get("epsilon").and_then(Json::as_f64).unwrap_or(0.0),
            }),
            "solve" => Ok(Request::Solve {
                shard: shard()?,
                deadline_ms: deadline,
            }),
            "churn" => {
                let dead = v
                    .get("dead")
                    .and_then(Json::as_arr)
                    .ok_or("missing \"dead\"")?
                    .iter()
                    .map(|x| x.as_u64().map(|id| NodeId(id as u32)))
                    .collect::<Option<Vec<_>>>()
                    .ok_or("bad \"dead\" entry")?;
                Ok(Request::Churn {
                    shard: shard()?,
                    dead,
                    deadline_ms: deadline,
                })
            }
            "observe" => {
                let links = match v.get("links").and_then(Json::as_arr) {
                    None => Vec::new(),
                    Some(items) => items
                        .iter()
                        .map(|it| {
                            let t = it.as_arr()?;
                            if t.len() != 3 {
                                return None;
                            }
                            Some((
                                NodeId(t[0].as_u64()? as u32),
                                NodeId(t[1].as_u64()? as u32),
                                t[2].as_f64()?,
                            ))
                        })
                        .collect::<Option<Vec<_>>>()
                        .ok_or("bad \"links\" entry")?,
                };
                Ok(Request::Observe {
                    shard: shard()?,
                    truth: v.get("truth").and_then(Json::as_f64).unwrap_or(1.0),
                    links,
                    rounds: v.get("rounds").and_then(Json::as_u64).unwrap_or(40) as u32,
                    seed: v.get("seed").and_then(Json::as_u64).unwrap_or(1),
                    deadline_ms: deadline,
                })
            }
            "query" => Ok(Request::Query { shard: shard()? }),
            "metrics" => Ok(Request::Metrics),
            "chaos_panic" => Ok(Request::ChaosPanic { shard: shard()? }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// `{"ok":false,"kind":…,"error":…}` plus extras.
pub fn err(kind: &str, msg: &str, extra: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![
        ("ok", Json::Bool(false)),
        ("kind", Json::str(kind)),
        ("error", Json::str(msg)),
    ];
    pairs.extend(extra);
    Json::obj(pairs)
}

/// The explicit load-shed response with its backoff hint.
pub fn overloaded(retry_after_ms: u64) -> Json {
    err(
        "overloaded",
        "shard queue full; retry after backoff",
        vec![("retry_after_ms", Json::num(retry_after_ms as f64))],
    )
}

/// Reads one length-prefixed frame (4-byte big-endian length + UTF-8
/// payload). `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl std::io::Read) -> std::io::Result<Option<String>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "truncated frame length",
                ))
            }
            n => got += n,
        }
    }
    let n = u32::from_be_bytes(len) as usize;
    if n > 64 << 20 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut buf = vec![0u8; n];
    std::io::Read::read_exact(r, &mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame not UTF-8"))
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl std::io::Write, payload: &str) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        let r = Request::parse(r#"{"op":"create","shard":"a","nodes":80,"seed":3}"#).unwrap();
        assert!(matches!(
            r,
            Request::Create {
                nodes: 80,
                seed: 3,
                ..
            }
        ));
        let r = Request::parse(r#"{"op":"solve","shard":"a","deadline_ms":7}"#).unwrap();
        assert_eq!(r.deadline_ms(), 7);
        let r = Request::parse(r#"{"op":"churn","shard":"a","dead":[1,2]}"#).unwrap();
        match r {
            Request::Churn { dead, .. } => assert_eq!(dead, vec![NodeId(1), NodeId(2)]),
            _ => panic!(),
        }
        let r = Request::parse(r#"{"op":"observe","shard":"a","truth":0.8,"links":[[0,1,0.5]]}"#)
            .unwrap();
        match r {
            Request::Observe { truth, links, .. } => {
                assert_eq!(truth, 0.8);
                assert_eq!(links, vec![(NodeId(0), NodeId(1), 0.5)]);
            }
            _ => panic!(),
        }
        assert!(matches!(
            Request::parse(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        ));
        assert!(matches!(
            Request::parse(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
        assert!(Request::parse(r#"{"op":"nope"}"#).is_err());
        assert!(Request::parse("not json").is_err());
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"metrics\"}").unwrap();
        write_frame(&mut buf, "second").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "{\"op\":\"metrics\"}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "second");
        assert!(read_frame(&mut r).unwrap().is_none());
    }
}
