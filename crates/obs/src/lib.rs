//! `wsn-obs` — unified observability for the MLBS stack.
//!
//! Three primitives behind one [`Recorder`] handle:
//!
//! - **Counters / gauges** — `Arc<AtomicU64>` cells keyed by `&'static str`,
//!   suited to promoting `SearchStats`-style tallies to live metrics.
//! - **Histograms** — log-linear buckets (16 sub-buckets per octave) for
//!   wall-time and latency distributions with p50/p90/p99 extraction.
//! - **Spans / events** — a bounded ring buffer of timeline entries with
//!   per-thread ids, exportable as a Chrome trace of portfolio workers,
//!   restart kicks, and repair races.
//!
//! Instrumentation sites call the free functions ([`counter_add`],
//! [`observe_us`], [`span`], ...) which route to a process-global recorder
//! installed with [`install`]. Exporters: [`export::chrome_trace`] and
//! [`export::prometheus`].
//!
//! # DESIGN: the disabled-path cost model
//!
//! Instrumentation lives permanently in hot paths (the anytime driver's
//! pass loop, repair races, cache lookups), so the *disabled* cost is the
//! contract that matters:
//!
//! - Every free function begins with one `Relaxed` load of a static
//!   `AtomicBool` ([`enabled`]) and returns immediately when false. No
//!   lock, no TLS access, no allocation — a few nanoseconds, and the
//!   `#[inline]` early-return lets the branch predictor hide it entirely
//!   in loops.
//! - [`span`] returns an inert guard (`Span::none()`, a `None`-carrying
//!   struct) whose `Drop` does nothing; constructing it performs no
//!   timestamp read.
//! - Callers that need a wall-clock only when recording gate it on
//!   [`enabled`] (e.g. `enabled().then(Instant::now)`), keeping even the
//!   `clock_gettime` off the disabled path.
//! - The *enabled* path takes a short `RwLock` read to reach the global
//!   recorder, then one atomic RMW per metric; handle lookup is a
//!   `BTreeMap` read-lock probe. Events take a `Mutex` push into the ring.
//!   Instrumentation is therefore placed at pass/solve granularity, never
//!   per-move: the measured overhead budget is ≤ 10% on a 10k-node anytime
//!   solve (pinned in `BENCH_obs.json`).
//!
//! Recording must never influence behavior: no instrumentation site feeds
//! a value back into search decisions or RNG state, so enabled-vs-disabled
//! runs produce bit-identical schedules (property-tested in
//! `tests/proptest_obs.rs` at the workspace root).

pub mod export;
pub mod metrics;
pub mod spans;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use spans::{current_tid, EventKind, TraceEvent, DEFAULT_EVENT_CAPACITY};

use spans::EventRing;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

struct Shared {
    epoch: Instant,
    counters: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
    events: EventRing,
}

/// A cloneable handle to one observability domain: metric registries plus
/// an event ring sharing a common epoch. Cheap to clone (`Arc` bump); can
/// be used injected or installed process-globally via [`install`].
#[derive(Clone)]
pub struct Recorder {
    shared: Arc<Shared>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// `event_capacity` bounds the span/event ring; metrics are unbounded
    /// (one cell per distinct name).
    pub fn with_capacity(event_capacity: usize) -> Self {
        Recorder {
            shared: Arc::new(Shared {
                epoch: Instant::now(),
                counters: RwLock::new(BTreeMap::new()),
                gauges: RwLock::new(BTreeMap::new()),
                histograms: RwLock::new(BTreeMap::new()),
                events: EventRing::new(event_capacity),
            }),
        }
    }

    /// Microseconds since this recorder was created.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.shared.epoch.elapsed().as_micros() as u64
    }

    fn cell(
        map: &RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
        name: &'static str,
    ) -> Arc<AtomicU64> {
        if let Some(c) = map.read().unwrap().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            map.write()
                .unwrap()
                .entry(name)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Handle to a named counter (create-on-first-use).
    pub fn counter(&self, name: &'static str) -> Counter {
        Counter(Self::cell(&self.shared.counters, name))
    }

    /// Handle to a named gauge (create-on-first-use).
    pub fn gauge(&self, name: &'static str) -> Gauge {
        Gauge(Self::cell(&self.shared.gauges, name))
    }

    /// Handle to a named histogram (create-on-first-use).
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        if let Some(h) = self.shared.histograms.read().unwrap().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.shared
                .histograms
                .write()
                .unwrap()
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    pub fn add(&self, name: &'static str, v: u64) {
        self.counter(name).add(v);
    }

    pub fn set_gauge(&self, name: &'static str, v: i64) {
        self.gauge(name).set(v);
    }

    pub fn observe(&self, name: &'static str, v: u64) {
        self.histogram(name).record(v);
    }

    /// Record a point-in-time event with an optional payload.
    pub fn instant(&self, name: &'static str, value: Option<i64>) {
        self.shared.events.push(TraceEvent {
            name,
            tid: current_tid(),
            ts_us: self.now_us(),
            kind: EventKind::Instant,
            value,
        });
    }

    /// Start a span; the returned guard records a duration event on drop.
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            inner: Some(SpanInner {
                shared: Arc::clone(&self.shared),
                name,
                tid: current_tid(),
                start_us: self.now_us(),
                value: None,
            }),
        }
    }

    // ---- read side (exporters, tests, claims) ----

    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.shared
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
            .collect()
    }

    pub fn gauges_snapshot(&self) -> Vec<(String, i64)> {
        self.shared
            .gauges
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed) as i64))
            .collect()
    }

    pub fn histograms_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.shared
            .histograms
            .read()
            .unwrap()
            .iter()
            .map(|(k, h)| (k.to_string(), h.snapshot()))
            .collect()
    }

    /// Value of a counter, or 0 if it was never touched.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.shared
            .counters
            .read()
            .unwrap()
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Snapshot of a single histogram, if it exists.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        self.shared
            .histograms
            .read()
            .unwrap()
            .get(name)
            .map(|h| h.snapshot())
    }

    pub fn events_snapshot(&self) -> Vec<TraceEvent> {
        self.shared.events.snapshot()
    }

    pub fn dropped_events(&self) -> u64 {
        self.shared.events.dropped()
    }

    /// Clear all metrics and events (epoch is preserved).
    pub fn reset(&self) {
        for c in self.shared.counters.read().unwrap().values() {
            c.store(0, Ordering::Relaxed);
        }
        for g in self.shared.gauges.read().unwrap().values() {
            g.store(0, Ordering::Relaxed);
        }
        self.shared.histograms.write().unwrap().clear();
        self.shared.events.clear();
    }
}

struct SpanInner {
    shared: Arc<Shared>,
    name: &'static str,
    tid: u32,
    start_us: u64,
    value: Option<i64>,
}

/// RAII span guard: records a [`EventKind::Span`] on drop. The disabled
/// path hands out an inert guard whose drop is a no-op.
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// An inert guard (what every span site gets when recording is off).
    #[inline]
    pub fn none() -> Span {
        Span { inner: None }
    }

    /// Attach a payload reported with the span's close event.
    #[inline]
    pub fn set_value(&mut self, v: i64) {
        if let Some(i) = self.inner.as_mut() {
            i.value = Some(v);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(i) = self.inner.take() {
            let end = i.shared.epoch.elapsed().as_micros() as u64;
            i.shared.events.push(TraceEvent {
                name: i.name,
                tid: i.tid,
                ts_us: i.start_us,
                kind: EventKind::Span {
                    dur_us: end.saturating_sub(i.start_us),
                },
                value: i.value,
            });
        }
    }
}

// ---- process-global recorder ----

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: RwLock<Option<Recorder>> = RwLock::new(None);

/// Whether a global recorder is installed and active. One `Relaxed` atomic
/// load — this is the entire disabled-path cost of every free function.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install `rec` as the process-global recorder and enable recording.
/// Replaces (and returns) any previously installed recorder.
pub fn install(rec: Recorder) -> Option<Recorder> {
    let prev = GLOBAL.write().unwrap().replace(rec);
    ENABLED.store(true, Ordering::Release);
    prev
}

/// Disable recording and remove the global recorder, returning it so its
/// contents can still be exported.
pub fn uninstall() -> Option<Recorder> {
    ENABLED.store(false, Ordering::Release);
    GLOBAL.write().unwrap().take()
}

/// Clone of the installed global recorder, if any.
pub fn global() -> Option<Recorder> {
    GLOBAL.read().unwrap().clone()
}

#[inline]
fn with<F: FnOnce(&Recorder)>(f: F) {
    if let Some(rec) = GLOBAL.read().unwrap().as_ref() {
        f(rec);
    }
}

/// Add `v` to the named global counter (no-op when disabled).
#[inline]
pub fn counter_add(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with(|r| r.add(name, v));
}

/// Set the named global gauge (no-op when disabled).
#[inline]
pub fn gauge_set(name: &'static str, v: i64) {
    if !enabled() {
        return;
    }
    with(|r| r.set_gauge(name, v));
}

/// Record `v` (conventionally microseconds) into the named global
/// histogram (no-op when disabled).
#[inline]
pub fn observe_us(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with(|r| r.observe(name, v));
}

/// Record a point-in-time event (no-op when disabled).
#[inline]
pub fn event(name: &'static str) {
    if !enabled() {
        return;
    }
    with(|r| r.instant(name, None));
}

/// Record a point-in-time event with payload (no-op when disabled).
#[inline]
pub fn event_value(name: &'static str, v: i64) {
    if !enabled() {
        return;
    }
    with(|r| r.instant(name, Some(v)));
}

/// Open a span against the global recorder; inert guard when disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span::none();
    }
    match GLOBAL.read().unwrap().as_ref() {
        Some(r) => r.span(name),
        None => Span::none(),
    }
}

/// [`span`] with an initial payload value.
#[inline]
pub fn span_value(name: &'static str, v: i64) -> Span {
    let mut s = span(name);
    s.set_value(v);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injected_recorder_counts_and_observes() {
        let rec = Recorder::new();
        rec.add("t.counter", 3);
        rec.add("t.counter", 4);
        rec.set_gauge("t.gauge", -5);
        rec.observe("t.hist_us", 100);
        rec.observe("t.hist_us", 200);
        assert_eq!(rec.counter_value("t.counter"), 7);
        assert_eq!(rec.gauge("t.gauge").get(), -5);
        let h = rec.histogram_snapshot("t.hist_us").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 300);
    }

    #[test]
    fn spans_record_durations_and_values() {
        let rec = Recorder::new();
        {
            let mut s = rec.span("t.outer");
            s.set_value(42);
            let _inner = rec.span("t.inner");
        }
        rec.instant("t.marker", Some(7));
        let evs = rec.events_snapshot();
        assert_eq!(evs.len(), 3);
        // inner drops first, then outer, then the instant.
        assert_eq!(evs[0].name, "t.inner");
        assert_eq!(evs[1].name, "t.outer");
        assert_eq!(evs[1].value, Some(42));
        assert!(matches!(evs[2].kind, EventKind::Instant));
        let (outer_ts, outer_dur) = match evs[1].kind {
            EventKind::Span { dur_us } => (evs[1].ts_us, dur_us),
            _ => panic!("expected span"),
        };
        let (inner_ts, inner_dur) = match evs[0].kind {
            EventKind::Span { dur_us } => (evs[0].ts_us, dur_us),
            _ => panic!("expected span"),
        };
        // Strict nesting: inner within [outer_ts, outer_ts + outer_dur].
        assert!(inner_ts >= outer_ts);
        assert!(inner_ts + inner_dur <= outer_ts + outer_dur);
    }

    #[test]
    fn disabled_free_functions_are_inert() {
        // No global recorder installed in this test binary by default.
        assert!(!enabled() || global().is_some());
        counter_add("t.noop", 1);
        let _s = span("t.noop_span");
        // Nothing to assert beyond "did not panic": behavior invariance is
        // covered by the workspace-level proptest.
    }

    #[test]
    fn exporters_render_all_families() {
        let rec = Recorder::new();
        rec.add("fam.counter", 2);
        rec.set_gauge("fam.gauge", 9);
        rec.observe("fam.lat_us", 1234);
        drop(rec.span("fam.span"));
        rec.instant("fam.mark", None);

        let prom = export::prometheus(&rec);
        assert!(prom.contains("# TYPE fam_counter_total counter"));
        assert!(prom.contains("fam_counter_total 2"));
        assert!(prom.contains("fam_gauge 9"));
        assert!(prom.contains("# TYPE fam_lat_us histogram"));
        assert!(prom.contains("fam_lat_us_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("fam_lat_us_count 1"));

        let chrome = export::chrome_trace(&rec);
        export::validate_json(&chrome).expect("chrome trace is valid JSON");
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(chrome.contains("\"droppedEvents\":0"));
    }
}
