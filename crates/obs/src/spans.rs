//! Span/event timeline: a bounded, thread-safe ring buffer of trace events.
//!
//! Events carry a `&'static str` name (no allocation on the record path), a
//! per-thread id handed out lazily, and microsecond timestamps relative to
//! the recorder's epoch. When the ring is full the oldest event is dropped
//! and a counter incremented, so long runs degrade gracefully instead of
//! growing without bound.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Default ring capacity; ~65k events is a few MB and plenty for a full
/// portfolio run at pass-level granularity.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// What a [`TraceEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A duration: the event's `ts_us` is the start, `dur_us` the length.
    Span { dur_us: u64 },
    /// A point-in-time marker.
    Instant,
}

/// One entry in the timeline.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub name: &'static str,
    /// Lazily assigned per-thread id (stable within a process run).
    pub tid: u32,
    /// Microseconds since the recorder's epoch.
    pub ts_us: u64,
    pub kind: EventKind,
    /// Optional payload (e.g. the incumbent latency at an exchange event).
    pub value: Option<i64>,
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static TID: Cell<u32> = const { Cell::new(0) };
}

/// The calling thread's trace id, assigned on first use.
#[inline]
pub fn current_tid() -> u32 {
    TID.with(|c| {
        let v = c.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    })
}

pub(crate) struct EventRing {
    buf: Mutex<VecDeque<TraceEvent>>,
    cap: usize,
    dropped: AtomicU64,
}

impl EventRing {
    pub(crate) fn new(cap: usize) -> Self {
        EventRing {
            buf: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
            cap: cap.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn push(&self, ev: TraceEvent) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() >= self.cap {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(ev);
    }

    pub(crate) fn snapshot(&self) -> Vec<TraceEvent> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub(crate) fn clear(&self) {
        self.buf.lock().unwrap().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_past_capacity() {
        let ring = EventRing::new(4);
        for i in 0..6 {
            ring.push(TraceEvent {
                name: "e",
                tid: 1,
                ts_us: i,
                kind: EventKind::Instant,
                value: None,
            });
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].ts_us, 2);
        assert_eq!(snap[3].ts_us, 5);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn tids_are_stable_within_a_thread() {
        let a = current_tid();
        let b = current_tid();
        assert_eq!(a, b);
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(a, other);
    }
}
