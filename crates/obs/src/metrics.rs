//! Atomic counters, gauges, and log-linear histograms.
//!
//! All metric state is lock-free on the record path: a handle is an
//! `Arc<AtomicU64>` (counters/gauges) or an `Arc<Histogram>` whose buckets
//! are plain `AtomicU64`s. Handle lookup by name takes a short-lived
//! read lock on a `BTreeMap`; hot paths should cache the handle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(pub(crate) Arc<AtomicU64>);

impl Counter {
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge storing an `i64` (bit-cast into the atomic).
#[derive(Clone)]
pub struct Gauge(pub(crate) Arc<AtomicU64>);

impl Gauge {
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v as u64, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed) as i64
    }
}

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per octave, giving a
/// worst-case relative quantile error of 1/16 ≈ 6.25%.
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS; // 16

/// Values `< 2 * SUBS` (= 32) get exact unit buckets; above that, each octave
/// `[2^e, 2^(e+1))` for `e in 5..=63` splits into 16 sub-buckets.
const EXACT: usize = 2 * SUBS; // 32
const NBUCKETS: usize = EXACT + (64 - SUB_BITS as usize - 1) * SUBS; // 32 + 59*16 = 976

/// Log-linear-bucket histogram of `u64` samples (typically microseconds).
///
/// Recording is one atomic increment plus three (`sum`, `min`, `max`)
/// relaxed RMW ops; no allocation, no locks.
pub struct Histogram {
    buckets: Box<[AtomicU64; NBUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < EXACT as u64 {
        v as usize
    } else {
        // exp >= 5 because v >= 32.
        let exp = 63 - v.leading_zeros();
        let sub = ((v >> (exp - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        EXACT + (exp as usize - SUB_BITS as usize - 1) * SUBS + sub
    }
}

/// Lower bound (representative value) of bucket `i` — inverse of
/// [`bucket_index`] at bucket granularity.
fn bucket_floor(i: usize) -> u64 {
    if i < EXACT {
        i as u64
    } else {
        let rel = i - EXACT;
        let exp = (rel / SUBS) as u32 + SUB_BITS + 1;
        let sub = (rel % SUBS) as u64;
        (1u64 << exp) + (sub << (exp - SUB_BITS))
    }
}

impl Histogram {
    pub(crate) fn new() -> Self {
        // Box<[AtomicU64; N]> without unstable array-of-atomics init helpers.
        let v: Vec<AtomicU64> = (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NBUCKETS]> =
            v.into_boxed_slice().try_into().expect("bucket count");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile extraction.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile `q in [0, 1]` via cumulative bucket walk; returns the lower
    /// bound of the bucket containing the `ceil(q * count)`-th sample,
    /// clamped to the observed `[min, max]` range.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(upper_bound_exclusive, cumulative_count)` pairs
    /// — the shape Prometheus `le` buckets want. The final pair is implicit
    /// `(+Inf, count)` and is not included.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            let upper = if i + 1 < NBUCKETS {
                bucket_floor(i + 1)
            } else {
                u64::MAX
            };
            out.push((upper, cum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_below_32() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
        }
    }

    #[test]
    fn floor_is_left_inverse_of_index() {
        for &v in &[
            32u64,
            33,
            47,
            48,
            63,
            64,
            100,
            1_000,
            65_535,
            1 << 40,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            let floor = bucket_floor(i);
            assert!(floor <= v, "floor({i}) = {floor} > {v}");
            assert_eq!(bucket_index(floor), i, "floor not in same bucket for {v}");
            // Relative bucket width bound: floor >= v * 15/16 - 1.
            assert!(floor as f64 >= v as f64 * (1.0 - 1.0 / SUBS as f64) - 1.0);
        }
    }

    #[test]
    fn buckets_are_monotone() {
        let mut prev = 0u64;
        for i in 1..NBUCKETS {
            let f = bucket_floor(i);
            assert!(f > prev, "bucket {i}: {f} <= {prev}");
            prev = f;
        }
    }

    #[test]
    fn quantiles_on_uniform_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 1000);
        let p50 = s.p50();
        let p99 = s.p99();
        // 6.25% bucket error plus floor-representative bias.
        assert!((440..=500).contains(&p50), "p50 = {p50}");
        assert!((920..=990).contains(&p99), "p99 = {p99}");
        assert!(s.mean() > 499.0 && s.mean() < 502.0);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
