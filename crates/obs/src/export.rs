//! Exporters: Chrome trace-event JSON and Prometheus text exposition.
//!
//! Both are produced by string formatting only — no serde, matching the
//! workspace's registry-free constraint. A small recursive-descent
//! [`validate_json`] is provided so tests (and the claims binary) can check
//! the Chrome export without external parsers.

use crate::spans::EventKind;
use crate::Recorder;
use std::fmt::Write as _;

/// Metric names are dotted (`portfolio.restarts`); Prometheus wants
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, so dots (and any other stray byte) become
/// underscores.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Chrome trace-event JSON (the "JSON array format" wrapped in an object
/// with `traceEvents`), loadable in `chrome://tracing` / Perfetto.
///
/// Spans become `ph: "X"` complete events; instants become thread-scoped
/// `ph: "i"` markers. The event's optional payload lands in `args.value`.
pub fn chrome_trace(rec: &Recorder) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for ev in rec.events_snapshot() {
        if !first {
            out.push(',');
        }
        first = false;
        let name = escape_json(ev.name);
        let args = match ev.value {
            Some(v) => format!("{{\"value\":{v}}}"),
            None => "{}".to_string(),
        };
        match ev.kind {
            EventKind::Span { dur_us } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{args}}}",
                    ev.tid, ev.ts_us, dur_us
                );
            }
            EventKind::Instant => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{args}}}",
                    ev.tid, ev.ts_us
                );
            }
        }
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"droppedEvents\":{}}}}}",
        rec.dropped_events()
    );
    out
}

/// Prometheus text exposition (version 0.0.4): counters as `<name>_total`,
/// gauges bare, histograms as `_bucket{le=...}` / `_sum` / `_count`
/// families. Histogram names keep their recorded unit suffix (we record
/// microseconds throughout, e.g. `repair.warm_us`).
pub fn prometheus(rec: &Recorder) -> String {
    let mut out = String::new();
    for (name, v) in rec.counters_snapshot() {
        let n = sanitize(&name);
        let _ = writeln!(out, "# TYPE {n}_total counter");
        let _ = writeln!(out, "{n}_total {v}");
    }
    for (name, v) in rec.gauges_snapshot() {
        let n = sanitize(&name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, snap) in rec.histograms_snapshot() {
        let n = sanitize(&name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        for (upper, cum) in snap.cumulative_buckets() {
            let _ = writeln!(out, "{n}_bucket{{le=\"{upper}\"}} {cum}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", snap.count);
        let _ = writeln!(out, "{n}_sum {}", snap.sum);
        let _ = writeln!(out, "{n}_count {}", snap.count);
    }
    out
}

/// Minimal JSON validator (objects, arrays, strings, numbers, literals).
/// Returns `Err` with a byte offset + message on the first syntax error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing garbage at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<(), String> {
    if *i >= b.len() {
        return Err(format!("unexpected end at byte {i}"));
    }
    match b[*i] {
        b'{' => parse_object(b, i),
        b'[' => parse_array(b, i),
        b'"' => parse_string(b, i),
        b't' => parse_lit(b, i, b"true"),
        b'f' => parse_lit(b, i, b"false"),
        b'n' => parse_lit(b, i, b"null"),
        b'-' | b'0'..=b'9' => parse_number(b, i),
        c => Err(format!("unexpected byte {c:#x} at {i}")),
    }
}

fn parse_object(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '{'
    skip_ws(b, i);
    if *i < b.len() && b[*i] == b'}' {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        if *i >= b.len() || b[*i] != b'"' {
            return Err(format!("expected object key at byte {i}"));
        }
        parse_string(b, i)?;
        skip_ws(b, i);
        if *i >= b.len() || b[*i] != b':' {
            return Err(format!("expected ':' at byte {i}"));
        }
        *i += 1;
        skip_ws(b, i);
        parse_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {i}")),
        }
    }
}

fn parse_array(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '['
    skip_ws(b, i);
    if *i < b.len() && b[*i] == b']' {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        parse_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {i}")),
        }
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '"'
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        if *i + 4 >= b.len() || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {i}"));
                        }
                        *i += 5;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b[*i] == b'-' {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while *i < b.len() && b[*i].is_ascii_digit() {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err(format!("bad number at byte {start}"));
    }
    if *i < b.len() && b[*i] == b'.' {
        *i += 1;
        if !digits(b, i) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if *i < b.len() && matches!(b[*i], b'e' | b'E') {
        *i += 1;
        if *i < b.len() && matches!(b[*i], b'+' | b'-') {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *i + lit.len() && &b[*i..*i + lit.len()] == lit {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_good_json() {
        for s in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "\"a\\u00e9b\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":true}",
        ] {
            assert!(validate_json(s).is_ok(), "{s}");
        }
    }

    #[test]
    fn validator_rejects_bad_json() {
        for s in [
            "{",
            "[1,]",
            "{\"a\":}",
            "01x",
            "\"unterminated",
            "{}extra",
            "",
        ] {
            assert!(validate_json(s).is_err(), "{s}");
        }
    }

    #[test]
    fn sanitize_prometheus_names() {
        assert_eq!(sanitize("repair.warm_us"), "repair_warm_us");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("a-b c"), "a_b_c");
    }
}
