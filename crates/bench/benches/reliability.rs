//! Reliability-tier benches: ε-reliability planning cost on top of the
//! anytime tier, and incremental repair after node death. Doubles as the
//! CI smoke (`--test`): the setup asserts the planned schedule verifies
//! under the conflict model with every delivery bound at `1 − ε`, and
//! that targeted repeat allocation beats blind uniform retransmission on
//! mean lossy-replay coverage at the *same* slot budget — the whole point
//! of planning repeats against link quality instead of spreading them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlbs_core::Schedule;
use std::hint::black_box;
use wsn_anytime::{reschedule, solve_anytime_reliable, AnytimeConfig, Budget, ChurnDelta};
use wsn_dutycycle::AlwaysAwake;
use wsn_geom::Point;
use wsn_phy::ProtocolModel;
use wsn_sim::mean_coverage_quality;
use wsn_topology::deploy::SyntheticDeployment;
use wsn_topology::{LinkQuality, LinkQualityParams, NodeId, Topology};

const EPSILON: f64 = 0.01;
const TRIALS: usize = 24;

fn budget(iters: u64) -> AnytimeConfig {
    AnytimeConfig {
        budget: Budget::Iterations(iters),
        ..AnytimeConfig::default()
    }
}

/// Sparse scaled deployment with the default heterogeneous quality law —
/// the repair-bench instance.
fn instance(nodes: usize) -> (Topology, NodeId, LinkQuality) {
    let (topo, src) = SyntheticDeployment::scaled(nodes).sample(3);
    let quality = LinkQuality::synthetic(&topo, &LinkQualityParams::default(), 11);
    (topo, src, quality)
}

/// A multihop corridor: `n` nodes on a line, radius strictly between one
/// and two hop spacings, so every node has exactly one serving path and
/// no overhearing. Most hops are clean; every 13th carries 50% loss.
/// This is the structural case for *targeted* retransmission — in random
/// dense deployments, alternate senders and later-entry deliveries let a
/// uniform spread coast, but on a corridor a under-provisioned flaky hop
/// strands the whole downstream suffix.
fn corridor(n: usize) -> (Topology, NodeId, LinkQuality) {
    let points = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
    let topo = Topology::unit_disk(points, 1.2);
    let mut quality = LinkQuality::uniform(&topo, 0.98);
    for i in 0..n - 1 {
        if i % 13 == 6 {
            quality.set_delivery(&topo, NodeId(i as u32), NodeId(i as u32 + 1), 0.5);
        }
    }
    (topo, NodeId(0), quality)
}

/// The naive "schedule then retransmit blindly" baseline: same entries,
/// the same total slot budget spread uniformly (remainder to the
/// earliest entries).
fn blind_spread(lossless: &Schedule, slot_budget: u64) -> Schedule {
    let entries = lossless.entries.len() as u64;
    let mut blind = lossless.clone();
    let base = (slot_budget / entries) as u32;
    let extra = (slot_budget % entries) as usize;
    blind.repeats = (0..lossless.entries.len())
        .map(|i| base + u32::from(i < extra))
        .collect();
    blind
}

fn bench_reliable_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("reliability_plan");
    group.sample_size(10);
    for nodes in [52usize, 104] {
        let (topo, src, quality) = corridor(nodes);
        let cfg = budget(2_000);
        let out = solve_anytime_reliable(
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &quality,
            EPSILON,
            &cfg,
        );
        // CI smoke: the plan must meet its own bound and verify end to end
        // under the conflict model.
        assert!(out.meets_target, "ε-plan must reach the 1 − ε bound");
        let report = out
            .schedule
            .verify_reliability(&topo, &AlwaysAwake, &ProtocolModel, &quality, EPSILON)
            .expect("planned schedule must verify with reliability");
        assert!(report.min_delivery >= 1.0 - EPSILON);
        // CI smoke: targeted repeats beat a blind uniform spread of the
        // same budget on empirical lossy coverage.
        let blind = blind_spread(&out.base.schedule, out.schedule.slot_budget());
        let cov_plan = mean_coverage_quality(&topo, &out.schedule, &quality, TRIALS, 5);
        let cov_blind = mean_coverage_quality(&topo, &blind, &quality, TRIALS, 5);
        assert!(
            cov_plan > cov_blind,
            "ε-plan ({cov_plan:.4}) must beat blind retransmission ({cov_blind:.4}) \
             at equal slot budget ({})",
            out.schedule.slot_budget()
        );
        group.bench_with_input(
            BenchmarkId::new(
                format!("n{nodes}(budget={})", out.schedule.slot_budget()),
                nodes,
            ),
            &nodes,
            |b, _| {
                b.iter(|| {
                    solve_anytime_reliable(
                        black_box(&topo),
                        src,
                        &AlwaysAwake,
                        &ProtocolModel,
                        &quality,
                        EPSILON,
                        &cfg,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("reliability_repair");
    group.sample_size(10);
    for nodes in [200usize, 400] {
        let (topo, src, _quality) = instance(nodes);
        let cfg = budget(2_000);
        let base = wsn_anytime::solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg);
        let victim = base
            .schedule
            .entries
            .iter()
            .flat_map(|e| e.senders.iter().copied())
            .find(|&u| u != src)
            .expect("schedule must have a non-source sender");
        let delta = ChurnDelta::deaths([victim]);
        let repair_cfg = budget(0);
        let repaired = reschedule(
            &topo,
            src,
            &AlwaysAwake,
            &ProtocolModel,
            &base.schedule,
            &delta,
            &repair_cfg,
        );
        // CI smoke: repair emits a valid schedule over the survivors.
        repaired
            .outcome
            .schedule
            .verify_covering_with_model(&topo, &AlwaysAwake, &ProtocolModel, Some(&repaired.mask))
            .expect("repaired schedule must verify over the survivors");
        group.bench_with_input(BenchmarkId::new("node_death", nodes), &nodes, |b, _| {
            b.iter(|| {
                reschedule(
                    black_box(&topo),
                    src,
                    &AlwaysAwake,
                    &ProtocolModel,
                    &base.schedule,
                    &delta,
                    &repair_cfg,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reliable_plan, bench_repair);
criterion_main!(benches);
