//! Parallel-engine benches: parallel vs serial unit-disk construction,
//! parallel conflict full builds, and portfolio anytime search across
//! thread counts. Doubles as the CI smoke (`--test`): every setup asserts
//! the parallel path is bit-identical to the serial one (construction) or
//! never worse (portfolio under an iteration budget), independent of how
//! many cores the machine actually has.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_anytime::{solve_anytime, AnytimeConfig, Budget, Portfolio};
use wsn_bitset::NodeSet;
use wsn_dutycycle::AlwaysAwake;
use wsn_interference::ConflictGraphBuilder;
use wsn_phy::ProtocolModel;
use wsn_topology::deploy::SyntheticDeployment;
use wsn_topology::{NodeId, Topology};

fn bench_parallel_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_unit_disk");
    group.sample_size(10);
    for nodes in [5_000usize, 20_000] {
        let (topo, _) = SyntheticDeployment::scaled(nodes).sample(3);
        let positions = topo.positions().to_vec();
        let radius = topo.radius();
        // CI smoke: bit-identity against the serial build.
        let serial = Topology::unit_disk(positions.clone(), radius);
        for threads in [1usize, 4] {
            let par = Topology::unit_disk_parallel(positions.clone(), radius, threads);
            assert_eq!(
                par.csr(),
                serial.csr(),
                "threads {threads}: adjacency drifted"
            );
            group.bench_with_input(
                BenchmarkId::new(format!("n{nodes}"), threads),
                &threads,
                |b, &t| {
                    b.iter(|| Topology::unit_disk_parallel(black_box(positions.clone()), radius, t))
                },
            );
        }
    }
    group.finish();
}

fn bench_parallel_conflict_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_conflict_build");
    group.sample_size(10);
    for nodes in [5_000usize, 20_000] {
        let (topo, src) = SyntheticDeployment::scaled(nodes).sample(3);
        let ids: Vec<NodeId> = (0..topo.len() as u32).map(NodeId).collect();
        let mut unf = NodeSet::full(topo.len());
        unf.remove(src.idx());
        // CI smoke: the threaded full build matches the serial one.
        let mut serial = ConflictGraphBuilder::new();
        serial.update_with(&ProtocolModel, &topo, &ids, &unf);
        let mut par = ConflictGraphBuilder::new();
        par.set_build_threads(4);
        let pg = par.update_with(&ProtocolModel, &topo, &ids, &unf);
        let sg = serial.graph();
        assert_eq!(pg.len(), sg.len());
        for i in 0..pg.len() {
            assert_eq!(pg.row(i), sg.row(i), "n={nodes}: conflict row {i} drifted");
        }
        for threads in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("n{nodes}"), threads),
                &threads,
                |b, &t| {
                    b.iter(|| {
                        let mut builder = ConflictGraphBuilder::new();
                        builder.set_build_threads(t);
                        builder.update_with(&ProtocolModel, black_box(&topo), &ids, &unf);
                        builder.graph().len()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_portfolio(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio_search");
    group.sample_size(10);
    let (topo, src) = SyntheticDeployment::scaled(2_000).sample(3);
    let cfg = AnytimeConfig {
        budget: Budget::Iterations(5_000),
        ..AnytimeConfig::default()
    };
    let serial = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg);
    for threads in [1usize, 2, 4] {
        let port = Portfolio::with_config(cfg.clone(), threads);
        let out = port.solve(&topo, src, &AlwaysAwake, &ProtocolModel);
        // CI smoke: the portfolio contract — valid schedules that never
        // lose to the serial chain under the same iteration budget.
        out.schedule.verify(&topo, &AlwaysAwake).unwrap();
        assert!(
            out.latency <= serial.latency,
            "threads {threads}: portfolio ({}) lost to serial ({})",
            out.latency,
            serial.latency
        );
        group.bench_with_input(
            BenchmarkId::new(format!("n2000(P={})", out.latency), threads),
            &threads,
            |b, _| b.iter(|| port.solve(black_box(&topo), src, &AlwaysAwake, &ProtocolModel)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_construction,
    bench_parallel_conflict_build,
    bench_portfolio
);
criterion_main!(benches);
