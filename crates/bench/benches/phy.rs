//! Conflict-model benchmarks: the pluggable `wsn-phy` layer.
//!
//! Two angles: (1) the incremental conflict builder under the pairwise
//! SINR model vs the protocol model — SINR pair tests cost gain
//! arithmetic, so the cached witness sets are what keep the delta path
//! cheap; (2) the multi-channel searches — how much latency K channels
//! buy at search time.
//!
//! In `--test` mode (the CI smoke) every routine runs once and asserts
//! the model layer actually engaged: the SINR graphs differ from protocol
//! graphs (capture relaxes conflicts), degenerate SINR reproduces them
//! exactly, and the K-channel search emits channel assignments that
//! verify under the multi-channel model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlbs_core::{solve_gopt_model, BroadcastState, SearchConfig};
use std::hint::black_box;
use wsn_bitset::NodeSet;
use wsn_coloring::eligible_senders;
use wsn_dutycycle::AlwaysAwake;
use wsn_interference::ConflictGraphBuilder;
use wsn_phy::{ConflictModel, MultiChannel, ProtocolModel, SinrModel, SinrParams};
use wsn_topology::{deploy::SyntheticDeployment, NodeId, Topology};

/// A shrink-heavy `(candidates, uninformed)` walk near the broadcast
/// frontier of a seeded paper instance.
fn frontier_walk(topo: &Topology, src: NodeId) -> (Vec<NodeId>, Vec<NodeSet>) {
    let n = topo.len();
    let hops = wsn_topology::metrics::bfs_hops(topo, src);
    let informed = NodeSet::from_indices(n, (0..n).filter(|&u| hops[u] <= 2));
    let cands = eligible_senders(topo, &informed);
    let mut unf = informed.complement();
    let mut walk = Vec::new();
    let frontier: Vec<usize> = (0..n).filter(|&u| hops[u] == 3).collect();
    for &d in frontier.iter().take(24) {
        unf.remove(d);
        walk.push(unf.clone());
    }
    (cands, walk)
}

fn bench_model_builders(c: &mut Criterion) {
    let mut group = c.benchmark_group("phy_builder");
    let (topo, src) = SyntheticDeployment::paper(300).sample(2);
    let (cands, walk) = frontier_walk(&topo, src);
    let protocol = ProtocolModel;
    let sinr = SinrModel::new(SinrParams::calibrated(topo.radius(), 3.0, 1.5), &topo);

    // Smoke contract: the SINR regime actually differs from the protocol
    // regime on this instance (capture drops edges somewhere), so the
    // benchmark compares two *different* workloads knowingly.
    let mut bp = ConflictGraphBuilder::new();
    let mut bs = ConflictGraphBuilder::new();
    let gp = bp.update_with(&protocol, &topo, &cands, &walk[0]);
    let gs = bs.update_with(&sinr, &topo, &cands, &walk[0]);
    let differs = (0..gp.len()).any(|i| gp.row(i) != gs.row(i));
    assert!(
        differs,
        "calibrated SINR should relax some protocol conflict on a 300-node instance"
    );
    // And the degenerate parameters reproduce protocol edge-for-edge.
    let degen = SinrModel::new(SinrParams::degenerate(&topo, 4.0), &topo);
    let mut bd = ConflictGraphBuilder::new();
    let gd = bd.update_with(&degen, &topo, &cands, &walk[0]);
    let gp2 = ConflictGraphBuilder::new()
        .update_with(&protocol, &topo, &cands, &walk[0])
        .clone();
    for i in 0..gp2.len() {
        assert_eq!(gp2.row(i), gd.row(i), "degenerate SINR drifted at row {i}");
    }

    for (label, model) in [("protocol", &protocol as &dyn Bench), ("sinr", &sinr)] {
        group.bench_with_input(BenchmarkId::new(label, 300), &300, |b, _| {
            b.iter(|| {
                let mut builder = ConflictGraphBuilder::new();
                builder.reset(topo.len());
                for unf in &walk {
                    model.update(&mut builder, &topo, &cands, black_box(unf));
                }
            })
        });
    }
    group.finish();
}

/// Object-safe shim so the bench loop can hold models of two types.
trait Bench {
    fn update(
        &self,
        b: &mut ConflictGraphBuilder,
        topo: &Topology,
        cands: &[NodeId],
        unf: &NodeSet,
    );
}

impl Bench for ProtocolModel {
    fn update(
        &self,
        b: &mut ConflictGraphBuilder,
        topo: &Topology,
        cands: &[NodeId],
        unf: &NodeSet,
    ) {
        b.update_with(self, topo, cands, unf);
    }
}

impl Bench for SinrModel {
    fn update(
        &self,
        b: &mut ConflictGraphBuilder,
        topo: &Topology,
        cands: &[NodeId],
        unf: &NodeSet,
    ) {
        b.update_with(self, topo, cands, unf);
    }
}

fn bench_multichannel_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("phy_multichannel");
    group.sample_size(10);
    let (topo, src) = SyntheticDeployment::paper(100).sample(0);
    let cfg = SearchConfig::default();
    for k in [1u32, 4] {
        let model = MultiChannel::new(ProtocolModel, k);
        group.bench_with_input(BenchmarkId::new("gopt", k), &k, |b, _| {
            let mut substrate = BroadcastState::new();
            b.iter(|| {
                let out = solve_gopt_model(
                    black_box(&topo),
                    src,
                    &AlwaysAwake,
                    &model,
                    &cfg,
                    &mut substrate,
                );
                // Smoke contract: K-channel schedules verify under their
                // model and actually use the extra channels.
                out.schedule
                    .verify_with_model(&topo, &AlwaysAwake, &model)
                    .expect("K-channel schedule must verify");
                if model.channels() > 1 {
                    assert!(
                        out.schedule
                            .entries
                            .iter()
                            .any(|e| e.channels.iter().any(|&ch| ch > 0)),
                        "no slot ever packed a second channel"
                    );
                }
                out.latency
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_builders, bench_multichannel_search);
criterion_main!(benches);
