//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each group isolates one ingredient of the paper's contribution and
//! reports the *latency* impact (encoded in the benchmark name output via
//! eprintln on first run) as well as the wall-time cost:
//!
//! * `barrier_vs_pipeline` — the paper's key idea: removing the BFS layer
//!   barrier (26-approx → greedy pipeline) vs adding global awareness on
//!   top (E-model, G-OPT);
//! * `coloring_staleness` — FixedColors vs Recolor layered baselines:
//!   how much of the baseline's loss is stale coloring rather than the
//!   barrier itself;
//! * `opt_beam_width` — OPT branch-cap sensitivity: latency found vs beam
//!   width (exactness ablation for the DESIGN.md beam substitution).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlbs_core::{solve_opt, SearchConfig};
use std::hint::black_box;
use wsn_dutycycle::AlwaysAwake;
use wsn_sim::{run_instance, Algorithm, Regime};
use wsn_topology::deploy::SyntheticDeployment;

fn bench_barrier_vs_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_vs_pipeline");
    group.sample_size(10);
    let (topo, src) = SyntheticDeployment::paper(200).sample(5);
    let cfg = SearchConfig::default();
    for alg in [
        Algorithm::Layered,        // barrier + stale colors
        Algorithm::LayeredRecolor, // barrier only
        Algorithm::GreedyPipeline, // no barrier, naive selection
        Algorithm::EModelPipeline, // no barrier, E-model selection
        Algorithm::GOpt,           // no barrier, exact selection
    ] {
        let latency = run_instance(&topo, src, Regime::Sync, alg, 7, &cfg).latency;
        group.bench_function(format!("{alg:?}(P={latency})"), |b| {
            b.iter(|| run_instance(black_box(&topo), src, Regime::Sync, alg, 7, &cfg))
        });
    }
    group.finish();
}

fn bench_coloring_staleness(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring_staleness");
    group.sample_size(10);
    let cfg = SearchConfig::default();
    for nodes in [100usize, 300] {
        let (topo, src) = SyntheticDeployment::paper(nodes).sample(6);
        for alg in [
            Algorithm::Layered,
            Algorithm::LayeredRecolor,
            Algorithm::CdsLayered,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{alg:?}"), nodes),
                &nodes,
                |b, _| b.iter(|| run_instance(black_box(&topo), src, Regime::Sync, alg, 7, &cfg)),
            );
        }
    }
    group.finish();
}

fn bench_emodel_directionality(c: &mut Criterion) {
    // DESIGN.md ablation: the 4-tuple (directional, Eq. 10) vs a scalar
    // distance-to-edge estimate. Latencies are embedded in the bench names;
    // wall time compares the two constructions + pipeline runs.
    use mlbs_core::{
        run_pipeline, EModel, EModelSelector, PipelineConfig, ScalarESelector, ScalarEdgeDistance,
    };
    let mut group = c.benchmark_group("emodel_directionality");
    group.sample_size(10);
    let (topo, src) = SyntheticDeployment::paper(200).sample(9);
    let em = EModel::build(&topo, &AlwaysAwake);
    let scalar = ScalarEdgeDistance::build(&topo, &AlwaysAwake);
    let dir_latency = run_pipeline(
        &topo,
        src,
        &AlwaysAwake,
        &mut EModelSelector::new(&em),
        &PipelineConfig::default(),
    )
    .latency();
    let flat_latency = run_pipeline(
        &topo,
        src,
        &AlwaysAwake,
        &mut ScalarESelector::new(&scalar),
        &PipelineConfig::default(),
    )
    .latency();
    group.bench_function(format!("directional_4tuple(P={dir_latency})"), |b| {
        b.iter(|| {
            let em = EModel::build(black_box(&topo), &AlwaysAwake);
            run_pipeline(
                &topo,
                src,
                &AlwaysAwake,
                &mut EModelSelector::new(&em),
                &PipelineConfig::default(),
            )
        })
    });
    group.bench_function(format!("scalar_distance(P={flat_latency})"), |b| {
        b.iter(|| {
            let sc = ScalarEdgeDistance::build(black_box(&topo), &AlwaysAwake);
            run_pipeline(
                &topo,
                src,
                &AlwaysAwake,
                &mut ScalarESelector::new(&sc),
                &PipelineConfig::default(),
            )
        })
    });
    group.finish();
}

fn bench_localized_vs_centralized(c: &mut Criterion) {
    // Extension ablation: the §VII localized protocol against the
    // centralized pipeline it approximates.
    use mlbs_core::{run_pipeline, EModel, EModelSelector, PipelineConfig};
    let mut group = c.benchmark_group("localized_vs_centralized");
    group.sample_size(10);
    let (topo, src) = SyntheticDeployment::paper(150).sample(12);
    let em = EModel::build(&topo, &AlwaysAwake);
    let local = wsn_distributed::localized_broadcast(&topo, src, &AlwaysAwake, &em, 1);
    let central = run_pipeline(
        &topo,
        src,
        &AlwaysAwake,
        &mut EModelSelector::new(&em),
        &PipelineConfig::default(),
    );
    group.bench_function(format!("localized(P={})", local.schedule.latency()), |b| {
        b.iter(|| wsn_distributed::localized_broadcast(black_box(&topo), src, &AlwaysAwake, &em, 1))
    });
    group.bench_function(format!("centralized(P={})", central.latency()), |b| {
        b.iter(|| {
            run_pipeline(
                black_box(&topo),
                src,
                &AlwaysAwake,
                &mut EModelSelector::new(&em),
                &PipelineConfig::default(),
            )
        })
    });
    group.finish();
}

fn bench_opt_beam_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_beam_width");
    group.sample_size(10);
    let (topo, src) = SyntheticDeployment::paper(150).sample(8);
    for cap in [4usize, 16, 64, 256] {
        let cfg = SearchConfig {
            branch_cap: cap,
            ..SearchConfig::default()
        };
        let out = solve_opt(&topo, src, &AlwaysAwake, &cfg);
        group.bench_function(
            format!("cap{cap}(P={},exact={})", out.latency, out.exact),
            |b| b.iter(|| solve_opt(black_box(&topo), src, &AlwaysAwake, &cfg)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_barrier_vs_pipeline,
    bench_coloring_staleness,
    bench_emodel_directionality,
    bench_localized_vs_centralized,
    bench_opt_beam_width
);
criterion_main!(benches);
