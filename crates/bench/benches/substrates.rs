//! Substrate micro-benchmarks: the building blocks every scheduler leans
//! on. Useful for spotting regressions in the hot paths (UDG construction,
//! neighbor bitsets, conflict graphs, coloring, E-model construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_bitset::NodeSet;
use wsn_coloring::{eligible_senders, greedy_coloring, maximal_conflict_free_sets};
use wsn_dutycycle::{AlwaysAwake, WakeSchedule, WindowedRandom};
use wsn_interference::ConflictGraph;
use wsn_topology::deploy::SyntheticDeployment;

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    for nodes in [100usize, 300] {
        let (topo, _) = SyntheticDeployment::paper(nodes).sample(1);
        let positions = topo.positions().to_vec();
        group.bench_with_input(BenchmarkId::new("udg_build", nodes), &nodes, |b, _| {
            b.iter(|| wsn_topology::Topology::unit_disk(black_box(positions.clone()), 10.0))
        });
        group.bench_with_input(BenchmarkId::new("edge_nodes", nodes), &nodes, |b, _| {
            b.iter(|| wsn_topology::boundary::edge_nodes(black_box(&topo)))
        });
    }
    group.finish();
}

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring");
    let (topo, src) = SyntheticDeployment::paper(300).sample(2);
    // A mid-broadcast informed set: everything within 2 hops of the source.
    let hops = wsn_topology::metrics::bfs_hops(&topo, src);
    let informed = NodeSet::from_indices(topo.len(), (0..topo.len()).filter(|&u| hops[u] <= 2));
    let candidates = eligible_senders(&topo, &informed);
    group.bench_function("greedy_coloring/300", |b| {
        b.iter(|| greedy_coloring(black_box(&topo), black_box(&informed)))
    });
    group.bench_function("conflict_graph/300", |b| {
        b.iter(|| {
            ConflictGraph::build(
                black_box(&topo),
                black_box(&candidates),
                &informed.complement(),
            )
        })
    });
    let cg = ConflictGraph::build(&topo, &candidates, &informed.complement());
    group.bench_function("maximal_sets_cap64/300", |b| {
        b.iter(|| maximal_conflict_free_sets(black_box(&cg), 64))
    });
    group.finish();
}

fn bench_emodel(c: &mut Criterion) {
    let mut group = c.benchmark_group("emodel");
    for nodes in [100usize, 300] {
        let (topo, _) = SyntheticDeployment::paper(nodes).sample(3);
        group.bench_with_input(BenchmarkId::new("build_sync", nodes), &nodes, |b, _| {
            b.iter(|| mlbs_core::EModel::build(black_box(&topo), &AlwaysAwake))
        });
        let wake = WindowedRandom::new(topo.len(), 10, 9);
        group.bench_with_input(BenchmarkId::new("build_duty10", nodes), &nodes, |b, _| {
            b.iter(|| mlbs_core::EModel::build(black_box(&topo), &wake))
        });
    }
    group.finish();
}

fn bench_dutycycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("dutycycle");
    let wake = WindowedRandom::new(300, 10, 4);
    group.bench_function("next_send", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for u in 0..300 {
                acc = acc.wrapping_add(wake.next_send(u, black_box(12345)));
            }
            acc
        })
    });
    group.bench_function("expected_cwt", |b| {
        b.iter(|| wake.expected_cwt(black_box(3), black_box(17)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_topology,
    bench_coloring,
    bench_emodel,
    bench_dutycycle
);
criterion_main!(benches);
