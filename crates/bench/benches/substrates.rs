//! Substrate micro-benchmarks: the building blocks every scheduler leans
//! on. Useful for spotting regressions in the hot paths (UDG construction,
//! neighbor bitsets, conflict graphs, coloring, E-model construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_bitset::NodeSet;
use wsn_coloring::{eligible_senders, greedy_coloring, maximal_conflict_free_sets};
use wsn_dutycycle::{AlwaysAwake, WakeSchedule, WindowedRandom};
use wsn_interference::{ConflictGraph, ConflictGraphBuilder};
use wsn_topology::{deploy::SyntheticDeployment, NodeId, Topology};

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    for nodes in [100usize, 300] {
        let (topo, _) = SyntheticDeployment::paper(nodes).sample(1);
        let positions = topo.positions().to_vec();
        group.bench_with_input(BenchmarkId::new("udg_build", nodes), &nodes, |b, _| {
            b.iter(|| wsn_topology::Topology::unit_disk(black_box(positions.clone()), 10.0))
        });
        group.bench_with_input(BenchmarkId::new("edge_nodes", nodes), &nodes, |b, _| {
            b.iter(|| wsn_topology::boundary::edge_nodes(black_box(&topo)))
        });
    }
    group.finish();
}

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring");
    let (topo, src) = SyntheticDeployment::paper(300).sample(2);
    // A mid-broadcast informed set: everything within 2 hops of the source.
    let hops = wsn_topology::metrics::bfs_hops(&topo, src);
    let informed = NodeSet::from_indices(topo.len(), (0..topo.len()).filter(|&u| hops[u] <= 2));
    let candidates = eligible_senders(&topo, &informed);
    group.bench_function("greedy_coloring/300", |b| {
        b.iter(|| greedy_coloring(black_box(&topo), black_box(&informed)))
    });
    group.bench_function("conflict_graph/300", |b| {
        b.iter(|| {
            ConflictGraph::build(
                black_box(&topo),
                black_box(&candidates),
                &informed.complement(),
            )
        })
    });
    let cg = ConflictGraph::build(&topo, &candidates, &informed.complement());
    group.bench_function("maximal_sets_cap64/300", |b| {
        b.iter(|| maximal_conflict_free_sets(black_box(&cg), 64))
    });
    group.finish();
}

/// A search-shaped `(candidates, uninformed)` trajectory: the greedy
/// broadcast's state sequence, expanded with per-state branch probes —
/// for every state the DFS pattern of visiting several sibling children
/// (uninformed shrinks by one relay's coverage) and backtracking to the
/// parent. This is the call sequence `Searcher::branches` hands the
/// conflict builder.
fn broadcast_trajectory(topo: &Topology, src: NodeId) -> Vec<(Vec<NodeId>, NodeSet)> {
    let n = topo.len();
    let mut informed = NodeSet::new(n);
    informed.insert(src.idx());
    let mut steps = Vec::new();
    loop {
        let uninformed = informed.complement();
        let candidates = eligible_senders(topo, &informed);
        if candidates.is_empty() {
            break;
        }
        steps.push((candidates.clone(), uninformed.clone()));
        // Branch probes: three sibling children plus the backtrack home.
        for probe in 0..3usize {
            let relay = candidates[probe * candidates.len().div_ceil(4) % candidates.len()];
            let mut child = uninformed.clone();
            child.difference_with(topo.neighbor_set(relay));
            steps.push((candidates.clone(), child));
        }
        steps.push((candidates.clone(), uninformed.clone()));
        let classes = wsn_coloring::greedy_coloring_of_candidates(topo, &informed, &candidates);
        for &u in &classes[0] {
            informed.union_with(topo.neighbor_set(u));
        }
        if informed.is_full() {
            break;
        }
    }
    steps
}

/// The ISSUE-2 acceptance bench: replaying a 300-node broadcast
/// trajectory through the incremental builder vs rebuilding the conflict
/// graph from scratch at every state.
fn bench_incremental_conflict(c: &mut Criterion) {
    let mut group = c.benchmark_group("conflict_incremental");
    for nodes in [100usize, 300] {
        let (topo, src) = SyntheticDeployment::paper(nodes).sample(7);
        let steps = broadcast_trajectory(&topo, src);
        group.bench_with_input(BenchmarkId::new("rebuild", nodes), &nodes, |b, _| {
            b.iter(|| {
                for (cands, unf) in &steps {
                    black_box(ConflictGraph::build(&topo, cands, unf));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("incremental", nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut builder = ConflictGraphBuilder::new();
                builder.reset(topo.len());
                for (cands, unf) in &steps {
                    black_box(builder.update(&topo, cands, unf));
                }
            })
        });
    }
    group.finish();
}

/// Re-measures the `WITNESS_RETEST_MIN_UNIVERSE` crossover: one universe
/// below the 1024 default and one above, each driven through a
/// shrink-heavy retest workload with the witness cache forced on
/// (threshold 0) and forced off (`usize::MAX`). If "witness_on" wins below
/// 1024 or loses above it on your hardware, the default constant in
/// `wsn-interference::builder` deserves an update.
fn bench_witness_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("witness_threshold");
    for universe in [700usize, 1400] {
        let topo = Topology::unit_disk(
            (0..universe)
                .map(|i| wsn_geom::Point::new(i as f64 * 0.8, 0.0))
                .collect(),
            2.0,
        );
        let cands: Vec<NodeId> = (universe / 2..universe / 2 + 48)
            .map(|i| NodeId(i as u32))
            .collect();
        // A retest-heavy walk: witnesses drain out of W̄ near the
        // candidates, so every step retests the same pairs.
        let mut walk = Vec::new();
        let mut unf = NodeSet::full(universe);
        for step in 0..24usize {
            unf.remove(universe / 2 - 4 + step);
            walk.push(unf.clone());
        }
        for (label, threshold) in [("witness_on", 0usize), ("witness_off", usize::MAX)] {
            group.bench_with_input(BenchmarkId::new(label, universe), &universe, |b, _| {
                b.iter(|| {
                    let mut builder = ConflictGraphBuilder::new();
                    builder.set_witness_retest_min_universe(threshold);
                    builder.reset(topo.len());
                    for unf in &walk {
                        black_box(builder.update(&topo, &cands, unf));
                    }
                })
            });
        }
    }
    group.finish();
}

fn bench_emodel(c: &mut Criterion) {
    let mut group = c.benchmark_group("emodel");
    for nodes in [100usize, 300] {
        let (topo, _) = SyntheticDeployment::paper(nodes).sample(3);
        group.bench_with_input(BenchmarkId::new("build_sync", nodes), &nodes, |b, _| {
            b.iter(|| mlbs_core::EModel::build(black_box(&topo), &AlwaysAwake))
        });
        let wake = WindowedRandom::new(topo.len(), 10, 9);
        group.bench_with_input(BenchmarkId::new("build_duty10", nodes), &nodes, |b, _| {
            b.iter(|| mlbs_core::EModel::build(black_box(&topo), &wake))
        });
    }
    group.finish();
}

fn bench_dutycycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("dutycycle");
    let wake = WindowedRandom::new(300, 10, 4);
    group.bench_function("next_send", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for u in 0..300 {
                acc = acc.wrapping_add(wake.next_send(u, black_box(12345)));
            }
            acc
        })
    });
    group.bench_function("expected_cwt", |b| {
        b.iter(|| wake.expected_cwt(black_box(3), black_box(17)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_topology,
    bench_coloring,
    bench_incremental_conflict,
    bench_witness_threshold,
    bench_emodel,
    bench_dutycycle
);
criterion_main!(benches);
