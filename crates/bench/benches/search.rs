//! Duty-regime search benchmarks: the phase-folded OPT/G-OPT searches
//! against the PR 2 baseline configuration on seeded paper instances.
//!
//! In `--test` mode (the CI smoke) every routine runs once and *asserts
//! the new `SearchStats` counters are actually populated* — a missing
//! counter (folder never engaged, dominance store dead, ordering hook
//! bypassed) panics and fails CI rather than silently benching nothing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlbs_core::{solve_gopt_with, solve_opt_with, BranchOrder, BroadcastState, SearchConfig};
use std::hint::black_box;
use wsn_bench::AdaptiveBudget;
use wsn_dutycycle::WindowedRandom;
use wsn_sim::Regime;
use wsn_topology::deploy::SyntheticDeployment;

/// The PR 2 duty-regime constants, kept as the comparison baseline.
fn legacy_duty() -> SearchConfig {
    SearchConfig {
        branch_cap: 24,
        max_states: 400_000,
        phase_fold: false,
        dominance: false,
        ..SearchConfig::default()
    }
}

fn bench_duty_opt(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_duty_opt");
    group.sample_size(10);
    // (nodes, deployment seed, rate): one easy r=50 pin (the phase axis),
    // one hard r=10 pin (wide awake-candidate branching).
    for (nodes, seed, rate) in [(100usize, 0u64, 50u32), (200, 2, 10)] {
        let (topo, src) = SyntheticDeployment::paper(nodes).sample(seed);
        let wake = WindowedRandom::new(topo.len(), rate, seed ^ 0x57a6_6e8d);
        let adaptive = AdaptiveBudget::default().config_for(Regime::Duty { rate }, nodes);
        let legacy = legacy_duty();
        group.bench_with_input(
            BenchmarkId::new(format!("baseline_r{rate}"), nodes),
            &nodes,
            |b, _| {
                let mut substrate = BroadcastState::new();
                b.iter(|| {
                    let out = solve_opt_with(black_box(&topo), src, &wake, &legacy, &mut substrate);
                    assert!(out.latency >= 1, "search produced no schedule");
                    out.latency
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("folded_r{rate}"), nodes),
            &nodes,
            |b, _| {
                let mut substrate = BroadcastState::new();
                b.iter(|| {
                    let out =
                        solve_opt_with(black_box(&topo), src, &wake, &adaptive, &mut substrate);
                    // The CI smoke contract: the counters the claims
                    // binary records must be populated on the duty pins.
                    assert!(
                        out.stats.phase_classes > 0,
                        "phase folder never engaged on a duty search"
                    );
                    assert!(out.stats.memo_entries > 0, "memo_entries missing");
                    assert!(
                        adaptive.dominance
                            && adaptive.branch_order == BranchOrder::FrontierWeighted,
                        "adaptive duty config lost its search features"
                    );
                    out.latency
                })
            },
        );
    }
    group.finish();
}

fn bench_duty_gopt(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_duty_gopt");
    group.sample_size(10);
    let (topo, src) = SyntheticDeployment::paper(200).sample(2);
    let wake = WindowedRandom::new(topo.len(), 10, 2 ^ 0x57a6_6e8d);
    let adaptive = AdaptiveBudget::default().config_for(Regime::Duty { rate: 10 }, 200);
    for (label, cfg) in [("baseline", legacy_duty()), ("folded", adaptive)] {
        group.bench_function(BenchmarkId::new(label, 200), |b| {
            let mut substrate = BroadcastState::new();
            b.iter(|| {
                let out = solve_gopt_with(black_box(&topo), src, &wake, &cfg, &mut substrate);
                assert!(out.exact, "G-OPT should stay exact on this pin");
                out.latency
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_duty_opt, bench_duty_gopt);
criterion_main!(benches);
