//! Anytime-tier benches: legalizer seed cost, full anytime search under an
//! iteration budget, and the incumbent-vs-baseline latency embedded in the
//! bench names. Doubles as the CI smoke (`--test`): the setup asserts the
//! improving-bound trace is populated and every emitted schedule verifies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_anytime::{solve_anytime, AnytimeConfig, Budget};
use wsn_dutycycle::AlwaysAwake;
use wsn_phy::ProtocolModel;
use wsn_topology::deploy::SyntheticDeployment;

fn budget(iters: u64) -> AnytimeConfig {
    AnytimeConfig {
        budget: Budget::Iterations(iters),
        ..AnytimeConfig::default()
    }
}

fn bench_anytime_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("anytime_search");
    group.sample_size(10);
    for nodes in [300usize, 1_000] {
        let (topo, src) = SyntheticDeployment::scaled(nodes).sample(3);
        let cfg = budget(20_000);
        let out = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg);
        // CI smoke assertions: the anytime contract, independent of speed.
        assert!(
            !out.trace.is_empty(),
            "improving-bound trace must be populated"
        );
        assert_eq!(out.trace.last().unwrap().latency, out.latency);
        out.schedule
            .verify(&topo, &AlwaysAwake)
            .expect("anytime schedule must verify");
        let baseline = wsn_baselines::schedule_26_approx(&topo, src);
        assert!(
            out.latency <= baseline.latency(),
            "anytime ({}) must not lose to the layered baseline ({})",
            out.latency,
            baseline.latency()
        );
        group.bench_with_input(
            BenchmarkId::new(
                format!("n{nodes}(P={},base={})", out.latency, baseline.latency()),
                nodes,
            ),
            &nodes,
            |b, _| {
                b.iter(|| solve_anytime(black_box(&topo), src, &AlwaysAwake, &ProtocolModel, &cfg))
            },
        );
    }
    group.finish();
}

fn bench_greedy_seed(c: &mut Criterion) {
    // The zero-iteration path isolates the legalizer's greedy construction
    // — the per-pass cost floor of the whole tier.
    let mut group = c.benchmark_group("anytime_greedy_seed");
    group.sample_size(10);
    for nodes in [1_000usize, 10_000] {
        let (topo, src) = SyntheticDeployment::scaled(nodes).sample(3);
        let cfg = budget(0);
        let out = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg);
        assert!(!out.trace.is_empty());
        out.schedule.verify(&topo, &AlwaysAwake).unwrap();
        group.bench_with_input(
            BenchmarkId::new(format!("n{nodes}(P={})", out.latency), nodes),
            &nodes,
            |b, _| {
                b.iter(|| solve_anytime(black_box(&topo), src, &AlwaysAwake, &ProtocolModel, &cfg))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_anytime_search, bench_greedy_seed);
criterion_main!(benches);
