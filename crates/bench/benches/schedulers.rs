//! Scheduler wall-time per figure point: how long each algorithm takes to
//! schedule one broadcast at the paper's densities. These are the costs
//! behind regenerating Figures 3, 4 and 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlbs_core::SearchConfig;
use std::hint::black_box;
use wsn_sim::{run_instance, Algorithm, Regime};
use wsn_topology::deploy::SyntheticDeployment;

fn bench_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_sync");
    group.sample_size(10);
    for nodes in [100usize, 300] {
        let (topo, src) = SyntheticDeployment::paper(nodes).sample(42);
        for alg in [
            Algorithm::Layered,
            Algorithm::EModelPipeline,
            Algorithm::GOpt,
            Algorithm::Opt,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{:?}", alg), nodes),
                &nodes,
                |b, _| {
                    b.iter(|| {
                        run_instance(
                            black_box(&topo),
                            src,
                            Regime::Sync,
                            alg,
                            7,
                            &SearchConfig::default(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_duty(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_duty10");
    group.sample_size(10);
    let cfg = wsn_bench::search_for(Regime::Duty { rate: 10 });
    for nodes in [100usize, 300] {
        let (topo, src) = SyntheticDeployment::paper(nodes).sample(42);
        for alg in [
            Algorithm::Layered,
            Algorithm::EModelPipeline,
            Algorithm::GOpt,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{:?}", alg), nodes),
                &nodes,
                |b, _| {
                    b.iter(|| {
                        run_instance(
                            black_box(&topo),
                            src,
                            Regime::Duty { rate: 10 },
                            alg,
                            7,
                            &cfg,
                        )
                    })
                },
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("fig6_duty50");
    group.sample_size(10);
    let cfg = wsn_bench::search_for(Regime::Duty { rate: 50 });
    let (topo, src) = SyntheticDeployment::paper(200).sample(42);
    for alg in [
        Algorithm::Layered,
        Algorithm::EModelPipeline,
        Algorithm::GOpt,
    ] {
        group.bench_function(format!("{:?}/200", alg), |b| {
            b.iter(|| {
                run_instance(
                    black_box(&topo),
                    src,
                    Regime::Duty { rate: 50 },
                    alg,
                    7,
                    &cfg,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sync, bench_duty);
criterion_main!(benches);
