//! Observability-layer benches: the cost of the `wsn-obs` primitives with
//! the global recorder disabled (the always-on production default) and
//! enabled, plus a recorded end-to-end anytime solve. Doubles as the CI
//! smoke (`--test`): the setup asserts the disabled path performs **zero
//! heap allocations** (counted by a wrapping global allocator), that an
//! installed recorder actually populates counters/histograms/events, and
//! that recording never perturbs the solve itself (bit-identical
//! schedules enabled vs disabled).

use criterion::{criterion_group, criterion_main, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use wsn_anytime::{solve_anytime, AnytimeConfig, Budget};
use wsn_dutycycle::AlwaysAwake;
use wsn_obs::Recorder;
use wsn_phy::ProtocolModel;
use wsn_topology::deploy::SyntheticDeployment;

/// Counts every heap allocation made through the global allocator so the
/// disabled-path zero-allocation contract is measurable, not asserted by
/// inspection.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many allocations it performed.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn bench_disabled_primitives(c: &mut Criterion) {
    assert!(
        !wsn_obs::enabled(),
        "bench assumes no recorder is installed at start"
    );
    // CI smoke: with no recorder installed, the full primitive surface —
    // counters, gauges, histograms, instants, spans — must not allocate.
    let allocs = allocations_during(|| {
        for i in 0..10_000u64 {
            wsn_obs::counter_add("bench.counter", 1);
            wsn_obs::gauge_set("bench.gauge", i as i64);
            wsn_obs::observe_us("bench.hist", i);
            wsn_obs::event("bench.instant");
            wsn_obs::event_value("bench.instant_v", i as i64);
            let span = wsn_obs::span("bench.span");
            drop(black_box(span));
        }
    });
    assert_eq!(allocs, 0, "disabled obs path must not allocate");

    let mut group = c.benchmark_group("obs_disabled");
    group.bench_function("counter_add", |b| {
        b.iter(|| wsn_obs::counter_add(black_box("bench.counter"), 1))
    });
    group.bench_function("observe_us", |b| {
        b.iter(|| wsn_obs::observe_us(black_box("bench.hist"), 42))
    });
    group.bench_function("span", |b| {
        b.iter(|| wsn_obs::span(black_box("bench.span")))
    });
    group.finish();
}

fn bench_enabled_primitives(c: &mut Criterion) {
    let rec = Recorder::new();
    wsn_obs::install(rec.clone());
    // CI smoke: an installed recorder actually captures what the free
    // functions report.
    wsn_obs::counter_add("bench.smoke", 3);
    wsn_obs::observe_us("bench.smoke_us", 7);
    {
        let _span = wsn_obs::span("bench.smoke_span");
    }
    wsn_obs::event("bench.smoke_event");
    assert_eq!(rec.counter_value("bench.smoke"), 3);
    let snap = rec
        .histogram_snapshot("bench.smoke_us")
        .expect("histogram must exist once observed");
    assert_eq!(snap.count, 1);
    assert!(
        rec.events_snapshot()
            .iter()
            .any(|e| e.name == "bench.smoke_span"),
        "span guard must record on drop"
    );

    let mut group = c.benchmark_group("obs_enabled");
    group.bench_function("counter_add", |b| {
        b.iter(|| wsn_obs::counter_add(black_box("bench.counter"), 1))
    });
    group.bench_function("observe_us", |b| {
        b.iter(|| wsn_obs::observe_us(black_box("bench.hist"), 42))
    });
    group.bench_function("span", |b| {
        b.iter(|| wsn_obs::span(black_box("bench.span")))
    });
    group.finish();
    wsn_obs::uninstall();
}

fn bench_recorded_solve(c: &mut Criterion) {
    let (topo, src) = SyntheticDeployment::paper(120).sample(5);
    let cfg = AnytimeConfig {
        budget: Budget::Iterations(10_000),
        ..AnytimeConfig::default()
    };
    // CI smoke: recording is invisible to the search — same schedule,
    // same work accounting, enabled vs disabled.
    let plain = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg);
    let rec = Recorder::new();
    wsn_obs::install(rec.clone());
    let recorded = solve_anytime(&topo, src, &AlwaysAwake, &ProtocolModel, &cfg);
    wsn_obs::uninstall();
    assert_eq!(recorded.latency, plain.latency);
    assert_eq!(recorded.schedule.entries, plain.schedule.entries);
    assert_eq!(recorded.moves, plain.moves);
    assert_eq!(rec.counter_value("anytime.solves"), 1);
    assert!(rec.counter_value("anytime.moves") >= plain.moves);

    let mut group = c.benchmark_group("obs_recorded_solve");
    group.sample_size(10);
    group.bench_function("disabled", |b| {
        b.iter(|| solve_anytime(black_box(&topo), src, &AlwaysAwake, &ProtocolModel, &cfg))
    });
    group.bench_function("enabled", |b| {
        let rec = Recorder::new();
        wsn_obs::install(rec);
        b.iter(|| solve_anytime(black_box(&topo), src, &AlwaysAwake, &ProtocolModel, &cfg));
        wsn_obs::uninstall();
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_disabled_primitives,
    bench_enabled_primitives,
    bench_recorded_solve
);
criterion_main!(benches);
